//! Shared helpers for the runnable examples.

use propeller_sim::CounterSet;

/// Prints a labeled baseline-vs-optimized counter comparison.
pub fn print_comparison(label: &str, base: &CounterSet, opt: &CounterSet) {
    println!("== {label} ==");
    println!(
        "  cycles          {:>12} -> {:>12}  ({:+.2}% speedup)",
        base.cycles,
        opt.cycles,
        opt.speedup_pct_over(base)
    );
    let delta = |name: &str, f: fn(&CounterSet) -> u64| {
        println!(
            "  {name:<15} {:>12} -> {:>12}  ({:+.1}%)",
            f(base),
            f(opt),
            opt.delta_pct(base, f)
        );
    };
    delta("taken branches", |c| c.taken_branches);
    delta("L1i misses", |c| c.l1i_misses);
    delta("iTLB misses", |c| c.itlb_misses);
    delta("baclears", |c| c.baclears);
}
