//! Head-to-head: Propeller's relinking flow vs a BOLT-style monolithic
//! rewriter on the same MySQL-shaped workload and the same hardware
//! profile (the paper's §5 methodology).
//!
//! ```text
//! cargo run --release -p propeller-examples --bin bolt_vs_propeller
//! ```

use propeller::{Propeller, PropellerOptions};
use propeller_bolt::{run_bolt, BoltOptions};
use propeller_codegen::{codegen_module, CodegenOptions};
use propeller_examples::print_comparison;
use propeller_linker::{link, LinkInput, LinkOptions};
use propeller_sim::{simulate, ProgramImage, SimOptions, UarchConfig, Workload};
use propeller_synth::{generate, spec_by_name, GenParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = spec_by_name("mysql").expect("known benchmark");
    let mut params = GenParams::for_spec(&spec);
    params.scale = spec.default_scale * 0.5;
    let g = generate(&spec, &params);
    println!("mysql-shaped workload: {}", g.program.stats());

    // Propeller flow.
    let mut pipeline = Propeller::new(g.program.clone(), g.entries.clone(), PropellerOptions::default());
    pipeline.run_all()?;
    let profile = pipeline.profile().expect("profiled").clone();
    let eval = pipeline.evaluate(400_000)?;
    print_comparison("Propeller", &eval.baseline, &eval.optimized);

    // BOLT flow: relink the baseline with --emit-relocs, feed it the
    // *same* profile.
    let inputs: Vec<LinkInput> = g
        .program
        .modules()
        .iter()
        .map(|m| {
            let r = codegen_module(m, &g.program, &CodegenOptions::baseline())?;
            Ok(LinkInput::new(r.object, r.debug_layout))
        })
        .collect::<Result<_, propeller_codegen::CodegenError>>()?;
    let bm = link(
        &inputs,
        &LinkOptions {
            output_name: "mysqld.bm".into(),
            retain_relocs: true,
            ..LinkOptions::default()
        },
    )?;
    let bolt = run_bolt(&bm, &profile, &BoltOptions::default())?;
    println!(
        "\nBOLT: {} functions discovered, {} optimized, {} insts decoded",
        bolt.stats.functions_discovered, bolt.stats.optimized_functions, bolt.stats.insts_decoded
    );
    println!(
        "BOLT output size: {} bytes vs baseline {} bytes ({:+.0}%)",
        bolt.size_breakdown.total(),
        bm.size_breakdown.total(),
        (bolt.size_breakdown.total() as f64 / bm.size_breakdown.total() as f64 - 1.0) * 100.0
    );

    let mut workload = Workload::new(g.entries.clone(), 400_000);
    workload.seed = 0x5eed;
    let img = ProgramImage::build(&g.program, &bolt.layout)?;
    let bolt_counters =
        simulate(&img, &workload, &UarchConfig::default(), &SimOptions::default()).counters;
    println!();
    print_comparison("BOLT", &eval.baseline, &bolt_counters);

    println!(
        "\nmemory: Propeller WPA peak {} bytes vs BOLT perf2bolt peak {} bytes ({:.1}x)",
        pipeline.wpa_output().expect("wpa").stats.modeled_peak_memory,
        bolt.stats.profile_conversion_peak_memory,
        bolt.stats.profile_conversion_peak_memory as f64
            / pipeline
                .wpa_output()
                .expect("wpa")
                .stats
                .modeled_peak_memory
                .max(1) as f64
    );
    Ok(())
}
