//! A compiler-shaped workload: generate a program with Clang's Table 2
//! characteristics, walk through the four phases one at a time with
//! narration, and evaluate the result.
//!
//! ```text
//! cargo run --release -p propeller-examples --bin clang_like
//! ```

use propeller::{Propeller, PropellerOptions};
use propeller_examples::print_comparison;
use propeller_synth::{generate, spec_by_name, GenParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = spec_by_name("clang").expect("known benchmark");
    let mut params = GenParams::for_spec(&spec);
    params.scale = spec.default_scale * 0.5; // keep the example snappy
    let g = generate(&spec, &params);
    let stats = g.program.stats();
    println!(
        "generated a clang-shaped program at scale {:.4}: {stats}",
        params.scale
    );

    let mut pipeline = Propeller::new(g.program, g.entries, PropellerOptions::default());

    let p1 = pipeline.phase1_compile()?;
    println!(
        "phase 1 (compile + cache IR): {} actions, {:.1}s wall",
        p1.num_actions, p1.wall_secs
    );

    let p2 = pipeline.phase2_build_metadata()?;
    let pm = pipeline.pm_binary().expect("built");
    println!(
        "phase 2 (metadata build): {} actions, {:.1}s wall; PM binary {} bytes ({} bb-addr-map)",
        p2.num_actions,
        p2.wall_secs,
        pm.file_size(),
        pm.size_breakdown.bb_addr_map,
    );

    let p3 = pipeline.phase3_profile_and_analyze()?;
    let wpa = pipeline.wpa_output().expect("analyzed");
    println!(
        "phase 3 (profile + WPA): {} samples, {} hot functions, {} dcfg edges, peak {} bytes, {:.1}s wall",
        pipeline.profile().expect("profiled").samples.len(),
        wpa.stats.hot_functions,
        wpa.stats.dcfg_edges,
        wpa.stats.modeled_peak_memory,
        p3.wall_secs
    );

    let p4 = pipeline.phase4_relink()?;
    let po = pipeline.po_binary().expect("relinked");
    println!(
        "phase 4 (relink): {} codegen actions (cold objects cached), {:.1}s wall; {} jumps deleted, {} branches shrunk",
        p4.num_actions.saturating_sub(1),
        p4.wall_secs,
        po.stats.deleted_jumps,
        po.stats.shrunk_branches
    );

    let eval = pipeline.evaluate(400_000)?;
    println!();
    print_comparison("clang-like workload", &eval.baseline, &eval.optimized);
    Ok(())
}
