//! A warehouse-scale scenario: a Bigtable-shaped service built on the
//! distributed build system. Demonstrates the caching behavior that
//! makes relinking cheap, the incremental rebuild after a "code
//! change", and the per-action memory limit that keeps monolithic
//! rewriters off this infrastructure.
//!
//! ```text
//! cargo run --release -p propeller-examples --bin server_fleet
//! ```

use propeller::{BuildCaches, MachineConfig, Propeller, PropellerOptions};
use propeller_buildsys::GIB;
use propeller_examples::print_comparison;
use propeller_ir::Terminator;
use propeller_synth::{generate, spec_by_name, GenParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = spec_by_name("bigtable").expect("known benchmark");
    let mut params = GenParams::for_spec(&spec);
    params.scale = spec.default_scale * 0.5;
    let g = generate(&spec, &params);
    println!(
        "bigtable-shaped service at scale {:.4}: {}",
        params.scale,
        g.program.stats()
    );

    let opts = PropellerOptions {
        machine: MachineConfig::Distributed {
            ram_limit: spec.action_ram_gib * GIB,
            dispatch_secs: 2.0,
        },
        ..PropellerOptions::default()
    };
    // The build caches persist across releases, like the production
    // distributed build system's artifact store.
    let caches = BuildCaches::new();
    let mut pipeline =
        Propeller::with_caches(g.program.clone(), g.entries.clone(), opts.clone(), caches.clone());
    let report = pipeline.run_all()?;
    println!(
        "\nrelease #1: {} hot modules regenerated ({}% of objects), cache {} hits / {} misses",
        (report.hot_module_fraction * g.program.num_modules() as f64).round(),
        (report.hot_module_fraction * 100.0).round(),
        report.object_cache.hits,
        report.object_cache.misses
    );
    let eval = pipeline.evaluate(400_000)?;
    print_comparison("bigtable-like service", &eval.baseline, &eval.optimized);

    // --- Incremental release: one module changes. -------------------
    let mut changed = g.program.clone();
    {
        let module = &mut changed.modules_mut()[0];
        let f = &mut module.functions[0];
        // A small edit: append an ALU op to the entry block.
        f.blocks[0].insts.push(propeller_ir::Inst::Alu);
        assert!(matches!(
            f.blocks[0].term,
            Terminator::Ret | Terminator::Jump(_) | Terminator::CondBr { .. }
        ));
    }
    let before = caches.object_stats();
    let mut second = Propeller::with_caches(changed, g.entries.clone(), opts, caches.clone());
    let report2 = second.run_all()?;
    let after = report2.object_cache;
    let hits = after.hits - before.hits;
    let misses = after.misses - before.misses;
    println!(
        "\nrelease #2 (one module edited): {hits} cache hits, {misses} misses \
         ({:.0}% hit rate — only the edited module and re-laid-out hot modules rebuilt)",
        hits as f64 * 100.0 / (hits + misses) as f64
    );

    // --- Why BOLT cannot run here. ----------------------------------
    // A monolithic rewrite of this binary needs memory proportional to
    // the full disassembly; the distributed build rejects any action
    // above the per-action limit.
    let executor = propeller_buildsys::Executor::new(MachineConfig::Distributed {
        ram_limit: spec.action_ram_gib * GIB,
        dispatch_secs: 2.0,
    });
    let full_scale_bolt_peak = 36 * GIB; // Figure 4's Search-class number
    let action = propeller_buildsys::ActionSpec::new("llvm-bolt", 600.0, full_scale_bolt_peak);
    match executor.run_phase(&[action]) {
        Err(e) => println!("\nmonolithic rewriter on the distributed build: {e}"),
        Ok(_) => unreachable!("36 GiB action must exceed the limit"),
    }
    Ok(())
}
