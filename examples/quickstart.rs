//! Quickstart: build a tiny program by hand, run the four Propeller
//! phases, and measure the layout improvement.
//!
//! ```text
//! cargo run -p propeller-examples --bin quickstart
//! ```

use propeller::{Propeller, PropellerOptions};
use propeller_examples::print_comparison;
use propeller_ir::{BlockId, FunctionBuilder, Inst, ProgramBuilder, Terminator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A request handler with a hot fast path and a rarely taken
    // slow path. Crucially, the *compiler's* layout has the slow path
    // inline (the PGO profile was stale): exactly the situation
    // Propeller fixes post-link.
    let mut pb = ProgramBuilder::new();
    let module = pb.add_module("server.cc");

    let mut parse = FunctionBuilder::new("parse_request");
    parse.add_block(vec![Inst::Load; 4], Terminator::Ret);
    let parse = pb.add_function(module, parse);

    let mut handle = FunctionBuilder::new("handle_request");
    // bb0: dispatch; the *hot* continuation is the taken target bb2.
    handle.add_block(
        vec![Inst::Call(parse), Inst::Alu],
        Terminator::CondBr {
            taken: BlockId(2),
            fallthrough: BlockId(1),
            prob_taken: 0.97,
        },
    );
    // bb1: slow path (error handling) — sits right in the middle of
    // the function in the compile-time layout.
    handle.add_block(vec![Inst::Store; 120], Terminator::Jump(BlockId(3)));
    // bb2: fast path.
    handle.add_block(vec![Inst::Alu; 10], Terminator::Jump(BlockId(3)));
    // bb3: respond.
    handle.add_block(vec![Inst::Store; 2], Terminator::Ret);
    let handle = pb.add_function(module, handle);

    let mut driver = FunctionBuilder::new("event_loop");
    driver.add_block(
        vec![Inst::Call(handle)],
        Terminator::CondBr {
            taken: BlockId(0),
            fallthrough: BlockId(1),
            prob_taken: 0.999,
        },
    );
    driver.add_block(Vec::new(), Terminator::Ret);
    let driver = pb.add_function(module, driver);

    let program = pb.finish()?;

    // Run the pipeline: compile+cache, metadata build, profile + WPA,
    // relink.
    let mut pipeline = Propeller::new(program, vec![(driver, 1.0)], PropellerOptions::default());
    let report = pipeline.run_all()?;
    println!("pipeline: {report:#?}\n");

    // Compare the optimized binary against the baseline.
    let eval = pipeline.evaluate(300_000)?;
    print_comparison("quickstart", &eval.baseline, &eval.optimized);

    // Peek at the layout directives WPA produced.
    let wpa = pipeline.wpa_output().expect("phase 3 ran");
    println!("\nglobal symbol order (ld_prof):");
    for s in wpa.symbol_order.names() {
        println!("  {s}");
    }
    Ok(())
}
