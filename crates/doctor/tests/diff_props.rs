//! Property tests for the run-diff regression gate: a report diffed
//! against itself is always empty at zero tolerance (the CI gate must
//! never fail a no-change build), serialization does not perturb that,
//! and gating honors metric direction.

use propeller_doctor::{diff_reports, RunReport};
use propeller_wpa::{ClusterProvenance, FunctionProvenance};
use proptest::prelude::*;

/// A pool mixing direction-mapped keys with unknown (informational)
/// ones, so self-diff is exercised across every gating path.
const KEYS: [&str; 8] = [
    "eval.speedup_pct",
    "eval.opt_cycles",
    "doctor.sample_coverage",
    "doctor.unmapped_rate",
    "cache.ir_hit_rate",
    "wpa.hot_functions",
    "custom.metric_a",
    "custom.metric_b",
];

/// Builds a report from drawn raw material. Metric values span
/// negatives, zero, and large magnitudes; unit-interval draws from the
/// vendored `any::<f64>()` are rescaled to cover them.
fn report_of(
    metrics: &[(u8, f64)],
    wall: &[(u8, f64)],
    funcs: &[(u8, u8, bool)],
) -> RunReport {
    let mut r = RunReport {
        benchmark: "prop".into(),
        scale: 0.5,
        seed: 7,
        ..RunReport::default()
    };
    for (k, v) in metrics {
        let key = KEYS[*k as usize % KEYS.len()];
        r.metrics.insert(key.to_string(), (v - 0.5) * 2e6);
    }
    for (k, v) in wall {
        r.wall
            .insert(format!("phase{}.wall_secs", k % 5), v * 1e3);
    }
    for (i, (blocks, order, cold)) in funcs.iter().enumerate() {
        let symbol = format!("fn{i}");
        let n = (*blocks % 6) as u32 + 1;
        r.layout.functions.push(FunctionProvenance {
            func_symbol: symbol.clone(),
            total_samples: n as u64 * 10,
            hot_blocks: n as usize,
            cold_blocks: (*blocks % 3) as usize,
            merge_gains: (0..n).map(|g| g as f64 * 1.5).collect(),
            layout_score: n as f64 * 7.0,
            input_score: n as f64 * 5.0,
            used_input_order: *cold,
            clusters: vec![ClusterProvenance {
                symbol,
                blocks: (0..n).collect(),
                weight: n as u64 * 10,
                size: n as u64 * 16,
                cold: *cold,
                symbol_order_pos: if *cold { None } else { Some(*order as usize) },
            }],
        });
    }
    r
}

proptest! {
    #[test]
    fn self_diff_is_empty_at_zero_tolerance(
        metrics in proptest::collection::vec((any::<u8>(), any::<f64>()), 0..12),
        wall in proptest::collection::vec((any::<u8>(), any::<f64>()), 0..6),
        funcs in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..8),
    ) {
        let r = report_of(&metrics, &wall, &funcs);
        let d = diff_reports(&r, &r, 0.0);
        prop_assert!(d.is_empty(), "self-diff produced {:?}", d.deltas);
        prop_assert!(!d.has_regression());
        prop_assert!(d.render().contains("identical"));
    }

    #[test]
    fn json_roundtrip_does_not_perturb_self_diff(
        metrics in proptest::collection::vec((any::<u8>(), any::<f64>()), 0..12),
        funcs in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<bool>()), 0..6),
    ) {
        let r = report_of(&metrics, &[], &funcs);
        let back = RunReport::parse(&r.to_json_string()).unwrap();
        prop_assert_eq!(&back, &r);
        prop_assert!(diff_reports(&r, &back, 0.0).is_empty());
    }

    #[test]
    fn gating_honors_metric_direction(
        base in any::<f64>(),
        bump in any::<f64>(),
    ) {
        // eval.opt_cycles is lower-better: raising it past the
        // tolerance must regress; lowering it never may.
        let cycles = base * 1e6 + 1000.0;
        let growth = 1.0 + bump; // 1x..2x
        let mut a = RunReport::default();
        a.metrics.insert("eval.opt_cycles".into(), cycles);
        let mut worse = a.clone();
        worse.metrics.insert("eval.opt_cycles".into(), cycles * (1.0 + growth));
        let mut better = a.clone();
        better.metrics.insert("eval.opt_cycles".into(), cycles / (1.0 + growth));
        prop_assert!(diff_reports(&a, &worse, 50.0).has_regression());
        prop_assert!(!diff_reports(&a, &better, 0.0).has_regression());
        // The same move on an unknown key stays informational.
        let mut ia = RunReport::default();
        ia.metrics.insert("custom.metric_a".into(), cycles);
        let mut ib = ia.clone();
        ib.metrics.insert("custom.metric_a".into(), cycles * (1.0 + growth));
        prop_assert!(!diff_reports(&ia, &ib, 0.0).has_regression());
    }
}
