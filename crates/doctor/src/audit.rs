//! Profile-quality math: sample coverage, unmapped-address rate,
//! fall-through inference confidence, sample-capture ratio, and the
//! stale-profile skew score.
//!
//! Everything here is pure arithmetic over the same structures WPA
//! consumes ([`AddressMapper`], [`Dcfg`], [`AggregatedProfile`]), so
//! the audit measures exactly the inputs layout decisions were made
//! from — not a parallel reimplementation that could drift.

use propeller::Propeller;
use propeller_linker::LinkedBinary;
use propeller_profile::{AggregatedProfile, HardwareProfile};
use propeller_sim::{collect_profile, ProgramImage};
use propeller_wpa::{AddressMapper, Dcfg, WpaOptions};
use std::collections::BTreeMap;

/// What the profiling run *should* have produced, from the `perf stat`
/// view of the same execution: one sample every `period` taken
/// branches. The ratio of actual to expected samples is a robust
/// truncation detector — coverage alone can stay high on a dense
/// profile that lost half its samples.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct ExpectedLoad {
    /// Taken branches retired during the profiled run.
    pub taken_branches: u64,
    /// Sampling period (taken branches per sample).
    pub period: u64,
}

/// The profile-quality audit of one run.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ProfileAudit {
    /// Fraction of hot text bytes whose block received at least one
    /// mapped sample. Hot text is the WPA hot classification — blocks
    /// at or above [`WpaOptions::hot_threshold`] plus the forced-hot
    /// entry block, within functions meeting
    /// [`WpaOptions::min_function_samples`] — computed from the
    /// *reference* profile (the audited profile itself by default).
    /// 1.0 when nothing qualified as hot.
    pub sample_coverage: f64,
    /// Hot text bytes with ≥ 1 mapped sample in the audited profile.
    pub covered_bytes: u64,
    /// Total hot text bytes.
    pub auditable_bytes: u64,
    /// `addr_unmapped / addr_lookups` — the sample mass silently dropped
    /// on the floor because no mapped block covered the address.
    pub unmapped_rate: f64,
    /// Sample-weighted address resolutions attempted.
    pub addr_lookups: u64,
    /// Of those, how many missed every mapped block.
    pub addr_unmapped: u64,
    /// Address-map functions the mapper skipped outright (no range
    /// symbol resolved).
    pub skipped_funcs: usize,
    /// Weighted fraction of aggregated fall-through ranges that are
    /// well-formed: ordered endpoints, both mapping, same function.
    pub fallthrough_confidence: f64,
    /// `num_samples / expected_samples` (1.0 when expectations are
    /// unknown). A truncated profile halves this exactly.
    pub sample_capture_ratio: f64,
    /// Samples actually present in the profile.
    pub num_samples: u64,
    /// Samples the counters say the run should have produced.
    pub expected_samples: u64,
    /// Stale-profile skew: total-variation distance between the PM
    /// profile's edge distribution and a re-simulated optimized-binary
    /// profile's (0 = behavior unchanged, 1 = disjoint). `None` until
    /// the optimized binary exists.
    pub skew: Option<f64>,
}

/// Audits `profile` against the metadata binary it was collected from,
/// with the profile itself defining what counts as hot text.
///
/// `expected` enables the sample-capture ratio; pass `None` when the
/// `perf stat` counters of the profiled run are unavailable.
pub fn audit_profile(
    binary: &LinkedBinary,
    profile: &HardwareProfile,
    opts: &WpaOptions,
    expected: Option<ExpectedLoad>,
) -> ProfileAudit {
    audit_profile_with_reference(binary, profile, None, opts, expected)
}

/// Audits `profile`, measuring coverage against the hot text implied by
/// `reference` (or by `profile` itself when `None`).
///
/// The split matters when grading a *degraded* collection: auditing a
/// truncated or stale profile against the hot text a trusted earlier
/// profile established reveals exactly which hot bytes the new profile
/// no longer witnesses. Self-referenced, the score instead measures how
/// much of the hot layout is evidence-backed rather than inferred
/// (forced-hot entry blocks that sampling never hit).
pub fn audit_profile_with_reference(
    binary: &LinkedBinary,
    profile: &HardwareProfile,
    reference: Option<&HardwareProfile>,
    opts: &WpaOptions,
    expected: Option<ExpectedLoad>,
) -> ProfileAudit {
    let agg = AggregatedProfile::from_profile(profile);
    let mapper = AddressMapper::from_binary(binary);
    let dcfg = Dcfg::build(&mapper, &agg);
    let ref_dcfg = reference
        .map(|r| Dcfg::build(&mapper, &AggregatedProfile::from_profile(r)));
    let ref_dcfg = ref_dcfg.as_ref().unwrap_or(&dcfg);

    // Coverage: replicate the WPA hot classification (block count at or
    // above `hot_threshold`, entry forced hot, within functions meeting
    // `min_function_samples`) on the reference, then ask how many of
    // those hot text bytes the audited profile actually observed.
    // Uncovered hot bytes are layout decisions made without evidence.
    let min_samples = opts.min_function_samples.max(1);
    let mut covered_bytes = 0u64;
    let mut auditable_bytes = 0u64;
    for fmap in &binary.bb_addr_map.functions {
        let Some(fi) = mapper.func_index(&fmap.func_symbol) else {
            continue;
        };
        let rc = &ref_dcfg.functions[fi as usize];
        if rc.total_count() < min_samples {
            continue;
        }
        let dc = &dcfg.functions[fi as usize];
        for (_, entries) in &fmap.ranges {
            for e in entries {
                let ref_count = rc.block_counts.get(&e.bb_id).copied().unwrap_or(0);
                if e.bb_id != 0 && ref_count < opts.hot_threshold {
                    continue;
                }
                auditable_bytes += e.size as u64;
                if dc.block_counts.get(&e.bb_id).copied().unwrap_or(0) > 0 {
                    covered_bytes += e.size as u64;
                }
            }
        }
    }
    let sample_coverage = if auditable_bytes == 0 {
        1.0
    } else {
        covered_bytes as f64 / auditable_bytes as f64
    };

    let unmapped_rate = if dcfg.addr_lookups == 0 {
        0.0
    } else {
        dcfg.addr_unmapped as f64 / dcfg.addr_lookups as f64
    };

    // Fall-through confidence: an LBR-derived range is trustworthy when
    // its endpoints are ordered, both resolve to mapped blocks, and the
    // run stayed within one function (straight-line execution cannot
    // cross function boundaries). Everything else was inferred from a
    // corrupt or foreign stack and contributes noise to block counts.
    let mut ft_total = 0u64;
    let mut ft_confident = 0u64;
    for (&(lo, hi), &w) in &agg.fallthroughs {
        ft_total += w;
        if hi < lo {
            continue;
        }
        let (Some((lf, _)), Some((hf, _))) = (mapper.lookup_idx(lo), mapper.lookup_idx(hi)) else {
            continue;
        };
        if lf == hf {
            ft_confident += w;
        }
    }
    let fallthrough_confidence = if ft_total == 0 {
        1.0
    } else {
        ft_confident as f64 / ft_total as f64
    };

    let num_samples = profile.samples.len() as u64;
    let expected_samples = expected
        .map(|e| e.taken_branches / e.period.max(1))
        .unwrap_or(0);
    let sample_capture_ratio = if expected_samples == 0 {
        1.0
    } else {
        num_samples as f64 / expected_samples as f64
    };

    ProfileAudit {
        sample_coverage,
        covered_bytes,
        auditable_bytes,
        unmapped_rate,
        addr_lookups: dcfg.addr_lookups,
        addr_unmapped: dcfg.addr_unmapped,
        skipped_funcs: mapper.num_skipped_functions(),
        fallthrough_confidence,
        sample_capture_ratio,
        num_samples,
        expected_samples,
        skew: None,
    }
}

/// The normalized intra-function edge-weight distribution of a profile
/// as seen through a binary's address map, keyed by
/// `(function symbol, src block, dst block)` and ignoring whether the
/// edge was observed as a branch or a fall-through.
///
/// Keying by block id (stable across relink) rather than address makes
/// distributions from *differently laid out* binaries comparable; and
/// edge *kinds* are ignored because the optimized layout deliberately
/// converts taken branches into fall-throughs.
///
/// Weights accumulate as exact integers in a sorted map so the
/// normalization (and thus the skew score) is bit-identical across runs
/// — the regression gate diffs these numbers at zero tolerance.
fn edge_distribution(
    binary: &LinkedBinary,
    agg: &AggregatedProfile,
) -> BTreeMap<(String, u32, u32), f64> {
    let mapper = AddressMapper::from_binary(binary);
    let dcfg = Dcfg::build(&mapper, agg);
    let mut weights: BTreeMap<(String, u32, u32), u64> = BTreeMap::new();
    for (fi, dc) in dcfg.functions.iter().enumerate() {
        let symbol = mapper.func_symbol(fi as u32);
        for (&(src, dst, _kind), &w) in &dc.edges {
            *weights.entry((symbol.to_string(), src, dst)).or_insert(0) += w;
        }
    }
    let total: u64 = weights.values().sum();
    weights
        .into_iter()
        .map(|(k, w)| {
            let p = if total > 0 {
                w as f64 / total as f64
            } else {
                0.0
            };
            (k, p)
        })
        .collect()
}

/// The stale-profile skew score: total-variation distance between the
/// edge distribution of the profile WPA consumed (collected on the
/// metadata binary) and a fresh profile of the optimized binary.
///
/// 0.0 means the program still behaves exactly as profiled; values near
/// 1.0 mean the layout was derived from behavior the binary no longer
/// exhibits (stale profile, workload drift). Both profiles are reduced
/// to `(function, src, dst)` block edges first, so the comparison is
/// invariant to the re-layout itself.
pub fn layout_skew(
    pm_binary: &LinkedBinary,
    pm_profile: &HardwareProfile,
    po_binary: &LinkedBinary,
    po_profile: &HardwareProfile,
) -> f64 {
    layout_skew_agg(
        pm_binary,
        &AggregatedProfile::from_profile(pm_profile),
        po_binary,
        &AggregatedProfile::from_profile(po_profile),
    )
}

/// [`layout_skew`] over already-aggregated profiles.
///
/// The fleet release loop compares the merged stale profile (collected
/// on earlier releases, translated into the current binary's address
/// space) against the fresh distribution of the current release; by the
/// time that comparison happens only aggregated counts exist, so the
/// raw-sample wrapper above cannot be used.
pub fn layout_skew_agg(
    p_binary: &LinkedBinary,
    p_agg: &AggregatedProfile,
    q_binary: &LinkedBinary,
    q_agg: &AggregatedProfile,
) -> f64 {
    let p = edge_distribution(p_binary, p_agg);
    let q = edge_distribution(q_binary, q_agg);
    let mut dist = 0.0;
    for (k, pv) in &p {
        dist += (pv - q.get(k).copied().unwrap_or(0.0)).abs();
    }
    for (k, qv) in &q {
        if !p.contains_key(k) {
            dist += qv;
        }
    }
    dist / 2.0
}

/// Audits a completed pipeline: the Phase 3 profile against the PM
/// binary, with the capture ratio from the profiled run's counters,
/// plus — when Phase 4 ran — the skew score from re-simulating the
/// profiled workload on the optimized binary.
///
/// # Errors
///
/// Fails when Phase 3 has not run, or when the optimized binary's
/// simulator image cannot be constructed.
pub fn audit_pipeline(pipeline: &Propeller) -> Result<ProfileAudit, String> {
    let pm = pipeline.pm_binary().ok_or("phase 2 has not run")?;
    let profile = pipeline.profile().ok_or("phase 3 has not run")?;
    let opts = pipeline.options();
    let expected = pipeline.profiled_counters().map(|c| ExpectedLoad {
        taken_branches: c.taken_branches,
        period: opts.sampling.period,
    });
    let mut audit = audit_profile(pm, profile, &opts.wpa, expected);
    if let (Some(po), Some(program)) = (pipeline.po_binary(), pipeline.phase4_program()) {
        let image =
            ProgramImage::build(program, &po.layout).map_err(|e| e.to_string())?;
        let (po_profile, _) = collect_profile(
            &image,
            &pipeline.workload(opts.profile_budget),
            &opts.uarch,
            opts.sampling,
        );
        audit.skew = Some(layout_skew(pm, profile, po, &po_profile));
    }
    Ok(audit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_codegen::{codegen_module, CodegenOptions};
    use propeller_ir::{BlockId, FunctionBuilder, Inst, ProgramBuilder, Terminator};
    use propeller_linker::{link, LinkInput, LinkOptions};
    use propeller_profile::{LbrRecord, LbrSample};

    /// alpha: bb0 -> {bb1, bb2}; beta: bb0 -> ret.
    fn binary() -> LinkedBinary {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m.cc");
        let mut f = FunctionBuilder::new("alpha");
        f.add_block(
            vec![Inst::Alu; 3],
            Terminator::CondBr {
                taken: BlockId(1),
                fallthrough: BlockId(2),
                prob_taken: 0.5,
            },
        );
        f.add_block(vec![Inst::Load], Terminator::Ret);
        f.add_block(vec![Inst::Load; 4], Terminator::Ret);
        pb.add_function(m, f);
        let mut g = FunctionBuilder::new("beta");
        g.add_block(vec![Inst::Store; 2], Terminator::Ret);
        pb.add_function(m, g);
        let p = pb.finish().unwrap();
        let r = codegen_module(&p.modules()[0], &p, &CodegenOptions::with_labels()).unwrap();
        link(
            &[LinkInput::new(r.object, r.debug_layout)],
            &LinkOptions::default(),
        )
        .unwrap()
    }

    fn block_addr(bin: &LinkedBinary, func: &str, block: u32) -> u64 {
        bin.layout
            .functions
            .iter()
            .find(|f| f.func_symbol == func)
            .unwrap()
            .blocks
            .iter()
            .find(|b| b.block == BlockId(block))
            .unwrap()
            .addr
    }

    fn loose_opts() -> WpaOptions {
        WpaOptions {
            min_function_samples: 1,
            ..WpaOptions::default()
        }
    }

    /// A profile exercising alpha's bb0 -> bb1 edge `n` times.
    fn alpha_profile(bin: &LinkedBinary, n: usize) -> HardwareProfile {
        let b0 = block_addr(bin, "alpha", 0);
        let b1 = block_addr(bin, "alpha", 1);
        let mut prof = HardwareProfile::new("t");
        for _ in 0..n {
            prof.samples.push(LbrSample::new(vec![
                LbrRecord { from: b0 + 2, to: b1 },
                LbrRecord { from: b1 + 1, to: b0 },
            ]));
        }
        prof
    }

    #[test]
    fn self_audit_covers_its_own_hot_text() {
        let bin = binary();
        let prof = alpha_profile(&bin, 4);
        let audit = audit_profile(&bin, &prof, &loose_opts(), None);
        // alpha is hot but bb2 (4 loads) was never sampled, so it is
        // not hot text; beta is wholly cold. Every hot block has the
        // sample that made it hot, so self-coverage is complete.
        assert!(audit.auditable_bytes > 0);
        assert_eq!(audit.covered_bytes, audit.auditable_bytes);
        assert_eq!(audit.sample_coverage, 1.0);
        assert_eq!(audit.unmapped_rate, 0.0);
        assert_eq!(audit.skipped_funcs, 0);
    }

    #[test]
    fn reference_profile_exposes_lost_hot_bytes() {
        let bin = binary();
        let b0 = block_addr(&bin, "alpha", 0);
        let b2 = block_addr(&bin, "alpha", 2);
        // The reference run saw both sides of alpha's branch...
        let mut reference = alpha_profile(&bin, 4);
        for _ in 0..4 {
            reference.samples.push(LbrSample::new(vec![
                LbrRecord { from: b0 + 2, to: b2 },
                LbrRecord { from: b2 + 3, to: b0 },
            ]));
        }
        // ...but the audited (degraded) collection only witnessed bb1.
        let degraded = alpha_profile(&bin, 4);
        let full = audit_profile_with_reference(
            &bin,
            &reference,
            Some(&reference),
            &loose_opts(),
            None,
        );
        assert_eq!(full.sample_coverage, 1.0);
        let audit = audit_profile_with_reference(
            &bin,
            &degraded,
            Some(&reference),
            &loose_opts(),
            None,
        );
        assert!(audit.auditable_bytes > audit.covered_bytes);
        assert!(
            audit.sample_coverage > 0.0 && audit.sample_coverage < 1.0,
            "bb2 is reference-hot but unsampled, got {}",
            audit.sample_coverage
        );
        assert!(
            (audit.sample_coverage
                - audit.covered_bytes as f64 / audit.auditable_bytes as f64)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn cold_program_is_vacuously_covered() {
        let bin = binary();
        let audit = audit_profile(&bin, &HardwareProfile::new("t"), &loose_opts(), None);
        assert_eq!(audit.auditable_bytes, 0);
        assert_eq!(audit.sample_coverage, 1.0);
        assert_eq!(audit.addr_lookups, 0);
    }

    #[test]
    fn bogus_addresses_raise_the_unmapped_rate() {
        let bin = binary();
        let mut prof = alpha_profile(&bin, 2);
        for _ in 0..6 {
            prof.samples.push(LbrSample::new(vec![LbrRecord {
                from: 0xdead_0000,
                to: 0xbeef_0000,
            }]));
        }
        let audit = audit_profile(&bin, &prof, &loose_opts(), None);
        assert!(audit.addr_unmapped > 0);
        assert!(audit.unmapped_rate > 0.0 && audit.unmapped_rate < 1.0);
        assert_eq!(
            audit.unmapped_rate,
            audit.addr_unmapped as f64 / audit.addr_lookups as f64
        );
    }

    #[test]
    fn capture_ratio_halves_when_half_the_samples_drop() {
        let bin = binary();
        let full = alpha_profile(&bin, 10);
        let expected = Some(ExpectedLoad {
            taken_branches: 100,
            period: 10,
        });
        let a = audit_profile(&bin, &full, &loose_opts(), expected);
        assert_eq!(a.expected_samples, 10);
        assert!((a.sample_capture_ratio - 1.0).abs() < 1e-12);
        let mut truncated = full.clone();
        truncated.samples.truncate(5);
        let b = audit_profile(&bin, &truncated, &loose_opts(), expected);
        assert!((b.sample_capture_ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fallthrough_confidence_penalizes_malformed_ranges() {
        let bin = binary();
        let b0 = block_addr(&bin, "alpha", 0);
        let b1 = block_addr(&bin, "alpha", 1);
        let mut prof = HardwareProfile::new("t");
        // Well-formed: lands at bb0, runs to bb1, within alpha.
        prof.samples.push(LbrSample::new(vec![
            LbrRecord { from: b1 + 100, to: b0 },
            LbrRecord { from: b1, to: b0 },
        ]));
        // Malformed: inverted range (hi < lo).
        prof.samples.push(LbrSample::new(vec![
            LbrRecord { from: b0, to: b1 },
            LbrRecord { from: b0, to: b1 },
        ]));
        let audit = audit_profile(&bin, &prof, &loose_opts(), None);
        assert!((audit.fallthrough_confidence - 0.5).abs() < 1e-12);
    }

    #[test]
    fn skew_is_zero_for_identical_behavior_and_positive_for_drift() {
        let bin = binary();
        let prof = alpha_profile(&bin, 8);
        assert_eq!(layout_skew(&bin, &prof, &bin, &prof), 0.0);
        // Drifted behavior: the same binary, but execution now goes
        // bb0 -> bb2 instead of bb0 -> bb1.
        let b0 = block_addr(&bin, "alpha", 0);
        let b2 = block_addr(&bin, "alpha", 2);
        let mut drifted = HardwareProfile::new("t");
        for _ in 0..8 {
            drifted.samples.push(LbrSample::new(vec![
                LbrRecord { from: b0 + 2, to: b2 },
                LbrRecord { from: b2 + 1, to: b0 },
            ]));
        }
        let skew = layout_skew(&bin, &prof, &bin, &drifted);
        assert!(skew > 0.5, "disjoint edge sets should skew hard, got {skew}");
        assert!(skew <= 1.0);
    }
}
