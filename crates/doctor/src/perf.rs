//! `perf report` / `perf annotate` over the simulator's symbol
//! attribution.
//!
//! [`AttributionSection`] is the serializable top-N slice of an
//! [`AttributedCounters`] table that [`crate::RunReport`] embeds (and
//! [`crate::diff_reports`] gates per-symbol). [`render_perf_report`]
//! prints the differential baseline/Propeller/BOLT top-N table, and
//! [`render_annotate`] walks one function's laid-out blocks with
//! per-block events joined against the Ext-TSP layout provenance, so a
//! regressed symbol links straight to the layout decision that moved
//! it.

use propeller_sim::{AttributedCounters, CounterSet, Event, SymbolAttribution};
use propeller_telemetry::JsonValue;
use propeller_wpa::FunctionProvenance;
use std::fmt::Write as _;

/// One symbol's counters, detached from the block detail — the
/// report-embeddable row.
#[derive(Clone, PartialEq, Debug)]
pub struct SymbolCounters {
    /// Symbol name.
    pub symbol: String,
    /// Attributed events.
    pub counters: CounterSet,
}

/// The top-N attributed rows a [`crate::RunReport`] embeds. Rows are
/// ordered by attributed cycles descending (ties by name), so two
/// reports of the same run serialize identically.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct AttributionSection {
    /// Per-symbol rows, hottest first.
    pub symbols: Vec<SymbolCounters>,
}

impl AttributionSection {
    /// Extracts the `top_n` hottest symbols (by cycles) from a full
    /// attribution table.
    pub fn from_attribution(attr: &AttributedCounters, top_n: usize) -> AttributionSection {
        AttributionSection {
            symbols: attr
                .top_by(Event::Cycles, top_n)
                .into_iter()
                .map(|i| SymbolCounters {
                    symbol: attr.symbols[i].name.clone(),
                    counters: attr.symbols[i].total,
                })
                .collect(),
        }
    }

    /// True when no rows are present (attribution was off or nothing
    /// was hot).
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The row for `symbol`, if present.
    pub fn get(&self, symbol: &str) -> Option<&SymbolCounters> {
        self.symbols.iter().find(|s| s.symbol == symbol)
    }

    /// Serializes as a JSON array of per-symbol objects.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Arr(
            self.symbols
                .iter()
                .map(|s| {
                    let mut members =
                        vec![("symbol".to_string(), JsonValue::Str(s.symbol.clone()))];
                    for e in Event::ALL {
                        members.push((e.name().to_string(), JsonValue::Num(e.get(&s.counters) as f64)));
                    }
                    JsonValue::Obj(members)
                })
                .collect(),
        )
    }

    /// Reconstructs [`AttributionSection::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed row.
    pub fn from_json(v: &JsonValue) -> Result<AttributionSection, String> {
        let rows = v.as_arr().ok_or("`attribution` is not an array")?;
        let mut symbols = Vec::with_capacity(rows.len());
        for row in rows {
            let symbol = row
                .get("symbol")
                .and_then(JsonValue::as_str)
                .ok_or("attribution row missing `symbol`")?
                .to_string();
            let mut counters = CounterSet::default();
            for e in Event::ALL {
                let val = row
                    .get(e.name())
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("attribution row `{symbol}` missing `{}`", e.name()))?;
                // Round-trip through the event accessor pair keeps this
                // in lockstep with CounterSet's field set.
                set_event(&mut counters, e, val);
            }
            symbols.push(SymbolCounters { symbol, counters });
        }
        Ok(AttributionSection { symbols })
    }
}

fn set_event(c: &mut CounterSet, e: Event, v: u64) {
    match e {
        Event::Cycles => c.cycles = v,
        Event::Insts => c.insts = v,
        Event::Blocks => c.blocks = v,
        Event::TakenBranches => c.taken_branches = v,
        Event::Fallthroughs => c.fallthroughs = v,
        Event::L1iMisses => c.l1i_misses = v,
        Event::L2CodeMisses => c.l2_code_misses = v,
        Event::L3CodeMisses => c.l3_code_misses = v,
        Event::ItlbMisses => c.itlb_misses = v,
        Event::StlbWalks => c.stlb_walks = v,
        Event::Baclears => c.baclears = v,
        Event::DsbMisses => c.dsb_misses = v,
        Event::Prefetches => c.prefetches = v,
    }
}

fn pct(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        part as f64 * 100.0 / total as f64
    }
}

fn delta_pct(base: u64, other: u64) -> f64 {
    if base == 0 {
        if other == 0 {
            0.0
        } else {
            100.0
        }
    } else {
        (other as f64 - base as f64) / base as f64 * 100.0
    }
}

/// Renders the differential `perf report` table for one event: the
/// `top_n` hottest symbols of the *baseline* attribution, one column
/// per variant with the per-symbol delta against baseline. The union
/// of symbols that are top-N in any non-baseline variant but not in
/// the baseline's top-N is appended, so a symbol a variant made hot
/// still shows up. A totals row closes the table; its deltas are the
/// aggregate (whole-program) movements, so per-symbol deltas can be
/// read against them.
pub fn render_perf_report(
    event: Event,
    top_n: usize,
    baseline: (&str, &AttributedCounters),
    variants: &[(&str, &AttributedCounters)],
) -> String {
    let (base_name, base) = baseline;
    let base_total = event.get(&base.totals());

    // Baseline top-N first, then symbols only the variants made hot.
    let mut rows: Vec<String> = base
        .top_by(event, top_n)
        .into_iter()
        .map(|i| base.symbols[i].name.clone())
        .collect();
    for (_, attr) in variants {
        for i in attr.top_by(event, top_n) {
            let name = &attr.symbols[i].name;
            if !rows.iter().any(|r| r == name) {
                rows.push(name.clone());
            }
        }
    }

    let val = |attr: &AttributedCounters, sym: &str| -> u64 {
        attr.symbol(sym).map_or(0, |s| event.get(&s.total))
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# event: {} · top {} symbols by {}",
        event.name(),
        top_n,
        base_name
    );
    let _ = write!(out, "{:<24} {:>14} {:>8}", "symbol", base_name, "%");
    for (name, _) in variants {
        let _ = write!(out, " {:>14} {:>9}", name, "Δ%");
    }
    out.push('\n');
    for sym in &rows {
        let bv = val(base, sym);
        let _ = write!(out, "{:<24} {:>14} {:>7.2}%", sym, bv, pct(bv, base_total));
        for (_, attr) in variants {
            let ov = val(attr, sym);
            let _ = write!(out, " {:>14} {:>+8.2}%", ov, delta_pct(bv, ov));
        }
        out.push('\n');
    }
    let _ = write!(
        out,
        "{:<24} {:>14} {:>7.2}%",
        "TOTAL", base_total, 100.0
    );
    for (_, attr) in variants {
        let ot = event.get(&attr.totals());
        let _ = write!(out, " {:>14} {:>+8.2}%", ot, delta_pct(base_total, ot));
    }
    out.push('\n');
    out
}

/// The cluster of `prov` that contains block `bi`, as `(cluster index,
/// cluster symbol, cold)`.
fn cluster_of(prov: &FunctionProvenance, bi: u32) -> Option<(usize, &str, bool)> {
    prov.clusters
        .iter()
        .enumerate()
        .find(|(_, c)| c.blocks.contains(&bi))
        .map(|(i, c)| (i, c.symbol.as_str(), c.cold))
}

/// Renders the `perf annotate` view of one function: its blocks in
/// laid-out (final address) order, each with its attributed events and
/// — when layout provenance is available — the Ext-TSP cluster that
/// placed it, so an event spike points at the layout decision behind
/// it.
pub fn render_annotate(
    sym: &SymbolAttribution,
    event: Event,
    prov: Option<&FunctionProvenance>,
) -> String {
    let mut out = String::new();
    let total = event.get(&sym.total);
    let _ = writeln!(
        out,
        "{} · {} {} · {} cycles · ipc {:.2}",
        sym.name,
        total,
        event.name(),
        sym.total.cycles,
        sym.total.ipc()
    );
    if let Some(p) = prov {
        let _ = writeln!(
            out,
            "  ext-tsp: {} clusters, score {:.1} (input order {:.1}){}, {} merge steps",
            p.clusters.len(),
            p.layout_score,
            p.input_score,
            if p.used_input_order {
                ", kept input order"
            } else {
                ""
            },
            p.merge_gains.len()
        );
    }
    let _ = writeln!(
        out,
        "  {:>12} {:>6} {:>10} {:>10} {:>8} {:>8} {:>8}  cluster",
        "addr", "block", event.name(), "cycles", "l1i", "itlb", "baclears"
    );
    // Laid-out order: the final addresses the linker assigned.
    let mut order: Vec<usize> = (0..sym.blocks.len()).collect();
    order.sort_by_key(|&i| sym.blocks[i].addr);
    for bi in order {
        let b = &sym.blocks[bi];
        let cluster = prov
            .and_then(|p| cluster_of(p, bi as u32))
            .map(|(i, s, cold)| {
                format!("#{i} {s}{}", if cold { " [cold]" } else { "" })
            })
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "  {:>#12x} {:>6} {:>10} {:>10} {:>8} {:>8} {:>8}  {}",
            b.addr,
            bi,
            event.get(&b.counters),
            b.counters.cycles,
            b.counters.l1i_misses,
            b.counters.itlb_misses,
            b.counters.baclears,
            cluster
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_sim::BlockAttribution;
    use propeller_wpa::ClusterProvenance;

    fn attr(rows: &[(&str, u64, u64)]) -> AttributedCounters {
        AttributedCounters {
            symbols: rows
                .iter()
                .map(|&(name, cycles, l1i)| SymbolAttribution {
                    name: name.into(),
                    total: CounterSet {
                        cycles,
                        insts: cycles / 2,
                        l1i_misses: l1i,
                        ..CounterSet::default()
                    },
                    blocks: vec![],
                })
                .collect(),
        }
    }

    #[test]
    fn section_takes_hottest_by_cycles() {
        let a = attr(&[("cold", 0, 0), ("warm", 50, 1), ("hot", 500, 9)]);
        let s = AttributionSection::from_attribution(&a, 2);
        assert_eq!(s.symbols.len(), 2);
        assert_eq!(s.symbols[0].symbol, "hot");
        assert_eq!(s.symbols[1].symbol, "warm");
        assert!(s.get("hot").is_some());
        assert!(s.get("cold").is_none());
    }

    #[test]
    fn section_json_round_trips() {
        let s = AttributionSection::from_attribution(
            &attr(&[("a", 100, 3), ("b", 40, 1)]),
            10,
        );
        let back = AttributionSection::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn section_json_rejects_malformed_rows() {
        assert!(AttributionSection::from_json(&JsonValue::Num(3.0)).is_err());
        let missing = JsonValue::Arr(vec![JsonValue::Obj(vec![(
            "symbol".into(),
            JsonValue::Str("x".into()),
        )])]);
        assert!(AttributionSection::from_json(&missing).is_err());
    }

    #[test]
    fn perf_report_ranks_by_baseline_and_shows_deltas() {
        let base = attr(&[("alpha", 1000, 50), ("beta", 400, 10)]);
        let prop = attr(&[("alpha", 600, 20), ("beta", 380, 9)]);
        let table = render_perf_report(
            Event::Cycles,
            5,
            ("baseline", &base),
            &[("propeller", &prop)],
        );
        let lines: Vec<&str> = table.lines().collect();
        // header comment + column header + alpha + beta + TOTAL
        assert_eq!(lines.len(), 5);
        assert!(lines[2].starts_with("alpha"));
        assert!(lines[2].contains("-40.00%"));
        assert!(lines[3].starts_with("beta"));
        assert!(lines[4].starts_with("TOTAL"));
        assert!(lines[4].contains("1400"));
    }

    #[test]
    fn perf_report_appends_variant_only_symbols() {
        let base = attr(&[("alpha", 1000, 0)]);
        let bolt = attr(&[("gamma", 700, 0)]);
        let table =
            render_perf_report(Event::Cycles, 3, ("baseline", &base), &[("bolt", &bolt)]);
        assert!(table.contains("gamma"));
    }

    #[test]
    fn annotate_walks_address_order_with_clusters() {
        let sym = SymbolAttribution {
            name: "hot_a".into(),
            total: CounterSet {
                cycles: 30,
                insts: 12,
                l1i_misses: 4,
                ..CounterSet::default()
            },
            blocks: vec![
                BlockAttribution {
                    addr: 0x1040, // block 0 laid out AFTER block 1
                    size: 16,
                    counters: CounterSet {
                        cycles: 10,
                        l1i_misses: 1,
                        ..CounterSet::default()
                    },
                },
                BlockAttribution {
                    addr: 0x1000,
                    size: 32,
                    counters: CounterSet {
                        cycles: 20,
                        l1i_misses: 3,
                        ..CounterSet::default()
                    },
                },
            ],
        };
        let prov = FunctionProvenance {
            func_symbol: "hot_a".into(),
            total_samples: 99,
            hot_blocks: 1,
            cold_blocks: 1,
            merge_gains: vec![4.0],
            layout_score: 10.0,
            input_score: 8.0,
            used_input_order: false,
            clusters: vec![
                ClusterProvenance {
                    symbol: "hot_a".into(),
                    blocks: vec![1],
                    weight: 99,
                    size: 32,
                    cold: false,
                    symbol_order_pos: Some(0),
                },
                ClusterProvenance {
                    symbol: "hot_a.cold".into(),
                    blocks: vec![0],
                    weight: 0,
                    size: 16,
                    cold: true,
                    symbol_order_pos: None,
                },
            ],
        };
        let view = render_annotate(&sym, Event::L1iMisses, Some(&prov));
        let lines: Vec<&str> = view.lines().collect();
        assert!(lines[0].contains("hot_a"));
        assert!(lines[1].contains("ext-tsp"));
        // Address order: 0x1000 (block 1) before 0x1040 (block 0).
        let b1 = lines.iter().position(|l| l.contains("0x1000")).unwrap();
        let b0 = lines.iter().position(|l| l.contains("0x1040")).unwrap();
        assert!(b1 < b0);
        assert!(lines[b1].contains("#0 hot_a"));
        assert!(lines[b0].contains("[cold]"));
    }

    #[test]
    fn annotate_without_provenance_still_renders() {
        let sym = SymbolAttribution {
            name: "plain".into(),
            total: CounterSet::default(),
            blocks: vec![],
        };
        let view = render_annotate(&sym, Event::Cycles, None);
        assert!(view.contains("plain"));
        assert!(!view.contains("ext-tsp"));
    }
}
