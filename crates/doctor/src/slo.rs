//! Declarative service-level objectives over the modeled-clock
//! timeline and the service ledger.
//!
//! An [`SloObjective`] names a metric (`p99_latency_ms`,
//! `queue_depth_max`, `rejection_rate`, …), a tenant scope (`"*"`
//! expands over every ledger tenant), and explicit WARN/FAIL bounds in
//! whichever direction is bad for that metric. [`evaluate_slo`] grades
//! every objective against a [`TimeSeries`] recorded on the modeled
//! clock plus the run's [`ServiceLedger`], producing the same
//! [`Finding`] vocabulary the rest of the doctor speaks — so `worst()`
//! and `render()` compose, and `propeller_cli slo` can exit nonzero on
//! FAIL as a CI gate.
//!
//! Latency objectives with a `window_secs`/`target` pair additionally
//! compute an **error-budget burn rate** over sliding modeled-time
//! windows: within each window, `bad` is the fraction of latency
//! events above the objective's `max_warn` bound, and
//! `burn = bad / (1 - target)`. A burn of 1.0 means the error budget
//! is being consumed exactly as fast as the target allows; sustained
//! burns above 1 exhaust it early. The reported value is the *maximum*
//! burn across windows — WARN above 1, FAIL above 10 (a fast burn that
//! would torch the budget in a tenth of the period).
//!
//! Everything is total: a missing series, an empty histogram or a
//! zero-traffic tenant yields an OK "no data" finding, never a panic —
//! the SLO report under a chaos plan must degrade as gracefully as the
//! service it watches.

use crate::doctor::{worst, Finding, Severity};
use propeller_faults::{ServiceLedger, TenantLedger};
use propeller_telemetry::{JsonValue, TimeSeries};
use std::fmt;
use std::fmt::Write as _;

/// Burn rates above this WARN: the error budget is being consumed
/// faster than the target allows.
const BURN_WARN: f64 = 1.0;
/// Burn rates above this FAIL: the budget would be gone in a tenth of
/// the evaluation period.
const BURN_FAIL: f64 = 10.0;

/// One declarative objective.
#[derive(Clone, PartialEq, Debug)]
pub struct SloObjective {
    /// Display name (`name = "p99 latency"`). Defaults to the metric.
    pub name: String,
    /// Metric key: `p50_latency_ms`, `p95_latency_ms`,
    /// `p99_latency_ms`, `queue_depth_max`, `rejection_rate`,
    /// `deadline_timeout_rate` or `cache_hit_rate`.
    pub metric: String,
    /// Tenant scope: `"*"` expands over every ledger tenant, `"t2"`
    /// pins one.
    pub tenant: String,
    /// Values above this WARN (high-is-bad metrics).
    pub max_warn: Option<f64>,
    /// Values above this FAIL.
    pub max_fail: Option<f64>,
    /// Values below this WARN (low-is-bad metrics, e.g. cache hit
    /// rate).
    pub min_warn: Option<f64>,
    /// Values below this FAIL.
    pub min_fail: Option<f64>,
    /// Sliding burn-rate window in modeled seconds (latency metrics
    /// only; requires `target` and `max_warn`).
    pub window_secs: Option<f64>,
    /// The SLO target as a good-event fraction in `[0, 1)`, e.g.
    /// `0.99` for "99% of jobs publish under `max_warn` ms".
    pub target: Option<f64>,
}

impl SloObjective {
    fn named(metric: &str, tenant: &str) -> SloObjective {
        SloObjective {
            name: metric.to_string(),
            metric: metric.to_string(),
            tenant: tenant.to_string(),
            max_warn: None,
            max_fail: None,
            min_warn: None,
            min_fail: None,
            window_secs: None,
            target: None,
        }
    }
}

/// A parsed SLO configuration: the objectives, in file order.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SloConfig {
    /// Objectives, evaluated in order.
    pub objectives: Vec<SloObjective>,
}

/// A parse failure with the 1-indexed line it happened on.
#[derive(Clone, PartialEq, Debug)]
pub struct SloParseError {
    /// 1-indexed line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SloParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slo config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SloParseError {}

impl SloConfig {
    /// The built-in service objectives used when no `--config` is
    /// given: generous latency/queue bounds that a healthy clean run
    /// clears, plus rate objectives that only trip under real
    /// pressure.
    pub fn default_service() -> SloConfig {
        let mut p99 = SloObjective::named("p99_latency_ms", "*");
        p99.max_warn = Some(600_000.0);
        p99.max_fail = Some(3_600_000.0);
        p99.window_secs = Some(120.0);
        p99.target = Some(0.99);
        let mut depth = SloObjective::named("queue_depth_max", "*");
        depth.max_warn = Some(64.0);
        depth.max_fail = Some(1024.0);
        let mut rej = SloObjective::named("rejection_rate", "*");
        rej.max_warn = Some(0.05);
        rej.max_fail = Some(0.5);
        let mut dead = SloObjective::named("deadline_timeout_rate", "*");
        dead.max_warn = Some(0.01);
        dead.max_fail = Some(0.25);
        let mut hit = SloObjective::named("cache_hit_rate", "*");
        hit.min_warn = Some(0.10);
        SloConfig { objectives: vec![p99, depth, rej, dead, hit] }
    }

    /// Parse the TOML subset the `slo` subcommand accepts:
    /// `[[objective]]` section headers, `key = value` pairs (quoted
    /// strings or bare numbers), and full-line or trailing `#`
    /// comments. No external TOML crate — the grammar is small enough
    /// to hand-roll and the error messages carry line numbers.
    pub fn parse(text: &str) -> Result<SloConfig, SloParseError> {
        let mut objectives: Vec<SloObjective> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let err = |message: String| SloParseError { line: lineno, message };
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[objective]]" {
                objectives.push(SloObjective::named("", "*"));
                continue;
            }
            if line.starts_with('[') {
                return Err(err(format!(
                    "unknown section {line:?}; only [[objective]] is supported"
                )));
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(format!("expected `key = value`, got {line:?}")));
            };
            let Some(obj) = objectives.last_mut() else {
                return Err(err(format!(
                    "`{}` appears before the first [[objective]] header",
                    key.trim()
                )));
            };
            let key = key.trim();
            let value = value.trim();
            let as_str = |value: &str| -> Result<String, SloParseError> {
                if let Some(rest) = value.strip_prefix('"') {
                    let Some(end) = rest.find('"') else {
                        return Err(err(format!("unterminated string {value:?}")));
                    };
                    return Ok(rest[..end].to_string());
                }
                Ok(value.split('#').next().unwrap_or("").trim().to_string())
            };
            let as_num = |value: &str| -> Result<f64, SloParseError> {
                let v = value.split('#').next().unwrap_or("").trim();
                v.parse::<f64>()
                    .map_err(|_| err(format!("`{key}` expects a number, got {v:?}")))
            };
            match key {
                "name" => obj.name = as_str(value)?,
                "metric" => {
                    let m = as_str(value)?;
                    if !KNOWN_METRICS.contains(&m.as_str()) {
                        return Err(err(format!(
                            "unknown metric {m:?}; known: {}",
                            KNOWN_METRICS.join(", ")
                        )));
                    }
                    if obj.name.is_empty() {
                        obj.name = m.clone();
                    }
                    obj.metric = m;
                }
                "tenant" => obj.tenant = as_str(value)?,
                "max_warn" => obj.max_warn = Some(as_num(value)?),
                "max_fail" => obj.max_fail = Some(as_num(value)?),
                "min_warn" => obj.min_warn = Some(as_num(value)?),
                "min_fail" => obj.min_fail = Some(as_num(value)?),
                "window_secs" => obj.window_secs = Some(as_num(value)?),
                "target" => obj.target = Some(as_num(value)?),
                other => return Err(err(format!("unknown key {other:?}"))),
            }
        }
        for (i, obj) in objectives.iter().enumerate() {
            if obj.metric.is_empty() {
                return Err(SloParseError {
                    line: 0,
                    message: format!("objective #{} has no `metric`", i + 1),
                });
            }
        }
        Ok(SloConfig { objectives })
    }
}

/// Metric keys [`SloConfig::parse`] accepts.
pub const KNOWN_METRICS: &[&str] = &[
    "p50_latency_ms",
    "p95_latency_ms",
    "p99_latency_ms",
    "queue_depth_max",
    "rejection_rate",
    "deadline_timeout_rate",
    "cache_hit_rate",
];

/// The evaluated report: findings in objective order (burn findings
/// directly after their parent objective).
#[derive(Clone, PartialEq, Debug)]
pub struct SloReport {
    /// All findings, in evaluation order.
    pub findings: Vec<Finding>,
}

impl SloReport {
    /// Worst severity across the report.
    pub fn verdict(&self) -> Severity {
        worst(&self.findings)
    }

    /// Human-readable report, `propeller_cli slo` output.
    pub fn render(&self) -> String {
        let mut out = String::from("service-level objectives\n");
        for f in &self.findings {
            let _ = writeln!(
                out,
                "  [{}] {:<40} {:>12.4}  {}",
                f.severity.label(),
                f.metric,
                f.value,
                f.message
            );
        }
        let _ = writeln!(
            out,
            "verdict: {}",
            match self.verdict() {
                Severity::Ok => "all objectives met",
                Severity::Warn => "error budget under pressure (see WARN lines)",
                Severity::Fail => "objectives violated (see FAIL lines)",
            }
        );
        out
    }

    /// Machine-readable JSON with a fixed member order (deterministic
    /// bytes — the slo-gate `cmp`s this across `--jobs` counts).
    pub fn to_json_string(&self) -> String {
        JsonValue::Obj(vec![
            (
                "verdict".into(),
                JsonValue::Str(self.verdict().label().trim().to_string()),
            ),
            (
                "findings".into(),
                JsonValue::Arr(
                    self.findings
                        .iter()
                        .map(|f| {
                            JsonValue::Obj(vec![
                                (
                                    "severity".into(),
                                    JsonValue::Str(f.severity.label().trim().to_string()),
                                ),
                                ("metric".into(), JsonValue::Str(f.metric.clone())),
                                ("value".into(), JsonValue::Num(f.value)),
                                ("message".into(), JsonValue::Str(f.message.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_string_pretty()
    }
}

/// Grade `v` against the objective's explicit bounds (worst of the
/// high-is-bad and low-is-bad directions; objectives normally set only
/// one).
fn grade(v: f64, obj: &SloObjective) -> Severity {
    let mut s = Severity::Ok;
    if obj.max_fail.is_some_and(|f| v > f) || obj.min_fail.is_some_and(|f| v < f) {
        return Severity::Fail;
    }
    if obj.max_warn.is_some_and(|w| v > w) || obj.min_warn.is_some_and(|w| v < w) {
        s = Severity::Warn;
    }
    s
}

/// The tenants an objective's scope selects, in ledger (sorted) order.
fn scope<'a>(ledger: &'a ServiceLedger, obj: &SloObjective) -> Vec<(&'a String, &'a TenantLedger)> {
    ledger
        .tenants
        .iter()
        .filter(|(name, _)| obj.tenant == "*" || **name == obj.tenant)
        .collect()
}

/// Read the objective's value for one tenant, or `None` when there is
/// no data (no series recorded, empty histogram, zero denominator).
fn metric_value(
    timeline: &TimeSeries,
    row: &TenantLedger,
    tenant: &str,
    metric: &str,
) -> Option<f64> {
    let q = |q: f64| {
        timeline
            .histogram(&format!("latency_ms.{tenant}"))
            .and_then(|h| h.quantile(q))
    };
    let ratio = |num: u64, den: u64| (den > 0).then(|| num as f64 / den as f64);
    match metric {
        "p50_latency_ms" => q(0.50),
        "p95_latency_ms" => q(0.95),
        "p99_latency_ms" => q(0.99),
        "queue_depth_max" => timeline
            .get(&format!("queue_depth.{tenant}"))
            .and_then(|s| s.max_value()),
        "rejection_rate" => ratio(row.rejected_memory + row.rejected_queue, row.arrivals()),
        "deadline_timeout_rate" => ratio(row.deadline_timeouts, row.arrivals()),
        "cache_hit_rate" => ratio(row.cache_hits, row.cache_lookups),
        _ => None,
    }
}

/// Maximum error-budget burn rate over half-overlapping sliding
/// windows of `window_secs` modeled seconds. `None` when the series
/// recorded no events.
fn max_burn(
    timeline: &TimeSeries,
    tenant: &str,
    threshold: f64,
    window_secs: f64,
    target: f64,
) -> Option<f64> {
    let series = timeline.get(&format!("latency_ms.{tenant}"))?;
    let end = series.end_us()?;
    let window_us = ((window_secs.max(1e-6)) * 1e6) as u64;
    let step = (window_us / 2).max(1);
    let budget = (1.0 - target).max(1e-9);
    let mut worst: Option<f64> = None;
    let mut start = 0u64;
    loop {
        let points = series.window(start, start.saturating_add(window_us));
        if !points.is_empty() {
            let bad = points.iter().filter(|p| p.value > threshold).count() as f64;
            let burn = (bad / points.len() as f64) / budget;
            worst = Some(worst.map_or(burn, |w: f64| w.max(burn)));
        }
        if start >= end {
            break;
        }
        start = start.saturating_add(step);
    }
    worst
}

/// Evaluate every objective in `cfg` against the recorded timeline and
/// the run's ledger. Total on any input: missing series and
/// zero-traffic tenants produce OK "no data" findings, never panics —
/// chaos runs must still get a report.
pub fn evaluate_slo(timeline: &TimeSeries, ledger: &ServiceLedger, cfg: &SloConfig) -> SloReport {
    let mut findings = Vec::new();
    for obj in &cfg.objectives {
        let selected = scope(ledger, obj);
        if selected.is_empty() {
            findings.push(Finding {
                severity: Severity::Ok,
                metric: format!("slo.{}.{}", obj.tenant, obj.metric),
                value: 0.0,
                message: format!(
                    "objective {:?}: no tenant matches scope {:?}",
                    obj.name, obj.tenant
                ),
            });
            continue;
        }
        for (tenant, row) in selected {
            let key = format!("slo.{tenant}.{}", obj.metric);
            match metric_value(timeline, row, tenant, &obj.metric) {
                Some(v) => {
                    findings.push(Finding {
                        severity: grade(v, obj),
                        metric: key,
                        value: v,
                        message: objective_message(obj, tenant, v),
                    });
                    if let (Some(window), Some(target), Some(threshold)) =
                        (obj.window_secs, obj.target, obj.max_warn)
                    {
                        if obj.metric.ends_with("_latency_ms") {
                            if let Some(burn) =
                                max_burn(timeline, tenant, threshold, window, target)
                            {
                                findings.push(Finding {
                                    severity: if burn > BURN_FAIL {
                                        Severity::Fail
                                    } else if burn > BURN_WARN {
                                        Severity::Warn
                                    } else {
                                        Severity::Ok
                                    },
                                    metric: format!("slo.{tenant}.{}.burn", obj.metric),
                                    value: burn,
                                    message: format!(
                                        "tenant {tenant}: worst {window:.0}s window burned the \
                                         {:.2}% error budget at {burn:.2}x (jobs over \
                                         {threshold:.0} ms vs target {target})",
                                        (1.0 - target) * 100.0
                                    ),
                                });
                            }
                        }
                    }
                }
                None => findings.push(Finding {
                    severity: Severity::Ok,
                    metric: key,
                    value: 0.0,
                    message: format!(
                        "tenant {tenant}: no data for {} (no traffic or timeline not armed)",
                        obj.metric
                    ),
                }),
            }
        }
    }
    if findings.is_empty() {
        findings.push(Finding {
            severity: Severity::Ok,
            metric: "slo.none".into(),
            value: 0.0,
            message: "no objectives configured".into(),
        });
    }
    SloReport { findings }
}

fn objective_message(obj: &SloObjective, tenant: &str, v: f64) -> String {
    let bound = match (obj.max_warn, obj.min_warn) {
        (Some(w), _) => format!("warn above {w}"),
        (None, Some(w)) => format!("warn below {w}"),
        (None, None) => "no bounds".to_string(),
    };
    format!("tenant {tenant}: {} = {v:.4} ({bound})", obj.metric)
}

/// The timeline determinism gate: diff two timelines that must
/// describe the same traffic (`--jobs 1` vs `--jobs 8`, or a replay).
/// Any divergence — a series present on one side, a differing point —
/// is a FAIL finding; identical timelines produce a single OK.
pub fn diff_timeseries(a: &TimeSeries, b: &TimeSeries) -> Vec<Finding> {
    let mut out = Vec::new();
    let names: std::collections::BTreeSet<&str> =
        a.names().into_iter().chain(b.names()).collect();
    for name in names {
        match (a.get(name), b.get(name)) {
            (Some(sa), Some(sb)) => {
                let (pa, pb) = (sa.ordered(), sb.ordered());
                if pa.len() != pb.len() {
                    out.push(Finding {
                        severity: Severity::Fail,
                        metric: format!("timeline.diff.{name}"),
                        value: pb.len() as f64 - pa.len() as f64,
                        message: format!(
                            "series {name}: {} vs {} points — recording is not jobs-invariant",
                            pa.len(),
                            pb.len()
                        ),
                    });
                    continue;
                }
                if let Some((x, y)) = pa
                    .iter()
                    .zip(&pb)
                    .find(|(x, y)| x.t_us != y.t_us || x.value.to_bits() != y.value.to_bits())
                {
                    out.push(Finding {
                        severity: Severity::Fail,
                        metric: format!("timeline.diff.{name}"),
                        value: y.value - x.value,
                        message: format!(
                            "series {name} diverged: ({} µs, {}) vs ({} µs, {})",
                            x.t_us, x.value, y.t_us, y.value
                        ),
                    });
                }
            }
            _ => out.push(Finding {
                severity: Severity::Fail,
                metric: format!("timeline.diff.{name}"),
                value: 0.0,
                message: format!("series {name} present in only one timeline"),
            }),
        }
    }
    if out.is_empty() {
        out.push(Finding {
            severity: Severity::Ok,
            metric: "timeline.diff.none".into(),
            value: 0.0,
            message: "timelines are identical point-for-point".into(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger_with(rows: &[(&str, TenantLedger)]) -> ServiceLedger {
        let mut ledger = ServiceLedger {
            benchmark: "clang".into(),
            seed: 7,
            ..ServiceLedger::default()
        };
        for (name, row) in rows {
            ledger.tenants.insert((*name).to_string(), row.clone());
        }
        ledger
    }

    fn busy_row() -> TenantLedger {
        TenantLedger {
            submitted: 10,
            admitted: 9,
            completed: 9,
            rejected_queue: 1,
            deadline_timeouts: 0,
            cache_lookups: 20,
            cache_hits: 15,
            ..TenantLedger::default()
        }
    }

    #[test]
    fn parses_the_toml_subset_with_line_errors() {
        let cfg = SloConfig::parse(
            r#"
# latency objective
[[objective]]
name = "p99 latency"
metric = "p99_latency_ms"
tenant = "*"
max_warn = 2500.0  # trailing comment
max_fail = 6000
window_secs = 30
target = 0.99

[[objective]]
metric = "cache_hit_rate"
tenant = "t0"
min_warn = 0.5
"#,
        )
        .expect("parses");
        assert_eq!(cfg.objectives.len(), 2);
        assert_eq!(cfg.objectives[0].name, "p99 latency");
        assert_eq!(cfg.objectives[0].max_warn, Some(2500.0));
        assert_eq!(cfg.objectives[0].max_fail, Some(6000.0));
        assert_eq!(cfg.objectives[1].name, "cache_hit_rate");
        assert_eq!(cfg.objectives[1].tenant, "t0");

        let err = SloConfig::parse("metric = \"p99_latency_ms\"").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("before the first"));
        let err = SloConfig::parse("[[objective]]\nmetric = \"nope\"").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown metric"));
        let err = SloConfig::parse("[[objective]]\nmax_warn = lots").unwrap_err();
        assert!(err.message.contains("expects a number"));
    }

    #[test]
    fn grades_ledger_rates_and_series_maxima() {
        let mut row = busy_row();
        row.rejected_queue = 6; // 6 rejected of 10 arrivals = 0.6
        let ledger = ledger_with(&[("t0", row)]);
        let mut ts = TimeSeries::new();
        ts.gauge("queue_depth.t0", 0, 2.0);
        ts.gauge("queue_depth.t0", 10, 80.0);
        let report = evaluate_slo(&ts, &ledger, &SloConfig::default_service());
        let find = |m: &str| {
            report
                .findings
                .iter()
                .find(|f| f.metric == m)
                .unwrap_or_else(|| panic!("missing {m}: {:?}", report.findings))
        };
        assert_eq!(find("slo.t0.rejection_rate").severity, Severity::Fail);
        assert_eq!(find("slo.t0.queue_depth_max").severity, Severity::Warn);
        assert_eq!(find("slo.t0.queue_depth_max").value, 80.0);
        // Hit rate 15/20 clears the 0.10 floor.
        assert_eq!(find("slo.t0.cache_hit_rate").severity, Severity::Ok);
        // No latency events recorded → graceful no-data OK.
        assert_eq!(find("slo.t0.p99_latency_ms").severity, Severity::Ok);
        assert_eq!(report.verdict(), Severity::Fail);
        assert!(report.render().contains("objectives violated"));
    }

    #[test]
    fn burn_rate_flags_a_bad_window_good_total() {
        // 40 fast jobs spread over 400s, then a 10s storm of 10 slow
        // ones: overall p-latency looks fine, but one window burns the
        // whole budget.
        let mut ts = TimeSeries::new();
        for i in 0..40u64 {
            ts.event("latency_ms.t0", i * 10_000_000, 100.0);
        }
        for i in 0..10u64 {
            ts.event("latency_ms.t0", 400_000_000 + i * 1_000_000, 9_000.0);
        }
        let ledger = ledger_with(&[("t0", busy_row())]);
        let mut obj = SloObjective::named("p50_latency_ms", "*");
        obj.max_warn = Some(1_000.0);
        obj.max_fail = Some(60_000.0);
        obj.window_secs = Some(30.0);
        obj.target = Some(0.99);
        let report = evaluate_slo(&ts, &ledger, &SloConfig { objectives: vec![obj] });
        let burn = report
            .findings
            .iter()
            .find(|f| f.metric == "slo.t0.p50_latency_ms.burn")
            .expect("burn finding");
        // The storm window is 100% bad against a 1% budget: 100x burn.
        assert!(burn.value > 50.0, "{burn:?}");
        assert_eq!(burn.severity, Severity::Fail);
        // The p50 itself stays OK — that is the point of burn rates.
        let p50 = report
            .findings
            .iter()
            .find(|f| f.metric == "slo.t0.p50_latency_ms")
            .expect("p50 finding");
        assert_eq!(p50.severity, Severity::Ok, "{p50:?}");
    }

    #[test]
    fn wildcard_expands_every_tenant_in_sorted_order() {
        let ledger = ledger_with(&[("t0", busy_row()), ("t1", busy_row())]);
        let ts = TimeSeries::new();
        let mut obj = SloObjective::named("rejection_rate", "*");
        obj.max_warn = Some(0.5);
        let report = evaluate_slo(&ts, &ledger, &SloConfig { objectives: vec![obj] });
        let metrics: Vec<&str> = report.findings.iter().map(|f| f.metric.as_str()).collect();
        assert_eq!(metrics, ["slo.t0.rejection_rate", "slo.t1.rejection_rate"]);
    }

    #[test]
    fn empty_inputs_never_panic_and_stay_ok() {
        let report = evaluate_slo(
            &TimeSeries::new(),
            &ServiceLedger::default(),
            &SloConfig::default_service(),
        );
        assert_eq!(report.verdict(), Severity::Ok);
        let report =
            evaluate_slo(&TimeSeries::new(), &ServiceLedger::default(), &SloConfig::default());
        assert_eq!(report.verdict(), Severity::Ok);
        assert!(report.findings[0].metric.contains("none"));
        // JSON is well-formed and deterministic.
        assert_eq!(report.to_json_string(), report.to_json_string());
    }

    #[test]
    fn timeline_diff_fails_on_any_divergence() {
        let mut a = TimeSeries::new();
        a.gauge("queue_depth.t0", 5, 1.0);
        let b = a.clone();
        assert_eq!(worst(&diff_timeseries(&a, &b)), Severity::Ok);
        let mut c = a.clone();
        c.gauge("queue_depth.t0", 9, 2.0);
        let f = diff_timeseries(&a, &c);
        assert_eq!(worst(&f), Severity::Fail);
        assert!(f[0].message.contains("points"));
        let mut d = TimeSeries::new();
        d.gauge("queue_depth.t0", 5, 3.0);
        let f = diff_timeseries(&a, &d);
        assert_eq!(worst(&f), Severity::Fail);
        assert!(f[0].message.contains("diverged"));
        let mut e = TimeSeries::new();
        e.gauge("slots_in_use", 5, 1.0);
        assert_eq!(worst(&diff_timeseries(&a, &e)), Severity::Fail);
    }
}
