//! Service-ledger findings and the ledger diff gate.
//!
//! The relink service's acceptance contract is *exact* accounting:
//! every arrival terminates in exactly one outcome counter and the
//! canonical ledger JSON is byte-identical across `--jobs` counts and
//! replays. The findings here turn a [`ServiceLedger`] into the same
//! WARN/FAIL vocabulary the rest of the doctor speaks, and
//! [`diff_service_ledgers`] is the CI gate that `cmp`s two ledgers
//! counter-by-counter — any divergence between a `--jobs 1` and a
//! `--jobs 8` run of the same traffic is a determinism bug, severity
//! FAIL.

use crate::doctor::{Finding, Severity};
use propeller_faults::{ServiceLedger, TenantLedger};

/// Audit one service run's ledger.
///
/// FAILs are reserved for broken invariants (inexact accounting);
/// WARNs flag pressure the operator should know about (exhausted retry
/// budgets, deadline timeouts, degraded or fallback relinks); clean
/// rows collapse into one OK finding.
pub fn service_findings(ledger: &ServiceLedger) -> Vec<Finding> {
    let mut out = Vec::new();
    for (name, row) in &ledger.tenants {
        if !row.accounts_exactly() {
            out.push(Finding {
                severity: Severity::Fail,
                metric: format!("service.{name}.accounting"),
                value: row.arrivals() as f64 - row.outcomes() as f64,
                message: format!(
                    "tenant {name}: {} arrivals but {} terminal outcomes — the ledger \
                     lost or double-booked a job",
                    row.arrivals(),
                    row.outcomes()
                ),
            });
        }
        for (metric, value, message) in tenant_pressure(name, row) {
            out.push(Finding { severity: Severity::Warn, metric, value, message });
        }
    }
    if !ledger.accounts_exactly() {
        // Already FAILed per-tenant above; nothing more to add.
    } else if out.is_empty() {
        out.push(Finding {
            severity: Severity::Ok,
            metric: "service.none".into(),
            value: 0.0,
            message: format!(
                "all {} tenant(s) account exactly with no service pressure",
                ledger.tenants.len()
            ),
        });
    }
    out
}

fn tenant_pressure(name: &str, row: &TenantLedger) -> Vec<(String, f64, String)> {
    let mut out = Vec::new();
    let mut warn = |metric: &str, value: u64, message: String| {
        if value > 0 {
            out.push((format!("service.{name}.{metric}"), value as f64, message));
        }
    };
    warn(
        "rejected_queue",
        row.rejected_queue,
        format!("tenant {name}: {} arrival(s) exhausted their retry budget against a full queue — raise capacity or slots", row.rejected_queue),
    );
    warn(
        "deadline_timeouts",
        row.deadline_timeouts,
        format!("tenant {name}: {} queued job(s) aged past the deadline before a slot opened", row.deadline_timeouts),
    );
    warn(
        "queue_drops",
        row.queue_drops,
        format!("tenant {name}: {} queued entr(ies) were dropped by injected faults", row.queue_drops),
    );
    warn(
        "cancelled_by_fault",
        row.cancelled_by_fault,
        format!("tenant {name}: {} job(s) were cancelled mid-flight by injected faults", row.cancelled_by_fault),
    );
    warn(
        "degraded_jobs",
        row.degraded_jobs,
        format!("tenant {name}: {} completed job(s) shipped with a non-clean degradation ledger", row.degraded_jobs),
    );
    warn(
        "identity_fallbacks",
        row.identity_fallbacks,
        format!("tenant {name}: {} completed job(s) fell back to the identity layout (profile unusable)", row.identity_fallbacks),
    );
    warn(
        "pressure_evictions",
        row.pressure_evictions,
        format!("tenant {name}: {} of this tenant's cache entries were pressure-evicted — expect rebuild cost on the next release", row.pressure_evictions),
    );
    out
}

/// The determinism gate: diff two ledgers of what must be the same
/// traffic (e.g. `--jobs 1` vs `--jobs 8`, or a replay). Any
/// difference — configuration, makespan, or any tenant counter — is a
/// FAIL finding; byte-identical ledgers produce a single OK.
pub fn diff_service_ledgers(a: &ServiceLedger, b: &ServiceLedger) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut fail = |metric: String, value: f64, message: String| {
        out.push(Finding { severity: Severity::Fail, metric, value, message });
    };
    if a.benchmark != b.benchmark || a.seed != b.seed || a.plan != b.plan {
        fail(
            "service.diff.config".into(),
            0.0,
            format!(
                "ledgers describe different runs: {}/{}/{:?} vs {}/{}/{:?}",
                a.benchmark, a.seed, a.plan, b.benchmark, b.seed, b.plan
            ),
        );
    }
    if a.makespan_secs != b.makespan_secs {
        fail(
            "service.diff.makespan_secs".into(),
            b.makespan_secs - a.makespan_secs,
            format!(
                "modeled makespan diverged: {} vs {} — scheduling is not jobs-invariant",
                a.makespan_secs, b.makespan_secs
            ),
        );
    }
    let names: std::collections::BTreeSet<&String> =
        a.tenants.keys().chain(b.tenants.keys()).collect();
    for name in names {
        match (a.tenants.get(name), b.tenants.get(name)) {
            (Some(ra), Some(rb)) => {
                for ((metric, va), (_, vb)) in ra.entries().into_iter().zip(rb.entries()) {
                    if va != vb {
                        fail(
                            format!("service.diff.{name}.{metric}"),
                            vb - va,
                            format!("tenant {name}: {metric} diverged ({va} vs {vb})"),
                        );
                    }
                }
                if ra.degradation != rb.degradation {
                    fail(
                        format!("service.diff.{name}.degradation"),
                        0.0,
                        format!("tenant {name}: aggregate degradation ledgers diverged"),
                    );
                }
            }
            _ => fail(
                format!("service.diff.{name}"),
                0.0,
                format!("tenant {name} present in only one ledger"),
            ),
        }
    }
    if out.is_empty() {
        out.push(Finding {
            severity: Severity::Ok,
            metric: "service.diff.none".into(),
            value: 0.0,
            message: "ledgers are identical counter-for-counter".into(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doctor::worst;

    fn ledger_with(row: TenantLedger) -> ServiceLedger {
        let mut ledger = ServiceLedger {
            benchmark: "clang".into(),
            seed: 7,
            ..ServiceLedger::default()
        };
        ledger.tenants.insert("t0".into(), row);
        ledger
    }

    #[test]
    fn clean_ledger_is_one_ok_finding() {
        let ledger = ledger_with(TenantLedger {
            submitted: 3,
            admitted: 3,
            completed: 3,
            cache_lookups: 10,
            cache_hits: 6,
            cache_misses: 4,
            ..TenantLedger::default()
        });
        let findings = service_findings(&ledger);
        assert_eq!(findings.len(), 1);
        assert_eq!(worst(&findings), Severity::Ok);
    }

    #[test]
    fn inexact_accounting_fails() {
        let ledger = ledger_with(TenantLedger {
            submitted: 3,
            completed: 2,
            ..TenantLedger::default()
        });
        let findings = service_findings(&ledger);
        assert_eq!(worst(&findings), Severity::Fail);
        assert!(findings.iter().any(|f| f.metric == "service.t0.accounting"));
    }

    #[test]
    fn pressure_warns_but_does_not_fail() {
        let ledger = ledger_with(TenantLedger {
            submitted: 3,
            completed: 2,
            rejected_queue: 1,
            retries: 4,
            ..TenantLedger::default()
        });
        let findings = service_findings(&ledger);
        assert_eq!(worst(&findings), Severity::Warn);
    }

    #[test]
    fn identical_ledgers_diff_clean() {
        let ledger = ledger_with(TenantLedger { submitted: 1, completed: 1, ..Default::default() });
        let findings = diff_service_ledgers(&ledger, &ledger);
        assert_eq!(worst(&findings), Severity::Ok);
    }

    #[test]
    fn any_counter_divergence_fails_the_diff() {
        let a = ledger_with(TenantLedger { submitted: 1, completed: 1, ..Default::default() });
        let mut b = a.clone();
        b.tenants.get_mut("t0").unwrap().cache_hits = 5;
        let findings = diff_service_ledgers(&a, &b);
        assert_eq!(worst(&findings), Severity::Fail);
        assert!(findings.iter().any(|f| f.metric == "service.diff.t0.cache_hits"));
    }
}
