//! The end-to-end layout provenance document: samples → edge weights →
//! merge decisions → placed bytes.
//!
//! A [`ProvenanceDoc`] joins everything the armed pipeline collected
//! about *why* the final layout looks the way it does:
//!
//! * Phase 3's sample-to-edge **funding ledger** — which profile
//!   address pairs, at what weight, funded each dynamic CFG edge;
//! * the **replayable Ext-TSP record** per hot function — the exact
//!   node/edge problem the optimizer was handed, every committed merge
//!   with its gain and the best rejected alternative, and the emitted
//!   hot-block order;
//! * the linker's **placement record** — where each ordered symbol
//!   landed, at what address, and what relaxation did to its bytes;
//! * under fleet merges, which [`ProfileSource`]s contributed at what
//!   decayed weight ([`propeller_profile::MergeProvenance`]).
//!
//! The document serializes to `layout_provenance.json` in a fixed
//! member order and contains nothing run-environment-dependent (no
//! wall clock, no job counts), so armed runs are byte-identical across
//! repetitions and `--jobs` values. It is written *beside*
//! `run_report.json`, never inside it: the default report surface is
//! bit-identical whether or not provenance was armed.

use crate::doctor::{DoctorConfig, Finding, Severity};
use propeller_linker::SymbolPlacement;
use propeller_profile::MergeProvenance;
use propeller_sim::SymbolAttribution;
use propeller_telemetry::JsonValue;
use propeller_wpa::exttsp::{replay_merges, Edge, MergeStep, Node, RejectedAlt};
use propeller_wpa::{
    EdgeFunding, EdgeKind, FundingRecord, LayoutProvenance, RichProvenance,
};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One hot function's full decision record inside a [`ProvenanceDoc`]:
/// the Ext-TSP problem, the committed merge steps, and the emitted
/// hot-block order the steps reconstruct.
#[derive(Clone, PartialEq, Debug)]
pub struct ProvenanceFunction {
    /// The function's primary symbol.
    pub func_symbol: String,
    /// Mapper function index — joins the funding ledger.
    pub func_index: u32,
    /// Hot nodes exactly as handed to the optimizer.
    pub nodes: Vec<Node>,
    /// Hot-to-hot edges exactly as handed to the optimizer.
    pub edges: Vec<Edge>,
    /// Committed merges in commit order, each with the best rejected
    /// alternative at commit time.
    pub steps: Vec<MergeStep>,
    /// Total candidate merge evaluations (accepted and rejected).
    pub evaluations: u64,
    /// Whether the optimizer fell back to the input order.
    pub used_input_order: bool,
    /// Ext-TSP score of the emitted order.
    pub final_score: f64,
    /// Ext-TSP score of the input order.
    pub input_score: f64,
    /// The emitted hot-block order (all hot clusters concatenated, in
    /// cluster order). When `used_input_order` is false, replaying
    /// `steps` over `nodes` reconstructs exactly this sequence.
    pub order: Vec<u32>,
}

/// The `layout_provenance.json` document.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ProvenanceDoc {
    /// Benchmark name.
    pub benchmark: String,
    /// Generation scale.
    pub scale: f64,
    /// Workload seed.
    pub seed: u64,
    /// One record per hot function, in address-map order.
    pub functions: Vec<ProvenanceFunction>,
    /// Which profile address pairs funded each CFG edge weight.
    pub funding: EdgeFunding,
    /// Final placement of every text symbol, in text order.
    pub placements: Vec<SymbolPlacement>,
    /// Fleet profile-merge contributions, when the profile that fed
    /// WPA was merged from several sources. Omitted from the JSON when
    /// absent.
    pub merge_sources: Option<MergeProvenance>,
    /// Per-symbol attributed cycles of the optimized binary's
    /// evaluation run, when attribution was collected. Omitted from
    /// the JSON when empty. `layout-diff` ranks moved symbols by this.
    pub attribution: Vec<(String, u64)>,
}

impl ProvenanceDoc {
    /// Assembles the document from the armed pipeline's collections.
    ///
    /// `layout` supplies the emitted hot-block order per function (the
    /// concatenation of its hot clusters); `rich` supplies the
    /// replayable decision record; `placements` is the linker's final
    /// text order.
    pub fn collect(
        benchmark: &str,
        scale: f64,
        seed: u64,
        rich: &RichProvenance,
        layout: &LayoutProvenance,
        placements: &[SymbolPlacement],
        merge_sources: Option<MergeProvenance>,
    ) -> ProvenanceDoc {
        let emitted: HashMap<&str, Vec<u32>> = layout
            .functions
            .iter()
            .map(|f| {
                let order: Vec<u32> = f
                    .clusters
                    .iter()
                    .filter(|c| !c.cold)
                    .flat_map(|c| c.blocks.iter().copied())
                    .collect();
                (f.func_symbol.as_str(), order)
            })
            .collect();
        ProvenanceDoc {
            benchmark: benchmark.to_string(),
            scale,
            seed,
            functions: rich
                .functions
                .iter()
                .map(|r| ProvenanceFunction {
                    func_symbol: r.func_symbol.clone(),
                    func_index: r.func_index,
                    nodes: r.nodes.clone(),
                    edges: r.edges.clone(),
                    steps: r.steps.clone(),
                    evaluations: r.evaluations,
                    used_input_order: r.used_input_order,
                    final_score: r.final_score,
                    input_score: r.input_score,
                    order: emitted
                        .get(r.func_symbol.as_str())
                        .cloned()
                        .unwrap_or_default(),
                })
                .collect(),
            funding: rich.funding.clone(),
            placements: placements.to_vec(),
            merge_sources,
            attribution: Vec::new(),
        }
    }

    /// Replays every function's recorded merge steps and checks that
    /// the result is exactly the emitted order (and a duplicate-free
    /// permutation of the function's hot nodes).
    ///
    /// # Errors
    ///
    /// Returns a description of the first function whose record does
    /// not reconstruct its emitted order.
    pub fn validate_replay(&self) -> Result<(), String> {
        for f in &self.functions {
            let mut seen: Vec<u32> = f.order.clone();
            seen.sort_unstable();
            seen.dedup();
            if seen.len() != f.nodes.len() {
                return Err(format!(
                    "{}: emitted order is not a permutation of the {} hot nodes",
                    f.func_symbol,
                    f.nodes.len()
                ));
            }
            let replayed = if f.used_input_order {
                f.nodes.iter().map(|n| n.id).collect::<Vec<u32>>()
            } else {
                replay_merges(&f.nodes, 0, &f.steps)
                    .map_err(|e| format!("{}: replay failed: {e}", f.func_symbol))?
            };
            if replayed != f.order {
                return Err(format!(
                    "{}: replaying {} steps produced {:?}, but the emitted order is {:?}",
                    f.func_symbol,
                    f.steps.len(),
                    replayed,
                    f.order
                ));
            }
        }
        Ok(())
    }

    /// Looks up a function record by symbol.
    pub fn function(&self, symbol: &str) -> Option<&ProvenanceFunction> {
        self.functions.iter().find(|f| f.func_symbol == symbol)
    }

    /// Serializes the document as a [`JsonValue`] with a fixed member
    /// order.
    pub fn to_json(&self) -> JsonValue {
        let mut members = vec![
            ("benchmark".to_string(), JsonValue::Str(self.benchmark.clone())),
            ("scale".to_string(), JsonValue::Num(self.scale)),
            ("seed".to_string(), JsonValue::Num(self.seed as f64)),
            (
                "functions".to_string(),
                JsonValue::Arr(self.functions.iter().map(function_to_json).collect()),
            ),
            (
                "funding".to_string(),
                JsonValue::Arr(
                    self.funding.records.iter().map(funding_to_json).collect(),
                ),
            ),
            (
                "placements".to_string(),
                JsonValue::Arr(
                    self.placements.iter().map(placement_to_json).collect(),
                ),
            ),
        ];
        if let Some(m) = &self.merge_sources {
            members.push(("merge_sources".to_string(), merge_sources_to_json(m)));
        }
        if !self.attribution.is_empty() {
            members.push((
                "attribution".to_string(),
                JsonValue::Arr(
                    self.attribution
                        .iter()
                        .map(|(sym, cycles)| {
                            JsonValue::Obj(vec![
                                ("symbol".to_string(), JsonValue::Str(sym.clone())),
                                ("cycles".to_string(), JsonValue::Num(*cycles as f64)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        JsonValue::Obj(members)
    }

    /// The pretty-printed JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Reconstructs a document from [`ProvenanceDoc::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or ill-typed member.
    pub fn from_json(v: &JsonValue) -> Result<ProvenanceDoc, String> {
        let benchmark = v
            .get("benchmark")
            .and_then(JsonValue::as_str)
            .ok_or("missing `benchmark`")?
            .to_string();
        let scale = v
            .get("scale")
            .and_then(JsonValue::as_f64)
            .ok_or("missing `scale`")?;
        let seed = v
            .get("seed")
            .and_then(JsonValue::as_u64)
            .ok_or("missing `seed`")?;
        let mut functions = Vec::new();
        for f in v
            .get("functions")
            .and_then(JsonValue::as_arr)
            .ok_or("missing `functions`")?
        {
            functions.push(function_from_json(f)?);
        }
        let mut funding = EdgeFunding::default();
        for r in v
            .get("funding")
            .and_then(JsonValue::as_arr)
            .ok_or("missing `funding`")?
        {
            funding.records.push(funding_from_json(r)?);
        }
        let mut placements = Vec::new();
        for p in v
            .get("placements")
            .and_then(JsonValue::as_arr)
            .ok_or("missing `placements`")?
        {
            placements.push(placement_from_json(p)?);
        }
        let merge_sources = match v.get("merge_sources") {
            Some(m) => Some(merge_sources_from_json(m)?),
            None => None,
        };
        let mut attribution = Vec::new();
        if let Some(arr) = v.get("attribution").and_then(JsonValue::as_arr) {
            for a in arr {
                attribution.push((
                    a.get("symbol")
                        .and_then(JsonValue::as_str)
                        .ok_or("attribution row missing `symbol`")?
                        .to_string(),
                    a.get("cycles")
                        .and_then(JsonValue::as_u64)
                        .ok_or("attribution row missing `cycles`")?,
                ));
            }
        }
        Ok(ProvenanceDoc {
            benchmark,
            scale,
            seed,
            functions,
            funding,
            placements,
            merge_sources,
            attribution,
        })
    }

    /// Parses a serialized document.
    ///
    /// # Errors
    ///
    /// Reports both JSON syntax errors and schema mismatches.
    pub fn parse(text: &str) -> Result<ProvenanceDoc, String> {
        let v = JsonValue::parse(text).map_err(|e| e.to_string())?;
        ProvenanceDoc::from_json(&v)
    }
}

fn node_to_json(n: &Node) -> JsonValue {
    JsonValue::Obj(vec![
        ("id".to_string(), JsonValue::Num(n.id as f64)),
        ("size".to_string(), JsonValue::Num(n.size as f64)),
        ("count".to_string(), JsonValue::Num(n.count as f64)),
    ])
}

fn edge_to_json(e: &Edge) -> JsonValue {
    JsonValue::Obj(vec![
        ("src".to_string(), JsonValue::Num(e.src as f64)),
        ("dst".to_string(), JsonValue::Num(e.dst as f64)),
        ("weight".to_string(), JsonValue::Num(e.weight as f64)),
    ])
}

fn split_to_json(split: Option<usize>) -> JsonValue {
    match split {
        Some(s) => JsonValue::Num(s as f64),
        None => JsonValue::Null,
    }
}

fn step_to_json(s: &MergeStep) -> JsonValue {
    JsonValue::Obj(vec![
        ("x".to_string(), JsonValue::Num(s.x as f64)),
        ("y".to_string(), JsonValue::Num(s.y as f64)),
        ("gain".to_string(), JsonValue::Num(s.gain)),
        ("split".to_string(), split_to_json(s.split)),
        (
            "rejected".to_string(),
            match &s.rejected {
                Some(r) => JsonValue::Obj(vec![
                    ("x".to_string(), JsonValue::Num(r.x as f64)),
                    ("y".to_string(), JsonValue::Num(r.y as f64)),
                    ("gain".to_string(), JsonValue::Num(r.gain)),
                    ("split".to_string(), split_to_json(r.split)),
                ]),
                None => JsonValue::Null,
            },
        ),
    ])
}

fn function_to_json(f: &ProvenanceFunction) -> JsonValue {
    JsonValue::Obj(vec![
        ("func".to_string(), JsonValue::Str(f.func_symbol.clone())),
        ("func_index".to_string(), JsonValue::Num(f.func_index as f64)),
        (
            "nodes".to_string(),
            JsonValue::Arr(f.nodes.iter().map(node_to_json).collect()),
        ),
        (
            "edges".to_string(),
            JsonValue::Arr(f.edges.iter().map(edge_to_json).collect()),
        ),
        (
            "steps".to_string(),
            JsonValue::Arr(f.steps.iter().map(step_to_json).collect()),
        ),
        ("evaluations".to_string(), JsonValue::Num(f.evaluations as f64)),
        (
            "used_input_order".to_string(),
            JsonValue::Bool(f.used_input_order),
        ),
        ("final_score".to_string(), JsonValue::Num(f.final_score)),
        ("input_score".to_string(), JsonValue::Num(f.input_score)),
        (
            "order".to_string(),
            JsonValue::Arr(f.order.iter().map(|&b| JsonValue::Num(b as f64)).collect()),
        ),
    ])
}

fn funding_to_json(r: &FundingRecord) -> JsonValue {
    JsonValue::Obj(vec![
        ("func".to_string(), JsonValue::Num(r.func as f64)),
        ("src".to_string(), JsonValue::Num(r.src as f64)),
        ("dst".to_string(), JsonValue::Num(r.dst as f64)),
        ("kind".to_string(), JsonValue::Str(r.kind.label().to_string())),
        ("from".to_string(), JsonValue::Num(r.from as f64)),
        ("to".to_string(), JsonValue::Num(r.to as f64)),
        ("weight".to_string(), JsonValue::Num(r.weight as f64)),
    ])
}

fn placement_to_json(p: &SymbolPlacement) -> JsonValue {
    JsonValue::Obj(vec![
        ("symbol".to_string(), JsonValue::Str(p.symbol.clone())),
        ("order".to_string(), JsonValue::Num(p.order as f64)),
        ("addr".to_string(), JsonValue::Num(p.addr as f64)),
        ("input_size".to_string(), JsonValue::Num(p.input_size as f64)),
        ("final_size".to_string(), JsonValue::Num(p.final_size as f64)),
        (
            "deleted_jumps".to_string(),
            JsonValue::Num(p.deleted_jumps as f64),
        ),
        (
            "shrunk_branches".to_string(),
            JsonValue::Num(p.shrunk_branches as f64),
        ),
    ])
}

fn merge_sources_to_json(m: &MergeProvenance) -> JsonValue {
    JsonValue::Obj(vec![
        ("max_age".to_string(), JsonValue::Num(m.max_age as f64)),
        ("decay_num".to_string(), JsonValue::Num(m.decay_num as f64)),
        ("decay_den".to_string(), JsonValue::Num(m.decay_den as f64)),
        (
            "sources".to_string(),
            JsonValue::Arr(
                m.sources
                    .iter()
                    .map(|s| {
                        JsonValue::Obj(vec![
                            ("index".to_string(), JsonValue::Num(s.index as f64)),
                            ("weight".to_string(), JsonValue::Num(s.weight as f64)),
                            ("age".to_string(), JsonValue::Num(s.age as f64)),
                            (
                                "effective".to_string(),
                                JsonValue::Num(s.effective as f64),
                            ),
                            (
                                "branch_total".to_string(),
                                JsonValue::Num(s.branch_total as f64),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn usize_of(v: &JsonValue, key: &str, what: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .map(|n| n as usize)
        .ok_or_else(|| format!("{what} missing `{key}`"))
}

fn split_from_json(v: Option<&JsonValue>) -> Result<Option<usize>, String> {
    match v {
        None | Some(JsonValue::Null) => Ok(None),
        Some(s) => Ok(Some(s.as_u64().ok_or("bad `split`")? as usize)),
    }
}

fn function_from_json(v: &JsonValue) -> Result<ProvenanceFunction, String> {
    let mut nodes = Vec::new();
    for n in v
        .get("nodes")
        .and_then(JsonValue::as_arr)
        .ok_or("function missing `nodes`")?
    {
        nodes.push(Node {
            id: usize_of(n, "id", "node")? as u32,
            size: usize_of(n, "size", "node")? as u32,
            count: n
                .get("count")
                .and_then(JsonValue::as_u64)
                .ok_or("node missing `count`")?,
        });
    }
    let mut edges = Vec::new();
    for e in v
        .get("edges")
        .and_then(JsonValue::as_arr)
        .ok_or("function missing `edges`")?
    {
        edges.push(Edge {
            src: usize_of(e, "src", "edge")? as u32,
            dst: usize_of(e, "dst", "edge")? as u32,
            weight: e
                .get("weight")
                .and_then(JsonValue::as_u64)
                .ok_or("edge missing `weight`")?,
        });
    }
    let mut steps = Vec::new();
    for s in v
        .get("steps")
        .and_then(JsonValue::as_arr)
        .ok_or("function missing `steps`")?
    {
        let rejected = match s.get("rejected") {
            None | Some(JsonValue::Null) => None,
            Some(r) => Some(RejectedAlt {
                x: usize_of(r, "x", "rejected")?,
                y: usize_of(r, "y", "rejected")?,
                gain: r
                    .get("gain")
                    .and_then(JsonValue::as_f64)
                    .ok_or("rejected missing `gain`")?,
                split: split_from_json(r.get("split"))?,
            }),
        };
        steps.push(MergeStep {
            x: usize_of(s, "x", "step")?,
            y: usize_of(s, "y", "step")?,
            gain: s
                .get("gain")
                .and_then(JsonValue::as_f64)
                .ok_or("step missing `gain`")?,
            split: split_from_json(s.get("split"))?,
            rejected,
        });
    }
    Ok(ProvenanceFunction {
        func_symbol: v
            .get("func")
            .and_then(JsonValue::as_str)
            .ok_or("function missing `func`")?
            .to_string(),
        func_index: usize_of(v, "func_index", "function")? as u32,
        nodes,
        edges,
        steps,
        evaluations: v
            .get("evaluations")
            .and_then(JsonValue::as_u64)
            .ok_or("function missing `evaluations`")?,
        used_input_order: matches!(
            v.get("used_input_order"),
            Some(JsonValue::Bool(true))
        ),
        final_score: v
            .get("final_score")
            .and_then(JsonValue::as_f64)
            .ok_or("function missing `final_score`")?,
        input_score: v
            .get("input_score")
            .and_then(JsonValue::as_f64)
            .ok_or("function missing `input_score`")?,
        order: v
            .get("order")
            .and_then(JsonValue::as_arr)
            .ok_or("function missing `order`")?
            .iter()
            .map(|b| b.as_u64().map(|b| b as u32).ok_or("bad block id"))
            .collect::<Result<_, _>>()?,
    })
}

fn funding_from_json(v: &JsonValue) -> Result<FundingRecord, String> {
    let kind = match v
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or("funding record missing `kind`")?
    {
        "branch" => EdgeKind::Branch,
        "fallthrough" => EdgeKind::Fallthrough,
        other => return Err(format!("unknown funding kind `{other}`")),
    };
    Ok(FundingRecord {
        func: usize_of(v, "func", "funding record")? as u32,
        src: usize_of(v, "src", "funding record")? as u32,
        dst: usize_of(v, "dst", "funding record")? as u32,
        kind,
        from: v
            .get("from")
            .and_then(JsonValue::as_u64)
            .ok_or("funding record missing `from`")?,
        to: v
            .get("to")
            .and_then(JsonValue::as_u64)
            .ok_or("funding record missing `to`")?,
        weight: v
            .get("weight")
            .and_then(JsonValue::as_u64)
            .ok_or("funding record missing `weight`")?,
    })
}

fn placement_from_json(v: &JsonValue) -> Result<SymbolPlacement, String> {
    Ok(SymbolPlacement {
        symbol: v
            .get("symbol")
            .and_then(JsonValue::as_str)
            .ok_or("placement missing `symbol`")?
            .to_string(),
        order: usize_of(v, "order", "placement")? as u32,
        addr: v
            .get("addr")
            .and_then(JsonValue::as_u64)
            .ok_or("placement missing `addr`")?,
        input_size: v
            .get("input_size")
            .and_then(JsonValue::as_u64)
            .ok_or("placement missing `input_size`")?,
        final_size: v
            .get("final_size")
            .and_then(JsonValue::as_u64)
            .ok_or("placement missing `final_size`")?,
        deleted_jumps: usize_of(v, "deleted_jumps", "placement")? as u32,
        shrunk_branches: usize_of(v, "shrunk_branches", "placement")? as u32,
    })
}

fn merge_sources_from_json(v: &JsonValue) -> Result<MergeProvenance, String> {
    let mut m = MergeProvenance {
        max_age: usize_of(v, "max_age", "merge_sources")? as u32,
        decay_num: usize_of(v, "decay_num", "merge_sources")? as u32,
        decay_den: usize_of(v, "decay_den", "merge_sources")? as u32,
        sources: Vec::new(),
    };
    for s in v
        .get("sources")
        .and_then(JsonValue::as_arr)
        .ok_or("merge_sources missing `sources`")?
    {
        m.sources.push(propeller_profile::SourceContribution {
            index: usize_of(s, "index", "source")?,
            weight: s
                .get("weight")
                .and_then(JsonValue::as_u64)
                .ok_or("source missing `weight`")?,
            age: usize_of(s, "age", "source")? as u32,
            effective: s
                .get("effective")
                .and_then(JsonValue::as_f64)
                .ok_or("source missing `effective`")? as u128,
            branch_total: s
                .get("branch_total")
                .and_then(JsonValue::as_u64)
                .ok_or("source missing `branch_total`")?,
        });
    }
    Ok(m)
}

// ---------------------------------------------------------------------
// layout-diff
// ---------------------------------------------------------------------

/// One symbol whose final placement differs between two documents.
#[derive(Clone, PartialEq, Debug)]
pub struct MovedSymbol {
    /// The symbol.
    pub symbol: String,
    /// Text-order position in A / B.
    pub order_a: u32,
    /// Text-order position in B.
    pub order_b: u32,
    /// Final address in A.
    pub addr_a: u64,
    /// Final address in B.
    pub addr_b: u64,
    /// Attributed cycles in A, when A carried attribution.
    pub cycles_a: Option<u64>,
    /// Attributed cycles in B, when B carried attribution.
    pub cycles_b: Option<u64>,
}

impl MovedSymbol {
    /// Absolute attributed-cycle delta, when both sides have counters.
    pub fn cycle_delta(&self) -> Option<i64> {
        match (self.cycles_a, self.cycles_b) {
            (Some(a), Some(b)) => Some(b as i64 - a as i64),
            _ => None,
        }
    }
}

/// The structural difference between two provenance documents.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ProvenanceDiff {
    /// Symbols placed at a different text-order position, ranked by
    /// absolute attributed cycle delta (position delta when either
    /// side lacks attribution), largest first.
    pub moved: Vec<MovedSymbol>,
    /// Symbols placed only in A.
    pub only_a: Vec<String>,
    /// Symbols placed only in B.
    pub only_b: Vec<String>,
    /// The first merge decision that diverges between the two runs,
    /// named (function, step, both decisions) — `None` when every
    /// recorded decision matches.
    pub first_divergence: Option<String>,
}

impl ProvenanceDiff {
    /// True when the two documents describe the same layout decisions
    /// and placements.
    pub fn is_empty(&self) -> bool {
        self.moved.is_empty()
            && self.only_a.is_empty()
            && self.only_b.is_empty()
            && self.first_divergence.is_none()
    }
}

fn describe_step(s: &MergeStep) -> String {
    let split = match s.split {
        Some(p) => format!(" split@{p}"),
        None => String::new(),
    };
    format!("merge {}<-{}{split} gain {:.3}", s.x, s.y, s.gain)
}

/// Computes the structural diff between two provenance documents.
pub fn diff_docs(a: &ProvenanceDoc, b: &ProvenanceDoc) -> ProvenanceDiff {
    let mut d = ProvenanceDiff::default();

    // First diverging merge decision, scanning functions in A's order.
    'outer: for fa in &a.functions {
        let Some(fb) = b.function(&fa.func_symbol) else {
            d.first_divergence = Some(format!(
                "function {}: has a decision record only in A",
                fa.func_symbol
            ));
            break;
        };
        let n = fa.steps.len().min(fb.steps.len());
        for i in 0..n {
            let (sa, sb) = (&fa.steps[i], &fb.steps[i]);
            if sa.x != sb.x || sa.y != sb.y || sa.split != sb.split || sa.gain != sb.gain {
                d.first_divergence = Some(format!(
                    "function {}: step {}: A {} vs B {}",
                    fa.func_symbol,
                    i,
                    describe_step(sa),
                    describe_step(sb)
                ));
                break 'outer;
            }
        }
        if fa.steps.len() != fb.steps.len() {
            d.first_divergence = Some(format!(
                "function {}: A committed {} merges, B {}",
                fa.func_symbol,
                fa.steps.len(),
                fb.steps.len()
            ));
            break;
        }
    }
    if d.first_divergence.is_none() {
        if let Some(fb) = b
            .functions
            .iter()
            .find(|fb| a.function(&fb.func_symbol).is_none())
        {
            d.first_divergence = Some(format!(
                "function {}: has a decision record only in B",
                fb.func_symbol
            ));
        }
    }

    // Placement moves.
    let place_b: HashMap<&str, &SymbolPlacement> = b
        .placements
        .iter()
        .map(|p| (p.symbol.as_str(), p))
        .collect();
    let place_a: HashMap<&str, &SymbolPlacement> = a
        .placements
        .iter()
        .map(|p| (p.symbol.as_str(), p))
        .collect();
    let cycles_of = |doc: &ProvenanceDoc, sym: &str| -> Option<u64> {
        doc.attribution
            .iter()
            .find(|(s, _)| s == sym)
            .map(|&(_, c)| c)
    };
    for pa in &a.placements {
        match place_b.get(pa.symbol.as_str()) {
            None => d.only_a.push(pa.symbol.clone()),
            Some(pb) if pa.order != pb.order || pa.addr != pb.addr => {
                d.moved.push(MovedSymbol {
                    symbol: pa.symbol.clone(),
                    order_a: pa.order,
                    order_b: pb.order,
                    addr_a: pa.addr,
                    addr_b: pb.addr,
                    cycles_a: cycles_of(a, &pa.symbol),
                    cycles_b: cycles_of(b, &pa.symbol),
                });
            }
            Some(_) => {}
        }
    }
    for pb in &b.placements {
        if !place_a.contains_key(pb.symbol.as_str()) {
            d.only_b.push(pb.symbol.clone());
        }
    }
    // Rank: attributed cycle delta when available, position delta
    // otherwise; symbol name breaks ties deterministically.
    d.moved.sort_by(|x, y| {
        let key = |m: &MovedSymbol| -> u64 {
            match m.cycle_delta() {
                Some(c) => c.unsigned_abs(),
                None => (m.order_a as i64 - m.order_b as i64).unsigned_abs(),
            }
        };
        key(y).cmp(&key(x)).then_with(|| x.symbol.cmp(&y.symbol))
    });
    d
}

/// Renders a `layout-diff` report.
pub fn render_layout_diff(name_a: &str, name_b: &str, d: &ProvenanceDiff) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "layout-diff {name_a} -> {name_b}");
    if d.is_empty() {
        let _ = writeln!(out, "  identical: no moved symbols, no diverging decisions");
        return out;
    }
    match &d.first_divergence {
        Some(div) => {
            let _ = writeln!(out, "  first diverging decision: {div}");
        }
        None => {
            let _ = writeln!(out, "  no diverging merge decisions");
        }
    }
    let _ = writeln!(out, "  moved symbols: {}", d.moved.len());
    for m in &d.moved {
        let cycles = match (m.cycles_a, m.cycles_b) {
            (Some(ca), Some(cb)) => {
                format!("  cycles {ca} -> {cb} ({:+})", cb as i64 - ca as i64)
            }
            _ => String::new(),
        };
        let _ = writeln!(
            out,
            "    {:<30} order {:>4} -> {:<4} addr {:#x} -> {:#x}{cycles}",
            m.symbol, m.order_a, m.order_b, m.addr_a, m.addr_b
        );
    }
    for s in &d.only_a {
        let _ = writeln!(out, "    {s:<30} only in {name_a}");
    }
    for s in &d.only_b {
        let _ = writeln!(out, "    {s:<30} only in {name_b}");
    }
    out
}

// ---------------------------------------------------------------------
// explain
// ---------------------------------------------------------------------

/// Renders the end-to-end decision trail for one function (optionally
/// narrowed to one block): sample mass → funded edge weights → merge
/// steps with gains and best rejected alternatives → final layout slot
/// and address, joined against attributed µarch counters when the
/// caller collected them.
///
/// # Errors
///
/// Returns a message when `func` has no decision record in `doc`.
pub fn render_explain(
    doc: &ProvenanceDoc,
    func: &str,
    block: Option<u32>,
    attr: Option<&SymbolAttribution>,
) -> Result<String, String> {
    let f = doc.function(func).ok_or_else(|| {
        format!(
            "no provenance record for `{func}` in {} (hot functions: {})",
            doc.benchmark,
            doc.functions.len()
        )
    })?;
    let mut out = String::new();
    let target = match block {
        Some(b) => format!("{func}:{b}"),
        None => func.to_string(),
    };
    let _ = writeln!(
        out,
        "explain {}/{target} (scale {}, seed {})",
        doc.benchmark, doc.scale, doc.seed
    );

    // 1. Sample mass.
    let mass: u64 = f.nodes.iter().map(|n| n.count).sum();
    let _ = writeln!(
        out,
        "  sample mass: {} block-weight across {} hot blocks",
        mass,
        f.nodes.len()
    );
    if let Some(b) = block {
        match f.nodes.iter().find(|n| n.id == b) {
            Some(n) => {
                let _ = writeln!(
                    out,
                    "  block {b}: weight {}, size {} bytes",
                    n.count, n.size
                );
            }
            None => {
                let _ = writeln!(out, "  block {b}: not hot (no decision record)");
            }
        }
    }
    if let Some(m) = &doc.merge_sources {
        let _ = writeln!(
            out,
            "  profile merged from {} sources (decay {}/{} per release of age):",
            m.sources.len(),
            m.decay_num,
            m.decay_den
        );
        for s in &m.sources {
            let _ = writeln!(
                out,
                "    source {}: weight {} age {} -> effective {} ({} branch events)",
                s.index, s.weight, s.age, s.effective, s.branch_total
            );
        }
    }

    // 2. Edge weights and the profile records that funded them.
    let records = doc.funding.for_func(f.func_index);
    let relevant: Vec<&FundingRecord> = records
        .iter()
        .copied()
        .filter(|r| block.is_none_or(|b| r.src == b || r.dst == b))
        .collect();
    let _ = writeln!(
        out,
        "  edge funding ({} profile records{}):",
        relevant.len(),
        if block.is_some() { " touching the block" } else { "" }
    );
    for r in &relevant {
        let _ = writeln!(
            out,
            "    {} -> {} {:<11} weight {:>8}  from {:#x}..{:#x}",
            r.src,
            r.dst,
            r.kind.label(),
            r.weight,
            r.from,
            r.to
        );
    }

    // 3. Merge decisions. Replaying the chains tells us which steps
    //    involved the selected block.
    let block_idx = block.and_then(|b| f.nodes.iter().position(|n| n.id == b));
    let mut chains: Vec<Option<Vec<usize>>> =
        (0..f.nodes.len()).map(|i| Some(vec![i])).collect();
    let _ = writeln!(
        out,
        "  merge decisions: {} committed of {} evaluated",
        f.steps.len(),
        f.evaluations
    );
    for (i, s) in f.steps.iter().enumerate() {
        let involved = match block_idx {
            Some(bi) => {
                let has = |c: usize| {
                    chains
                        .get(c)
                        .and_then(|c| c.as_ref())
                        .is_some_and(|m| m.contains(&bi))
                };
                has(s.x) || has(s.y)
            }
            None => true,
        };
        // Advance the replay regardless, so membership stays exact.
        if s.x < chains.len() && s.y < chains.len() {
            if let (Some(cx), Some(cy)) = (chains[s.x].take(), chains[s.y].take()) {
                let mut merged = Vec::with_capacity(cx.len() + cy.len());
                match s.split {
                    Some(p) if p <= cx.len() => {
                        merged.extend_from_slice(&cx[..p]);
                        merged.extend_from_slice(&cy);
                        merged.extend_from_slice(&cx[p..]);
                    }
                    _ => {
                        merged.extend_from_slice(&cx);
                        merged.extend_from_slice(&cy);
                    }
                }
                chains[s.x] = Some(merged);
            }
        }
        if !involved {
            continue;
        }
        let split = match s.split {
            Some(p) => format!(" split@{p}"),
            None => String::new(),
        };
        let rejected = match &s.rejected {
            Some(r) => {
                let rsplit = match r.split {
                    Some(p) => format!(" split@{p}"),
                    None => String::new(),
                };
                format!(
                    " | best rejected: {}<-{}{rsplit} gain {:.3}",
                    r.x, r.y, r.gain
                )
            }
            None => " | no other positive-gain candidate queued".to_string(),
        };
        let _ = writeln!(
            out,
            "    step {i:>3}: chain {}<-{}{split} gain {:>10.3}{rejected}",
            s.x, s.y, s.gain
        );
    }
    let order = f
        .order
        .iter()
        .map(|b| b.to_string())
        .collect::<Vec<_>>()
        .join(" ");
    let _ = writeln!(
        out,
        "  emitted hot order: [{order}]{}",
        if f.used_input_order {
            " (input order kept: optimizer scored below it)"
        } else {
            ""
        }
    );
    let _ = writeln!(
        out,
        "  ext-tsp score: input {:.3} -> final {:.3}",
        f.input_score, f.final_score
    );

    // 4. Final placement.
    let fragment_prefix = format!("{func}.");
    let mut placed = false;
    for p in doc
        .placements
        .iter()
        .filter(|p| p.symbol == func || p.symbol.starts_with(&fragment_prefix))
    {
        placed = true;
        let _ = writeln!(
            out,
            "  placed: {:<30} order #{:<4} addr {:#x}  {} -> {} bytes \
             ({} jumps deleted, {} branches shrunk)",
            p.symbol,
            p.order,
            p.addr,
            p.input_size,
            p.final_size,
            p.deleted_jumps,
            p.shrunk_branches
        );
    }
    if !placed {
        let _ = writeln!(out, "  placed: (no placement record for {func})");
    }

    // 5. Attributed counters, when the caller simulated with
    //    attribution.
    if let Some(sym) = attr {
        let c = &sym.total;
        let _ = writeln!(
            out,
            "  counters: {} cycles, {} insts, {} l1i misses, {} itlb misses, {} baclears",
            c.cycles, c.insts, c.l1i_misses, c.itlb_misses, c.baclears
        );
        if let Some(b) = block {
            if let Some(ba) = sym.blocks.get(b as usize) {
                let _ = writeln!(
                    out,
                    "  block {b} counters: addr {:#x}, {} bytes, {} cycles, {} l1i misses",
                    ba.addr, ba.size, ba.counters.cycles, ba.counters.l1i_misses
                );
            }
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// doctor findings
// ---------------------------------------------------------------------

/// Grades provenance coverage: every hot-classified function in the
/// run's layout should carry a full decision record in the armed
/// document. Returns a single OK finding at full coverage.
pub fn provenance_findings(
    layout: &LayoutProvenance,
    doc: &ProvenanceDoc,
    cfg: &DoctorConfig,
) -> Vec<Finding> {
    let hot = layout.functions.len();
    if hot == 0 {
        return vec![Finding {
            severity: Severity::Ok,
            metric: "provenance.coverage".into(),
            value: 1.0,
            message: "no hot functions; nothing to record".into(),
        }];
    }
    let covered = layout
        .functions
        .iter()
        .filter(|f| doc.function(&f.func_symbol).is_some())
        .count();
    let ratio = covered as f64 / hot as f64;
    let mut out = vec![Finding {
        severity: if ratio < cfg.provenance_coverage_warn {
            Severity::Warn
        } else {
            Severity::Ok
        },
        metric: "provenance.coverage".into(),
        value: ratio,
        message: format!("{covered} of {hot} hot functions carry a full decision record"),
    }];
    if let Err(e) = doc.validate_replay() {
        out.push(Finding {
            severity: Severity::Warn,
            metric: "provenance.replay".into(),
            value: 0.0,
            message: format!("recorded merge steps do not replay: {e}"),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> ProvenanceDoc {
        ProvenanceDoc {
            benchmark: "clang".into(),
            scale: 0.004,
            seed: 77,
            functions: vec![ProvenanceFunction {
                func_symbol: "hot_a".into(),
                func_index: 3,
                nodes: vec![
                    Node { id: 0, size: 16, count: 100 },
                    Node { id: 1, size: 16, count: 90 },
                    Node { id: 2, size: 16, count: 80 },
                ],
                edges: vec![
                    Edge { src: 0, dst: 2, weight: 100 },
                    Edge { src: 2, dst: 1, weight: 90 },
                ],
                steps: vec![
                    MergeStep {
                        x: 0,
                        y: 2,
                        gain: 120.0,
                        split: None,
                        rejected: Some(RejectedAlt {
                            x: 1,
                            y: 2,
                            gain: 40.0,
                            split: Some(1),
                        }),
                    },
                    MergeStep { x: 0, y: 1, gain: 80.0, split: None, rejected: None },
                ],
                evaluations: 9,
                used_input_order: false,
                final_score: 1800.0,
                input_score: 177.0,
                order: vec![0, 2, 1],
            }],
            funding: EdgeFunding {
                records: vec![FundingRecord {
                    func: 3,
                    src: 0,
                    dst: 2,
                    kind: EdgeKind::Branch,
                    from: 0x40_1000,
                    to: 0x40_1040,
                    weight: 100,
                }],
            },
            placements: vec![SymbolPlacement {
                symbol: "hot_a".into(),
                order: 0,
                addr: 0x40_0000,
                input_size: 64,
                final_size: 58,
                deleted_jumps: 2,
                shrunk_branches: 1,
            }],
            merge_sources: None,
            attribution: Vec::new(),
        }
    }

    #[test]
    fn round_trips_through_json() {
        let doc = sample_doc();
        let back = ProvenanceDoc::parse(&doc.to_json_string()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn round_trips_optional_members() {
        let mut doc = sample_doc();
        assert!(!doc.to_json_string().contains("merge_sources"));
        assert!(!doc.to_json_string().contains("attribution"));
        doc.merge_sources = Some(MergeProvenance {
            max_age: 5,
            decay_num: 1,
            decay_den: 2,
            sources: vec![propeller_profile::SourceContribution {
                index: 0,
                weight: 17,
                age: 2,
                effective: 68,
                branch_total: 1234,
            }],
        });
        doc.attribution.push(("hot_a".into(), 9000));
        let json = doc.to_json_string();
        assert!(json.contains("merge_sources"));
        assert!(json.contains("attribution"));
        let back = ProvenanceDoc::parse(&json).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn replay_validation_accepts_the_truth_and_rejects_lies() {
        let doc = sample_doc();
        doc.validate_replay().unwrap();
        let mut bad = doc.clone();
        bad.functions[0].order = vec![0, 1, 2];
        assert!(bad.validate_replay().is_err());
        let mut not_perm = doc;
        not_perm.functions[0].order = vec![0, 2, 2];
        assert!(not_perm.validate_replay().unwrap_err().contains("permutation"));
    }

    #[test]
    fn self_diff_is_structurally_empty() {
        let doc = sample_doc();
        let d = diff_docs(&doc, &doc);
        assert!(d.is_empty());
        assert!(render_layout_diff("a", "b", &d).contains("identical"));
    }

    #[test]
    fn diff_names_the_first_diverging_decision_and_ranks_moves() {
        let a = sample_doc();
        let mut b = sample_doc();
        b.functions[0].steps[1] =
            MergeStep { x: 0, y: 1, gain: 75.0, split: Some(2), rejected: None };
        b.placements[0].order = 4;
        b.placements[0].addr = 0x40_2000;
        b.placements.push(SymbolPlacement {
            symbol: "new_sym".into(),
            order: 5,
            addr: 0x40_3000,
            input_size: 10,
            final_size: 10,
            deleted_jumps: 0,
            shrunk_branches: 0,
        });
        let d = diff_docs(&a, &b);
        let div = d.first_divergence.as_deref().unwrap();
        assert!(div.contains("hot_a"), "{div}");
        assert!(div.contains("step 1"), "{div}");
        assert!(div.contains("gain 80.000") && div.contains("gain 75.000"), "{div}");
        assert_eq!(d.moved.len(), 1);
        assert_eq!(d.moved[0].symbol, "hot_a");
        assert_eq!(d.only_b, vec!["new_sym".to_string()]);
        let rendered = render_layout_diff("A.json", "B.json", &d);
        assert!(rendered.contains("first diverging decision"));
        assert!(rendered.contains("hot_a"));
    }

    #[test]
    fn diff_ranks_by_attributed_cycle_delta_when_present() {
        let mut a = sample_doc();
        let mut b = sample_doc();
        for doc in [&mut a, &mut b] {
            doc.placements.push(SymbolPlacement {
                symbol: "hot_b".into(),
                order: 1,
                addr: 0x40_0100,
                input_size: 32,
                final_size: 32,
                deleted_jumps: 0,
                shrunk_branches: 0,
            });
        }
        // Both symbols move one slot; hot_b's cycle delta is larger.
        b.placements[0].order = 2;
        b.placements[1].order = 3;
        a.attribution = vec![("hot_a".into(), 1000), ("hot_b".into(), 1000)];
        b.attribution = vec![("hot_a".into(), 1100), ("hot_b".into(), 5000)];
        let d = diff_docs(&a, &b);
        assert_eq!(d.moved[0].symbol, "hot_b");
        assert_eq!(d.moved[0].cycle_delta(), Some(4000));
        assert_eq!(d.moved[1].symbol, "hot_a");
    }

    #[test]
    fn explain_names_mass_merges_rejections_and_address() {
        let doc = sample_doc();
        let text = render_explain(&doc, "hot_a", None, None).unwrap();
        assert!(text.contains("sample mass: 270"), "{text}");
        assert!(text.contains("gain    120.000"), "{text}");
        assert!(text.contains("best rejected: 1<-2 split@1 gain 40.000"), "{text}");
        assert!(text.contains("no other positive-gain candidate queued"), "{text}");
        assert!(text.contains("0x400000"), "{text}");
        assert!(text.contains("emitted hot order: [0 2 1]"), "{text}");
        assert!(text.contains("2 jumps deleted, 1 branches shrunk"), "{text}");
        assert!(render_explain(&doc, "absent", None, None).is_err());
    }

    #[test]
    fn explain_narrows_to_a_block() {
        let doc = sample_doc();
        let text = render_explain(&doc, "hot_a", Some(1), None).unwrap();
        assert!(text.contains("block 1: weight 90"), "{text}");
        // Step 0 merges chains 0 and 2; block 1's chain is untouched
        // until step 1, so only step 1 is listed.
        assert!(!text.contains("step   0"), "{text}");
        assert!(text.contains("step   1"), "{text}");
        // The funding ledger only holds the 0->2 record, which does
        // not touch block 1.
        assert!(text.contains("0 profile records touching the block"), "{text}");
    }

    #[test]
    fn findings_warn_on_missing_records() {
        let cfg = DoctorConfig::default();
        let doc = sample_doc();
        let mut layout = LayoutProvenance::default();
        let hot = |sym: &str| propeller_wpa::FunctionProvenance {
            func_symbol: sym.into(),
            total_samples: 100,
            hot_blocks: 3,
            cold_blocks: 0,
            merge_gains: Vec::new(),
            layout_score: 0.0,
            input_score: 0.0,
            used_input_order: false,
            clusters: Vec::new(),
        };
        layout.functions.push(hot("hot_a"));
        let ok = provenance_findings(&layout, &doc, &cfg);
        assert_eq!(ok[0].severity, Severity::Ok);
        assert!((ok[0].value - 1.0).abs() < 1e-9);
        layout.functions.push(hot("hot_b"));
        let warn = provenance_findings(&layout, &doc, &cfg);
        assert_eq!(warn[0].severity, Severity::Warn);
        assert!((warn[0].value - 0.5).abs() < 1e-9);
        assert!(warn[0].message.contains("1 of 2"));
    }
}
