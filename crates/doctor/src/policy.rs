//! The relink-vs-reuse decision for the fleet release loop.
//!
//! Every release must choose: relink against the best available
//! (merged, possibly stale) profile, or ship the baseline-equivalent
//! identity layout and wait for fresher samples. The input to that
//! choice is the stale-profile skew score
//! ([`crate::audit::layout_skew_agg`]): the total-variation distance
//! between the stale profile's edge distribution and the current
//! release's fresh behavior.
//!
//! The policy is a plain threshold because the skew score already
//! compresses the staleness story into one number in `[0, 1]`: below
//! the threshold the profile still describes the binary and relinking
//! captures most of the oracle speedup; above it the layout would chase
//! behavior the binary no longer exhibits, and a wrongly-placed hot
//! path is worse than no placement at all.

use std::fmt;

/// The per-release decision.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RelinkDecision {
    /// Relink against the merged stale profile: skew is low enough
    /// that the profile still describes this binary.
    Relink,
    /// Skip optimization this release: ship the identity layout (every
    /// Phase 2 object reused from cache) and wait for fresh samples.
    Reuse,
}

impl RelinkDecision {
    /// Stable lowercase name, used in reports and the release ledger.
    pub fn as_str(self) -> &'static str {
        match self {
            RelinkDecision::Relink => "relink",
            RelinkDecision::Reuse => "reuse",
        }
    }
}

impl fmt::Display for RelinkDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Threshold policy over the skew score.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct RelinkPolicy {
    /// Maximum tolerated skew (inclusive). `0.0` relinks only on a
    /// perfectly fresh profile; `1.0` always relinks.
    pub max_skew: f64,
}

impl Default for RelinkPolicy {
    fn default() -> Self {
        // EXPERIMENTS.md walks through choosing this from the
        // speedup-vs-staleness curve; 0.4 keeps clang-shaped workloads
        // relinking through moderate drift while rejecting profiles
        // whose hot edges have mostly moved.
        RelinkPolicy { max_skew: 0.4 }
    }
}

impl RelinkPolicy {
    /// Decides relink-vs-reuse for a release whose best available
    /// profile skews by `skew` against fresh behavior.
    pub fn decide(&self, skew: f64) -> RelinkDecision {
        if skew <= self.max_skew {
            RelinkDecision::Relink
        } else {
            RelinkDecision::Reuse
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_is_inclusive() {
        let p = RelinkPolicy { max_skew: 0.3 };
        assert_eq!(p.decide(0.0), RelinkDecision::Relink);
        assert_eq!(p.decide(0.3), RelinkDecision::Relink);
        assert_eq!(p.decide(0.300001), RelinkDecision::Reuse);
        assert_eq!(p.decide(1.0), RelinkDecision::Reuse);
    }

    #[test]
    fn extremes() {
        assert_eq!(
            RelinkPolicy { max_skew: 1.0 }.decide(1.0),
            RelinkDecision::Relink
        );
        assert_eq!(
            RelinkPolicy { max_skew: 0.0 }.decide(f64::EPSILON),
            RelinkDecision::Reuse
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(RelinkDecision::Relink.as_str(), "relink");
        assert_eq!(RelinkDecision::Reuse.to_string(), "reuse");
    }
}
