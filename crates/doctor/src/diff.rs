//! Structural and metric diffs between two [`RunReport`]s — the bench
//! regression gate.
//!
//! Only the `metrics` map is gated: each key has a known *direction*
//! (higher-better, lower-better, or informational), and a change in the
//! bad direction beyond the tolerance is a regression. Wall times and
//! layout changes are reported but never fail the gate — layouts are
//! *expected* to change when the optimizer improves.
//!
//! Fault plans partition the gate. When both reports ran under the
//! *same* plan, their degradation ledgers gate lower-better: more
//! retries / fallbacks / dropped records at equal injected faults is a
//! resilience regression. When the plans differ, the runs are not
//! comparable — a candidate run under chaos is *supposed* to degrade —
//! so every delta (metrics and ledger alike) is reported
//! informationally and nothing fails the gate.

use crate::report::RunReport;
use propeller_wpa::FunctionProvenance;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Which way a metric is allowed to move freely.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Shrinking is a regression.
    HigherBetter,
    /// Growing is a regression.
    LowerBetter,
    /// Neither direction gates.
    Informational,
}

/// The gate direction of a metric key.
///
/// Exact names are matched first; unknown keys fall back to substring
/// heuristics, and anything still ambiguous is informational — the gate
/// never guesses a direction to fail on.
pub fn direction_of(key: &str) -> Direction {
    match key {
        "doctor.sample_coverage"
        | "doctor.fallthrough_confidence"
        | "doctor.sample_capture_ratio"
        | "eval.speedup_pct"
        | "eval.base_ipc"
        | "eval.opt_ipc"
        | "cache.ir_hit_rate"
        | "cache.obj_hit_rate" => Direction::HigherBetter,
        "doctor.skew"
        | "doctor.unmapped_rate"
        | "mapper.skipped_funcs"
        | "mapper.unmapped_addrs"
        | "eval.opt_cycles"
        | "eval.l1i_miss_delta_pct"
        | "eval.itlb_miss_delta_pct"
        | "eval.baclears_delta_pct" => Direction::LowerBetter,
        k if k.ends_with("_hit_rate") || k.ends_with("coverage") => Direction::HigherBetter,
        k if k.contains("miss") || k.contains("unmapped") || k.contains("skew") => {
            Direction::LowerBetter
        }
        _ => Direction::Informational,
    }
}

/// One changed metric.
#[derive(Clone, PartialEq, Debug)]
pub struct MetricDelta {
    /// Metric key.
    pub key: String,
    /// Value in report A (the baseline).
    pub a: f64,
    /// Value in report B (the candidate).
    pub b: f64,
    /// Relative change in percent (`(b - a) / |a| * 100`; ±100 when `a`
    /// is zero).
    pub delta_pct: f64,
    /// The key's gate direction.
    pub direction: Direction,
    /// Whether the change exceeds the tolerance in the bad direction.
    pub regression: bool,
}

/// One structural layout difference.
#[derive(Clone, PartialEq, Debug)]
pub struct LayoutChange {
    /// The function whose layout changed.
    pub func_symbol: String,
    /// What changed, human-readable.
    pub what: String,
}

/// Everything that differs between two reports.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct DiffReport {
    /// Changed metrics (only keys present in both reports).
    pub deltas: Vec<MetricDelta>,
    /// Metric keys only report A has.
    pub only_in_a: Vec<String>,
    /// Metric keys only report B has.
    pub only_in_b: Vec<String>,
    /// Changed wall figures (never gate).
    pub wall_deltas: Vec<MetricDelta>,
    /// Structural layout differences (never gate).
    pub layout_changes: Vec<LayoutChange>,
    /// Changed degradation-ledger entries: lower-better when the two
    /// reports ran under the same fault plan, informational otherwise.
    pub degradation_deltas: Vec<MetricDelta>,
    /// Per-symbol attributed-cycle changes (symbols present in both
    /// reports' attribution sections). Lower-better at equal fault
    /// plans: a layout change that regresses one hot function fails
    /// the gate even when the aggregate speedup barely moves.
    pub attribution_deltas: Vec<MetricDelta>,
    /// Fault plan of the baseline report (empty when fault-free).
    pub plan_a: String,
    /// Fault plan of the candidate report (empty when fault-free).
    pub plan_b: String,
    /// The tolerance the diff was computed at, in percent.
    pub tolerance_pct: f64,
}

impl DiffReport {
    /// True when nothing at all differs — `diff(A, A)` at any
    /// tolerance.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
            && self.only_in_a.is_empty()
            && self.only_in_b.is_empty()
            && self.wall_deltas.is_empty()
            && self.layout_changes.is_empty()
            && self.degradation_deltas.is_empty()
            && self.attribution_deltas.is_empty()
            && !self.plans_differ()
    }

    /// True when the two reports ran under different fault plans — in
    /// which case all gating was suspended.
    pub fn plans_differ(&self) -> bool {
        self.plan_a != self.plan_b
    }

    /// True when any gated metric moved in the bad direction beyond the
    /// tolerance.
    pub fn has_regression(&self) -> bool {
        self.deltas
            .iter()
            .chain(&self.degradation_deltas)
            .chain(&self.attribution_deltas)
            .any(|d| d.regression)
    }

    /// Renders the diff for terminal output.
    pub fn render(&self) -> String {
        if self.is_empty() {
            return "reports are identical\n".to_string();
        }
        let mut out = String::new();
        if self.plans_differ() {
            let show = |p: &str| if p.is_empty() { "<none>".to_string() } else { p.to_string() };
            let _ = writeln!(
                out,
                "  fault plans differ (baseline: {}, candidate: {}) — runs are \
                 not comparable, all regression gating suspended",
                show(&self.plan_a),
                show(&self.plan_b)
            );
        }
        for d in &self.deltas {
            let _ = writeln!(
                out,
                "  {:<30} {:>12.4} -> {:>12.4} ({:+.2}%){}",
                d.key,
                d.a,
                d.b,
                d.delta_pct,
                if d.regression { "  REGRESSION" } else { "" }
            );
        }
        for k in &self.only_in_a {
            let _ = writeln!(out, "  {k:<30} only in baseline report");
        }
        for k in &self.only_in_b {
            let _ = writeln!(out, "  {k:<30} only in candidate report");
        }
        for d in &self.wall_deltas {
            let _ = writeln!(
                out,
                "  {:<30} {:>12.4} -> {:>12.4} ({:+.2}%)  [wall, not gated]",
                d.key, d.a, d.b, d.delta_pct
            );
        }
        for d in &self.degradation_deltas {
            let _ = writeln!(
                out,
                "  degradation.{:<18} {:>12.4} -> {:>12.4} ({:+.2}%){}",
                d.key,
                d.a,
                d.b,
                d.delta_pct,
                if d.regression {
                    "  REGRESSION"
                } else if self.plans_differ() {
                    "  [not gated: plans differ]"
                } else {
                    ""
                }
            );
        }
        for d in &self.attribution_deltas {
            let _ = writeln!(
                out,
                "  cycles[{:<22}] {:>12.0} -> {:>12.0} ({:+.2}%){}",
                d.key,
                d.a,
                d.b,
                d.delta_pct,
                if d.regression {
                    "  REGRESSION"
                } else if self.plans_differ() {
                    "  [not gated: plans differ]"
                } else {
                    ""
                }
            );
        }
        for c in &self.layout_changes {
            let _ = writeln!(out, "  layout {:<23} {}", c.func_symbol, c.what);
        }
        let _ = writeln!(
            out,
            "{} metric change(s), {} degradation change(s), {} per-symbol change(s), {} layout change(s), tolerance {}%: {}",
            self.deltas.len(),
            self.degradation_deltas.len(),
            self.attribution_deltas.len(),
            self.layout_changes.len(),
            self.tolerance_pct,
            if self.has_regression() {
                "REGRESSION"
            } else {
                "ok"
            }
        );
        out
    }
}

fn relative_delta_pct(a: f64, b: f64) -> f64 {
    if a == 0.0 {
        if b == 0.0 {
            0.0
        } else {
            100.0 * b.signum()
        }
    } else {
        (b - a) / a.abs() * 100.0
    }
}

fn diff_metric_maps(
    a: &BTreeMap<String, f64>,
    b: &BTreeMap<String, f64>,
    tolerance_pct: f64,
    gated: bool,
) -> (Vec<MetricDelta>, Vec<String>, Vec<String>) {
    let mut deltas = Vec::new();
    let mut only_a = Vec::new();
    let mut only_b = Vec::new();
    for (k, &va) in a {
        let Some(&vb) = b.get(k) else {
            only_a.push(k.clone());
            continue;
        };
        if va == vb {
            continue;
        }
        let direction = if gated {
            direction_of(k)
        } else {
            Direction::Informational
        };
        let delta_pct = relative_delta_pct(va, vb);
        // A worsening move must exceed the tolerance to gate. The
        // magnitude compared is the size of the *bad* move relative to
        // the baseline, so tolerance 0 gates every worsening change.
        let regression = match direction {
            Direction::HigherBetter => vb < va && -delta_pct > tolerance_pct,
            Direction::LowerBetter => vb > va && delta_pct > tolerance_pct,
            Direction::Informational => false,
        };
        deltas.push(MetricDelta {
            key: k.clone(),
            a: va,
            b: vb,
            delta_pct,
            direction,
            regression,
        });
    }
    for k in b.keys() {
        if !a.contains_key(k) {
            only_b.push(k.clone());
        }
    }
    (deltas, only_a, only_b)
}

fn diff_layouts(a: &[FunctionProvenance], b: &[FunctionProvenance]) -> Vec<LayoutChange> {
    let index = |fs: &[FunctionProvenance]| -> BTreeMap<String, FunctionProvenance> {
        fs.iter().map(|f| (f.func_symbol.clone(), f.clone())).collect()
    };
    let fa = index(a);
    let fb = index(b);
    let mut changes = Vec::new();
    for (symbol, f) in &fa {
        let Some(g) = fb.get(symbol) else {
            changes.push(LayoutChange {
                func_symbol: symbol.clone(),
                what: "no longer hot (dropped from layout)".into(),
            });
            continue;
        };
        let ca: Vec<(&str, &[u32])> = f
            .clusters
            .iter()
            .map(|c| (c.symbol.as_str(), c.blocks.as_slice()))
            .collect();
        let cb: Vec<(&str, &[u32])> = g
            .clusters
            .iter()
            .map(|c| (c.symbol.as_str(), c.blocks.as_slice()))
            .collect();
        if ca != cb {
            changes.push(LayoutChange {
                func_symbol: symbol.clone(),
                what: format!(
                    "cluster plan changed ({} -> {} clusters)",
                    f.clusters.len(),
                    g.clusters.len()
                ),
            });
        }
        for (c, d) in f.clusters.iter().zip(&g.clusters) {
            if c.symbol == d.symbol && c.symbol_order_pos != d.symbol_order_pos {
                changes.push(LayoutChange {
                    func_symbol: symbol.clone(),
                    what: format!(
                        "{} moved in symbol order: {:?} -> {:?}",
                        c.symbol, c.symbol_order_pos, d.symbol_order_pos
                    ),
                });
            }
        }
    }
    for symbol in fb.keys() {
        if !fa.contains_key(symbol) {
            changes.push(LayoutChange {
                func_symbol: symbol.clone(),
                what: "newly hot (added to layout)".into(),
            });
        }
    }
    changes
}

/// Degradation-ledger deltas. Both ledgers enumerate the same entry
/// names in the same fixed order, so a zip pairs them exactly. Every
/// ledger entry is lower-better — more degradation at the same injected
/// faults means resilience got worse — but only gates when the plans
/// were equal.
fn diff_degradation(a: &RunReport, b: &RunReport, tolerance_pct: f64) -> Vec<MetricDelta> {
    let gated = a.fault_plan == b.fault_plan;
    let mut deltas = Vec::new();
    for ((k, va), (_, vb)) in a
        .degradation
        .entries()
        .into_iter()
        .zip(b.degradation.entries())
    {
        if va == vb {
            continue;
        }
        let delta_pct = relative_delta_pct(va, vb);
        deltas.push(MetricDelta {
            key: k.to_string(),
            a: va,
            b: vb,
            delta_pct,
            direction: if gated {
                Direction::LowerBetter
            } else {
                Direction::Informational
            },
            regression: gated && vb > va && delta_pct > tolerance_pct,
        });
    }
    deltas
}

/// Per-symbol attributed-cycle deltas — the `perf report` gate. Only
/// symbols present in both attribution sections compare (a symbol
/// entering or leaving the top-N is a ranking change, not a measured
/// regression); cycles are lower-better and gate at the shared
/// tolerance when the fault plans match.
fn diff_attribution(a: &RunReport, b: &RunReport, tolerance_pct: f64) -> Vec<MetricDelta> {
    let (Some(sa), Some(sb)) = (&a.attribution, &b.attribution) else {
        return Vec::new();
    };
    let gated = a.fault_plan == b.fault_plan;
    let mut deltas = Vec::new();
    for row in &sa.symbols {
        let Some(other) = sb.get(&row.symbol) else {
            continue;
        };
        let (va, vb) = (row.counters.cycles as f64, other.counters.cycles as f64);
        if va == vb {
            continue;
        }
        let delta_pct = relative_delta_pct(va, vb);
        deltas.push(MetricDelta {
            key: row.symbol.clone(),
            a: va,
            b: vb,
            delta_pct,
            direction: if gated {
                Direction::LowerBetter
            } else {
                Direction::Informational
            },
            regression: gated && vb > va && delta_pct > tolerance_pct,
        });
    }
    deltas
}

/// Diffs candidate report `b` against baseline report `a` at the given
/// tolerance (percent). Gated metrics moving in their bad direction by
/// more than `tolerance_pct` mark the diff as a regression. When the
/// reports ran under different fault plans nothing gates (see the
/// module docs).
pub fn diff_reports(a: &RunReport, b: &RunReport, tolerance_pct: f64) -> DiffReport {
    let comparable = a.fault_plan == b.fault_plan;
    let (deltas, only_in_a, only_in_b) =
        diff_metric_maps(&a.metrics, &b.metrics, tolerance_pct, comparable);
    let (wall_deltas, wall_only_a, wall_only_b) =
        diff_metric_maps(&a.wall, &b.wall, tolerance_pct, false);
    let mut only_in_a = only_in_a;
    let mut only_in_b = only_in_b;
    only_in_a.extend(wall_only_a);
    only_in_b.extend(wall_only_b);
    DiffReport {
        deltas,
        only_in_a,
        only_in_b,
        wall_deltas,
        layout_changes: diff_layouts(&a.layout.functions, &b.layout.functions),
        degradation_deltas: diff_degradation(a, b, tolerance_pct),
        attribution_deltas: diff_attribution(a, b, tolerance_pct),
        plan_a: a.fault_plan.clone(),
        plan_b: b.fault_plan.clone(),
        tolerance_pct,
    }
}

/// A series diff over three or more reports — the fleet release
/// inspection view: one row per metric, one column per report, plus the
/// full pairwise gate over every consecutive pair.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct TrendReport {
    /// Labels of the input reports, in order (file names at the CLI).
    pub labels: Vec<String>,
    /// Per-metric value series, keyed by metric name. A report missing
    /// the metric contributes `None` at its position.
    pub series: BTreeMap<String, Vec<Option<f64>>>,
    /// `diff(reports[i], reports[i+1])` for every consecutive pair —
    /// the exact same gate machinery two-report `diff` uses.
    pub steps: Vec<DiffReport>,
    /// The tolerance every step was gated at, in percent.
    pub tolerance_pct: f64,
}

impl TrendReport {
    /// True when any consecutive step regresses.
    pub fn has_regression(&self) -> bool {
        self.steps.iter().any(DiffReport::has_regression)
    }

    /// Renders the per-metric trend table plus a one-line verdict per
    /// step.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "  {:<30}", "metric");
        for l in &self.labels {
            // File paths are long; the stem is enough to tell columns
            // apart in a release series.
            let stem = l.rsplit('/').next().unwrap_or(l);
            let _ = write!(out, " {stem:>14.14}");
        }
        out.push('\n');
        for (key, values) in &self.series {
            let _ = write!(out, "  {key:<30}");
            for v in values {
                match v {
                    Some(v) => {
                        let _ = write!(out, " {v:>14.4}");
                    }
                    None => {
                        let _ = write!(out, " {:>14}", "-");
                    }
                }
            }
            // Direction annotation: does the series end worse than it
            // started, per the metric's gate direction?
            let ends = values.iter().flatten().copied().collect::<Vec<_>>();
            if let (Some(&first), Some(&last)) = (ends.first(), ends.last()) {
                let worse = match direction_of(key) {
                    Direction::HigherBetter => last < first,
                    Direction::LowerBetter => last > first,
                    Direction::Informational => false,
                };
                if worse {
                    let _ = write!(out, "  worsening");
                }
            }
            out.push('\n');
        }
        for (i, step) in self.steps.iter().enumerate() {
            let _ = writeln!(
                out,
                "  step {} -> {}: {}",
                self.labels.get(i).map(String::as_str).unwrap_or("?"),
                self.labels.get(i + 1).map(String::as_str).unwrap_or("?"),
                if step.has_regression() {
                    "REGRESSION"
                } else {
                    "ok"
                }
            );
        }
        let _ = writeln!(
            out,
            "{} report(s), tolerance {}%: {}",
            self.labels.len(),
            self.tolerance_pct,
            if self.has_regression() {
                "REGRESSION"
            } else {
                "ok"
            }
        );
        out
    }
}

/// Diffs a series of reports (release order) at the given tolerance:
/// every consecutive pair runs through [`diff_reports`], and all
/// metrics are pivoted into per-metric trend rows. Two reports reduce
/// to a single-step trend; the CLI keeps its classic two-report output
/// for that case.
pub fn trend_reports(reports: &[(String, &RunReport)], tolerance_pct: f64) -> TrendReport {
    let mut series: BTreeMap<String, Vec<Option<f64>>> = BTreeMap::new();
    for (i, (_, r)) in reports.iter().enumerate() {
        for (k, &v) in &r.metrics {
            series
                .entry(k.clone())
                .or_insert_with(|| vec![None; reports.len()])[i] = Some(v);
        }
    }
    let steps = reports
        .windows(2)
        .map(|w| diff_reports(w[0].1, w[1].1, tolerance_pct))
        .collect();
    TrendReport {
        labels: reports.iter().map(|(l, _)| l.clone()).collect(),
        series,
        steps,
        tolerance_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_wpa::ClusterProvenance;

    fn report_with(metrics: &[(&str, f64)]) -> RunReport {
        let mut r = RunReport {
            benchmark: "x".into(),
            scale: 1.0,
            seed: 1,
            ..RunReport::default()
        };
        for (k, v) in metrics {
            r.metrics.insert((*k).into(), *v);
        }
        r
    }

    #[test]
    fn self_diff_is_empty_at_zero_tolerance() {
        let mut r = report_with(&[("eval.speedup_pct", 5.0), ("doctor.skew", 0.1)]);
        r.wall.insert("total.wall_secs".into(), 9.0);
        r.layout.functions.push(FunctionProvenance {
            func_symbol: "f".into(),
            total_samples: 10,
            hot_blocks: 2,
            cold_blocks: 0,
            merge_gains: vec![1.0],
            layout_score: 2.0,
            input_score: 1.0,
            used_input_order: false,
            clusters: vec![ClusterProvenance {
                symbol: "f".into(),
                blocks: vec![0, 1],
                weight: 10,
                size: 20,
                cold: false,
                symbol_order_pos: Some(0),
            }],
        });
        let d = diff_reports(&r, &r, 0.0);
        assert!(d.is_empty());
        assert!(!d.has_regression());
        assert!(d.render().contains("identical"));
    }

    #[test]
    fn speedup_drop_beyond_tolerance_regresses() {
        let a = report_with(&[("eval.speedup_pct", 10.0)]);
        let b = report_with(&[("eval.speedup_pct", 9.0)]);
        // 10% relative drop: beyond a 5% tolerance, within a 20% one.
        assert!(diff_reports(&a, &b, 5.0).has_regression());
        assert!(!diff_reports(&a, &b, 20.0).has_regression());
        // An *improvement* never regresses.
        assert!(!diff_reports(&b, &a, 0.0).has_regression());
    }

    #[test]
    fn lower_better_metrics_gate_on_growth() {
        let a = report_with(&[("doctor.unmapped_rate", 0.01)]);
        let b = report_with(&[("doctor.unmapped_rate", 0.05)]);
        assert!(diff_reports(&a, &b, 10.0).has_regression());
        assert!(!diff_reports(&b, &a, 0.0).has_regression());
    }

    #[test]
    fn informational_and_wall_changes_never_gate() {
        let mut a = report_with(&[("wpa.hot_functions", 10.0)]);
        let mut b = report_with(&[("wpa.hot_functions", 50.0)]);
        a.wall.insert("total.wall_secs".into(), 1.0);
        b.wall.insert("total.wall_secs".into(), 99.0);
        let d = diff_reports(&a, &b, 0.0);
        assert!(!d.has_regression());
        assert_eq!(d.deltas.len(), 1);
        assert_eq!(d.wall_deltas.len(), 1);
    }

    #[test]
    fn missing_keys_are_reported_not_gated() {
        let a = report_with(&[("doctor.skew", 0.1), ("eval.speedup_pct", 5.0)]);
        let b = report_with(&[("eval.speedup_pct", 5.0), ("new.metric", 1.0)]);
        let d = diff_reports(&a, &b, 0.0);
        assert_eq!(d.only_in_a, vec!["doctor.skew".to_string()]);
        assert_eq!(d.only_in_b, vec!["new.metric".to_string()]);
        assert!(!d.has_regression());
        assert!(!d.is_empty());
    }

    #[test]
    fn layout_changes_are_structural() {
        let mk = |blocks: Vec<u32>, pos: Option<usize>| FunctionProvenance {
            func_symbol: "f".into(),
            total_samples: 10,
            hot_blocks: blocks.len(),
            cold_blocks: 0,
            merge_gains: vec![],
            layout_score: 0.0,
            input_score: 0.0,
            used_input_order: true,
            clusters: vec![ClusterProvenance {
                symbol: "f".into(),
                blocks,
                weight: 10,
                size: 20,
                cold: false,
                symbol_order_pos: pos,
            }],
        };
        let mut a = report_with(&[]);
        a.layout.functions.push(mk(vec![0, 1, 2], Some(3)));
        let mut b = report_with(&[]);
        b.layout.functions.push(mk(vec![0, 2, 1], Some(5)));
        let d = diff_reports(&a, &b, 0.0);
        assert_eq!(d.layout_changes.len(), 2, "block order + order pos");
        assert!(!d.has_regression());
        let mut c = report_with(&[]);
        c.layout.functions.push({
            let mut f = mk(vec![0, 1, 2], Some(3));
            f.func_symbol = "g".into();
            f
        });
        let d2 = diff_reports(&a, &c, 0.0);
        assert_eq!(d2.layout_changes.len(), 2, "f dropped, g added");
    }

    #[test]
    fn degradation_growth_at_equal_plans_regresses() {
        let plan = "transient=0.5";
        let mut a = report_with(&[]);
        a.fault_plan = plan.into();
        a.degradation.action_retries = 2;
        let mut b = report_with(&[]);
        b.fault_plan = plan.into();
        b.degradation.action_retries = 7;
        let d = diff_reports(&a, &b, 0.0);
        assert!(d.has_regression());
        assert_eq!(d.degradation_deltas.len(), 1);
        assert_eq!(d.degradation_deltas[0].direction, Direction::LowerBetter);
        assert!(d.render().contains("REGRESSION"));
        // Shrinking degradation at the same plan is an improvement.
        assert!(!diff_reports(&b, &a, 0.0).has_regression());
    }

    #[test]
    fn differing_plans_suspend_all_gating() {
        // Candidate ran under chaos: its degradation AND its worse
        // metrics are intentional, not regressions.
        let mut a = report_with(&[("eval.speedup_pct", 10.0)]);
        a.fault_plan = String::new();
        let mut b = report_with(&[("eval.speedup_pct", 2.0)]);
        b.fault_plan = "corrupt-lbr=1".into();
        b.degradation.lbr_records_dropped = 500;
        b.degradation.layout_mode = propeller_faults::LayoutMode::IdentityFallback;
        let d = diff_reports(&a, &b, 0.0);
        assert!(d.plans_differ());
        assert!(!d.has_regression());
        assert!(d.deltas.iter().all(|m| m.direction == Direction::Informational));
        assert!(d
            .degradation_deltas
            .iter()
            .all(|m| m.direction == Direction::Informational));
        assert!(d.render().contains("gating suspended"));
        assert!(!d.is_empty());
    }

    #[test]
    fn self_diff_of_degraded_report_is_empty() {
        let mut r = report_with(&[("eval.speedup_pct", 5.0)]);
        r.fault_plan = "transient=1:3".into();
        r.degradation.action_retries = 3;
        let d = diff_reports(&r, &r, 0.0);
        assert!(d.is_empty());
        assert!(!d.has_regression());
    }

    fn with_attr(mut r: RunReport, rows: &[(&str, u64)]) -> RunReport {
        use crate::perf::{AttributionSection, SymbolCounters};
        r.attribution = Some(AttributionSection {
            symbols: rows
                .iter()
                .map(|&(name, cycles)| SymbolCounters {
                    symbol: name.into(),
                    counters: propeller_sim::CounterSet {
                        cycles,
                        ..propeller_sim::CounterSet::default()
                    },
                })
                .collect(),
        });
        r
    }

    #[test]
    fn per_symbol_cycle_growth_regresses() {
        // Aggregate metrics identical — only one hot function silently
        // got slower. The per-symbol gate still catches it.
        let a = with_attr(report_with(&[("eval.speedup_pct", 5.0)]), &[("hot_a", 1000), ("hot_b", 500)]);
        let b = with_attr(report_with(&[("eval.speedup_pct", 5.0)]), &[("hot_a", 1200), ("hot_b", 480)]);
        let d = diff_reports(&a, &b, 0.5);
        assert!(d.has_regression());
        let hot_a = d.attribution_deltas.iter().find(|x| x.key == "hot_a").unwrap();
        assert!(hot_a.regression);
        assert_eq!(hot_a.direction, Direction::LowerBetter);
        // hot_b improved — reported, not a regression.
        let hot_b = d.attribution_deltas.iter().find(|x| x.key == "hot_b").unwrap();
        assert!(!hot_b.regression);
        assert!(d.render().contains("cycles[hot_a"));
        // Within tolerance: 20% growth passes a 25% gate.
        assert!(!diff_reports(&a, &b, 25.0).has_regression());
        // Self-diff stays empty.
        assert!(diff_reports(&a, &a, 0.0).is_empty());
    }

    #[test]
    fn attribution_gating_suspends_when_plans_differ() {
        let a = with_attr(report_with(&[]), &[("hot_a", 1000)]);
        let mut b = with_attr(report_with(&[]), &[("hot_a", 5000)]);
        b.fault_plan = "corrupt-lbr=1".into();
        let d = diff_reports(&a, &b, 0.0);
        assert!(!d.has_regression());
        assert_eq!(d.attribution_deltas[0].direction, Direction::Informational);
    }

    #[test]
    fn attribution_missing_sections_or_symbols_do_not_gate() {
        // Baseline without attribution (e.g. an old report): no gate.
        let a = report_with(&[]);
        let b = with_attr(report_with(&[]), &[("hot_a", 9999)]);
        assert!(diff_reports(&a, &b, 0.0).attribution_deltas.is_empty());
        // A symbol leaving the top-N is a ranking change, not a delta.
        let a = with_attr(report_with(&[]), &[("gone", 100)]);
        assert!(diff_reports(&a, &b, 0.0).attribution_deltas.is_empty());
    }

    #[test]
    fn trend_over_three_reports_gates_each_step() {
        let a = report_with(&[("eval.speedup_pct", 10.0), ("doctor.skew", 0.05)]);
        let b = report_with(&[("eval.speedup_pct", 9.8), ("doctor.skew", 0.05)]);
        let c = report_with(&[("eval.speedup_pct", 6.0), ("doctor.skew", 0.55)]);
        let reports = vec![
            ("r0.json".to_string(), &a),
            ("r1.json".to_string(), &b),
            ("r2.json".to_string(), &c),
        ];
        let t = trend_reports(&reports, 5.0);
        assert_eq!(t.steps.len(), 2);
        // r0 -> r1 drops speedup 2% (within 5%); r1 -> r2 drops ~39%.
        assert!(!t.steps[0].has_regression());
        assert!(t.steps[1].has_regression());
        assert!(t.has_regression());
        assert_eq!(
            t.series["eval.speedup_pct"],
            vec![Some(10.0), Some(9.8), Some(6.0)]
        );
        let rendered = t.render();
        assert!(rendered.contains("eval.speedup_pct"));
        assert!(rendered.contains("worsening"));
        assert!(rendered.contains("REGRESSION"));
    }

    #[test]
    fn trend_handles_missing_metrics_and_stays_clean_on_flat_series() {
        let mut a = report_with(&[("eval.speedup_pct", 4.0)]);
        a.metrics.insert("old.metric".into(), 1.0);
        let b = report_with(&[("eval.speedup_pct", 4.0)]);
        let reports = vec![("a".to_string(), &a), ("b".to_string(), &b)];
        let t = trend_reports(&reports, 0.0);
        assert!(!t.has_regression());
        assert_eq!(t.series["old.metric"], vec![Some(1.0), None]);
        assert!(t.render().contains('-'));
    }

    #[test]
    fn zero_baseline_uses_signed_full_delta() {
        let a = report_with(&[("mapper.unmapped_addrs", 0.0)]);
        let b = report_with(&[("mapper.unmapped_addrs", 3.0)]);
        let d = diff_reports(&a, &b, 50.0);
        assert!((d.deltas[0].delta_pct - 100.0).abs() < 1e-12);
        assert!(d.has_regression());
    }
}
