//! The machine-readable `RunReport`: one JSON artifact per pipeline
//! run, carrying deterministic metrics (the regression-gate surface),
//! modeled wall times (informational), full layout provenance, and an
//! optional embedded telemetry snapshot.
//!
//! `metrics` and `wall` are deliberately separate maps: everything in
//! `metrics` is a pure function of (program, seed, options) and safe to
//! gate CI on; `wall` figures come from the cost model's scheduling and
//! are reported but never treated as regressions by [`crate::diff`].

use crate::audit::ProfileAudit;
use crate::perf::AttributionSection;
use propeller::{EvalReport, Propeller, PropellerReport};
use propeller_faults::DegradationLedger;
use propeller_telemetry::{JsonValue, MetricsSnapshot};
use propeller_wpa::{ClusterProvenance, FunctionProvenance, LayoutProvenance};
use std::collections::BTreeMap;

/// One run's machine-readable report.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct RunReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Scale the benchmark was generated at.
    pub scale: f64,
    /// Workload seed.
    pub seed: u64,
    /// Deterministic metrics by name — the diffable, gateable surface.
    pub metrics: BTreeMap<String, f64>,
    /// Modeled wall-clock figures by name (informational only).
    pub wall: BTreeMap<String, f64>,
    /// Per-hot-function layout decisions.
    pub layout: LayoutProvenance,
    /// Canonical fault-plan spec string the run executed under (empty
    /// when no faults were scheduled). Two reports are only
    /// gate-comparable on degradation at equal plans.
    pub fault_plan: String,
    /// Exact account of every degradation the run performed under
    /// fault injection (all-zero on clean runs).
    pub degradation: DegradationLedger,
    /// Embedded metrics-registry snapshot, when telemetry was on.
    pub telemetry: Option<MetricsSnapshot>,
    /// Top-N symbol-attributed counters of the optimized binary's
    /// evaluation run, when attribution was collected. Callers set
    /// this after [`RunReport::collect`]; `None` keeps the JSON
    /// bit-identical to pre-attribution reports.
    pub attribution: Option<AttributionSection>,
}

impl RunReport {
    /// Assembles a report from a completed pipeline.
    ///
    /// `eval`, `audit` and `telemetry` are optional: each adds its
    /// metric family when present (`eval.*`, `doctor.*`, and the
    /// embedded snapshot respectively).
    #[allow(clippy::too_many_arguments)]
    pub fn collect(
        benchmark: &str,
        scale: f64,
        seed: u64,
        pipeline: &Propeller,
        summary: &PropellerReport,
        eval: Option<&EvalReport>,
        audit: Option<&ProfileAudit>,
        telemetry: Option<MetricsSnapshot>,
    ) -> RunReport {
        let mut m = BTreeMap::new();
        let w = &summary.wpa;
        m.insert("wpa.functions_seen".into(), w.functions_seen as f64);
        m.insert("wpa.hot_functions".into(), w.hot_functions as f64);
        m.insert("wpa.hot_blocks".into(), w.hot_blocks as f64);
        m.insert("wpa.dcfg_edges".into(), w.dcfg_edges as f64);
        m.insert("wpa.profile_bytes".into(), w.profile_bytes as f64);
        m.insert(
            "wpa.modeled_peak_memory".into(),
            w.modeled_peak_memory as f64,
        );
        m.insert("mapper.skipped_funcs".into(), w.skipped_funcs as f64);
        m.insert("mapper.addr_lookups".into(), w.addr_lookups as f64);
        m.insert("mapper.unmapped_addrs".into(), w.addr_unmapped as f64);
        m.insert(
            "cache.ir_hit_rate".into(),
            hit_rate(summary.ir_cache.hits, summary.ir_cache.lookups),
        );
        m.insert(
            "cache.obj_hit_rate".into(),
            hit_rate(summary.object_cache.hits, summary.object_cache.lookups),
        );
        m.insert(
            "hot_module_fraction".into(),
            summary.hot_module_fraction,
        );
        m.insert("relax.deleted_jumps".into(), summary.deleted_jumps as f64);
        m.insert(
            "relax.shrunk_branches".into(),
            summary.shrunk_branches as f64,
        );
        if let Some(e) = eval {
            m.insert("eval.speedup_pct".into(), e.speedup_pct());
            m.insert("eval.base_cycles".into(), e.baseline.cycles as f64);
            m.insert("eval.opt_cycles".into(), e.optimized.cycles as f64);
            m.insert("eval.base_ipc".into(), e.baseline.ipc());
            m.insert("eval.opt_ipc".into(), e.optimized.ipc());
            m.insert(
                "eval.l1i_miss_delta_pct".into(),
                e.optimized.delta_pct(&e.baseline, |c| c.l1i_misses),
            );
            m.insert(
                "eval.itlb_miss_delta_pct".into(),
                e.optimized.delta_pct(&e.baseline, |c| c.itlb_misses),
            );
            m.insert(
                "eval.baclears_delta_pct".into(),
                e.optimized.delta_pct(&e.baseline, |c| c.baclears),
            );
        }
        if let Some(a) = audit {
            m.insert("doctor.sample_coverage".into(), a.sample_coverage);
            m.insert("doctor.unmapped_rate".into(), a.unmapped_rate);
            m.insert(
                "doctor.fallthrough_confidence".into(),
                a.fallthrough_confidence,
            );
            m.insert(
                "doctor.sample_capture_ratio".into(),
                a.sample_capture_ratio,
            );
            if let Some(skew) = a.skew {
                m.insert("doctor.skew".into(), skew);
            }
        }

        let mut wall = BTreeMap::new();
        let t = &summary.times;
        wall.insert("phase1.wall_secs".into(), t.phase1.wall_secs);
        wall.insert("phase2.wall_secs".into(), t.phase2.wall_secs);
        wall.insert("phase3.wall_secs".into(), t.phase3.wall_secs);
        wall.insert("phase4.wall_secs".into(), t.phase4.wall_secs);
        wall.insert("total.wall_secs".into(), t.total_wall_secs());

        // Provenance-collection counters stay visible in the Chrome
        // trace but are scrubbed from the embedded snapshot: arming
        // provenance must leave run_report.json bit-identical to an
        // unarmed run (the bench-gate baseline is unarmed).
        let telemetry = telemetry.map(|mut snap| {
            snap.counters.retain(|k, _| !k.starts_with("wpa.provenance."));
            snap
        });
        RunReport {
            benchmark: benchmark.to_string(),
            scale,
            seed,
            metrics: m,
            wall,
            layout: pipeline
                .wpa_output()
                .map(|w| w.provenance.clone())
                .unwrap_or_default(),
            fault_plan: pipeline.options().faults.to_spec_string(),
            degradation: summary.degradation.clone(),
            telemetry,
            attribution: None,
        }
    }

    /// Serializes the report as a [`JsonValue`].
    pub fn to_json(&self) -> JsonValue {
        let num_map = |m: &BTreeMap<String, f64>| {
            JsonValue::Obj(
                m.iter()
                    .map(|(k, v)| (k.clone(), JsonValue::Num(*v)))
                    .collect(),
            )
        };
        let mut members = vec![
            ("benchmark".to_string(), JsonValue::Str(self.benchmark.clone())),
            ("scale".to_string(), JsonValue::Num(self.scale)),
            ("seed".to_string(), JsonValue::Num(self.seed as f64)),
            ("metrics".to_string(), num_map(&self.metrics)),
            ("wall".to_string(), num_map(&self.wall)),
            (
                "layout".to_string(),
                JsonValue::Arr(
                    self.layout
                        .functions
                        .iter()
                        .map(function_to_json)
                        .collect(),
                ),
            ),
        ];
        // Omitted when empty/clean so fault-free runs serialize
        // bit-identically to reports written before the fault layer
        // existed (the bench-gate baseline relies on this).
        if !self.fault_plan.is_empty() {
            members.push((
                "fault_plan".to_string(),
                JsonValue::Str(self.fault_plan.clone()),
            ));
        }
        if !self.degradation.is_clean() {
            members.push((
                "degradation".to_string(),
                JsonValue::Obj(
                    self.degradation
                        .entries()
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), JsonValue::Num(v)))
                        .collect(),
                ),
            ));
        }
        if let Some(tel) = &self.telemetry {
            members.push(("telemetry".to_string(), tel.to_json()));
        }
        // Also optional: reports without attribution (the default, and
        // every pre-attribution baseline) must not mention it.
        if let Some(attr) = &self.attribution {
            if !attr.is_empty() {
                members.push(("attribution".to_string(), attr.to_json()));
            }
        }
        JsonValue::Obj(members)
    }

    /// The pretty-printed JSON document.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Reconstructs a report from [`RunReport::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or ill-typed member.
    pub fn from_json(v: &JsonValue) -> Result<RunReport, String> {
        let benchmark = v
            .get("benchmark")
            .and_then(JsonValue::as_str)
            .ok_or("missing `benchmark`")?
            .to_string();
        let scale = v
            .get("scale")
            .and_then(JsonValue::as_f64)
            .ok_or("missing `scale`")?;
        let seed = v
            .get("seed")
            .and_then(JsonValue::as_u64)
            .ok_or("missing `seed`")?;
        let num_map = |key: &str| -> Result<BTreeMap<String, f64>, String> {
            let mut out = BTreeMap::new();
            for (k, val) in v
                .get(key)
                .and_then(JsonValue::as_obj)
                .ok_or_else(|| format!("missing `{key}`"))?
            {
                out.insert(
                    k.clone(),
                    val.as_f64().ok_or_else(|| format!("`{key}.{k}` not a number"))?,
                );
            }
            Ok(out)
        };
        let mut layout = LayoutProvenance::default();
        for f in v
            .get("layout")
            .and_then(JsonValue::as_arr)
            .ok_or("missing `layout`")?
        {
            layout.functions.push(function_from_json(f)?);
        }
        // Both fault members are optional: reports from clean runs
        // (and all pre-fault-layer baselines) simply lack them.
        let fault_plan = v
            .get("fault_plan")
            .and_then(JsonValue::as_str)
            .unwrap_or("")
            .to_string();
        let degradation = match v.get("degradation").and_then(JsonValue::as_obj) {
            Some(obj) => {
                let mut pairs = Vec::new();
                for (k, val) in obj {
                    pairs.push((
                        k.as_str(),
                        val.as_f64()
                            .ok_or_else(|| format!("`degradation.{k}` not a number"))?,
                    ));
                }
                DegradationLedger::from_entries(pairs)
            }
            None => DegradationLedger::default(),
        };
        let telemetry = match v.get("telemetry") {
            Some(t) => {
                Some(MetricsSnapshot::from_json(t).ok_or("malformed `telemetry`")?)
            }
            None => None,
        };
        let attribution = match v.get("attribution") {
            Some(a) => Some(AttributionSection::from_json(a)?),
            None => None,
        };
        Ok(RunReport {
            benchmark,
            scale,
            seed,
            metrics: num_map("metrics")?,
            wall: num_map("wall")?,
            layout,
            fault_plan,
            degradation,
            telemetry,
            attribution,
        })
    }

    /// Parses a serialized report.
    ///
    /// # Errors
    ///
    /// Reports both JSON syntax errors and schema mismatches.
    pub fn parse(text: &str) -> Result<RunReport, String> {
        let v = JsonValue::parse(text).map_err(|e| e.to_string())?;
        RunReport::from_json(&v)
    }
}

fn hit_rate(hits: u64, lookups: u64) -> f64 {
    if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    }
}

fn function_to_json(f: &FunctionProvenance) -> JsonValue {
    JsonValue::Obj(vec![
        ("func".to_string(), JsonValue::Str(f.func_symbol.clone())),
        (
            "total_samples".to_string(),
            JsonValue::Num(f.total_samples as f64),
        ),
        ("hot_blocks".to_string(), JsonValue::Num(f.hot_blocks as f64)),
        (
            "cold_blocks".to_string(),
            JsonValue::Num(f.cold_blocks as f64),
        ),
        (
            "merge_gains".to_string(),
            JsonValue::Arr(f.merge_gains.iter().map(|&g| JsonValue::Num(g)).collect()),
        ),
        ("layout_score".to_string(), JsonValue::Num(f.layout_score)),
        ("input_score".to_string(), JsonValue::Num(f.input_score)),
        (
            "used_input_order".to_string(),
            JsonValue::Bool(f.used_input_order),
        ),
        (
            "clusters".to_string(),
            JsonValue::Arr(f.clusters.iter().map(cluster_to_json).collect()),
        ),
    ])
}

fn cluster_to_json(c: &ClusterProvenance) -> JsonValue {
    JsonValue::Obj(vec![
        ("symbol".to_string(), JsonValue::Str(c.symbol.clone())),
        (
            "blocks".to_string(),
            JsonValue::Arr(c.blocks.iter().map(|&b| JsonValue::Num(b as f64)).collect()),
        ),
        ("weight".to_string(), JsonValue::Num(c.weight as f64)),
        ("size".to_string(), JsonValue::Num(c.size as f64)),
        ("cold".to_string(), JsonValue::Bool(c.cold)),
        (
            "order_pos".to_string(),
            match c.symbol_order_pos {
                Some(p) => JsonValue::Num(p as f64),
                None => JsonValue::Null,
            },
        ),
    ])
}

fn function_from_json(v: &JsonValue) -> Result<FunctionProvenance, String> {
    let str_of = |key: &str| {
        v.get(key)
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("layout entry missing `{key}`"))
    };
    let num_of = |key: &str| {
        v.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("layout entry missing `{key}`"))
    };
    let mut clusters = Vec::new();
    for c in v
        .get("clusters")
        .and_then(JsonValue::as_arr)
        .ok_or("layout entry missing `clusters`")?
    {
        clusters.push(cluster_from_json(c)?);
    }
    Ok(FunctionProvenance {
        func_symbol: str_of("func")?,
        total_samples: num_of("total_samples")? as u64,
        hot_blocks: num_of("hot_blocks")? as usize,
        cold_blocks: num_of("cold_blocks")? as usize,
        merge_gains: v
            .get("merge_gains")
            .and_then(JsonValue::as_arr)
            .ok_or("layout entry missing `merge_gains`")?
            .iter()
            .map(|g| g.as_f64().ok_or("bad merge gain"))
            .collect::<Result<_, _>>()?,
        layout_score: num_of("layout_score")?,
        input_score: num_of("input_score")?,
        used_input_order: matches!(v.get("used_input_order"), Some(JsonValue::Bool(true))),
        clusters,
    })
}

fn cluster_from_json(v: &JsonValue) -> Result<ClusterProvenance, String> {
    Ok(ClusterProvenance {
        symbol: v
            .get("symbol")
            .and_then(JsonValue::as_str)
            .ok_or("cluster missing `symbol`")?
            .to_string(),
        blocks: v
            .get("blocks")
            .and_then(JsonValue::as_arr)
            .ok_or("cluster missing `blocks`")?
            .iter()
            .map(|b| b.as_u64().map(|b| b as u32).ok_or("bad block id"))
            .collect::<Result<_, _>>()?,
        weight: v
            .get("weight")
            .and_then(JsonValue::as_u64)
            .ok_or("cluster missing `weight`")?,
        size: v
            .get("size")
            .and_then(JsonValue::as_u64)
            .ok_or("cluster missing `size`")?,
        cold: matches!(v.get("cold"), Some(JsonValue::Bool(true))),
        symbol_order_pos: v.get("order_pos").and_then(JsonValue::as_u64).map(|p| p as usize),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_report() -> RunReport {
        let mut r = RunReport {
            benchmark: "clang".into(),
            scale: 0.01,
            seed: 7,
            ..RunReport::default()
        };
        r.metrics.insert("eval.speedup_pct".into(), 6.25);
        r.metrics.insert("doctor.sample_coverage".into(), 0.97);
        r.wall.insert("total.wall_secs".into(), 123.5);
        r.layout.functions.push(FunctionProvenance {
            func_symbol: "hot_a".into(),
            total_samples: 400,
            hot_blocks: 3,
            cold_blocks: 1,
            merge_gains: vec![12.0, 3.5],
            layout_score: 390.0,
            input_score: 205.5,
            used_input_order: false,
            clusters: vec![
                ClusterProvenance {
                    symbol: "hot_a".into(),
                    blocks: vec![0, 2, 1],
                    weight: 400,
                    size: 96,
                    cold: false,
                    symbol_order_pos: Some(0),
                },
                ClusterProvenance {
                    symbol: "hot_a.cold".into(),
                    blocks: vec![3],
                    weight: 0,
                    size: 16,
                    cold: true,
                    symbol_order_pos: None,
                },
            ],
        });
        r
    }

    #[test]
    fn round_trips_through_json() {
        let r = sample_report();
        let back = RunReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn round_trips_with_telemetry() {
        let mut r = sample_report();
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("mapper.unmapped_addrs".into(), 9);
        r.telemetry = Some(snap);
        let back = RunReport::parse(&r.to_json_string()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.telemetry.unwrap().counter("mapper.unmapped_addrs"), 9);
    }

    #[test]
    fn round_trips_fault_plan_and_degradation() {
        let mut r = sample_report();
        r.fault_plan = "transient=0.5,corrupt-cache=1:2".into();
        r.degradation.action_retries = 4;
        r.degradation.retry_backoff_secs = 3.25;
        r.degradation.layout_mode = propeller_faults::LayoutMode::IdentityFallback;
        let json = r.to_json_string();
        assert!(json.contains("fault_plan"));
        assert!(json.contains("action_retries"));
        let back = RunReport::parse(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn clean_reports_omit_fault_members() {
        // Bit-identity with pre-fault-layer baselines: a clean run's
        // JSON must not even mention the fault machinery, and parsing
        // such a document yields empty plan + clean ledger.
        let r = sample_report();
        let json = r.to_json_string();
        assert!(!json.contains("fault_plan"));
        assert!(!json.contains("degradation"));
        let back = RunReport::parse(&json).unwrap();
        assert!(back.fault_plan.is_empty());
        assert!(back.degradation.is_clean());
    }

    #[test]
    fn round_trips_attribution_and_omits_when_absent() {
        use crate::perf::SymbolCounters;
        // Absent (the default): the JSON must not mention attribution,
        // preserving bit-identity with pre-attribution baselines.
        let clean = sample_report();
        assert!(!clean.to_json_string().contains("attribution"));

        let mut r = sample_report();
        r.attribution = Some(AttributionSection {
            symbols: vec![SymbolCounters {
                symbol: "hot_a".into(),
                counters: propeller_sim::CounterSet {
                    cycles: 1234,
                    insts: 900,
                    l1i_misses: 17,
                    ..propeller_sim::CounterSet::default()
                },
            }],
        });
        let json = r.to_json_string();
        assert!(json.contains("attribution"));
        let back = RunReport::parse(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn rejects_schema_violations() {
        assert!(RunReport::parse("{}").is_err());
        assert!(RunReport::parse("not json").is_err());
        let missing_metrics =
            r#"{"benchmark": "x", "scale": 1, "seed": 0, "wall": {}, "layout": []}"#;
        assert!(RunReport::parse(missing_metrics).is_err());
        let bad_metric = r#"{"benchmark": "x", "scale": 1, "seed": 0,
            "metrics": {"m": "not a number"}, "wall": {}, "layout": []}"#;
        assert!(RunReport::parse(bad_metric).is_err());
    }
}
