//! # The Propeller doctor: profile-quality audits and run diffs
//!
//! Propeller's whole-program analyzer silently tolerates bad inputs:
//! samples that map to no block are dropped, functions whose symbols
//! don't resolve vanish from the address map, and a stale profile
//! produces a confidently wrong layout. This crate makes those failure
//! modes *measurable*:
//!
//! * [`audit`] — the math: per-run sample coverage of hot text,
//!   unmapped-address rate, fall-through inference confidence, the
//!   sample-capture ratio (truncation detector), and a stale-profile
//!   skew score obtained by re-simulating the profiled workload on the
//!   optimized binary;
//! * [`doctor`] — WARN/FAIL thresholds over an audit, rendered as the
//!   `propeller_cli doctor` report;
//! * [`report`] — the machine-readable [`RunReport`] JSON artifact:
//!   deterministic metrics, modeled wall times, full layout provenance
//!   (per hot function: cluster decisions, Ext-TSP merge gains, final
//!   symbol-order positions), and an embedded telemetry snapshot;
//! * [`diff`] — structural + metric diffs between two `RunReport`s
//!   with per-direction regression tolerances; `propeller_cli diff` is
//!   the CI bench gate built on it;
//! * [`perf`] — `perf report`/`perf annotate` over the simulator's
//!   symbol attribution: the differential baseline/Propeller/BOLT
//!   top-N table, the per-function block walk joined against Ext-TSP
//!   provenance, and the [`AttributionSection`] rows that `RunReport`
//!   embeds and `diff` gates per-symbol.

pub mod audit;
pub mod diff;
pub mod doctor;
pub mod perf;
pub mod policy;
pub mod provenance;
pub mod report;
pub mod service;
pub mod slo;

pub use audit::{
    audit_pipeline, audit_profile, audit_profile_with_reference, layout_skew, layout_skew_agg,
    ExpectedLoad, ProfileAudit,
};
pub use diff::{
    diff_reports, direction_of, trend_reports, DiffReport, Direction, LayoutChange, MetricDelta,
    TrendReport,
};
pub use policy::{RelinkDecision, RelinkPolicy};
pub use doctor::{
    degradation_findings, diagnose, render, wall_clock_findings, wall_clock_findings_with, worst,
    DoctorConfig, Finding, Severity,
};
pub use perf::{render_annotate, render_perf_report, AttributionSection, SymbolCounters};
pub use provenance::{
    diff_docs, provenance_findings, render_explain, render_layout_diff, MovedSymbol,
    ProvenanceDiff, ProvenanceDoc, ProvenanceFunction,
};
pub use report::RunReport;
pub use service::{diff_service_ledgers, service_findings};
pub use slo::{
    diff_timeseries, evaluate_slo, SloConfig, SloObjective, SloParseError, SloReport,
};
