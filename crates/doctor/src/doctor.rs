//! Turning a [`ProfileAudit`] into a human-readable verdict with
//! WARN/FAIL thresholds, plus the degradation section: what the run
//! gave up to survive injected faults.

use crate::audit::ProfileAudit;
use propeller_faults::{DegradationLedger, LayoutMode};
use std::fmt::Write as _;

/// How bad a finding is.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Within thresholds.
    Ok,
    /// Degraded but usable; layout quality is probably reduced.
    Warn,
    /// The profile should not be trusted to drive a layout.
    Fail,
}

impl Severity {
    /// Fixed-width label for report rendering.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Ok => "OK  ",
            Severity::Warn => "WARN",
            Severity::Fail => "FAIL",
        }
    }
}

/// One audited dimension's verdict.
#[derive(Clone, PartialEq, Debug)]
pub struct Finding {
    /// Severity of the finding.
    pub severity: Severity,
    /// The metric key this verdict is about (matches the `RunReport`
    /// metric name).
    pub metric: String,
    /// The observed value.
    pub value: f64,
    /// Human-readable explanation.
    pub message: String,
}

/// WARN/FAIL thresholds for each audited dimension.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct DoctorConfig {
    /// Coverage below this warns (default 0.90).
    pub coverage_warn: f64,
    /// Coverage below this fails (default 0.75).
    pub coverage_fail: f64,
    /// Unmapped-address rate above this warns (default 0.01).
    pub unmapped_warn: f64,
    /// Unmapped-address rate above this fails (default 0.10).
    pub unmapped_fail: f64,
    /// Fall-through confidence below this warns (default 0.95).
    pub fallthrough_warn: f64,
    /// Sample-capture ratio below this warns (default 0.90).
    pub capture_warn: f64,
    /// Sample-capture ratio below this fails (default 0.50).
    pub capture_fail: f64,
    /// Skew score above this warns (default 0.40 — fresh profiles
    /// re-simulated over ~50k events sit near 0.25 from sampling noise
    /// alone, so the bar must clear that floor).
    pub skew_warn: f64,
    /// Skew score above this fails (default 0.70).
    pub skew_fail: f64,
    /// Measured-wall-vs-pool-model divergence ratio above this warns
    /// (default 5.0): a phase whose real wall clock exceeds 5× the
    /// `busy/jobs` prediction at the configured job count is not
    /// getting the parallelism it was asked for (oversubscribed
    /// machine, serialized work, or lock contention).
    pub wall_divergence_warn: f64,
    /// Provenance coverage (hot functions with a full decision record /
    /// hot functions) below this warns (default 0.95). Only consulted
    /// when a provenance document was collected at all.
    pub provenance_coverage_warn: f64,
}

impl Default for DoctorConfig {
    fn default() -> Self {
        DoctorConfig {
            coverage_warn: 0.90,
            coverage_fail: 0.75,
            unmapped_warn: 0.01,
            unmapped_fail: 0.10,
            fallthrough_warn: 0.95,
            capture_warn: 0.90,
            capture_fail: 0.50,
            skew_warn: 0.40,
            skew_fail: 0.70,
            wall_divergence_warn: 5.0,
            provenance_coverage_warn: 0.95,
        }
    }
}

/// Grades a value where *low* is bad.
fn grade_low(v: f64, warn: f64, fail: Option<f64>) -> Severity {
    match fail {
        Some(f) if v < f => Severity::Fail,
        _ if v < warn => Severity::Warn,
        _ => Severity::Ok,
    }
}

/// Grades a value where *high* is bad.
fn grade_high(v: f64, warn: f64, fail: f64) -> Severity {
    if v > fail {
        Severity::Fail
    } else if v > warn {
        Severity::Warn
    } else {
        Severity::Ok
    }
}

/// Evaluates every audited dimension against `cfg`, in a fixed order.
pub fn diagnose(audit: &ProfileAudit, cfg: &DoctorConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    out.push(Finding {
        severity: grade_low(
            audit.sample_coverage,
            cfg.coverage_warn,
            Some(cfg.coverage_fail),
        ),
        metric: "doctor.sample_coverage".into(),
        value: audit.sample_coverage,
        message: format!(
            "{:.1}% of hot text bytes received mapped samples \
             ({}/{} bytes)",
            audit.sample_coverage * 100.0,
            audit.covered_bytes,
            audit.auditable_bytes
        ),
    });
    out.push(Finding {
        severity: grade_high(audit.unmapped_rate, cfg.unmapped_warn, cfg.unmapped_fail),
        metric: "doctor.unmapped_rate".into(),
        value: audit.unmapped_rate,
        message: format!(
            "{:.2}% of sample mass hit addresses with no mapped block \
             ({}/{} weighted lookups)",
            audit.unmapped_rate * 100.0,
            audit.addr_unmapped,
            audit.addr_lookups
        ),
    });
    out.push(Finding {
        severity: grade_low(audit.fallthrough_confidence, cfg.fallthrough_warn, None),
        metric: "doctor.fallthrough_confidence".into(),
        value: audit.fallthrough_confidence,
        message: format!(
            "{:.1}% of fall-through range weight is well-formed \
             (ordered, mapped, single-function)",
            audit.fallthrough_confidence * 100.0
        ),
    });
    out.push(Finding {
        severity: grade_low(
            audit.sample_capture_ratio,
            cfg.capture_warn,
            Some(cfg.capture_fail),
        ),
        metric: "doctor.sample_capture_ratio".into(),
        value: audit.sample_capture_ratio,
        message: format!(
            "{} samples captured of ~{} expected from the run's \
             taken-branch count",
            audit.num_samples, audit.expected_samples
        ),
    });
    if let Some(skew) = audit.skew {
        out.push(Finding {
            severity: grade_high(skew, cfg.skew_warn, cfg.skew_fail),
            metric: "doctor.skew".into(),
            value: skew,
            message: format!(
                "profile-vs-optimized edge distributions differ by \
                 {:.1}% total variation",
                skew * 100.0
            ),
        });
    }
    out.push(Finding {
        severity: if audit.skipped_funcs > 0 {
            Severity::Warn
        } else {
            Severity::Ok
        },
        metric: "mapper.skipped_funcs".into(),
        value: audit.skipped_funcs as f64,
        message: format!(
            "{} address-map function(s) dropped because no range symbol \
             resolved",
            audit.skipped_funcs
        ),
    });
    out
}

/// What a nonzero ledger entry means, in doctor-report prose.
fn degradation_message(name: &str) -> &'static str {
    match name {
        "action_retries" => "build actions retried after transient failures",
        "action_timeouts" => "build actions hung, timed out, and were rescheduled",
        "retry_backoff_secs" => "modeled seconds spent waiting in retry backoff",
        "cache_corruptions" => "cache entries failed digest verification and were invalidated",
        "cache_evictions" => "cache entries evicted from under the pipeline",
        "cache_rebuilds" => "artifacts rebuilt after cache corruption or eviction",
        "lbr_records_corrupted" => "LBR records corrupted in the raw profile",
        "lbr_records_dropped" => "out-of-range LBR records dropped by salvage",
        "lbr_samples_truncated" => "profile samples truncated mid-capture",
        "lbr_records_truncated" => "LBR records lost to sample truncation",
        "functions_marked_cold" => "hot functions demoted to cold after profile loss",
        "objects_fallen_back" => "hot objects shipped from cached baseline codegen",
        _ => "degradation recorded under fault injection",
    }
}

/// The degradation section of the doctor report: one finding per
/// nonzero [`DegradationLedger`] entry.
///
/// Degradation is never [`Severity::Fail`] — the whole point of the
/// graceful-degradation design is that the output binary stays correct;
/// what suffers is layout quality and modeled build time. A clean
/// ledger yields a single OK finding so the section always renders.
pub fn degradation_findings(ledger: &DegradationLedger) -> Vec<Finding> {
    if ledger.is_clean() {
        return vec![Finding {
            severity: Severity::Ok,
            metric: "faults.none".into(),
            value: 0.0,
            message: "no degradation recorded; the run was fault-free".into(),
        }];
    }
    let mut out = Vec::new();
    for (name, v) in ledger.entries() {
        // The layout mode gets its own dedicated finding below.
        if name == "layout_identity_fallback" || v == 0.0 {
            continue;
        }
        out.push(Finding {
            severity: Severity::Warn,
            metric: format!("faults.{name}"),
            value: v,
            message: degradation_message(name).into(),
        });
    }
    if ledger.layout_mode == LayoutMode::IdentityFallback {
        out.push(Finding {
            severity: Severity::Warn,
            metric: "faults.layout_identity_fallback".into(),
            value: 1.0,
            message: "salvaged profile fell below the coverage floor; shipped the \
                      baseline-identical identity layout"
                .into(),
        });
    }
    out
}

/// Audits measured wall-clock against the worker-pool model: for each
/// phase that ran real local work, `wall × jobs / busy` says how far
/// the real clock diverged from the `wall ≈ busy/jobs` prediction.
/// Ratios above [`DoctorConfig::wall_divergence_warn`] WARN — the run
/// was correct (modeled times and reports are clock-independent) but
/// the machine did not deliver the parallelism `--jobs` asked for.
/// Phases that measured nothing (modeled-only, or all cache hits) get
/// a single OK finding.
pub fn wall_clock_findings(times: &propeller::PhaseTimes, jobs: usize) -> Vec<Finding> {
    wall_clock_findings_with(times, jobs, &DoctorConfig::default())
}

/// [`wall_clock_findings`] with explicit thresholds.
pub fn wall_clock_findings_with(
    times: &propeller::PhaseTimes,
    jobs: usize,
    cfg: &DoctorConfig,
) -> Vec<Finding> {
    let phases = [
        ("phase1", &times.phase1),
        ("phase2", &times.phase2),
        ("phase3", &times.phase3),
        ("phase4", &times.phase4),
    ];
    let mut out = Vec::new();
    for (name, report) in phases {
        let Some(divergence) = report.wall_model_divergence(jobs) else {
            continue;
        };
        let severity = if divergence > cfg.wall_divergence_warn {
            Severity::Warn
        } else {
            Severity::Ok
        };
        out.push(Finding {
            severity,
            metric: format!("wall.{name}_model_divergence"),
            value: divergence,
            message: format!(
                "{name} measured {} µs wall for {} µs of work at --jobs {jobs} \
                 ({:.0}% parallel efficiency; model predicts ~{} µs)",
                report.wall_us,
                report.busy_us,
                report.parallel_efficiency(jobs).unwrap_or(0.0) * 100.0,
                report.busy_us / jobs.max(1) as u64,
            ),
        });
    }
    if out.is_empty() {
        out.push(Finding {
            severity: Severity::Ok,
            metric: "wall.unmeasured".into(),
            value: 0.0,
            message: "no phase measured real pool work (modeled-only run or all cache hits)"
                .into(),
        });
    }
    out
}

/// The worst severity across findings ([`Severity::Ok`] when empty).
pub fn worst(findings: &[Finding]) -> Severity {
    findings
        .iter()
        .map(|f| f.severity)
        .max()
        .unwrap_or(Severity::Ok)
}

/// Renders the findings as the `propeller_cli doctor` report.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::from("profile-quality audit\n");
    for f in findings {
        let _ = writeln!(
            out,
            "  [{}] {:<30} {:>10.4}  {}",
            f.severity.label(),
            f.metric,
            f.value,
            f.message
        );
    }
    let verdict = worst(findings);
    let _ = writeln!(
        out,
        "verdict: {}",
        match verdict {
            Severity::Ok => "profile is healthy",
            Severity::Warn => "profile is degraded (see WARN lines)",
            Severity::Fail => "profile should not be trusted (see FAIL lines)",
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn healthy() -> ProfileAudit {
        ProfileAudit {
            sample_coverage: 0.97,
            covered_bytes: 970,
            auditable_bytes: 1000,
            unmapped_rate: 0.0,
            addr_lookups: 5000,
            addr_unmapped: 0,
            skipped_funcs: 0,
            fallthrough_confidence: 1.0,
            sample_capture_ratio: 1.0,
            num_samples: 100,
            expected_samples: 100,
            skew: Some(0.02),
        }
    }

    #[test]
    fn wall_clock_divergence_warns_above_five_x() {
        let mut times = propeller::PhaseTimes::default();
        // Healthy: 8000 µs of work over 1100 µs wall on 8 jobs ≈ 1.1×.
        times.phase2.wall_us = 1100;
        times.phase2.busy_us = 8000;
        // Pathological: 8000 µs of work took 8000 µs wall on 8 jobs
        // (fully serialized) — 8× divergence.
        times.phase4.wall_us = 8000;
        times.phase4.busy_us = 8000;
        let f = wall_clock_findings(&times, 8);
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!(f[0].severity, Severity::Ok, "{f:?}");
        assert!(f[0].metric.contains("phase2"));
        assert_eq!(f[1].severity, Severity::Warn, "{f:?}");
        assert!(f[1].metric.contains("phase4"));
        assert!((f[1].value - 8.0).abs() < 1e-9);
    }

    #[test]
    fn unmeasured_run_reports_single_ok() {
        let f = wall_clock_findings(&propeller::PhaseTimes::default(), 8);
        assert_eq!(f.len(), 1);
        assert_eq!(worst(&f), Severity::Ok);
        assert!(f[0].metric.contains("unmeasured"));
    }

    #[test]
    fn healthy_audit_is_all_ok() {
        let findings = diagnose(&healthy(), &DoctorConfig::default());
        assert!(findings.iter().all(|f| f.severity == Severity::Ok));
        assert_eq!(worst(&findings), Severity::Ok);
        assert!(render(&findings).contains("profile is healthy"));
    }

    #[test]
    fn low_coverage_warns_then_fails() {
        let cfg = DoctorConfig::default();
        let mut a = healthy();
        a.sample_coverage = 0.85;
        let f = diagnose(&a, &cfg);
        assert_eq!(
            f.iter().find(|f| f.metric == "doctor.sample_coverage").unwrap().severity,
            Severity::Warn
        );
        a.sample_coverage = 0.5;
        assert_eq!(worst(&diagnose(&a, &cfg)), Severity::Fail);
    }

    #[test]
    fn truncation_and_unmapped_mass_fail() {
        let cfg = DoctorConfig::default();
        let mut a = healthy();
        a.sample_capture_ratio = 0.4;
        assert_eq!(worst(&diagnose(&a, &cfg)), Severity::Fail);
        let mut b = healthy();
        b.unmapped_rate = 0.2;
        assert_eq!(worst(&diagnose(&b, &cfg)), Severity::Fail);
    }

    #[test]
    fn clean_ledger_yields_single_ok_finding() {
        let f = degradation_findings(&DegradationLedger::default());
        assert_eq!(f.len(), 1);
        assert_eq!(worst(&f), Severity::Ok);
        assert!(f[0].message.contains("fault-free"));
    }

    #[test]
    fn degradation_warns_but_never_fails() {
        let l = DegradationLedger {
            action_retries: 3,
            cache_corruptions: 1,
            cache_rebuilds: 1,
            layout_mode: LayoutMode::IdentityFallback,
            ..DegradationLedger::default()
        };
        let f = degradation_findings(&l);
        // 3 nonzero counters + the layout-mode finding.
        assert_eq!(f.len(), 4);
        assert_eq!(worst(&f), Severity::Warn);
        assert!(f.iter().all(|f| f.severity != Severity::Fail));
        assert!(f.iter().any(|f| f.metric == "faults.layout_identity_fallback"));
        assert!(render(&f).contains("identity layout"));
    }

    #[test]
    fn skew_absent_until_measured_and_skipped_funcs_warn() {
        let mut a = healthy();
        a.skew = None;
        a.skipped_funcs = 2;
        let f = diagnose(&a, &DoctorConfig::default());
        assert!(f.iter().all(|f| f.metric != "doctor.skew"));
        assert_eq!(worst(&f), Severity::Warn);
        assert!(render(&f).contains("degraded"));
    }
}
