//! Per-tenant service accounting: the `ServiceLedger`.
//!
//! The relink service extends the chaos contract from single runs to
//! concurrent, multi-tenant traffic. The acceptance bar is the same
//! *exact* accounting discipline as [`DegradationLedger`]: every
//! arrival terminates in exactly one outcome counter, every fired
//! service-level fault shows up in precisely one row, and the whole
//! ledger serializes to a canonical JSON string that is byte-identical
//! across `--jobs` counts and replays of the same seed.
//!
//! The types live here (not in `crates/serve`) because the doctor
//! already depends on this crate; service findings and the ledger diff
//! gate would otherwise force a dependency cycle.

use crate::ledger::DegradationLedger;
use propeller_telemetry::JsonValue;
use std::collections::BTreeMap;
use std::fmt;

/// Exact accounting for one tenant's traffic through the service.
///
/// Terminal-outcome invariant: every arrival (submitted + burst
/// clones) ends in exactly one of `completed`, `rejected_memory`,
/// `rejected_queue`, `cancelled_by_client`, `cancelled_by_fault`, or
/// `deadline_timeouts`. `retries` and `queue_drops` are intermediate
/// events — a retried arrival is still the same arrival.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TenantLedger {
    /// Arrivals from the traffic plan itself.
    pub submitted: u64,
    /// Extra arrivals spawned by `burst-amplify` faults.
    pub burst_clones: u64,
    /// Jobs that reached a relink slot (including ones later cancelled
    /// mid-flight).
    pub admitted: u64,
    /// Jobs that ran to completion and shipped a binary.
    pub completed: u64,
    /// Arrivals refused at admission: declared peak RSS above the
    /// per-action memory ceiling.
    pub rejected_memory: u64,
    /// Arrivals that exhausted their client retry budget against a
    /// full (or dropping) queue.
    pub rejected_queue: u64,
    /// Client re-submissions after a queue-full refusal or a queue
    /// drop.
    pub retries: u64,
    /// Queued entries silently dropped by `drop-queue` faults.
    pub queue_drops: u64,
    /// Jobs cancelled by their owner (traffic-scheduled).
    pub cancelled_by_client: u64,
    /// Jobs cancelled mid-flight by `cancel-job` faults.
    pub cancelled_by_fault: u64,
    /// Jobs that aged out in the queue past their deadline.
    pub deadline_timeouts: u64,
    /// `evict-storm` faults triggered while this tenant's job started.
    pub eviction_storms: u64,
    /// Shared-cache entries force-evicted by this tenant's storms.
    pub storm_evicted_entries: u64,
    /// Shared-cache lookups attributed to this tenant.
    pub cache_lookups: u64,
    /// ... of which hits.
    pub cache_hits: u64,
    /// ... of which misses.
    pub cache_misses: u64,
    /// Shared-cache insertions attributed to this tenant.
    pub cache_insertions: u64,
    /// Entries this tenant inserted that were later pressure-evicted
    /// (capacity bound or storm), regardless of who triggered it.
    pub pressure_evictions: u64,
    /// Completed jobs whose pipeline ledger was not clean.
    pub degraded_jobs: u64,
    /// Completed jobs that shipped the identity-fallback layout.
    pub identity_fallbacks: u64,
    /// Modeled seconds of client backoff before re-submissions.
    pub retry_backoff_secs: f64,
    /// Modeled seconds arrivals spent queued before starting.
    pub queue_wait_secs: f64,
    /// Modeled seconds of slot time this tenant consumed.
    pub busy_secs: f64,
    /// Aggregate pipeline degradation across this tenant's jobs.
    pub degradation: DegradationLedger,
}

impl TenantLedger {
    /// Total arrivals this tenant generated.
    pub fn arrivals(&self) -> u64 {
        self.submitted + self.burst_clones
    }

    /// Terminal outcomes booked so far.
    pub fn outcomes(&self) -> u64 {
        self.completed
            + self.rejected_memory
            + self.rejected_queue
            + self.cancelled_by_client
            + self.cancelled_by_fault
            + self.deadline_timeouts
    }

    /// True iff every arrival has exactly one terminal outcome and the
    /// cache counters obey `hits + misses == lookups`.
    pub fn accounts_exactly(&self) -> bool {
        self.arrivals() == self.outcomes()
            && self.cache_hits + self.cache_misses == self.cache_lookups
    }

    /// True iff nothing eventful happened beyond clean completions.
    pub fn is_clean(&self) -> bool {
        self.outcomes() == self.completed
            && self.retries == 0
            && self.queue_drops == 0
            && self.eviction_storms == 0
            && self.storm_evicted_entries == 0
            && self.pressure_evictions == 0
            && self.degraded_jobs == 0
            && self.identity_fallbacks == 0
            && self.degradation.is_clean()
    }

    /// Stable `(name, value)` pairs in a fixed order — the single
    /// source for ledger JSON and the service diff.
    pub fn entries(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("submitted", self.submitted as f64),
            ("burst_clones", self.burst_clones as f64),
            ("admitted", self.admitted as f64),
            ("completed", self.completed as f64),
            ("rejected_memory", self.rejected_memory as f64),
            ("rejected_queue", self.rejected_queue as f64),
            ("retries", self.retries as f64),
            ("queue_drops", self.queue_drops as f64),
            ("cancelled_by_client", self.cancelled_by_client as f64),
            ("cancelled_by_fault", self.cancelled_by_fault as f64),
            ("deadline_timeouts", self.deadline_timeouts as f64),
            ("eviction_storms", self.eviction_storms as f64),
            ("storm_evicted_entries", self.storm_evicted_entries as f64),
            ("cache_lookups", self.cache_lookups as f64),
            ("cache_hits", self.cache_hits as f64),
            ("cache_misses", self.cache_misses as f64),
            ("cache_insertions", self.cache_insertions as f64),
            ("pressure_evictions", self.pressure_evictions as f64),
            ("degraded_jobs", self.degraded_jobs as f64),
            ("identity_fallbacks", self.identity_fallbacks as f64),
            ("retry_backoff_secs", self.retry_backoff_secs),
            ("queue_wait_secs", self.queue_wait_secs),
            ("busy_secs", self.busy_secs),
        ]
    }

    /// Rebuild from `entries()`-shaped pairs; unknown names are
    /// ignored so old readers tolerate new counters. The nested
    /// degradation ledger travels separately.
    pub fn from_entries<'a>(pairs: impl IntoIterator<Item = (&'a str, f64)>) -> TenantLedger {
        let mut t = TenantLedger::default();
        for (name, v) in pairs {
            match name {
                "submitted" => t.submitted = v as u64,
                "burst_clones" => t.burst_clones = v as u64,
                "admitted" => t.admitted = v as u64,
                "completed" => t.completed = v as u64,
                "rejected_memory" => t.rejected_memory = v as u64,
                "rejected_queue" => t.rejected_queue = v as u64,
                "retries" => t.retries = v as u64,
                "queue_drops" => t.queue_drops = v as u64,
                "cancelled_by_client" => t.cancelled_by_client = v as u64,
                "cancelled_by_fault" => t.cancelled_by_fault = v as u64,
                "deadline_timeouts" => t.deadline_timeouts = v as u64,
                "eviction_storms" => t.eviction_storms = v as u64,
                "storm_evicted_entries" => t.storm_evicted_entries = v as u64,
                "cache_lookups" => t.cache_lookups = v as u64,
                "cache_hits" => t.cache_hits = v as u64,
                "cache_misses" => t.cache_misses = v as u64,
                "cache_insertions" => t.cache_insertions = v as u64,
                "pressure_evictions" => t.pressure_evictions = v as u64,
                "degraded_jobs" => t.degraded_jobs = v as u64,
                "identity_fallbacks" => t.identity_fallbacks = v as u64,
                "retry_backoff_secs" => t.retry_backoff_secs = v,
                "queue_wait_secs" => t.queue_wait_secs = v,
                "busy_secs" => t.busy_secs = v,
                _ => {}
            }
        }
        t
    }

    /// Add `other` into `self` (tenant rows into totals). The layout
    /// mode of the aggregate degradation stays `Optimized`; per-job
    /// fallbacks are counted in `identity_fallbacks` instead.
    pub fn absorb(&mut self, other: &TenantLedger) {
        let merged: Vec<(&'static str, f64)> = self
            .entries()
            .into_iter()
            .zip(other.entries())
            .map(|((name, a), (_, b))| (name, a + b))
            .collect();
        let degradation = DegradationLedger::from_entries(
            self.degradation
                .entries()
                .into_iter()
                .zip(other.degradation.entries())
                .map(|((name, a), (_, b))| {
                    if name == "layout_identity_fallback" {
                        (name, 0.0)
                    } else {
                        (name, a + b)
                    }
                }),
        );
        *self = TenantLedger { degradation, ..TenantLedger::from_entries(merged) };
    }

    fn to_json(&self) -> JsonValue {
        let mut obj: Vec<(String, JsonValue)> = self
            .entries()
            .into_iter()
            .map(|(name, v)| (name.to_string(), JsonValue::Num(v)))
            .collect();
        if !self.degradation.is_clean() {
            obj.push((
                "degradation".to_string(),
                JsonValue::Obj(
                    self.degradation
                        .entries()
                        .into_iter()
                        .map(|(name, v)| (name.to_string(), JsonValue::Num(v)))
                        .collect(),
                ),
            ));
        }
        JsonValue::Obj(obj)
    }

    fn from_json(v: &JsonValue) -> Option<TenantLedger> {
        let obj = match v {
            JsonValue::Obj(pairs) => pairs,
            _ => return None,
        };
        let mut t = TenantLedger::from_entries(obj.iter().filter_map(|(name, v)| {
            v.as_f64().map(|n| (name.as_str(), n))
        }));
        if let Some(JsonValue::Obj(deg)) = obj.iter().find(|(n, _)| n == "degradation").map(|(_, v)| v)
        {
            t.degradation = DegradationLedger::from_entries(
                deg.iter().filter_map(|(name, v)| v.as_f64().map(|n| (name.as_str(), n))),
            );
        }
        Some(t)
    }
}

/// The full accounting record of one service run.
///
/// Everything serialized here is modeled or configured — never
/// measured — so the canonical JSON string is byte-identical across
/// `--jobs` counts, replay seeds, and host machines.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServiceLedger {
    /// Benchmark every job relinks (the synthetic workload name).
    pub benchmark: String,
    /// Traffic/service seed.
    pub seed: u64,
    /// Canonical fault-plan spec string in force (may be empty).
    pub plan: String,
    /// Concurrent relink slots.
    pub slots: u64,
    /// Bounded queue capacity (total across tenants).
    pub queue_capacity: u64,
    /// Queue deadline in modeled seconds.
    pub deadline_secs: f64,
    /// Modeled end-to-end makespan of the run.
    pub makespan_secs: f64,
    /// Per-tenant rows, keyed by tenant name (sorted by BTreeMap).
    pub tenants: BTreeMap<String, TenantLedger>,
}

impl ServiceLedger {
    /// Sum of all tenant rows.
    pub fn totals(&self) -> TenantLedger {
        let mut t = TenantLedger::default();
        for row in self.tenants.values() {
            t.absorb(row);
        }
        t
    }

    /// True iff every tenant row accounts exactly.
    pub fn accounts_exactly(&self) -> bool {
        self.tenants.values().all(|t| t.accounts_exactly())
    }

    /// Canonical JSON — the byte-stable artifact CI `cmp`s across
    /// `--jobs` counts and replays.
    pub fn to_json_string(&self) -> String {
        let totals = self.totals();
        let obj = JsonValue::Obj(vec![
            ("benchmark".to_string(), JsonValue::Str(self.benchmark.clone())),
            ("seed".to_string(), JsonValue::Num(self.seed as f64)),
            ("plan".to_string(), JsonValue::Str(self.plan.clone())),
            ("slots".to_string(), JsonValue::Num(self.slots as f64)),
            ("queue_capacity".to_string(), JsonValue::Num(self.queue_capacity as f64)),
            ("deadline_secs".to_string(), JsonValue::Num(self.deadline_secs)),
            ("makespan_secs".to_string(), JsonValue::Num(self.makespan_secs)),
            (
                "tenants".to_string(),
                JsonValue::Obj(
                    self.tenants
                        .iter()
                        .map(|(name, row)| (name.clone(), row.to_json()))
                        .collect(),
                ),
            ),
            ("totals".to_string(), totals.to_json()),
        ]);
        obj.to_string_pretty()
    }

    /// Parse a ledger previously written by
    /// [`to_json_string`](ServiceLedger::to_json_string).
    pub fn from_json_str(text: &str) -> Result<ServiceLedger, String> {
        let v = JsonValue::parse(text).map_err(|e| format!("service ledger: {e}"))?;
        let mut ledger = ServiceLedger {
            benchmark: v
                .get("benchmark")
                .and_then(|b| b.as_str())
                .unwrap_or_default()
                .to_string(),
            seed: v.get("seed").and_then(|s| s.as_f64()).unwrap_or(0.0) as u64,
            plan: v.get("plan").and_then(|p| p.as_str()).unwrap_or_default().to_string(),
            slots: v.get("slots").and_then(|s| s.as_f64()).unwrap_or(0.0) as u64,
            queue_capacity: v.get("queue_capacity").and_then(|q| q.as_f64()).unwrap_or(0.0) as u64,
            deadline_secs: v.get("deadline_secs").and_then(|d| d.as_f64()).unwrap_or(0.0),
            makespan_secs: v.get("makespan_secs").and_then(|m| m.as_f64()).unwrap_or(0.0),
            tenants: BTreeMap::new(),
        };
        if let Some(JsonValue::Obj(rows)) = v.get("tenants") {
            for (name, row) in rows {
                let t = TenantLedger::from_json(row)
                    .ok_or_else(|| format!("service ledger: bad tenant row {name:?}"))?;
                ledger.tenants.insert(name.clone(), t);
            }
        }
        Ok(ledger)
    }

    /// Human-readable per-tenant table (CLI output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "service ledger: bench={} seed={} slots={} queue={} deadline={}s plan={:?}\n",
            self.benchmark, self.seed, self.slots, self.queue_capacity, self.deadline_secs,
            self.plan
        ));
        out.push_str(&format!(
            "{:<10} {:>5} {:>6} {:>5} {:>6} {:>6} {:>6} {:>7} {:>6} {:>8} {:>9}\n",
            "tenant", "subm", "clones", "done", "rej", "cancel", "t/out", "retries", "drops",
            "hit-rate", "busy-secs"
        ));
        let mut rows: Vec<(&str, &TenantLedger)> =
            self.tenants.iter().map(|(n, t)| (n.as_str(), t)).collect();
        let totals = self.totals();
        rows.push(("TOTAL", &totals));
        for (name, t) in rows {
            let hit_rate = if t.cache_lookups == 0 {
                0.0
            } else {
                t.cache_hits as f64 / t.cache_lookups as f64
            };
            out.push_str(&format!(
                "{:<10} {:>5} {:>6} {:>5} {:>6} {:>6} {:>6} {:>7} {:>6} {:>7.1}% {:>9.1}\n",
                name,
                t.submitted,
                t.burst_clones,
                t.completed,
                t.rejected_memory + t.rejected_queue,
                t.cancelled_by_client + t.cancelled_by_fault,
                t.deadline_timeouts,
                t.retries,
                t.queue_drops,
                hit_rate * 100.0,
                t.busy_secs,
            ));
        }
        out.push_str(&format!("makespan: {:.1} modeled secs\n", self.makespan_secs));
        out
    }
}

impl fmt::Display for ServiceLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::LayoutMode;

    fn sample_tenant() -> TenantLedger {
        TenantLedger {
            submitted: 10,
            burst_clones: 2,
            admitted: 9,
            completed: 8,
            rejected_memory: 1,
            rejected_queue: 1,
            retries: 3,
            queue_drops: 1,
            cancelled_by_client: 1,
            cancelled_by_fault: 0,
            deadline_timeouts: 1,
            eviction_storms: 1,
            storm_evicted_entries: 4,
            cache_lookups: 40,
            cache_hits: 30,
            cache_misses: 10,
            cache_insertions: 12,
            pressure_evictions: 2,
            degraded_jobs: 1,
            identity_fallbacks: 1,
            retry_backoff_secs: 2.5,
            queue_wait_secs: 14.0,
            busy_secs: 90.0,
            degradation: DegradationLedger {
                cache_rebuilds: 1,
                layout_mode: LayoutMode::Optimized,
                ..DegradationLedger::default()
            },
        }
    }

    #[test]
    fn exact_accounting_invariant() {
        let t = sample_tenant();
        assert_eq!(t.arrivals(), 12);
        assert_eq!(t.outcomes(), 12);
        assert!(t.accounts_exactly());
        let short = TenantLedger { completed: 7, ..t };
        assert!(!short.accounts_exactly());
    }

    #[test]
    fn entries_roundtrip() {
        let t = sample_tenant();
        let mut back = TenantLedger::from_entries(t.entries());
        back.degradation = t.degradation.clone();
        assert_eq!(back, t);
    }

    #[test]
    fn absorb_sums_counters() {
        let mut totals = TenantLedger::default();
        totals.absorb(&sample_tenant());
        totals.absorb(&sample_tenant());
        assert_eq!(totals.submitted, 20);
        assert_eq!(totals.busy_secs, 180.0);
        assert_eq!(totals.degradation.cache_rebuilds, 2);
        assert!(totals.accounts_exactly());
    }

    #[test]
    fn ledger_json_roundtrips_byte_identically() {
        let mut ledger = ServiceLedger {
            benchmark: "clang".to_string(),
            seed: 42,
            plan: "burst-amplify=0.2".to_string(),
            slots: 4,
            queue_capacity: 8,
            deadline_secs: 600.0,
            makespan_secs: 1234.5,
            tenants: BTreeMap::new(),
        };
        ledger.tenants.insert("t0".to_string(), sample_tenant());
        ledger.tenants.insert("t1".to_string(), TenantLedger::default());
        let text = ledger.to_json_string();
        let back = ServiceLedger::from_json_str(&text).unwrap();
        assert_eq!(back, ledger);
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn clean_tenant_row_detection() {
        let mut t = TenantLedger { submitted: 3, admitted: 3, completed: 3, ..Default::default() };
        assert!(t.is_clean());
        t.queue_drops = 1;
        assert!(!t.is_clean());
    }

    #[test]
    fn render_includes_totals_row() {
        let mut ledger = ServiceLedger::default();
        ledger.tenants.insert("t0".to_string(), sample_tenant());
        let text = ledger.render();
        assert!(text.contains("TOTAL"));
        assert!(text.contains("t0"));
    }
}
