//! The degradation ledger: exact accounting of everything that went
//! wrong and what the pipeline did about it.
//!
//! The ledger is the observable half of the robustness story. The
//! acceptance bar is *exact* accounting: for any seeded plan, each
//! fault the injector fired shows up in precisely one ledger counter,
//! and a clean ledger ([`DegradationLedger::is_clean`]) certifies the
//! run took the exact undegraded path.

use std::fmt;

/// Which symbol-ordering mode the final relink used.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum LayoutMode {
    /// The optimized Ext-TSP layout from WPA was applied.
    #[default]
    Optimized,
    /// WPA input was unusable (profile survival below the floor), so
    /// the relink used the identity symbol order — the baseline-
    /// equivalent layout that is always correct.
    IdentityFallback,
}

impl LayoutMode {
    pub fn as_str(self) -> &'static str {
        match self {
            LayoutMode::Optimized => "optimized",
            LayoutMode::IdentityFallback => "identity-fallback",
        }
    }
}

/// Counters for every degradation event of one pipeline run.
///
/// All counters are modeled events, so the ledger is deterministic for
/// a fixed `(seed, plan)` and `PartialEq` makes replay checks exact.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DegradationLedger {
    /// Transient action failures the executor retried.
    pub action_retries: u64,
    /// Action attempts that hit the retry policy's modeled deadline.
    pub action_timeouts: u64,
    /// Modeled seconds spent in retry backoff (incl. jitter).
    pub retry_backoff_secs: f64,
    /// Cache entries whose content digest failed verification.
    pub cache_corruptions: u64,
    /// Cache entries that had been silently evicted before lookup.
    pub cache_evictions: u64,
    /// Artifacts rebuilt because their cache entry was corrupt or
    /// evicted (one per corruption/eviction that had a live entry).
    pub cache_rebuilds: u64,
    /// LBR records the injector corrupted in flight.
    pub lbr_records_corrupted: u64,
    /// Corrupt records the phase-3 salvage pass dropped.
    pub lbr_records_dropped: u64,
    /// LBR samples that lost the tail of their record stack.
    pub lbr_samples_truncated: u64,
    /// Records lost to those truncations.
    pub lbr_records_truncated: u64,
    /// Hot functions demoted to cold because profile coverage fell
    /// below the configured floor.
    pub functions_marked_cold: u64,
    /// Hot objects whose re-codegen permanently failed and that fell
    /// back to the cached baseline (labels) codegen.
    pub objects_fallen_back: u64,
    /// Layout mode the relink actually used.
    pub layout_mode: LayoutMode,
}

impl DegradationLedger {
    /// True iff nothing degraded: every counter zero and the
    /// optimized layout applied. Zero-fault plans must yield a clean
    /// ledger, and reports omit the degradation section entirely in
    /// that case so their JSON stays bit-identical to pre-fault-layer
    /// output.
    pub fn is_clean(&self) -> bool {
        *self == DegradationLedger::default()
    }

    /// The ledger as stable `(name, value)` pairs, in a fixed order —
    /// the single source for report JSON, telemetry metrics, and the
    /// doctor diff. `layout_identity_fallback` encodes the layout
    /// mode as 0/1.
    pub fn entries(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("action_retries", self.action_retries as f64),
            ("action_timeouts", self.action_timeouts as f64),
            ("retry_backoff_secs", self.retry_backoff_secs),
            ("cache_corruptions", self.cache_corruptions as f64),
            ("cache_evictions", self.cache_evictions as f64),
            ("cache_rebuilds", self.cache_rebuilds as f64),
            ("lbr_records_corrupted", self.lbr_records_corrupted as f64),
            ("lbr_records_dropped", self.lbr_records_dropped as f64),
            ("lbr_samples_truncated", self.lbr_samples_truncated as f64),
            ("lbr_records_truncated", self.lbr_records_truncated as f64),
            ("functions_marked_cold", self.functions_marked_cold as f64),
            ("objects_fallen_back", self.objects_fallen_back as f64),
            (
                "layout_identity_fallback",
                match self.layout_mode {
                    LayoutMode::Optimized => 0.0,
                    LayoutMode::IdentityFallback => 1.0,
                },
            ),
        ]
    }

    /// Rebuild a ledger from `entries()`-shaped pairs (report JSON
    /// round-trip). Unknown names are ignored so old readers tolerate
    /// new counters.
    pub fn from_entries<'a>(pairs: impl IntoIterator<Item = (&'a str, f64)>) -> Self {
        let mut l = DegradationLedger::default();
        for (name, v) in pairs {
            match name {
                "action_retries" => l.action_retries = v as u64,
                "action_timeouts" => l.action_timeouts = v as u64,
                "retry_backoff_secs" => l.retry_backoff_secs = v,
                "cache_corruptions" => l.cache_corruptions = v as u64,
                "cache_evictions" => l.cache_evictions = v as u64,
                "cache_rebuilds" => l.cache_rebuilds = v as u64,
                "lbr_records_corrupted" => l.lbr_records_corrupted = v as u64,
                "lbr_records_dropped" => l.lbr_records_dropped = v as u64,
                "lbr_samples_truncated" => l.lbr_samples_truncated = v as u64,
                "lbr_records_truncated" => l.lbr_records_truncated = v as u64,
                "functions_marked_cold" => l.functions_marked_cold = v as u64,
                "objects_fallen_back" => l.objects_fallen_back = v as u64,
                "layout_identity_fallback" => {
                    l.layout_mode = if v != 0.0 {
                        LayoutMode::IdentityFallback
                    } else {
                        LayoutMode::Optimized
                    }
                }
                _ => {}
            }
        }
        l
    }

    /// Record the ledger as telemetry counters/gauges under `prefix`
    /// (e.g. `faults.action_retries`). No-op on a disabled handle;
    /// callers also skip it for clean ledgers so zero-fault traces
    /// stay identical to pre-fault-layer ones.
    pub fn record_metrics(&self, tel: &propeller_telemetry::Telemetry, prefix: &str) {
        if !tel.is_enabled() {
            return;
        }
        for (name, v) in self.entries() {
            if name == "retry_backoff_secs" || name == "layout_identity_fallback" {
                tel.gauge_set(&format!("{prefix}.{name}"), v);
            } else {
                tel.counter_add(&format!("{prefix}.{name}"), v as u64);
            }
        }
    }

    /// Human-readable multi-line summary (CLI output).
    pub fn render(&self) -> String {
        if self.is_clean() {
            return "degradation ledger: clean (no faults observed)\n".to_string();
        }
        let mut out = String::from("degradation ledger:\n");
        for (name, v) in self.entries() {
            if name == "layout_identity_fallback" {
                continue;
            }
            if v != 0.0 {
                out.push_str(&format!("  {name:<24} {v}\n"));
            }
        }
        out.push_str(&format!("  {:<24} {}\n", "layout_mode", self.layout_mode.as_str()));
        out
    }
}

impl fmt::Display for DegradationLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ledger_is_clean() {
        let l = DegradationLedger::default();
        assert!(l.is_clean());
        assert!(l.entries().iter().all(|&(_, v)| v == 0.0));
        assert!(l.render().contains("clean"));
    }

    #[test]
    fn any_counter_or_fallback_dirties_the_ledger() {
        let l = DegradationLedger { action_retries: 1, ..DegradationLedger::default() };
        assert!(!l.is_clean());
        let l = DegradationLedger {
            layout_mode: LayoutMode::IdentityFallback,
            ..DegradationLedger::default()
        };
        assert!(!l.is_clean());
    }

    #[test]
    fn entries_roundtrip() {
        let l = DegradationLedger {
            action_retries: 3,
            action_timeouts: 1,
            retry_backoff_secs: 4.25,
            cache_corruptions: 2,
            cache_evictions: 1,
            cache_rebuilds: 3,
            lbr_records_corrupted: 40,
            lbr_records_dropped: 40,
            lbr_samples_truncated: 5,
            lbr_records_truncated: 55,
            functions_marked_cold: 7,
            objects_fallen_back: 2,
            layout_mode: LayoutMode::IdentityFallback,
        };
        let back = DegradationLedger::from_entries(l.entries());
        assert_eq!(back, l);
    }

    #[test]
    fn render_lists_nonzero_counters_only() {
        let l = DegradationLedger { cache_rebuilds: 2, ..DegradationLedger::default() };
        let text = l.render();
        assert!(text.contains("cache_rebuilds"));
        assert!(!text.contains("action_retries"));
        assert!(text.contains("optimized"));
    }

    #[test]
    fn telemetry_recording_uses_prefix() {
        let tel = propeller_telemetry::Telemetry::enabled();
        let l = DegradationLedger { action_retries: 2, ..DegradationLedger::default() };
        l.record_metrics(&tel, "faults");
        let m = tel.drain().metrics;
        assert_eq!(m.counter("faults.action_retries"), 2);
    }
}
