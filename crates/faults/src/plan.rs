//! Fault plans: *what* can go wrong, how often, and how many times.
//!
//! A [`FaultPlan`] is a static schedule of failure probabilities (with
//! optional occurrence caps) for every fault site the pipeline knows
//! how to survive. Plans are plain data: they can be parsed from the
//! CLI `--faults` spec string, compared for equality (the doctor diff
//! gate only compares degradation between runs at *equal* plans), and
//! round-tripped through a canonical spec string for reports.

use std::fmt;

/// Every distinct failure mode the injector can schedule.
///
/// The variants map one-to-one onto the degradation paths of the
/// pipeline: the executor retries transient failures and timeouts, the
/// action cache invalidates corrupt or evicted entries, phase 3
/// salvages corrupt/truncated LBR data, and phase 4 falls back to the
/// baseline codegen when a hot object permanently fails to rebuild.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// A distributed action fails but would succeed if rescheduled.
    TransientActionFailure,
    /// A distributed action hangs until the retry policy's deadline.
    ActionTimeout,
    /// A cache entry's stored content digest no longer matches its key.
    CacheCorruption,
    /// A cache entry silently disappears before lookup.
    CacheEviction,
    /// An LBR record's addresses are garbage (point outside .text).
    LbrRecordCorruption,
    /// An LBR sample loses the tail of its record stack.
    SampleTruncation,
    /// Hot-object re-codegen fails on every attempt; no retry helps.
    PermanentCodegenFailure,
    /// A tenant's arrival spawns extra copies of itself — the thundering
    /// herd a shared relink service must absorb without starving others.
    TenantBurstAmplification,
    /// An admitted job is cancelled mid-flight by its owner; the service
    /// must roll back without publishing partial artifacts.
    JobCancellation,
    /// A queued job is silently dropped before it can be scheduled; the
    /// client retries with backoff as if the enqueue had been refused.
    QueueDrop,
    /// Cache pressure spikes and the service force-evicts the oldest
    /// shared-cache entries, regardless of which tenant inserted them.
    CacheEvictionStorm,
}

impl FaultKind {
    /// All kinds in canonical (spec-string) order.
    pub const ALL: [FaultKind; 11] = [
        FaultKind::TransientActionFailure,
        FaultKind::ActionTimeout,
        FaultKind::CacheCorruption,
        FaultKind::CacheEviction,
        FaultKind::LbrRecordCorruption,
        FaultKind::SampleTruncation,
        FaultKind::PermanentCodegenFailure,
        FaultKind::TenantBurstAmplification,
        FaultKind::JobCancellation,
        FaultKind::QueueDrop,
        FaultKind::CacheEvictionStorm,
    ];

    /// The kinds rolled by the relink service's scheduler rather than
    /// by the pipeline itself. The pipeline never consults these, so a
    /// plan containing only service kinds still drives every batch run
    /// down its zero-pipeline-fault path.
    pub const SERVICE: [FaultKind; 4] = [
        FaultKind::TenantBurstAmplification,
        FaultKind::JobCancellation,
        FaultKind::QueueDrop,
        FaultKind::CacheEvictionStorm,
    ];

    /// The `--faults` spec key for this kind.
    pub fn key(self) -> &'static str {
        match self {
            FaultKind::TransientActionFailure => "transient",
            FaultKind::ActionTimeout => "timeout",
            FaultKind::CacheCorruption => "corrupt-cache",
            FaultKind::CacheEviction => "evict-cache",
            FaultKind::LbrRecordCorruption => "corrupt-lbr",
            FaultKind::SampleTruncation => "truncate-samples",
            FaultKind::PermanentCodegenFailure => "permanent-codegen",
            FaultKind::TenantBurstAmplification => "burst-amplify",
            FaultKind::JobCancellation => "cancel-job",
            FaultKind::QueueDrop => "drop-queue",
            FaultKind::CacheEvictionStorm => "evict-storm",
        }
    }

    fn from_key(key: &str) -> Option<FaultKind> {
        FaultKind::ALL.iter().copied().find(|k| k.key() == key)
    }
}

/// Probability (+ optional occurrence cap) for one [`FaultKind`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    /// Chance in `[0, 1]` that any given roll at this site fires.
    pub probability: f64,
    /// Stop firing after this many occurrences (`None` = unbounded).
    pub limit: Option<u64>,
}

impl FaultSpec {
    /// A site that never fires.
    pub const fn never() -> FaultSpec {
        FaultSpec { probability: 0.0, limit: None }
    }

    /// Fire on every roll (until `limit`, if any).
    pub const fn always() -> FaultSpec {
        FaultSpec { probability: 1.0, limit: None }
    }

    /// Fire with probability `p`, unbounded.
    pub const fn p(probability: f64) -> FaultSpec {
        FaultSpec { probability, limit: None }
    }

    /// Fire with probability `p`, at most `n` times total.
    pub const fn count(probability: f64, n: u64) -> FaultSpec {
        FaultSpec { probability, limit: Some(n) }
    }

    /// True when this spec can never fire.
    pub fn is_disabled(&self) -> bool {
        self.probability <= 0.0 || self.limit == Some(0)
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec::never()
    }
}

/// The full fault schedule for one pipeline run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    pub transient_action_failure: FaultSpec,
    pub action_timeout: FaultSpec,
    pub cache_corruption: FaultSpec,
    pub cache_eviction: FaultSpec,
    pub lbr_record_corruption: FaultSpec,
    pub sample_truncation: FaultSpec,
    pub permanent_codegen_failure: FaultSpec,
    pub tenant_burst_amplification: FaultSpec,
    pub job_cancellation: FaultSpec,
    pub queue_drop: FaultSpec,
    pub cache_eviction_storm: FaultSpec,
}

impl FaultPlan {
    /// A plan with every fault disabled (the default).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// True when no fault in the plan can ever fire. The pipeline
    /// takes the exact legacy code path in this case, so zero-fault
    /// runs stay bit-identical to runs without a fault layer at all.
    pub fn is_none(&self) -> bool {
        FaultKind::ALL.iter().all(|&k| self.spec(k).is_disabled())
    }

    /// True when any service-level kind ([`FaultKind::SERVICE`]) can
    /// fire. The relink service arms its scheduler injector iff so.
    pub fn has_service_faults(&self) -> bool {
        FaultKind::SERVICE.iter().any(|&k| !self.spec(k).is_disabled())
    }

    /// The spec scheduled for `kind`.
    pub fn spec(&self, kind: FaultKind) -> FaultSpec {
        match kind {
            FaultKind::TransientActionFailure => self.transient_action_failure,
            FaultKind::ActionTimeout => self.action_timeout,
            FaultKind::CacheCorruption => self.cache_corruption,
            FaultKind::CacheEviction => self.cache_eviction,
            FaultKind::LbrRecordCorruption => self.lbr_record_corruption,
            FaultKind::SampleTruncation => self.sample_truncation,
            FaultKind::PermanentCodegenFailure => self.permanent_codegen_failure,
            FaultKind::TenantBurstAmplification => self.tenant_burst_amplification,
            FaultKind::JobCancellation => self.job_cancellation,
            FaultKind::QueueDrop => self.queue_drop,
            FaultKind::CacheEvictionStorm => self.cache_eviction_storm,
        }
    }

    fn spec_mut(&mut self, kind: FaultKind) -> &mut FaultSpec {
        match kind {
            FaultKind::TransientActionFailure => &mut self.transient_action_failure,
            FaultKind::ActionTimeout => &mut self.action_timeout,
            FaultKind::CacheCorruption => &mut self.cache_corruption,
            FaultKind::CacheEviction => &mut self.cache_eviction,
            FaultKind::LbrRecordCorruption => &mut self.lbr_record_corruption,
            FaultKind::SampleTruncation => &mut self.sample_truncation,
            FaultKind::PermanentCodegenFailure => &mut self.permanent_codegen_failure,
            FaultKind::TenantBurstAmplification => &mut self.tenant_burst_amplification,
            FaultKind::JobCancellation => &mut self.job_cancellation,
            FaultKind::QueueDrop => &mut self.queue_drop,
            FaultKind::CacheEvictionStorm => &mut self.cache_eviction_storm,
        }
    }

    /// A plan that destroys the entire profile: every LBR record is
    /// corrupted, so phase 3 salvages nothing and the layout falls
    /// back to identity order.
    pub fn full_profile_loss() -> FaultPlan {
        FaultPlan { lbr_record_corruption: FaultSpec::always(), ..FaultPlan::default() }
    }

    /// Parse a `--faults` spec string.
    ///
    /// Grammar: comma-separated `key=probability[:limit]` clauses,
    /// e.g. `transient=0.3,corrupt-cache=0.1:2,permanent-codegen=1`.
    /// Keys are the [`FaultKind::key`] names; probabilities must lie
    /// in `[0, 1]`.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultPlanParseError> {
        let mut plan = FaultPlan::none();
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause.split_once('=').ok_or_else(|| FaultPlanParseError {
                clause: clause.to_string(),
                message: "expected key=probability[:limit]".to_string(),
            })?;
            let kind = FaultKind::from_key(key.trim()).ok_or_else(|| FaultPlanParseError {
                clause: clause.to_string(),
                message: format!(
                    "unknown fault kind {:?} (known: {})",
                    key.trim(),
                    FaultKind::ALL.map(|k| k.key()).join(", ")
                ),
            })?;
            let (prob_str, limit_str) = match value.split_once(':') {
                Some((p, l)) => (p, Some(l)),
                None => (value, None),
            };
            let probability: f64 =
                prob_str.trim().parse().map_err(|_| FaultPlanParseError {
                    clause: clause.to_string(),
                    message: format!("bad probability {:?}", prob_str.trim()),
                })?;
            if !(0.0..=1.0).contains(&probability) {
                return Err(FaultPlanParseError {
                    clause: clause.to_string(),
                    message: format!("probability {probability} outside [0, 1]"),
                });
            }
            let limit = match limit_str {
                Some(l) => Some(l.trim().parse().map_err(|_| FaultPlanParseError {
                    clause: clause.to_string(),
                    message: format!("bad occurrence limit {:?}", l.trim()),
                })?),
                None => None,
            };
            *plan.spec_mut(kind) = FaultSpec { probability, limit };
        }
        Ok(plan)
    }

    /// Canonical spec string: enabled kinds in [`FaultKind::ALL`]
    /// order. Parsing the result reproduces the plan exactly, and two
    /// plans are equal iff their canonical strings are equal, so this
    /// is what reports embed for the diff gate's plan comparison.
    pub fn to_spec_string(&self) -> String {
        let mut parts = Vec::new();
        for &kind in &FaultKind::ALL {
            let spec = self.spec(kind);
            if spec.is_disabled() {
                continue;
            }
            match spec.limit {
                Some(n) => parts.push(format!("{}={}:{}", kind.key(), spec.probability, n)),
                None => parts.push(format!("{}={}", kind.key(), spec.probability)),
            }
        }
        parts.join(",")
    }
}

/// A clause of a `--faults` spec string that failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlanParseError {
    pub clause: String,
    pub message: String,
}

impl fmt::Display for FaultPlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault clause {:?}: {}", self.clause, self.message)
    }
}

impl std::error::Error for FaultPlanParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(FaultPlan::parse("").unwrap().is_none());
        assert_eq!(FaultPlan::none().to_spec_string(), "");
    }

    #[test]
    fn parse_roundtrip() {
        let spec = "transient=0.3,corrupt-cache=0.1:2,permanent-codegen=1";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.transient_action_failure, FaultSpec::p(0.3));
        assert_eq!(plan.cache_corruption, FaultSpec::count(0.1, 2));
        assert_eq!(plan.permanent_codegen_failure, FaultSpec::always());
        let canonical = plan.to_spec_string();
        assert_eq!(FaultPlan::parse(&canonical).unwrap(), plan);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("transient").is_err());
        assert!(FaultPlan::parse("warp-core=0.5").is_err());
        assert!(FaultPlan::parse("transient=1.5").is_err());
        assert!(FaultPlan::parse("transient=0.5:x").is_err());
    }

    #[test]
    fn zero_probability_clause_keeps_plan_none() {
        let plan = FaultPlan::parse("transient=0,timeout=0.5:0").unwrap();
        assert!(plan.is_none());
    }

    #[test]
    fn service_kinds_parse_and_roundtrip() {
        let spec = "burst-amplify=0.2,cancel-job=0.1:3,drop-queue=0.25,evict-storm=1";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.tenant_burst_amplification, FaultSpec::p(0.2));
        assert_eq!(plan.job_cancellation, FaultSpec::count(0.1, 3));
        assert_eq!(plan.queue_drop, FaultSpec::p(0.25));
        assert_eq!(plan.cache_eviction_storm, FaultSpec::always());
        assert!(plan.has_service_faults());
        assert!(!plan.is_none());
        let canonical = plan.to_spec_string();
        assert_eq!(FaultPlan::parse(&canonical).unwrap(), plan);
        // A pipeline-only plan has no service faults and vice versa.
        assert!(!FaultPlan::parse("transient=0.5").unwrap().has_service_faults());
        for kind in FaultKind::SERVICE {
            assert!(FaultKind::ALL.contains(&kind));
        }
    }
}
