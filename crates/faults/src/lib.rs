//! # Deterministic fault injection for the Propeller pipeline
//!
//! Propeller's operational pitch (paper §1, §6) is that it lives
//! *inside* the production build system, where stale or truncated LBR
//! profiles, flaky distributed actions, and corrupt or evicted cache
//! entries are routine — and a profile-guided relink must degrade to
//! the baseline binary rather than fail the release. This crate is
//! the chaos half of that contract:
//!
//! * [`FaultPlan`] — a declarative schedule of failure probabilities
//!   (with optional occurrence caps) per [`FaultKind`], parseable
//!   from the CLI `--faults` spec string;
//! * [`FaultInjector`] — a seeded, deterministic decision source
//!   consulted by hooks in `buildsys::Executor`,
//!   `buildsys::ActionCache`, and `profile`; decisions are pure
//!   hashes of `(seed, kind, site, occurrence)`, so chaos runs replay
//!   bit-identically regardless of thread interleaving;
//! * [`RetryPolicy`] — the executor's retry budget and exponential
//!   backoff + jitter, all in modeled (cost-model) seconds;
//! * [`DegradationLedger`] — exact accounting of every degradation
//!   the pipeline performed (retries, cache rebuilds, salvaged
//!   samples, per-object codegen fallbacks, layout mode), flowing
//!   into `PropellerReport`/`RunReport`, telemetry, and the doctor.
//!
//! The crate is a dependency leaf: it knows nothing about the
//! pipeline, only how to schedule faults and count degradations.

mod injector;
mod ledger;
mod plan;
mod service;

pub use injector::{FaultInjector, RetryPolicy};
pub use ledger::{DegradationLedger, LayoutMode};
pub use plan::{FaultKind, FaultPlan, FaultPlanParseError, FaultSpec};
pub use service::{ServiceLedger, TenantLedger};
