//! The deterministic fault injector and the executor retry policy.
//!
//! Determinism is the whole point: a chaos run must be replayable
//! (same seed + same plan ⇒ identical faults ⇒ identical
//! `RunReport`), and it must stay replayable even though the pipeline
//! runs codegen on a thread pool. The injector therefore never draws
//! from a shared sequential RNG stream. Every decision is a pure hash
//! of `(seed, fault kind, site key, per-site occurrence index)` —
//! callers consult it from deterministic, sequential code (cache
//! lookups under the cache lock in plan order, executor actions in
//! spec order, profile records in sample order), so the occurrence
//! counters advance identically on every run regardless of how worker
//! threads interleave.

use crate::plan::{FaultKind, FaultPlan};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};

/// splitmix64 finalizer: a high-quality 64-bit mixing function.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the site key so decisions depend on *which* site rolls,
/// not on global roll order across unrelated sites.
fn key_hash(key: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Map a hash to a uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[derive(Default)]
struct InjectorState {
    /// Per `(kind, site-key-hash)` roll count; the index of the next
    /// roll at that site.
    occurrences: HashMap<(FaultKind, u64), u64>,
    /// Per kind: how many rolls actually fired (drives `limit` caps
    /// and the ledger's exact-accounting checks).
    fired: BTreeMap<FaultKind, u64>,
    /// Per kind: total rolls, fired or not (diagnostics).
    rolls: BTreeMap<FaultKind, u64>,
}

/// Seeded, deterministic source of scheduled faults.
///
/// ```
/// use propeller_faults::{FaultInjector, FaultKind, FaultPlan};
///
/// let plan = FaultPlan::parse("transient=1:2").unwrap();
/// let inj = FaultInjector::new(plan, 7);
/// assert!(inj.fires(FaultKind::TransientActionFailure, "compile m0"));
/// assert!(inj.fires(FaultKind::TransientActionFailure, "compile m1"));
/// // The occurrence cap of 2 is exhausted:
/// assert!(!inj.fires(FaultKind::TransientActionFailure, "compile m2"));
/// assert_eq!(inj.fired(FaultKind::TransientActionFailure), 2);
/// ```
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
    state: Mutex<InjectorState>,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan, seed: u64) -> FaultInjector {
        FaultInjector { plan, seed, state: Mutex::new(InjectorState::default()) }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Roll for a fault of `kind` at the site identified by `key`.
    ///
    /// Returns true when the fault fires. Each call advances the
    /// `(kind, key)` occurrence counter, so repeated rolls at one site
    /// are independent draws; the per-kind `limit` caps total fires.
    pub fn fires(&self, kind: FaultKind, key: &str) -> bool {
        let spec = self.plan.spec(kind);
        let kh = key_hash(key);
        let mut st = self.state.lock();
        let occ = st.occurrences.entry((kind, kh)).or_insert(0);
        let index = *occ;
        *occ += 1;
        *st.rolls.entry(kind).or_insert(0) += 1;
        if spec.is_disabled() {
            return false;
        }
        if let Some(limit) = spec.limit {
            if st.fired.get(&kind).copied().unwrap_or(0) >= limit {
                return false;
            }
        }
        let draw = unit_f64(mix(
            self.seed ^ mix(kind as u64 + 1) ^ mix(kh) ^ mix(index.wrapping_add(0x5EED)),
        ));
        if draw < spec.probability {
            *st.fired.entry(kind).or_insert(0) += 1;
            true
        } else {
            false
        }
    }

    /// How many faults of `kind` have fired so far. The pipeline's
    /// ledger must account for exactly this many injected faults.
    pub fn fired(&self, kind: FaultKind) -> u64 {
        self.state.lock().fired.get(&kind).copied().unwrap_or(0)
    }

    /// Total rolls of `kind`, fired or not.
    pub fn rolls(&self, kind: FaultKind) -> u64 {
        self.state.lock().rolls.get(&kind).copied().unwrap_or(0)
    }

    /// A deterministic uniform draw in `[0, 1)` that does not touch
    /// the occurrence state — used for backoff jitter, where the value
    /// must depend only on `(seed, label, n)`.
    pub fn unit(&self, label: &str, n: u64) -> f64 {
        unit_f64(mix(self.seed ^ mix(key_hash(label)) ^ mix(n.wrapping_add(0x0B0F))))
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.plan)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

/// How the executor retries flaky actions.
///
/// All durations are **modeled seconds** charged through the cost
/// model into `PhaseReport::wall_secs`; nothing here ever sleeps.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per action, including the first. The final
    /// budgeted attempt of a *transient* failure always succeeds
    /// (modeling a reschedule onto a healthy worker), so only
    /// [`FaultKind::PermanentCodegenFailure`] can exhaust the budget.
    pub max_attempts: u32,
    /// Backoff before the first retry, in modeled seconds.
    pub base_backoff_secs: f64,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_multiplier: f64,
    /// Jitter as a fraction of the backoff: the modeled wait is
    /// `backoff * (1 + jitter_frac * u)` with `u` uniform in `[0, 1)`.
    pub jitter_frac: f64,
    /// Modeled seconds a hung action burns before the executor gives
    /// up on it and reschedules.
    pub timeout_secs: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_secs: 0.5,
            backoff_multiplier: 2.0,
            jitter_frac: 0.5,
            timeout_secs: 30.0,
        }
    }
}

impl RetryPolicy {
    /// Modeled backoff (with deterministic jitter) after failed
    /// attempt number `attempt` (0-based) of the action named `key`.
    pub fn backoff_secs(&self, inj: &FaultInjector, key: &str, attempt: u32) -> f64 {
        let base = self.base_backoff_secs * self.backoff_multiplier.powi(attempt as i32);
        base * (1.0 + self.jitter_frac * inj.unit(key, u64::from(attempt)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultSpec;

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let plan = FaultPlan { transient_action_failure: FaultSpec::p(0.5), ..FaultPlan::none() };
        let a = FaultInjector::new(plan.clone(), 42);
        let b = FaultInjector::new(plan.clone(), 42);
        let c = FaultInjector::new(plan, 43);
        let keys = ["compile m0", "compile m1", "codegen m2", "link", "compile m0"];
        let seq = |inj: &FaultInjector| {
            keys.iter().map(|k| inj.fires(FaultKind::TransientActionFailure, k)).collect::<Vec<_>>()
        };
        let sa = seq(&a);
        assert_eq!(sa, seq(&b));
        // A different seed flips at least one decision over enough keys.
        let mut any_diff = false;
        for i in 0..64 {
            let k = format!("probe {i}");
            let da = a.fires(FaultKind::TransientActionFailure, &k);
            let dc = c.fires(FaultKind::TransientActionFailure, &k);
            any_diff |= da != dc;
        }
        assert!(any_diff);
    }

    #[test]
    fn decisions_are_independent_of_cross_site_order() {
        let plan = FaultPlan { cache_corruption: FaultSpec::p(0.5), ..FaultPlan::none() };
        let a = FaultInjector::new(plan.clone(), 9);
        let b = FaultInjector::new(plan, 9);
        // a rolls x then y; b rolls y then x. Per-site streams must
        // not change.
        let ax = a.fires(FaultKind::CacheCorruption, "x");
        let ay = a.fires(FaultKind::CacheCorruption, "y");
        let by = b.fires(FaultKind::CacheCorruption, "y");
        let bx = b.fires(FaultKind::CacheCorruption, "x");
        assert_eq!(ax, bx);
        assert_eq!(ay, by);
    }

    #[test]
    fn probability_one_always_fires_and_zero_never() {
        let plan = FaultPlan {
            action_timeout: FaultSpec::always(),
            transient_action_failure: FaultSpec::never(),
            ..FaultPlan::none()
        };
        let inj = FaultInjector::new(plan, 1);
        for i in 0..32 {
            let k = format!("a{i}");
            assert!(inj.fires(FaultKind::ActionTimeout, &k));
            assert!(!inj.fires(FaultKind::TransientActionFailure, &k));
        }
        assert_eq!(inj.fired(FaultKind::ActionTimeout), 32);
        assert_eq!(inj.fired(FaultKind::TransientActionFailure), 0);
        assert_eq!(inj.rolls(FaultKind::TransientActionFailure), 32);
    }

    #[test]
    fn backoff_grows_and_jitter_is_bounded() {
        let inj = FaultInjector::new(FaultPlan::none(), 5);
        let rp = RetryPolicy::default();
        let b0 = rp.backoff_secs(&inj, "compile m0", 0);
        let b1 = rp.backoff_secs(&inj, "compile m0", 1);
        let b2 = rp.backoff_secs(&inj, "compile m0", 2);
        assert!(b0 >= rp.base_backoff_secs && b0 < rp.base_backoff_secs * (1.0 + rp.jitter_frac));
        assert!(b1 > b0 / (1.0 + rp.jitter_frac));
        assert!(b2 > b1 / (1.0 + rp.jitter_frac));
        // Deterministic.
        assert_eq!(b0, rp.backoff_secs(&inj, "compile m0", 0));
    }
}
