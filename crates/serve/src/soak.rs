//! The chaos soak matrix: the service's acceptance gate.
//!
//! Each scenario runs the same seeded traffic through the service at
//! `--jobs 1` and `--jobs 8` plus a replay, then checks the two
//! contracts the issue demands:
//!
//! 1. **Ledger exactness and stability** — every arrival terminates in
//!    exactly one outcome counter, every fired service-level fault is
//!    booked one-for-one, and the canonical ledger JSON is
//!    byte-identical across jobs counts and replays.
//! 2. **Batch equivalence** — every binary the service ships is
//!    byte-identical to a fresh batch relink of the same
//!    `(program, plan, seed)`, and repeated relinks of one signature
//!    are idempotent.

use crate::service::{batch_binary, RelinkService, ServeOptions, ServiceReport};
use crate::traffic::{gen_traffic, TrafficConfig};
use propeller_faults::{FaultKind, FaultPlan, ServiceLedger};
use std::collections::BTreeMap;

/// One soak scenario: a fault plan plus the traffic/service shape that
/// provokes it.
#[derive(Clone, Debug)]
pub struct SoakScenario {
    pub name: &'static str,
    /// Default fault-plan spec (service + pipeline kinds).
    pub plan: &'static str,
    /// Per-tenant plan overrides, `(tenant, spec)`. The spec `"loss"`
    /// selects [`FaultPlan::full_profile_loss`].
    pub tenant_plans: &'static [(u32, &'static str)],
    pub requests: usize,
    pub tenants: usize,
    pub slots: usize,
    pub queue_capacity: usize,
    pub cache_capacity: Option<usize>,
    pub burst_every: usize,
    pub cancel_every: usize,
    pub oversize_every: usize,
    pub mean_gap_secs: f64,
    pub seed: u64,
}

impl SoakScenario {
    fn base(name: &'static str) -> SoakScenario {
        SoakScenario {
            name,
            plan: "",
            tenant_plans: &[],
            requests: 10,
            tenants: 3,
            slots: 2,
            queue_capacity: 6,
            cancel_every: 0,
            burst_every: 0,
            oversize_every: 0,
            cache_capacity: None,
            mean_gap_secs: 60.0,
            seed: 0xC0FFEE,
        }
    }

    /// Materialize the traffic plan for this scenario.
    pub fn traffic_config(&self, scale: f64) -> TrafficConfig {
        TrafficConfig {
            benchmark: "clang".to_string(),
            scale,
            seed: self.seed,
            tenants: self.tenants,
            requests: self.requests,
            mean_gap_secs: self.mean_gap_secs,
            burst_every: self.burst_every,
            burst_len: 2,
            cancel_every: self.cancel_every,
            cancel_after_secs: 45.0,
            oversize_every: self.oversize_every,
            program_variants: 2,
        }
    }

    /// Materialize the service options for this scenario.
    pub fn serve_options(&self, jobs: usize, profile_budget: u64) -> Result<ServeOptions, String> {
        let plan = if self.plan.is_empty() {
            FaultPlan::none()
        } else {
            FaultPlan::parse(self.plan).map_err(|e| format!("{}: bad plan: {e}", self.name))?
        };
        let mut tenant_faults = Vec::new();
        for &(tenant, spec) in self.tenant_plans {
            let p = if spec == "loss" {
                FaultPlan::full_profile_loss()
            } else {
                FaultPlan::parse(spec)
                    .map_err(|e| format!("{}: bad tenant plan: {e}", self.name))?
            };
            tenant_faults.push((tenant, p));
        }
        Ok(ServeOptions {
            slots: self.slots,
            queue_capacity: self.queue_capacity,
            deadline_secs: 1800.0,
            faults: plan,
            tenant_faults,
            seed: self.seed,
            jobs,
            cache_capacity: self.cache_capacity,
            profile_budget,
            ..ServeOptions::default()
        })
    }
}

/// The soak matrix from the issue: bursts, cancellations, queue
/// overflow, cache corruption and eviction storms, and one tenant
/// losing 100% of its profile — plus a clean control.
pub fn soak_scenarios() -> Vec<SoakScenario> {
    vec![
        SoakScenario::base("clean"),
        SoakScenario {
            plan: "burst-amplify=0.5",
            burst_every: 4,
            requests: 10,
            ..SoakScenario::base("burst-storm")
        },
        SoakScenario {
            plan: "cancel-job=0.4",
            cancel_every: 3,
            ..SoakScenario::base("cancel-storm")
        },
        SoakScenario {
            plan: "drop-queue=0.4",
            slots: 1,
            queue_capacity: 2,
            mean_gap_secs: 2.0,
            requests: 12,
            ..SoakScenario::base("queue-overflow")
        },
        SoakScenario {
            plan: "evict-storm=0.6",
            cache_capacity: Some(12),
            ..SoakScenario::base("evict-storm")
        },
        SoakScenario {
            plan: "corrupt-cache=0.3,evict-cache=0.3,transient=0.2",
            ..SoakScenario::base("cache-chaos")
        },
        SoakScenario {
            tenant_plans: &[(0, "loss")],
            ..SoakScenario::base("tenant-profile-loss")
        },
        SoakScenario {
            plan: "burst-amplify=0.3,cancel-job=0.2,drop-queue=0.2,evict-storm=0.3,\
                   corrupt-cache=0.2,transient=0.15,corrupt-lbr=0.05",
            burst_every: 4,
            cancel_every: 5,
            oversize_every: 6,
            queue_capacity: 3,
            mean_gap_secs: 4.0,
            requests: 12,
            cache_capacity: Some(16),
            ..SoakScenario::base("kitchen-sink")
        },
    ]
}

/// What one scenario produced, after all checks passed.
#[derive(Clone, Debug)]
pub struct SoakOutcome {
    pub name: String,
    pub ledger: ServiceLedger,
    /// Canonical ledger JSON (identical across the jobs matrix).
    pub ledger_json: String,
    /// Jobs the service completed per run.
    pub completed: usize,
    /// Distinct `(tenant, program, seed, plan)` signatures verified
    /// against batch relinks (0 when batch verification is off).
    pub signatures_verified: usize,
}

fn err_chain(e: &dyn std::error::Error) -> String {
    let mut out = e.to_string();
    let mut cur = e.source();
    while let Some(s) = cur {
        out.push_str(": ");
        out.push_str(&s.to_string());
        cur = s.source();
    }
    out
}

fn run_once(
    scn: &SoakScenario,
    scale: f64,
    jobs: usize,
    profile_budget: u64,
) -> Result<(RelinkService, ServiceReport), String> {
    let opts = scn.serve_options(jobs, profile_budget)?;
    let mut svc = RelinkService::new("clang", scale, opts)
        .map_err(|e| format!("{}: {}", scn.name, err_chain(&e)))?;
    let traffic = gen_traffic(&scn.traffic_config(scale));
    let report = svc
        .run(&traffic)
        .map_err(|e| format!("{}: {}", scn.name, err_chain(&e)))?;
    Ok((svc, report))
}

/// Check one run's internal invariants: exact accounting and
/// one-for-one booking of every fired service-level fault.
fn check_run(name: &str, tag: &str, svc: &RelinkService, report: &ServiceReport) -> Result<(), String> {
    if !report.violations.is_empty() {
        return Err(format!(
            "{name} [{tag}]: per-job exact-accounting violations: {}",
            report.violations.join("; ")
        ));
    }
    if !report.ledger.accounts_exactly() {
        return Err(format!(
            "{name} [{tag}]: ledger does not account exactly:\n{}",
            report.ledger.render()
        ));
    }
    let totals = report.ledger.totals();
    let books = [
        (FaultKind::JobCancellation, totals.cancelled_by_fault, "cancelled_by_fault"),
        (FaultKind::QueueDrop, totals.queue_drops, "queue_drops"),
        (FaultKind::CacheEvictionStorm, totals.eviction_storms, "eviction_storms"),
    ];
    for (kind, booked, label) in books {
        let fired = svc.scheduler_fired(kind);
        if fired != booked {
            return Err(format!(
                "{name} [{tag}]: scheduler fired {fired} {} fault(s) but the ledger books \
                 {label}={booked}",
                kind.key()
            ));
        }
    }
    let burst_fired = svc.scheduler_fired(FaultKind::TenantBurstAmplification);
    // Each burst fire spawns a fixed clone fan-out (ServeOptions
    // default, which the soak does not override).
    let expect_clones = burst_fired * ServeOptions::default().burst_clones as u64;
    if expect_clones != totals.burst_clones {
        return Err(format!(
            "{name} [{tag}]: {burst_fired} burst fires should book {expect_clones} clones, \
             ledger books {}",
            totals.burst_clones
        ));
    }
    Ok(())
}

/// Run the soak matrix. `jobs_matrix` lists the intra-job parallelism
/// levels to cross-check (the first entry is also replayed);
/// `verify_batch` additionally relinks every distinct completed-job
/// signature in batch mode and compares bytes.
pub fn run_soak(
    scenarios: &[SoakScenario],
    scale: f64,
    profile_budget: u64,
    jobs_matrix: &[usize],
    verify_batch: bool,
) -> Result<Vec<SoakOutcome>, String> {
    let mut outcomes = Vec::new();
    for scn in scenarios {
        let jobs_matrix = if jobs_matrix.is_empty() { &[1][..] } else { jobs_matrix };
        let mut runs = Vec::new();
        for &jobs in jobs_matrix {
            let (svc, report) = run_once(scn, scale, jobs, profile_budget)?;
            check_run(scn.name, &format!("jobs={jobs}"), &svc, &report)?;
            runs.push((jobs, report));
        }
        // Replay the first configuration: same seed, fresh service.
        let (svc, replay) = run_once(scn, scale, jobs_matrix[0], profile_budget)?;
        check_run(scn.name, "replay", &svc, &replay)?;
        runs.push((jobs_matrix[0], replay));

        // Contract 1: the canonical ledger JSON is byte-identical
        // across the whole matrix.
        let reference = runs[0].1.ledger.to_json_string();
        for (jobs, report) in &runs[1..] {
            let json = report.ledger.to_json_string();
            if json != reference {
                return Err(format!(
                    "{}: ledger JSON diverges between jobs={} and jobs={jobs}",
                    scn.name, runs[0].0
                ));
            }
        }
        // The shipped binaries must match job-for-job across the
        // matrix too, not just the accounting.
        let digests: Vec<BTreeMap<u64, u64>> = runs
            .iter()
            .map(|(_, r)| r.completed.iter().map(|j| (j.id, j.binary_digest)).collect())
            .collect();
        for (i, d) in digests[1..].iter().enumerate() {
            if d != &digests[0] {
                return Err(format!(
                    "{}: completed-job digests diverge between run 0 and run {}",
                    scn.name,
                    i + 1
                ));
            }
        }

        // Contract 2: batch equivalence and idempotence. One batch
        // relink per distinct signature; every same-signature service
        // job must match it byte-for-byte.
        let reference_run = &runs[0].1;
        let mut signatures = 0usize;
        if verify_batch {
            let mut by_sig: BTreeMap<(u32, u64, u64, String), Vec<&crate::CompletedJob>> =
                BTreeMap::new();
            for job in &reference_run.completed {
                by_sig
                    .entry((job.tenant, job.program_seed, job.job_seed, job.plan.to_spec_string()))
                    .or_default()
                    .push(job);
            }
            signatures = by_sig.len();
            for (sig, jobs_of_sig) in by_sig {
                let batch = batch_binary("clang", scale, jobs_of_sig[0], 1, profile_budget)
                    .map_err(|e| format!("{}: batch relink: {}", scn.name, err_chain(&e)))?;
                for job in jobs_of_sig {
                    if job.image != batch {
                        return Err(format!(
                            "{}: job {} (tenant t{}, sig {:?}) shipped bytes differing from \
                             the equivalent batch relink",
                            scn.name, job.id, job.tenant, sig
                        ));
                    }
                }
            }
        }

        outcomes.push(SoakOutcome {
            name: scn.name.to_string(),
            ledger_json: reference,
            completed: reference_run.completed.len(),
            signatures_verified: signatures,
            ledger: runs.swap_remove(0).1.ledger,
        });
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One cheap end-to-end turn of the soak machinery (the full
    /// matrix runs in `tests/` and CI).
    #[test]
    fn clean_scenario_passes_jobs_matrix() {
        let scn = vec![SoakScenario { requests: 4, ..SoakScenario::base("clean") }];
        let outcomes = run_soak(&scn, 0.002, 30_000, &[1, 2], true).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].completed > 0);
        assert!(outcomes[0].signatures_verified > 0);
        assert!(outcomes[0].ledger.accounts_exactly());
    }

    #[test]
    fn scenario_matrix_covers_the_issue_list() {
        let names: Vec<&str> = soak_scenarios().iter().map(|s| s.name).collect();
        for required in [
            "clean",
            "burst-storm",
            "cancel-storm",
            "queue-overflow",
            "evict-storm",
            "cache-chaos",
            "tenant-profile-loss",
            "kitchen-sink",
        ] {
            assert!(names.contains(&required), "missing scenario {required}");
        }
        assert!(names.len() >= 8);
    }
}
