//! The deterministic seeded traffic generator.
//!
//! Production Propeller sees warehouse traffic, not benchmarks: many
//! tenants with Zipf-distributed shares, bursts when a popular
//! application cuts a release, stray cancellations, and the occasional
//! job whose declared footprint cannot fit under the per-action
//! ceiling. This module turns a seed into that shape — every arrival
//! time, tenant assignment, cancellation, and oversize request is a
//! pure function of the [`TrafficConfig`], so a traffic run replays
//! bit-identically.

use crate::mix;

/// The shape of one synthetic traffic run.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficConfig {
    /// Benchmark every job relinks.
    pub benchmark: String,
    /// Generator scale for the tenant programs.
    pub scale: f64,
    /// Seed for arrivals, tenant draws and program variants.
    pub seed: u64,
    /// Number of tenants (`t0` .. `t{n-1}`), sharing traffic by a
    /// Zipf-like weight `1/(i+1)` — tenant 0 is the hot tenant.
    pub tenants: usize,
    /// Planned arrivals (burst amplification adds more at run time).
    pub requests: usize,
    /// Mean modeled seconds between arrivals; actual gaps jitter
    /// uniformly in `[0.5, 1.5] * mean`.
    pub mean_gap_secs: f64,
    /// Every k-th request opens a burst: the next `burst_len` requests
    /// arrive almost simultaneously (0 disables).
    pub burst_every: usize,
    /// Requests per burst after the head.
    pub burst_len: usize,
    /// Every k-th request carries a client-side cancellation (0
    /// disables).
    pub cancel_every: usize,
    /// Modeled seconds after submit at which the client cancels.
    pub cancel_after_secs: f64,
    /// Every k-th request declares a peak RSS above the per-action
    /// ceiling and must be rejected at admission (0 disables).
    pub oversize_every: usize,
    /// Distinct program variants across tenants; tenants `i` and
    /// `i + variants` share a program, so the shared cache sees
    /// cross-tenant hits.
    pub program_variants: usize,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            benchmark: "clang".to_string(),
            scale: 0.002,
            seed: 0xC0FFEE,
            tenants: 3,
            requests: 12,
            mean_gap_secs: 8.0,
            burst_every: 5,
            burst_len: 2,
            cancel_every: 7,
            cancel_after_secs: 4.0,
            oversize_every: 9,
            program_variants: 2,
        }
    }
}

/// One relink job submission.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRequest {
    /// Stable id (traffic order; burst clones get ids past the plan).
    pub id: u64,
    /// Tenant index.
    pub tenant: u32,
    /// Modeled arrival time in microseconds.
    pub arrival_us: u64,
    /// Seed of the program this tenant relinks.
    pub program_seed: u64,
    /// Declared peak RSS the admission controller checks against the
    /// per-action memory ceiling.
    pub declared_peak_bytes: u64,
    /// Client-side cancellation, modeled seconds after submit.
    pub cancel_after_secs: Option<f64>,
}

/// Declared footprint of a well-behaved job: comfortably under the
/// 12 GiB distributed-action ceiling.
pub const NORMAL_PEAK_BYTES: u64 = 6 << 30;
/// Declared footprint of an oversize job: above the ceiling, so the
/// admission controller must refuse it.
pub const OVERSIZE_PEAK_BYTES: u64 = 16 << 30;

/// Map a hash to a uniform `f64` in `[0, 1)` (top 53 bits).
pub(crate) fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The program seed of `tenant` under `cfg` — tenants fold onto
/// `program_variants` distinct programs.
pub fn program_seed_for(cfg: &TrafficConfig, tenant: u32) -> u64 {
    let variant = u64::from(tenant) % cfg.program_variants.max(1) as u64;
    mix(cfg.seed ^ 0x9E37_79B9 ^ mix(variant + 1))
}

/// Generate the traffic plan: `cfg.requests` arrivals sorted by time.
pub fn gen_traffic(cfg: &TrafficConfig) -> Vec<JobRequest> {
    let tenants = cfg.tenants.max(1);
    // Zipf-like cumulative weights: tenant i has weight 1/(i+1).
    let weights: Vec<f64> = (0..tenants).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    let mut requests = Vec::with_capacity(cfg.requests);
    let mut t_us: u64 = 0;
    let mut burst_left = 0usize;
    for idx in 0..cfg.requests {
        let idx_u = idx as u64;
        if burst_left > 0 {
            // Burst member: arrive 50 modeled ms after the previous
            // request.
            burst_left -= 1;
            t_us += 50_000;
        } else {
            let u = unit_f64(mix(cfg.seed ^ mix(idx_u + 0xA11)));
            t_us += (cfg.mean_gap_secs * (0.5 + u) * 1e6) as u64;
            if cfg.burst_every > 0 && idx > 0 && idx % cfg.burst_every == 0 {
                burst_left = cfg.burst_len;
            }
        }
        let draw = unit_f64(mix(cfg.seed ^ mix(idx_u + 0x7E2A))) * total;
        let mut acc = 0.0;
        let mut tenant = tenants - 1;
        for (i, w) in weights.iter().enumerate() {
            acc += w;
            if draw < acc {
                tenant = i;
                break;
            }
        }
        let tenant = tenant as u32;
        let oversize = cfg.oversize_every > 0 && idx > 0 && idx % cfg.oversize_every == 0;
        let cancel = cfg.cancel_every > 0 && idx > 0 && idx % cfg.cancel_every == 0;
        requests.push(JobRequest {
            id: idx_u,
            tenant,
            arrival_us: t_us,
            program_seed: program_seed_for(cfg, tenant),
            declared_peak_bytes: if oversize { OVERSIZE_PEAK_BYTES } else { NORMAL_PEAK_BYTES },
            cancel_after_secs: cancel.then_some(cfg.cancel_after_secs),
        });
    }
    requests
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_is_deterministic_and_sorted() {
        let cfg = TrafficConfig::default();
        let a = gen_traffic(&cfg);
        let b = gen_traffic(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.requests);
        assert!(a.windows(2).all(|w| w[0].arrival_us <= w[1].arrival_us));
        // A different seed moves at least one arrival.
        let c = gen_traffic(&TrafficConfig { seed: cfg.seed + 1, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn hot_tenant_gets_the_largest_share() {
        let cfg = TrafficConfig { requests: 200, tenants: 4, ..TrafficConfig::default() };
        let traffic = gen_traffic(&cfg);
        let mut counts = vec![0usize; 4];
        for r in &traffic {
            counts[r.tenant as usize] += 1;
        }
        assert!(counts[0] > counts[3], "Zipf shares: {counts:?}");
    }

    #[test]
    fn oversize_and_cancel_markers_appear() {
        let cfg = TrafficConfig { requests: 30, ..TrafficConfig::default() };
        let traffic = gen_traffic(&cfg);
        assert!(traffic.iter().any(|r| r.declared_peak_bytes == OVERSIZE_PEAK_BYTES));
        assert!(traffic.iter().any(|r| r.cancel_after_secs.is_some()));
    }

    #[test]
    fn tenants_fold_onto_program_variants() {
        let cfg = TrafficConfig { tenants: 4, program_variants: 2, ..TrafficConfig::default() };
        assert_eq!(program_seed_for(&cfg, 0), program_seed_for(&cfg, 2));
        assert_eq!(program_seed_for(&cfg, 1), program_seed_for(&cfg, 3));
        assert_ne!(program_seed_for(&cfg, 0), program_seed_for(&cfg, 1));
    }
}
