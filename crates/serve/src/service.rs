//! The relink service: a deterministic discrete-event scheduler over
//! real pipeline runs.
//!
//! Time here is modeled sim-seconds (microsecond-granular), never wall
//! clock: arrivals, queue waits, deadlines, retry backoff and slot
//! occupancy all advance a virtual clock, so a traffic run is
//! bit-replayable. The *work* is real — every admitted job executes
//! the full 4-phase pipeline against the shared [`BuildCaches`], with
//! real intra-job parallelism behind the `--jobs` knob — but jobs
//! execute synchronously at their (deterministic) start events, so the
//! shared-cache mutation order is a pure function of the traffic and
//! the service seed.
//!
//! ## Why service binaries are byte-identical to batch runs
//!
//! Each job gets its own pipeline [`FaultInjector`] seeded from
//! `(service seed, tenant, program)` — the same seed an equivalent
//! batch `run` would use. Non-cache fault sites (action names, module
//! names, LBR record indices) therefore roll identically in both
//! worlds. Cache-site rolls *can* differ (the service cache has live
//! entries where a fresh batch cache misses), but cache faults only
//! force rebuilds of content-addressed artifacts whose keys encode
//! their full inputs — the rebuilt bytes are identical, so cache state
//! never changes shipped binaries, only ledger accounting.
//!
//! Cancelled jobs are transactional: they are modeled as holding a
//! slot for part of their estimated duration and publish *nothing* —
//! no cache inserts, no binary — so a cancellation can never leak
//! partial state into other tenants' builds.

use propeller::{BuildCaches, Propeller, PropellerOptions};
use propeller_faults::{
    DegradationLedger, FaultInjector, FaultKind, FaultPlan, LayoutMode, ServiceLedger,
    TenantLedger,
};
use propeller_obj::ContentHash;
use propeller_synth::{generate, spec_by_name, BenchmarkSpec, GenParams};
use propeller_telemetry::{Telemetry, TimeSeries, TENANT_LANE_BASE};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;

use crate::mix;
use crate::traffic::JobRequest;

/// Service configuration. Everything that shapes scheduling is in
/// modeled units; `jobs` only widens the intra-job worker pool and
/// never changes any output byte.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Concurrent relink slots.
    pub slots: usize,
    /// Bounded queue capacity (total across tenants).
    pub queue_capacity: usize,
    /// Max modeled seconds an arrival may wait (queue + backoff)
    /// before it starts; older jobs time out at dequeue.
    pub deadline_secs: f64,
    /// Client retry budget against queue-full refusals and queue
    /// drops, including the first submission.
    pub retry_max_attempts: u32,
    /// Backoff before the first client retry, modeled seconds.
    pub retry_base_secs: f64,
    /// Backoff multiplier per failed attempt.
    pub retry_multiplier: f64,
    /// Jitter fraction: wait is `backoff * (1 + frac * u)`.
    pub retry_jitter_frac: f64,
    /// Default fault plan for the service scheduler and every job.
    pub faults: FaultPlan,
    /// Per-tenant plan overrides (pipeline kinds — e.g. one tenant
    /// losing 100% of its profile). Service-level kinds always roll
    /// from the default plan's scheduler injector.
    pub tenant_faults: Vec<(u32, FaultPlan)>,
    /// Seed for the scheduler injector and per-job seeds.
    pub seed: u64,
    /// Intra-job worker threads (the pipeline `--jobs` knob).
    pub jobs: usize,
    /// Shared-cache capacity bound (entries per cache; `None` =
    /// unbounded).
    pub cache_capacity: Option<usize>,
    /// Entries force-evicted per `evict-storm` fire.
    pub storm_evictions: usize,
    /// Extra arrivals cloned per `burst-amplify` fire.
    pub burst_clones: usize,
    /// Phase 3 profiling block budget per job.
    pub profile_budget: u64,
    /// Slot-time estimate for a job cancelled before its tenant ever
    /// completed one (modeled seconds).
    pub duration_estimate_secs: f64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            slots: 2,
            queue_capacity: 6,
            deadline_secs: 240.0,
            retry_max_attempts: 3,
            retry_base_secs: 2.0,
            retry_multiplier: 2.0,
            retry_jitter_frac: 0.5,
            faults: FaultPlan::none(),
            tenant_faults: Vec::new(),
            seed: 0x5E12_51CE,
            jobs: 1,
            cache_capacity: None,
            storm_evictions: 6,
            burst_clones: 2,
            profile_budget: 60_000,
            duration_estimate_secs: 30.0,
        }
    }
}

/// A job the service ran to completion: everything needed to replay it
/// as an equivalent batch run and compare bytes.
#[derive(Clone, Debug)]
pub struct CompletedJob {
    pub id: u64,
    pub tenant: u32,
    pub program_seed: u64,
    /// The pipeline seed this job (and its batch equivalent) used.
    pub job_seed: u64,
    /// The fault plan in force for this job's pipeline.
    pub plan: FaultPlan,
    /// Content hash over the shipped binary image.
    pub binary_digest: u64,
    /// The shipped binary bytes (small at service scales; kept so the
    /// soak can compare byte-for-byte, not just by digest).
    pub image: Vec<u8>,
    /// Modeled slot seconds the job consumed.
    pub duration_secs: f64,
    /// The job's pipeline degradation ledger.
    pub degradation: DegradationLedger,
}

/// The result of draining a service: the canonical ledger plus the
/// per-job evidence the soak verifies.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    pub ledger: ServiceLedger,
    pub completed: Vec<CompletedJob>,
    /// Exact-accounting violations observed per job (must be empty).
    pub violations: Vec<String>,
}

/// Service errors, with `source()` chains down to the pipeline.
#[derive(Debug)]
pub enum ServeError {
    UnknownBenchmark(String),
    Pipeline { job: u64, tenant: u32, source: propeller::PipelineError },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownBenchmark(name) => {
                write!(f, "unknown benchmark {name:?} (try `propeller_cli list`)")
            }
            ServeError::Pipeline { job, tenant, .. } => {
                write!(f, "relink job {job} (tenant t{tenant}) failed in the pipeline")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::UnknownBenchmark(_) => None,
            ServeError::Pipeline { source, .. } => Some(source),
        }
    }
}

/// The per-job pipeline seed: a pure function of the service seed and
/// the job's inputs (tenant, program), NOT of submission order — so
/// repeated relinks of the same inputs are idempotent byte-for-byte,
/// and a batch `run` with this seed reproduces the service's binary.
pub fn job_seed(service_seed: u64, tenant: u32, program_seed: u64) -> u64 {
    mix(service_seed ^ mix(u64::from(tenant) + 1) ^ mix(program_seed))
}

enum Ev {
    Arrive { req: JobRequest, attempt: u32, is_clone: bool, submit_us: u64 },
    Finish,
}

struct Item {
    t_us: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        self.t_us == other.t_us && self.seq == other.seq
    }
}
impl Eq for Item {}
impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Item {
    // Reversed: BinaryHeap is a max-heap, we want earliest-first with
    // FIFO tie-break on push order.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.t_us, other.seq).cmp(&(self.t_us, self.seq))
    }
}

struct Queued {
    req: JobRequest,
    submit_us: u64,
    enqueued_us: u64,
}

/// The long-running multi-tenant relink service.
///
/// Stateful: [`submit`](RelinkService::submit) enqueues arrivals,
/// [`drain`](RelinkService::drain) advances the modeled clock until
/// the event queue is empty, and [`report`](RelinkService::report)
/// assembles the canonical ledger. [`run`](RelinkService::run) is the
/// batch convenience used by the `traffic` subcommand and the soak.
pub struct RelinkService {
    opts: ServeOptions,
    spec: BenchmarkSpec,
    scale: f64,
    caches: BuildCaches,
    /// Scheduler injector for the four service-level kinds; `None`
    /// when the default plan schedules none of them.
    scheduler_inj: Option<FaultInjector>,
    tel: Telemetry,
    heap: BinaryHeap<Item>,
    seq: u64,
    now_us: u64,
    free_slots: usize,
    queues: Vec<VecDeque<Queued>>,
    queued_total: usize,
    rr_next: usize,
    tenants: Vec<TenantLedger>,
    completed: Vec<CompletedJob>,
    violations: Vec<String>,
    /// Last completed duration per (tenant, program) — the estimate
    /// used to model cancelled jobs' slot time.
    durations: HashMap<(u32, u64), f64>,
    next_clone_id: u64,
    makespan_us: u64,
    ceiling_bytes: Option<u64>,
    /// Modeled-clock time series, armed by
    /// [`arm_timeline`](RelinkService::arm_timeline). `None` (the
    /// default) records nothing and changes no output byte.
    timeline: Option<TimeSeries>,
}

impl RelinkService {
    /// Create a service for `benchmark` at `scale` with fresh caches.
    pub fn new(benchmark: &str, scale: f64, opts: ServeOptions) -> Result<Self, ServeError> {
        let spec = spec_by_name(benchmark)
            .ok_or_else(|| ServeError::UnknownBenchmark(benchmark.to_string()))?;
        let scheduler_inj = opts.faults.has_service_faults().then(|| {
            FaultInjector::new(opts.faults.clone(), mix(opts.seed ^ 0x5E12_F417))
        });
        let caches = BuildCaches::new();
        caches.set_capacity(opts.cache_capacity);
        let ceiling_bytes = PropellerOptions::default().machine.ram_limit();
        let tenants_hint = 4;
        Ok(RelinkService {
            free_slots: opts.slots.max(1),
            scheduler_inj,
            caches,
            tel: Telemetry::disabled(),
            heap: BinaryHeap::new(),
            seq: 0,
            now_us: 0,
            queues: Vec::with_capacity(tenants_hint),
            queued_total: 0,
            rr_next: 0,
            tenants: Vec::with_capacity(tenants_hint),
            completed: Vec::new(),
            violations: Vec::new(),
            durations: HashMap::new(),
            next_clone_id: 1 << 32,
            makespan_us: 0,
            ceiling_bytes,
            timeline: None,
            spec,
            scale,
            opts,
        })
    }

    /// Arm the modeled-clock time-series recorder. Every subsequent
    /// scheduling decision records points keyed by sim-microseconds:
    /// per-tenant queue depth, slots in use, admission/rejection
    /// counters, cache hit rate, RSS headroom, and per-tenant
    /// submit-to-publish latency (event series + log2 histogram).
    /// Recording is a pure observer — ledgers, binaries and spans are
    /// byte-identical armed or not — and the recorded series are
    /// byte-identical across `--jobs` counts and replays, because
    /// every recorded value is modeled, never measured.
    pub fn arm_timeline(&mut self) {
        self.timeline = Some(TimeSeries::new());
    }

    /// The armed timeline (`None` unless
    /// [`arm_timeline`](RelinkService::arm_timeline) was called).
    pub fn timeline(&self) -> Option<&TimeSeries> {
        self.timeline.as_ref()
    }

    /// Bumps the per-tenant cumulative counter `metric.t{tenant}` on
    /// the armed timeline.
    fn tl_count(&mut self, metric: &str, tenant: u32, t_us: u64) {
        if let Some(ts) = self.timeline.as_mut() {
            ts.counter_add(&format!("{metric}.t{tenant}"), t_us, 1.0);
        }
    }

    /// Records the per-tenant and total queue-depth gauges after a
    /// queue mutation.
    fn tl_queue_depth(&mut self, tenant: u32, t_us: u64) {
        let depth = self.queues.get(tenant as usize).map_or(0, VecDeque::len) as f64;
        let total = self.queued_total as f64;
        if let Some(ts) = self.timeline.as_mut() {
            ts.gauge(&format!("queue_depth.t{tenant}"), t_us, depth);
            ts.gauge("queue_depth.total", t_us, total);
        }
    }

    /// Records the slots-in-use gauge at `t_us`.
    fn tl_slots(&mut self, t_us: u64) {
        let in_use = (self.opts.slots.max(1) - self.free_slots) as f64;
        if let Some(ts) = self.timeline.as_mut() {
            ts.gauge("slots_in_use", t_us, in_use);
        }
    }

    /// Attach a telemetry handle; each job then records one span in a
    /// per-tenant Chrome-trace lane.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// The telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// The shared caches (tests inspect per-tenant accounting).
    pub fn caches(&self) -> &BuildCaches {
        &self.caches
    }

    fn tenant_mut(&mut self, tenant: u32) -> &mut TenantLedger {
        let idx = tenant as usize;
        while self.tenants.len() <= idx {
            self.tenants.push(TenantLedger::default());
            self.queues.push(VecDeque::new());
        }
        &mut self.tenants[idx]
    }

    fn push_event(&mut self, t_us: u64, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Item { t_us, seq, ev });
    }

    /// Submit one arrival. Its `arrival_us` must not precede the
    /// modeled clock (it is clamped forward if it does, so incremental
    /// REPL submissions after a drain stay monotonic).
    pub fn submit(&mut self, req: JobRequest) {
        let t = req.arrival_us.max(self.now_us);
        self.tenant_mut(req.tenant).submitted += 1;
        self.tl_count("submitted", req.tenant, t);
        self.push_event(t, Ev::Arrive { submit_us: t, req, attempt: 0, is_clone: false });
    }

    /// The plan in force for `tenant`'s pipeline jobs.
    fn plan_for(&self, tenant: u32) -> FaultPlan {
        self.opts
            .tenant_faults
            .iter()
            .find(|(t, _)| *t == tenant)
            .map(|(_, p)| p.clone())
            .unwrap_or_else(|| self.opts.faults.clone())
    }

    /// Process events until the modeled timeline is empty.
    pub fn drain(&mut self) -> Result<(), ServeError> {
        while let Some(item) = self.heap.pop() {
            self.now_us = self.now_us.max(item.t_us);
            self.makespan_us = self.makespan_us.max(self.now_us);
            match item.ev {
                Ev::Arrive { req, attempt, is_clone, submit_us } => {
                    self.on_arrive(req, attempt, is_clone, submit_us)?;
                }
                Ev::Finish => {
                    self.free_slots += 1;
                    let now = self.now_us;
                    self.tl_slots(now);
                    self.fill_slots()?;
                }
            }
        }
        Ok(())
    }

    fn on_arrive(
        &mut self,
        req: JobRequest,
        attempt: u32,
        is_clone: bool,
        submit_us: u64,
    ) -> Result<(), ServeError> {
        let now = self.now_us;
        // Burst amplification rolls once per original arrival, before
        // admission, so even a rejected arrival can amplify.
        if attempt == 0 && !is_clone {
            let fires = self
                .scheduler_inj
                .as_ref()
                .is_some_and(|inj|

                    inj.fires(FaultKind::TenantBurstAmplification, &format!("arrive j{}", req.id)));
            if fires {
                for k in 0..self.opts.burst_clones {
                    let clone_id = self.next_clone_id;
                    self.next_clone_id += 1;
                    let t = now + (k as u64 + 1) * 100_000;
                    let clone = JobRequest {
                        id: clone_id,
                        arrival_us: t,
                        cancel_after_secs: None,
                        ..req.clone()
                    };
                    self.tenant_mut(req.tenant).burst_clones += 1;
                    self.tl_count("burst_clones", req.tenant, t);
                    self.push_event(t, Ev::Arrive {
                        submit_us: t,
                        req: clone,
                        attempt: 0,
                        is_clone: true,
                    });
                }
            }
        }
        // Admission control: a job whose declared footprint cannot fit
        // under the per-action memory ceiling is refused outright — a
        // warehouse build scheduler never starts work it knows must
        // die.
        if let Some(ceiling) = self.ceiling_bytes {
            if req.declared_peak_bytes > ceiling {
                self.tenant_mut(req.tenant).rejected_memory += 1;
                self.tl_count("rejected_memory", req.tenant, now);
                return Ok(());
            }
        }
        if self.free_slots > 0 {
            self.free_slots -= 1;
            self.start_job(req, submit_us)?;
            return Ok(());
        }
        if self.queued_total < self.opts.queue_capacity {
            // `drop-queue` models the queue losing the entry before it
            // is ever scheduled; the client observes the loss exactly
            // like a refusal and retries with backoff.
            let dropped = self.scheduler_inj.as_ref().is_some_and(|inj| {
                inj.fires(FaultKind::QueueDrop, &format!("enqueue j{}#a{attempt}", req.id))
            });
            if !dropped {
                let tenant = req.tenant;
                self.tenant_mut(tenant); // ensure the queue row exists
                self.queues[tenant as usize].push_back(Queued {
                    req,
                    submit_us,
                    enqueued_us: self.now_us,
                });
                self.queued_total += 1;
                self.tl_queue_depth(tenant, now);
                return Ok(());
            }
            self.tenant_mut(req.tenant).queue_drops += 1;
            self.tl_count("queue_drops", req.tenant, now);
        }
        // Queue full (or the enqueue was dropped): client-side retry
        // with seeded-jitter exponential backoff, all modeled.
        if attempt + 1 < self.opts.retry_max_attempts {
            let base = self.opts.retry_base_secs * self.opts.retry_multiplier.powi(attempt as i32);
            let u = match &self.scheduler_inj {
                Some(inj) => inj.unit(&format!("backoff j{}", req.id), u64::from(attempt)),
                None => crate::traffic::unit_f64(mix(
                    self.opts.seed ^ mix(req.id + 0xBACC) ^ mix(u64::from(attempt) + 1),
                )),
            };
            let backoff = base * (1.0 + self.opts.retry_jitter_frac * u);
            let row = self.tenant_mut(req.tenant);
            row.retries += 1;
            row.retry_backoff_secs += backoff;
            self.tl_count("retries", req.tenant, now);
            let t = self.now_us + (backoff * 1e6) as u64;
            self.push_event(t, Ev::Arrive { submit_us, req, attempt: attempt + 1, is_clone });
        } else {
            self.tenant_mut(req.tenant).rejected_queue += 1;
            self.tl_count("rejected_queue", req.tenant, now);
        }
        Ok(())
    }

    /// A slot became free: pull queued jobs round-robin across tenants
    /// until slots are full or every queue is empty. Fairness is by
    /// tenant, not arrival order — a hot tenant cannot starve the
    /// tail.
    fn fill_slots(&mut self) -> Result<(), ServeError> {
        while self.free_slots > 0 && self.queued_total > 0 {
            let n = self.queues.len();
            let mut picked = None;
            for off in 0..n {
                let t = (self.rr_next + off) % n;
                if let Some(q) = self.queues[t].pop_front() {
                    self.queued_total -= 1;
                    self.rr_next = (t + 1) % n;
                    picked = Some(q);
                    break;
                }
            }
            let Some(q) = picked else { break };
            let now = self.now_us;
            self.tl_queue_depth(q.req.tenant, now);
            let wait = (self.now_us - q.enqueued_us) as f64 / 1e6;
            self.tenants[q.req.tenant as usize].queue_wait_secs += wait;
            // Deadline: measured from the original submit, so backoff
            // spent retrying counts against it too.
            let age = (self.now_us.saturating_sub(q.submit_us)) as f64 / 1e6;
            if age > self.opts.deadline_secs {
                self.tenants[q.req.tenant as usize].deadline_timeouts += 1;
                self.tl_count("deadline_timeouts", q.req.tenant, now);
                continue;
            }
            // Cancelled while queued: the owner gave up before a slot
            // opened.
            if let Some(c) = q.req.cancel_after_secs {
                if q.submit_us + (c * 1e6) as u64 <= self.now_us {
                    self.tenants[q.req.tenant as usize].cancelled_by_client += 1;
                    self.tl_count("cancelled", q.req.tenant, now);
                    continue;
                }
            }
            self.free_slots -= 1;
            self.start_job(q.req, q.submit_us)?;
        }
        Ok(())
    }

    /// Occupy a slot with `req` at the current modeled time. The slot
    /// is already debited by the caller.
    fn start_job(&mut self, req: JobRequest, submit_us: u64) -> Result<(), ServeError> {
        let now = self.now_us;
        let tenant = req.tenant;
        self.tenant_mut(tenant).admitted += 1;
        self.tl_count("admitted", tenant, now);
        self.tl_slots(now);
        let est = self
            .durations
            .get(&(tenant, req.program_seed))
            .copied()
            .unwrap_or(self.opts.duration_estimate_secs);
        // Fault-driven cancellation: the owner kills the job mid
        // flight. Transactional — nothing is published, the slot frees
        // at the modeled cancel instant.
        let fault_cancel = self.scheduler_inj.as_ref().is_some_and(|inj| {
            inj.fires(FaultKind::JobCancellation, &format!("start j{}", req.id))
        });
        if fault_cancel {
            let frac = 0.25
                + 0.5
                    * self
                        .scheduler_inj
                        .as_ref()
                        .map(|inj| inj.unit(&format!("cancel j{}", req.id), 1))
                        .unwrap_or(0.5);
            let held = est * frac;
            let row = self.tenant_mut(tenant);
            row.cancelled_by_fault += 1;
            row.busy_secs += held;
            self.tl_count("cancelled", tenant, now);
            self.push_event(now + (held * 1e6) as u64, Ev::Finish);
            return Ok(());
        }
        // Client cancellation landing mid-flight (it would have been
        // caught at dequeue if it had already passed).
        if let Some(c) = req.cancel_after_secs {
            let cancel_abs = submit_us + (c * 1e6) as u64;
            if cancel_abs <= now + (est * 1e6) as u64 {
                let held = (cancel_abs.saturating_sub(now)) as f64 / 1e6;
                let row = self.tenant_mut(tenant);
                row.cancelled_by_client += 1;
                row.busy_secs += held;
                self.tl_count("cancelled", tenant, now);
                self.push_event(cancel_abs.max(now), Ev::Finish);
                return Ok(());
            }
        }
        // Cache-pressure eviction storm, rolled at job start so the
        // storm hits the cache state this job is about to read.
        let storm = self.scheduler_inj.as_ref().is_some_and(|inj| {
            inj.fires(FaultKind::CacheEvictionStorm, &format!("storm j{}", req.id))
        });
        if storm {
            let evicted = self.caches.evict_oldest_objects(self.opts.storm_evictions);
            let row = self.tenant_mut(tenant);
            row.eviction_storms += 1;
            row.storm_evicted_entries += evicted;
        }
        // The real work: a full 4-phase pipeline run against the
        // shared caches, attributed to this tenant. Synchronous at the
        // start event — event order IS execution order, which is what
        // keeps shared-cache mutation deterministic.
        let plan = self.plan_for(tenant);
        let seed = job_seed(self.opts.seed, tenant, req.program_seed);
        let gen = generate(
            &self.spec,
            &GenParams {
                scale: self.scale,
                seed: req.program_seed,
                funcs_per_module: 12,
                entry_points: 4,
            },
        );
        let opts = PropellerOptions {
            faults: plan.clone(),
            seed,
            jobs: self.opts.jobs,
            profile_budget: self.opts.profile_budget,
            ..PropellerOptions::default()
        };
        self.caches.set_tenant(tenant);
        let mut pipeline =
            Propeller::with_caches(gen.program, gen.entries, opts, self.caches.clone());
        pipeline
            .run_all()
            .map_err(|source| ServeError::Pipeline { job: req.id, tenant, source })?;
        let duration = pipeline.times().total_wall_secs();
        let peak = [
            pipeline.times().phase1.max_action_memory,
            pipeline.times().phase2.max_action_memory,
            pipeline.times().phase3.max_action_memory,
            pipeline.times().phase4.max_action_memory,
        ]
        .into_iter()
        .max()
        .unwrap_or(0);
        let ledger = pipeline.degradation().clone();
        // Exact accounting per job: everything the job's injector
        // fired must be booked in its ledger, one-for-one.
        if let Some(inj) = pipeline.fault_injector() {
            let books = [
                (FaultKind::TransientActionFailure, ledger.action_retries),
                (FaultKind::ActionTimeout, ledger.action_timeouts),
                (FaultKind::CacheCorruption, ledger.cache_corruptions),
                (FaultKind::CacheEviction, ledger.cache_evictions),
                (FaultKind::LbrRecordCorruption, ledger.lbr_records_corrupted),
                (FaultKind::SampleTruncation, ledger.lbr_samples_truncated),
                (FaultKind::PermanentCodegenFailure, ledger.objects_fallen_back),
            ];
            for (kind, booked) in books {
                let fired = inj.fired(kind);
                if fired != booked {
                    self.violations.push(format!(
                        "job {} (t{tenant}): injector fired {fired} {} fault(s) but the \
                         job ledger accounts for {booked}",
                        req.id,
                        kind.key()
                    ));
                }
            }
        }
        let binary = pipeline
            .po_binary()
            .ok_or(ServeError::Pipeline {
                job: req.id,
                tenant,
                source: propeller::PipelineError::PhaseOrder { needs: "phase 4" },
            })?;
        let image = binary.image.clone();
        let digest = ContentHash::of_bytes(&image).0;
        let row = self.tenant_mut(tenant);
        row.completed += 1;
        row.busy_secs += duration;
        if !ledger.is_clean() {
            row.degraded_jobs += 1;
        }
        if ledger.layout_mode == LayoutMode::IdentityFallback {
            row.identity_fallbacks += 1;
        }
        // Aggregate the job's degradation into the tenant row. The
        // per-job layout mode is counted in `identity_fallbacks`
        // above; the aggregate's own mode field stays `Optimized`.
        row.degradation = DegradationLedger::from_entries(
            row.degradation
                .entries()
                .into_iter()
                .zip(ledger.entries())
                .map(|((name, a), (_, b))| {
                    if name == "layout_identity_fallback" {
                        (name, 0.0)
                    } else {
                        (name, a + b)
                    }
                }),
        );
        self.durations.insert((tenant, req.program_seed), duration);
        // Publish-time observability: the job's latency is stamped at
        // the modeled publish instant (submit + queue + run), not at
        // the start event — `Point.seq` keeps the export order
        // canonical even though publish lies in the scheduler's
        // future.
        let publish_us = now + (duration * 1e6) as u64;
        let ir = self.caches.tenant_ir_stats(tenant);
        let obj = self.caches.tenant_object_stats(tenant);
        let ceiling = self.ceiling_bytes;
        if let Some(ts) = self.timeline.as_mut() {
            let latency_ms = (publish_us.saturating_sub(submit_us)) as f64 / 1e3;
            ts.event(&format!("latency_ms.t{tenant}"), publish_us, latency_ms);
            ts.counter_add(&format!("completed.t{tenant}"), publish_us, 1.0);
            let lookups = ir.lookups + obj.lookups;
            if lookups > 0 {
                let rate = (ir.hits + obj.hits) as f64 / lookups as f64;
                ts.gauge(&format!("cache_hit_rate.t{tenant}"), now, rate);
            }
            if let Some(ceiling) = ceiling {
                let headroom = ceiling.saturating_sub(peak) as f64 / (1u64 << 30) as f64;
                ts.event("rss_headroom_gb", now, headroom);
            }
        }
        // One span per job in the tenant's Chrome-trace lane —
        // namespaced above the buildsys worker band so tenant t never
        // shares a tid with pipeline worker t+1.
        if self.tel.is_enabled() {
            self.tel.with_worker(TENANT_LANE_BASE + u64::from(tenant), || {
                self.tel.emit_span(format!("t{tenant}/job{}", req.id), None, duration, peak)
            });
        }
        self.completed.push(CompletedJob {
            id: req.id,
            tenant,
            program_seed: req.program_seed,
            job_seed: seed,
            plan,
            binary_digest: digest,
            image,
            duration_secs: duration,
            degradation: ledger,
        });
        self.push_event(now + (duration * 1e6) as u64, Ev::Finish);
        Ok(())
    }

    /// Fired counts of the scheduler injector (exact-accounting gate).
    pub fn scheduler_fired(&self, kind: FaultKind) -> u64 {
        self.scheduler_inj.as_ref().map_or(0, |inj| inj.fired(kind))
    }

    /// Assemble the canonical ledger and evidence from the drained
    /// service. Per-tenant cache counters are read from the shared
    /// caches' per-owner accounting at this point.
    pub fn report(&self) -> ServiceReport {
        let mut ledger = ServiceLedger {
            benchmark: self.spec.name.to_string(),
            seed: self.opts.seed,
            plan: self.opts.faults.to_spec_string(),
            slots: self.opts.slots as u64,
            queue_capacity: self.opts.queue_capacity as u64,
            deadline_secs: self.opts.deadline_secs,
            makespan_secs: self.makespan_us as f64 / 1e6,
            tenants: Default::default(),
        };
        for (i, row) in self.tenants.iter().enumerate() {
            let t = i as u32;
            let mut row = row.clone();
            let ir = self.caches.tenant_ir_stats(t);
            let obj = self.caches.tenant_object_stats(t);
            row.cache_lookups = ir.lookups + obj.lookups;
            row.cache_hits = ir.hits + obj.hits;
            row.cache_misses = ir.misses + obj.misses;
            row.cache_insertions = ir.insertions + obj.insertions;
            row.pressure_evictions = self.caches.tenant_pressure_evictions(t);
            ledger.tenants.insert(format!("t{i}"), row);
        }
        ServiceReport {
            ledger,
            completed: self.completed.clone(),
            violations: self.violations.clone(),
        }
    }

    /// Submit a whole traffic plan and drain it — the `traffic`
    /// subcommand and the soak matrix.
    pub fn run(&mut self, traffic: &[JobRequest]) -> Result<ServiceReport, ServeError> {
        for req in traffic {
            self.submit(req.clone());
        }
        self.drain()?;
        Ok(self.report())
    }
}

/// Run the equivalent *batch* relink of one service job: fresh caches,
/// same program, same plan, same seed. The returned image must be
/// byte-identical to the service's — that is the core service
/// correctness contract.
pub fn batch_binary(
    benchmark: &str,
    scale: f64,
    job: &CompletedJob,
    jobs: usize,
    profile_budget: u64,
) -> Result<Vec<u8>, ServeError> {
    let spec = spec_by_name(benchmark)
        .ok_or_else(|| ServeError::UnknownBenchmark(benchmark.to_string()))?;
    let gen = generate(
        &spec,
        &GenParams {
            scale,
            seed: job.program_seed,
            funcs_per_module: 12,
            entry_points: 4,
        },
    );
    let opts = PropellerOptions {
        faults: job.plan.clone(),
        seed: job.job_seed,
        jobs,
        profile_budget,
        ..PropellerOptions::default()
    };
    let mut pipeline = Propeller::new(gen.program, gen.entries, opts);
    pipeline.run_all().map_err(|source| ServeError::Pipeline {
        job: job.id,
        tenant: job.tenant,
        source,
    })?;
    let binary = pipeline.po_binary().ok_or(ServeError::Pipeline {
        job: job.id,
        tenant: job.tenant,
        source: propeller::PipelineError::PhaseOrder { needs: "phase 4" },
    })?;
    Ok(binary.image.clone())
}
