//! Relink-as-a-service: a chaos-hardened, multi-tenant relink server.
//!
//! Warehouse Propeller (§5 of the paper) is not a batch tool: the
//! relink step runs as a shared service that many applications'
//! release pipelines hit concurrently. This crate models that service
//! deterministically on top of the real pipeline:
//!
//! - [`traffic`]: a seeded generator producing Zipf-shared multi-tenant
//!   arrivals with bursts, cancellations, and oversize jobs.
//! - [`service`]: the discrete-event scheduler — admission control
//!   against the per-action memory ceiling, bounded queues with
//!   round-robin tenant fairness, deadline timeouts, seeded-jitter
//!   client retry, and the four service-level fault kinds — running
//!   every admitted job through the real 4-phase pipeline against one
//!   shared content-addressed cache.
//! - [`soak`]: the chaos soak matrix proving the two service
//!   contracts: shipped binaries are byte-identical to equivalent
//!   batch runs, and the [`ServiceLedger`] is exact and byte-identical
//!   across `--jobs` counts and replays.
//!
//! Everything scheduled is in modeled sim-seconds — no wall-clock
//! sleeps anywhere — so a traffic run is bit-replayable.

mod service;
mod soak;
pub mod traffic;

pub use service::{
    batch_binary, job_seed, CompletedJob, RelinkService, ServeError, ServeOptions, ServiceReport,
};
pub use soak::{run_soak, soak_scenarios, SoakOutcome, SoakScenario};
pub use traffic::{gen_traffic, JobRequest, TrafficConfig};

/// splitmix64 — the same bijective mixer the fault injector uses, kept
/// private there; re-derived here for traffic/seed hashing.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
