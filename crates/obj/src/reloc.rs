//! Relocations.

/// The relocation kinds the synthetic ISA needs.
///
/// Basic block sections force branch targets to be resolved by the
/// linker (§4.2), so conditional and unconditional branches across
/// section boundaries carry [`RelocKind::BranchPc32`] relocations. The
/// linker's relaxation pass may later rewrite a relocated long branch to
/// a short one, or delete it entirely when it becomes a fall-through.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum RelocKind {
    /// 32-bit pc-relative call displacement.
    CallPc32,
    /// 32-bit pc-relative branch displacement (long branch form).
    BranchPc32,
    /// 8-bit pc-relative branch displacement (short branch form; only
    /// produced when the offset is known to fit at compile time).
    BranchPc8,
    /// 64-bit absolute address (metadata references into text).
    Abs64,
}

impl RelocKind {
    /// Width in bytes of the relocated field.
    pub fn width(self) -> usize {
        match self {
            RelocKind::CallPc32 | RelocKind::BranchPc32 => 4,
            RelocKind::BranchPc8 => 1,
            RelocKind::Abs64 => 8,
        }
    }

    pub(crate) fn tag(self) -> u8 {
        match self {
            RelocKind::CallPc32 => 0,
            RelocKind::BranchPc32 => 1,
            RelocKind::BranchPc8 => 2,
            RelocKind::Abs64 => 3,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => RelocKind::CallPc32,
            1 => RelocKind::BranchPc32,
            2 => RelocKind::BranchPc8,
            3 => RelocKind::Abs64,
            _ => return None,
        })
    }
}

/// A relocation record: patch `width` bytes at `offset` with the address
/// of `symbol + addend`, encoded per `kind`.
///
/// Targets are symbolic (by name) because Propeller's whole point is
/// that section ordering is decided at link time; nothing may assume
/// final addresses earlier.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Reloc {
    /// Offset of the field within the containing section.
    pub offset: u32,
    /// Encoding of the field.
    pub kind: RelocKind,
    /// Name of the target symbol.
    pub symbol: String,
    /// Byte offset added to the symbol address.
    pub addend: i64,
}

impl Reloc {
    /// Creates a relocation.
    pub fn new(offset: u32, kind: RelocKind, symbol: impl Into<String>, addend: i64) -> Self {
        Reloc {
            offset,
            kind,
            symbol: symbol.into(),
            addend,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(RelocKind::CallPc32.width(), 4);
        assert_eq!(RelocKind::BranchPc32.width(), 4);
        assert_eq!(RelocKind::BranchPc8.width(), 1);
        assert_eq!(RelocKind::Abs64.width(), 8);
    }

    #[test]
    fn tags_round_trip() {
        for k in [
            RelocKind::CallPc32,
            RelocKind::BranchPc32,
            RelocKind::BranchPc8,
            RelocKind::Abs64,
        ] {
            assert_eq!(RelocKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(RelocKind::from_tag(77), None);
    }

    #[test]
    fn constructor_stores_fields() {
        let r = Reloc::new(12, RelocKind::CallPc32, "callee", -4);
        assert_eq!(r.offset, 12);
        assert_eq!(r.symbol, "callee");
        assert_eq!(r.addend, -4);
    }
}
