//! Object format errors.

use std::error::Error;
use std::fmt;

/// An error produced while decoding or validating an object file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ObjError {
    /// The byte stream ended before a complete record was read.
    Truncated {
        /// What was being decoded.
        context: &'static str,
    },
    /// A magic number or enum tag had an unexpected value.
    BadTag {
        /// What was being decoded.
        context: &'static str,
        /// The offending value.
        value: u32,
    },
    /// A string field was not valid UTF-8.
    BadString,
    /// A section index referenced a nonexistent section.
    BadSectionIndex(u32),
}

impl fmt::Display for ObjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjError::Truncated { context } => {
                write!(f, "truncated object file while decoding {context}")
            }
            ObjError::BadTag { context, value } => {
                write!(f, "bad tag {value} while decoding {context}")
            }
            ObjError::BadString => write!(f, "invalid utf-8 in object string table"),
            ObjError::BadSectionIndex(i) => write!(f, "section index {i} out of range"),
        }
    }
}

impl Error for ObjError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ObjError::Truncated { context: "symbol" }
            .to_string()
            .contains("symbol"));
        assert!(ObjError::BadSectionIndex(9).to_string().contains('9'));
    }
}
