//! Content hashing for the build system's content-addressed cache.

use std::fmt;

/// A 64-bit FNV-1a content hash.
///
/// The distributed build system caches artifacts by the hash of their
/// contents (and actions by the hash of their inputs); 64 bits of FNV is
/// plenty for a simulation and keeps the implementation dependency-free.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ContentHash(pub u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl ContentHash {
    /// Hashes a byte slice.
    pub fn of_bytes(bytes: &[u8]) -> Self {
        let mut h = FNV_OFFSET;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        ContentHash(h)
    }

    /// Combines this hash with another, order-sensitively.
    pub fn combine(self, other: ContentHash) -> Self {
        let mut h = self.0;
        for b in other.0.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        ContentHash(h)
    }

    /// Hashes an iterator of byte slices as if concatenated.
    pub fn of_parts<'a>(parts: impl IntoIterator<Item = &'a [u8]>) -> Self {
        let mut h = FNV_OFFSET;
        for part in parts {
            for &b in part {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        }
        ContentHash(h)
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::LowerHex for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_content_sensitive() {
        let a = ContentHash::of_bytes(b"hello");
        let b = ContentHash::of_bytes(b"hello");
        let c = ContentHash::of_bytes(b"hellp");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn parts_equal_concatenation() {
        let whole = ContentHash::of_bytes(b"abcdef");
        let parts = ContentHash::of_parts([b"abc".as_slice(), b"def".as_slice()]);
        assert_eq!(whole, parts);
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = ContentHash::of_bytes(b"a");
        let b = ContentHash::of_bytes(b"b");
        assert_ne!(a.combine(b), b.combine(a));
    }

    #[test]
    fn display_is_fixed_width_hex() {
        let s = ContentHash::of_bytes(b"x").to_string();
        assert_eq!(s.len(), 16);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
