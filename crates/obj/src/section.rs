//! Sections.

use std::fmt;

/// Index of a section within one object file.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SectionId(pub u32);

impl SectionId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sec{}", self.0)
    }
}

/// What a section contains; drives linker placement and the Figure 6
/// size breakdown.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum SectionKind {
    /// Executable code (`.text`, `.text.<fn>`, `.text.<fn>.cold`, ...).
    Text,
    /// `.llvm_bb_addr_map` profile-mapping metadata (§3.2). Not loaded
    /// at run time.
    BbAddrMap,
    /// Call-frame information (`.eh_frame`, §4.4).
    EhFrame,
    /// Static relocations retained in the output (`.rela`, needed by
    /// BOLT-style rewriters; §5.3).
    Rela,
    /// Read-only data.
    RoData,
    /// DWARF debug range records (§4.3).
    DebugRanges,
    /// Anything else.
    Other,
}

impl SectionKind {
    /// Whether sections of this kind occupy memory at run time.
    pub fn is_loaded(self) -> bool {
        matches!(self, SectionKind::Text | SectionKind::RoData)
    }

    /// Stable tag for serialization.
    pub(crate) fn tag(self) -> u8 {
        match self {
            SectionKind::Text => 0,
            SectionKind::BbAddrMap => 1,
            SectionKind::EhFrame => 2,
            SectionKind::Rela => 3,
            SectionKind::RoData => 4,
            SectionKind::DebugRanges => 5,
            SectionKind::Other => 6,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => SectionKind::Text,
            1 => SectionKind::BbAddrMap,
            2 => SectionKind::EhFrame,
            3 => SectionKind::Rela,
            4 => SectionKind::RoData,
            5 => SectionKind::DebugRanges,
            6 => SectionKind::Other,
            _ => return None,
        })
    }
}

/// The span of one basic block within a text section, in file order.
///
/// Present on text sections emitted with basic block sections enabled;
/// it is what lets the linker's relaxation pass move bytes while keeping
/// block-granular metadata (incoming relocation addends, the simulator's
/// layout table) coherent. Real toolchains recover the same information
/// from `.llvm_bb_addr_map` plus relocations.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BlockSpan {
    /// Byte offset of the block within the section.
    pub offset: u32,
    /// Size of the block in bytes.
    pub size: u32,
}

/// A named, contiguous range of bytes plus its relocations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Section {
    /// Section name, e.g. `.text.foo.cold`.
    pub name: String,
    /// Content kind.
    pub kind: SectionKind,
    /// Raw contents (pre-relocation).
    pub bytes: Vec<u8>,
    /// Relocations to apply against these bytes.
    pub relocs: Vec<crate::reloc::Reloc>,
    /// Required alignment in bytes (power of two).
    pub align: u32,
    /// Block spans for text sections carrying basic block structure.
    /// Empty for opaque sections.
    pub block_map: Vec<BlockSpan>,
    /// Whether every control transfer in the section carries a
    /// relocation, making the section safe for linker relaxation
    /// (fall-through deletion and branch shrinking, §4.2).
    pub relaxable: bool,
}

impl Section {
    /// Creates a section with default (16-byte for text, 1 otherwise)
    /// alignment and no relocations.
    pub fn new(name: impl Into<String>, kind: SectionKind, bytes: Vec<u8>) -> Self {
        let align = if kind == SectionKind::Text { 16 } else { 1 };
        Section {
            name: name.into(),
            kind,
            bytes,
            relocs: Vec::new(),
            align,
            block_map: Vec::new(),
            relaxable: false,
        }
    }

    /// Size of the raw contents in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// In-file cost of the section's relocation records, using the
    /// ELF64 RELA record size (24 bytes per record).
    pub fn reloc_bytes(&self) -> usize {
        self.relocs.len() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_sections_align_16() {
        let s = Section::new(".text.f", SectionKind::Text, vec![0; 5]);
        assert_eq!(s.align, 16);
        assert_eq!(s.size(), 5);
    }

    #[test]
    fn loaded_kinds() {
        assert!(SectionKind::Text.is_loaded());
        assert!(SectionKind::RoData.is_loaded());
        assert!(!SectionKind::BbAddrMap.is_loaded());
        assert!(!SectionKind::Rela.is_loaded());
        assert!(!SectionKind::EhFrame.is_loaded());
    }

    #[test]
    fn tag_round_trip() {
        for kind in [
            SectionKind::Text,
            SectionKind::BbAddrMap,
            SectionKind::EhFrame,
            SectionKind::Rela,
            SectionKind::RoData,
            SectionKind::DebugRanges,
            SectionKind::Other,
        ] {
            assert_eq!(SectionKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(SectionKind::from_tag(200), None);
    }
}
