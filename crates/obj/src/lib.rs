//! An ELF-like relocatable object file model.
//!
//! The linker abstraction Propeller builds on is the *section*: "a
//! contiguous range of bytes containing either code, data, debug info,
//! relocations, or metadata that the linker operates on as a single
//! unit" (§4). This crate provides exactly that: [`ObjectFile`]s hold
//! [`Section`]s, [`Symbol`]s and [`Reloc`]s, can be serialized to and
//! from bytes (for content-addressed caching by the build system), and
//! report per-kind size breakdowns (for the paper's Figure 6).
//!
//! The special `.llvm_bb_addr_map` metadata section (§3.2) has a typed
//! encoder/decoder in [`bb_addr_map`]; everything else is opaque bytes
//! produced by the codegen crate.
//!
//! # Example
//!
//! ```
//! use propeller_obj::{ObjectFile, Section, SectionKind, Symbol};
//!
//! let mut obj = ObjectFile::new("s_1.o");
//! let text = obj.add_section(Section::new(".text.foo", SectionKind::Text, vec![0x90; 16]));
//! obj.add_symbol(Symbol::global_func("foo", text, 0, 16));
//! let bytes = obj.encode();
//! let round = ObjectFile::decode(&bytes).expect("self-describing format");
//! assert_eq!(round.sections().len(), 1);
//! ```

pub mod bb_addr_map;
mod error;
mod hash;
mod object;
mod reloc;
mod section;
mod symbol;

pub use bb_addr_map::{BbAddrMap, BbEntry, BbFlags, FuncAddrMap};
pub use error::ObjError;
pub use hash::ContentHash;
pub use object::{ObjectFile, SizeBreakdown};
pub use reloc::{Reloc, RelocKind};
pub use section::{BlockSpan, Section, SectionId, SectionKind};
pub use symbol::{Symbol, SymbolKind};
