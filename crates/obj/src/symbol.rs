//! Symbols.

use crate::section::SectionId;

/// What a symbol names.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum SymbolKind {
    /// A function entry (or a basic-block-cluster entry, which keeps
    /// function-symbol semantics so ordering files can name it).
    Func,
    /// A data object.
    Object,
    /// An internal label (e.g. a basic block start used by metadata).
    Label,
}

impl SymbolKind {
    pub(crate) fn tag(self) -> u8 {
        match self {
            SymbolKind::Func => 0,
            SymbolKind::Object => 1,
            SymbolKind::Label => 2,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => SymbolKind::Func,
            1 => SymbolKind::Object,
            2 => SymbolKind::Label,
            _ => return None,
        })
    }
}

/// A named location within a section.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Symbol {
    /// Symbol name, unique among globals across the link.
    pub name: String,
    /// Defining section.
    pub section: SectionId,
    /// Offset within the section.
    pub offset: u32,
    /// Size in bytes of the named entity.
    pub size: u32,
    /// Whether the symbol participates in cross-object resolution.
    pub global: bool,
    /// Kind of entity named.
    pub kind: SymbolKind,
}

impl Symbol {
    /// Convenience constructor for a global function symbol.
    pub fn global_func(name: impl Into<String>, section: SectionId, offset: u32, size: u32) -> Self {
        Symbol {
            name: name.into(),
            section,
            offset,
            size,
            global: true,
            kind: SymbolKind::Func,
        }
    }

    /// Convenience constructor for a local label.
    pub fn local_label(name: impl Into<String>, section: SectionId, offset: u32) -> Self {
        Symbol {
            name: name.into(),
            section,
            offset,
            size: 0,
            global: false,
            kind: SymbolKind::Label,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let f = Symbol::global_func("foo", SectionId(1), 0, 32);
        assert!(f.global);
        assert_eq!(f.kind, SymbolKind::Func);
        let l = Symbol::local_label("foo.bb1", SectionId(1), 8);
        assert!(!l.global);
        assert_eq!(l.kind, SymbolKind::Label);
        assert_eq!(l.size, 0);
    }

    #[test]
    fn kind_tags_round_trip() {
        for k in [SymbolKind::Func, SymbolKind::Object, SymbolKind::Label] {
            assert_eq!(SymbolKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(SymbolKind::from_tag(9), None);
    }
}
