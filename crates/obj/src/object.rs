//! Object files: sections + symbols, with a binary wire format.

use crate::error::ObjError;
use crate::hash::ContentHash;
use crate::reloc::{Reloc, RelocKind};
use crate::section::{Section, SectionId, SectionKind};
use crate::symbol::{Symbol, SymbolKind};
use bytes::{Buf, BufMut};

/// A relocatable object file.
///
/// Produced by the codegen backend for each module, cached by content
/// hash in the build system, and consumed by the linker.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ObjectFile {
    /// Originating file name, e.g. `"s_1.o"`.
    pub name: String,
    sections: Vec<Section>,
    symbols: Vec<Symbol>,
}

/// Per-kind byte totals for an object or binary (Figure 6 categories).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct SizeBreakdown {
    /// Executable code bytes.
    pub text: usize,
    /// Call-frame information bytes.
    pub eh_frame: usize,
    /// Basic-block address-map metadata bytes.
    pub bb_addr_map: usize,
    /// Relocation record bytes (24 bytes per record plus `.rela`
    /// section payloads).
    pub relocs: usize,
    /// Everything else (read-only data, debug ranges, ...).
    pub other: usize,
}

impl SizeBreakdown {
    /// Sum of all categories.
    pub fn total(&self) -> usize {
        self.text + self.eh_frame + self.bb_addr_map + self.relocs + self.other
    }

    /// Adds another breakdown into this one.
    pub fn accumulate(&mut self, other: &SizeBreakdown) {
        self.text += other.text;
        self.eh_frame += other.eh_frame;
        self.bb_addr_map += other.bb_addr_map;
        self.relocs += other.relocs;
        self.other += other.other;
    }
}

impl ObjectFile {
    /// Creates an empty object file.
    pub fn new(name: impl Into<String>) -> Self {
        ObjectFile {
            name: name.into(),
            sections: Vec::new(),
            symbols: Vec::new(),
        }
    }

    /// Appends a section, returning its id.
    pub fn add_section(&mut self, section: Section) -> SectionId {
        let id = SectionId(self.sections.len() as u32);
        self.sections.push(section);
        id
    }

    /// Appends a symbol.
    pub fn add_symbol(&mut self, symbol: Symbol) {
        self.symbols.push(symbol);
    }

    /// All sections in file order.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Mutable access to sections (used by the linker's relaxation pass
    /// operating on owned copies).
    pub fn sections_mut(&mut self) -> &mut [Section] {
        &mut self.sections
    }

    /// All symbols in file order.
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Looks up a section by id.
    pub fn section(&self, id: SectionId) -> Option<&Section> {
        self.sections.get(id.index())
    }

    /// Looks up a global symbol by name.
    pub fn global_symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.global && s.name == name)
    }

    /// Computes the Figure 6 size breakdown for this object.
    pub fn size_breakdown(&self) -> SizeBreakdown {
        let mut b = SizeBreakdown::default();
        for s in &self.sections {
            match s.kind {
                SectionKind::Text => b.text += s.size(),
                SectionKind::EhFrame => b.eh_frame += s.size(),
                SectionKind::BbAddrMap => b.bb_addr_map += s.size(),
                SectionKind::Rela => b.relocs += s.size(),
                _ => b.other += s.size(),
            }
            b.relocs += s.reloc_bytes();
        }
        b
    }

    /// Content hash of the encoded object (the build-cache key for the
    /// artifact).
    pub fn content_hash(&self) -> ContentHash {
        ContentHash::of_bytes(&self.encode())
    }

    /// Serializes the object to the wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256 + self.sections.iter().map(Section::size).sum::<usize>());
        out.put_u32_le(0x504f_424a); // "POBJ"
        put_str(&mut out, &self.name);
        out.put_u32_le(self.sections.len() as u32);
        for s in &self.sections {
            put_str(&mut out, &s.name);
            out.put_u8(s.kind.tag());
            out.put_u32_le(s.align);
            out.put_u32_le(s.bytes.len() as u32);
            out.put_slice(&s.bytes);
            out.put_u32_le(s.relocs.len() as u32);
            for r in &s.relocs {
                out.put_u32_le(r.offset);
                out.put_u8(r.kind.tag());
                put_str(&mut out, &r.symbol);
                out.put_i64_le(r.addend);
            }
            out.put_u32_le(s.block_map.len() as u32);
            for span in &s.block_map {
                out.put_u32_le(span.offset);
                out.put_u32_le(span.size);
            }
            out.put_u8(u8::from(s.relaxable));
        }
        out.put_u32_le(self.symbols.len() as u32);
        for sym in &self.symbols {
            put_str(&mut out, &sym.name);
            out.put_u32_le(sym.section.0);
            out.put_u32_le(sym.offset);
            out.put_u32_le(sym.size);
            out.put_u8(u8::from(sym.global));
            out.put_u8(sym.kind.tag());
        }
        out
    }

    /// Decodes an object from the wire format.
    ///
    /// # Errors
    ///
    /// Returns [`ObjError`] if the stream is truncated, has a bad magic
    /// number or tag, contains invalid UTF-8, or references a
    /// nonexistent section.
    pub fn decode(mut bytes: &[u8]) -> Result<Self, ObjError> {
        let buf = &mut bytes;
        let magic = get_u32(buf, "magic")?;
        if magic != 0x504f_424a {
            return Err(ObjError::BadTag {
                context: "magic",
                value: magic,
            });
        }
        let name = get_str(buf, "object name")?;
        let nsec = get_u32(buf, "section count")? as usize;
        let mut sections = Vec::with_capacity(nsec);
        for _ in 0..nsec {
            let sname = get_str(buf, "section name")?;
            let ktag = get_u8(buf, "section kind")?;
            let kind = SectionKind::from_tag(ktag).ok_or(ObjError::BadTag {
                context: "section kind",
                value: ktag as u32,
            })?;
            let align = get_u32(buf, "section align")?;
            let len = get_u32(buf, "section len")? as usize;
            if buf.remaining() < len {
                return Err(ObjError::Truncated {
                    context: "section bytes",
                });
            }
            let mut data = vec![0u8; len];
            buf.copy_to_slice(&mut data);
            let nrel = get_u32(buf, "reloc count")? as usize;
            let mut relocs = Vec::with_capacity(nrel);
            for _ in 0..nrel {
                let offset = get_u32(buf, "reloc offset")?;
                let rtag = get_u8(buf, "reloc kind")?;
                let kind = RelocKind::from_tag(rtag).ok_or(ObjError::BadTag {
                    context: "reloc kind",
                    value: rtag as u32,
                })?;
                let symbol = get_str(buf, "reloc symbol")?;
                let addend = get_i64(buf, "reloc addend")?;
                relocs.push(Reloc {
                    offset,
                    kind,
                    symbol,
                    addend,
                });
            }
            let nspan = get_u32(buf, "block map count")? as usize;
            let mut block_map = Vec::with_capacity(nspan);
            for _ in 0..nspan {
                block_map.push(crate::section::BlockSpan {
                    offset: get_u32(buf, "block span offset")?,
                    size: get_u32(buf, "block span size")?,
                });
            }
            let relaxable = get_u8(buf, "relaxable flag")? != 0;
            sections.push(Section {
                name: sname,
                kind,
                bytes: data,
                relocs,
                align,
                block_map,
                relaxable,
            });
        }
        let nsym = get_u32(buf, "symbol count")? as usize;
        let mut symbols = Vec::with_capacity(nsym);
        for _ in 0..nsym {
            let name = get_str(buf, "symbol name")?;
            let section = get_u32(buf, "symbol section")?;
            if section as usize >= sections.len() {
                return Err(ObjError::BadSectionIndex(section));
            }
            let offset = get_u32(buf, "symbol offset")?;
            let size = get_u32(buf, "symbol size")?;
            let global = get_u8(buf, "symbol global")? != 0;
            let ktag = get_u8(buf, "symbol kind")?;
            let kind = SymbolKind::from_tag(ktag).ok_or(ObjError::BadTag {
                context: "symbol kind",
                value: ktag as u32,
            })?;
            symbols.push(Symbol {
                name,
                section: SectionId(section),
                offset,
                size,
                global,
                kind,
            });
        }
        Ok(ObjectFile {
            name,
            sections,
            symbols,
        })
    }
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

pub(crate) fn get_u8(buf: &mut &[u8], context: &'static str) -> Result<u8, ObjError> {
    if buf.remaining() < 1 {
        return Err(ObjError::Truncated { context });
    }
    Ok(buf.get_u8())
}

pub(crate) fn get_u32(buf: &mut &[u8], context: &'static str) -> Result<u32, ObjError> {
    if buf.remaining() < 4 {
        return Err(ObjError::Truncated { context });
    }
    Ok(buf.get_u32_le())
}

pub(crate) fn get_i64(buf: &mut &[u8], context: &'static str) -> Result<i64, ObjError> {
    if buf.remaining() < 8 {
        return Err(ObjError::Truncated { context });
    }
    Ok(buf.get_i64_le())
}

pub(crate) fn get_str(buf: &mut &[u8], context: &'static str) -> Result<String, ObjError> {
    let len = get_u32(buf, context)? as usize;
    if buf.remaining() < len {
        return Err(ObjError::Truncated { context });
    }
    let mut data = vec![0u8; len];
    buf.copy_to_slice(&mut data);
    String::from_utf8(data).map_err(|_| ObjError::BadString)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObjectFile {
        let mut obj = ObjectFile::new("s_1.o");
        let mut text = Section::new(".text.foo", SectionKind::Text, vec![1, 2, 3, 4]);
        text.relocs.push(Reloc::new(0, RelocKind::CallPc32, "bar", -4));
        let text = obj.add_section(text);
        let meta = obj.add_section(Section::new(
            ".llvm_bb_addr_map",
            SectionKind::BbAddrMap,
            vec![9; 10],
        ));
        obj.add_symbol(Symbol::global_func("foo", text, 0, 4));
        obj.add_symbol(Symbol::local_label("foo.meta", meta, 0));
        obj
    }

    #[test]
    fn encode_decode_round_trip() {
        let obj = sample();
        let decoded = ObjectFile::decode(&obj.encode()).unwrap();
        assert_eq!(obj, decoded);
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let mut bytes = sample().encode();
        bytes[0] ^= 0xff;
        assert!(matches!(
            ObjectFile::decode(&bytes),
            Err(ObjError::BadTag { context: "magic", .. })
        ));
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            // Every proper prefix must fail cleanly, never panic.
            assert!(ObjectFile::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn size_breakdown_classifies_kinds() {
        let b = sample().size_breakdown();
        assert_eq!(b.text, 4);
        assert_eq!(b.bb_addr_map, 10);
        assert_eq!(b.relocs, 24); // one reloc record
        assert_eq!(b.total(), 4 + 10 + 24);
    }

    #[test]
    fn content_hash_changes_with_content() {
        let a = sample();
        let mut b = sample();
        b.sections_mut()[0].bytes[0] = 0xEE;
        assert_ne!(a.content_hash(), b.content_hash());
        assert_eq!(a.content_hash(), sample().content_hash());
    }

    #[test]
    fn global_symbol_lookup() {
        let obj = sample();
        assert!(obj.global_symbol("foo").is_some());
        assert!(obj.global_symbol("foo.meta").is_none()); // local
        assert!(obj.global_symbol("nope").is_none());
    }

    #[test]
    fn accumulate_sums_categories() {
        let mut total = SizeBreakdown::default();
        total.accumulate(&sample().size_breakdown());
        total.accumulate(&sample().size_breakdown());
        assert_eq!(total.text, 8);
        assert_eq!(total.bb_addr_map, 20);
    }
}
