//! The `.llvm_bb_addr_map` metadata section (§3.2).
//!
//! The basic block address map lets the whole-program analyzer associate
//! sampled virtual addresses with machine basic blocks *without
//! disassembly*: for each function it records, per contiguous text range
//! (one per basic-block-section fragment), the offset, size and flags of
//! every machine basic block, identified by its intra-function id.

use crate::error::ObjError;
use crate::object::{get_str, get_u8, put_str};
use bytes::{Buf, BufMut};

/// Writes a ULEB128 varint (the encoding the real
/// `SHT_LLVM_BB_ADDR_MAP` section uses, keeping metadata overhead in
/// the paper's 7-9% range).
fn put_uleb(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.put_u8(byte);
            return;
        }
        out.put_u8(byte | 0x80);
    }
}

fn get_uleb(buf: &mut &[u8], context: &'static str) -> Result<u32, ObjError> {
    let mut v: u32 = 0;
    let mut shift = 0u32;
    loop {
        if buf.remaining() < 1 {
            return Err(ObjError::Truncated { context });
        }
        let byte = buf.get_u8();
        if shift >= 32 {
            return Err(ObjError::BadTag {
                context,
                value: byte as u32,
            });
        }
        v |= ((byte & 0x7f) as u32) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Per-block boolean metadata carried by the address map.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct BbFlags(pub u8);

impl BbFlags {
    /// The block is an exception landing pad.
    pub const LANDING_PAD: BbFlags = BbFlags(1);
    /// The block's terminator is a return.
    pub const RETURN: BbFlags = BbFlags(2);
    /// The block ends with an (explicit or implicit) fall-through into
    /// the next block of the original layout.
    pub const FALLTHROUGH: BbFlags = BbFlags(4);

    /// Whether all bits of `other` are set in `self`.
    pub fn contains(self, other: BbFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub fn union(self, other: BbFlags) -> BbFlags {
        BbFlags(self.0 | other.0)
    }
}

impl std::ops::BitOr for BbFlags {
    type Output = BbFlags;
    fn bitor(self, rhs: BbFlags) -> BbFlags {
        self.union(rhs)
    }
}

/// One machine basic block's entry in the map.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct BbEntry {
    /// Intra-function basic block id (stable across layout changes).
    pub bb_id: u32,
    /// Offset of the block from the start of its text range.
    pub offset: u32,
    /// Size of the block in bytes.
    pub size: u32,
    /// Block metadata.
    pub flags: BbFlags,
}

/// The address map for one function: one entry list per contiguous text
/// range (a whole function normally; one per cluster section after
/// Propeller splits it).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FuncAddrMap {
    /// The function's primary symbol name.
    pub func_symbol: String,
    /// `(range symbol, blocks)` pairs. The range symbol names the text
    /// section fragment holding the blocks; offsets are relative to it.
    pub ranges: Vec<(String, Vec<BbEntry>)>,
}

impl FuncAddrMap {
    /// Total number of blocks across all ranges.
    pub fn num_blocks(&self) -> usize {
        self.ranges.iter().map(|(_, v)| v.len()).sum()
    }
}

/// The decoded contents of one `.llvm_bb_addr_map` section.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BbAddrMap {
    /// Maps for every function in the object.
    pub functions: Vec<FuncAddrMap>,
}

impl BbAddrMap {
    /// Serializes to section bytes (ULEB128-packed; range symbols equal
    /// to the function symbol are stored as an empty string).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_uleb(&mut out, self.functions.len() as u32);
        for f in &self.functions {
            put_str(&mut out, &f.func_symbol);
            put_uleb(&mut out, f.ranges.len() as u32);
            for (range_sym, entries) in &f.ranges {
                if range_sym == &f.func_symbol {
                    put_str(&mut out, "");
                } else {
                    put_str(&mut out, range_sym);
                }
                put_uleb(&mut out, entries.len() as u32);
                for e in entries {
                    put_uleb(&mut out, e.bb_id);
                    put_uleb(&mut out, e.offset);
                    put_uleb(&mut out, e.size);
                    out.put_u8(e.flags.0);
                }
            }
        }
        out
    }

    /// Decodes section bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ObjError::Truncated`] or [`ObjError::BadString`] on a
    /// malformed section.
    pub fn decode(mut bytes: &[u8]) -> Result<Self, ObjError> {
        let buf = &mut bytes;
        let nfunc = get_uleb(buf, "bb_addr_map function count")? as usize;
        let mut functions = Vec::with_capacity(nfunc.min(1 << 20));
        for _ in 0..nfunc {
            let func_symbol = get_str(buf, "bb_addr_map function symbol")?;
            let nranges = get_uleb(buf, "bb_addr_map range count")? as usize;
            let mut ranges = Vec::with_capacity(nranges.min(1 << 20));
            for _ in 0..nranges {
                let mut range_sym = get_str(buf, "bb_addr_map range symbol")?;
                if range_sym.is_empty() {
                    range_sym = func_symbol.clone();
                }
                let nentries = get_uleb(buf, "bb_addr_map entry count")? as usize;
                let mut entries = Vec::with_capacity(nentries.min(1 << 20));
                for _ in 0..nentries {
                    entries.push(BbEntry {
                        bb_id: get_uleb(buf, "bb entry id")?,
                        offset: get_uleb(buf, "bb entry offset")?,
                        size: get_uleb(buf, "bb entry size")?,
                        flags: BbFlags(get_u8(buf, "bb entry flags")?),
                    });
                }
                ranges.push((range_sym, entries));
            }
            functions.push(FuncAddrMap {
                func_symbol,
                ranges,
            });
        }
        Ok(BbAddrMap { functions })
    }

    /// Merges another map's functions into this one (the linker
    /// concatenates per-object maps into the output binary's map).
    pub fn merge(&mut self, other: BbAddrMap) {
        self.functions.extend(other.functions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BbAddrMap {
        BbAddrMap {
            functions: vec![FuncAddrMap {
                func_symbol: "foo".into(),
                ranges: vec![
                    (
                        "foo".into(),
                        vec![
                            BbEntry {
                                bb_id: 0,
                                offset: 0,
                                size: 10,
                                flags: BbFlags::FALLTHROUGH,
                            },
                            BbEntry {
                                bb_id: 2,
                                offset: 10,
                                size: 6,
                                flags: BbFlags::RETURN,
                            },
                        ],
                    ),
                    (
                        "foo.cold".into(),
                        vec![BbEntry {
                            bb_id: 1,
                            offset: 0,
                            size: 4,
                            flags: BbFlags::LANDING_PAD | BbFlags::RETURN,
                        }],
                    ),
                ],
            }],
        }
    }

    #[test]
    fn round_trip() {
        let m = sample();
        assert_eq!(BbAddrMap::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn truncation_fails_cleanly() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(BbAddrMap::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn flags_operations() {
        let f = BbFlags::LANDING_PAD | BbFlags::RETURN;
        assert!(f.contains(BbFlags::LANDING_PAD));
        assert!(f.contains(BbFlags::RETURN));
        assert!(!f.contains(BbFlags::FALLTHROUGH));
        assert!(!BbFlags::default().contains(BbFlags::RETURN));
    }

    #[test]
    fn merge_concatenates() {
        let mut a = sample();
        a.merge(sample());
        assert_eq!(a.functions.len(), 2);
        assert_eq!(a.functions[0].num_blocks(), 3);
    }

    #[test]
    fn empty_map_round_trips() {
        let m = BbAddrMap::default();
        assert_eq!(BbAddrMap::decode(&m.encode()).unwrap(), m);
    }
}
