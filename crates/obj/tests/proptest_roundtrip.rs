//! Property tests: the object wire format round-trips arbitrary
//! well-formed objects and rejects arbitrary garbage without panicking.

use propeller_obj::{
    BlockSpan, ObjectFile, Reloc, RelocKind, Section, SectionKind, Symbol, SymbolKind,
};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = SectionKind> {
    prop_oneof![
        Just(SectionKind::Text),
        Just(SectionKind::BbAddrMap),
        Just(SectionKind::EhFrame),
        Just(SectionKind::Rela),
        Just(SectionKind::RoData),
        Just(SectionKind::DebugRanges),
        Just(SectionKind::Other),
    ]
}

fn arb_reloc_kind() -> impl Strategy<Value = RelocKind> {
    prop_oneof![
        Just(RelocKind::CallPc32),
        Just(RelocKind::BranchPc32),
        Just(RelocKind::BranchPc8),
        Just(RelocKind::Abs64),
    ]
}

prop_compose! {
    fn arb_section()(
        name in "[a-z.][a-z0-9._]{0,24}",
        kind in arb_kind(),
        bytes in prop::collection::vec(any::<u8>(), 0..200),
        relocs in prop::collection::vec(
            (any::<u32>(), arb_reloc_kind(), "[a-z]{1,8}", any::<i32>()),
            0..6,
        ),
        spans in prop::collection::vec((any::<u32>(), any::<u32>()), 0..6),
        align in 1u32..64,
        relaxable in any::<bool>(),
    ) -> Section {
        let mut s = Section::new(name, kind, bytes);
        s.relocs = relocs
            .into_iter()
            .map(|(off, kind, sym, addend)| Reloc::new(off, kind, sym, addend as i64))
            .collect();
        s.block_map = spans
            .into_iter()
            .map(|(offset, size)| BlockSpan { offset, size })
            .collect();
        s.align = align.next_power_of_two();
        s.relaxable = relaxable;
        s
    }
}

prop_compose! {
    fn arb_object()(
        name in "[a-z_]{1,12}\\.o",
        sections in prop::collection::vec(arb_section(), 0..5),
        symbols in prop::collection::vec(
            ("[a-z]{1,10}", any::<u32>(), any::<u32>(), any::<bool>()),
            0..6,
        ),
    ) -> ObjectFile {
        let mut obj = ObjectFile::new(name);
        let n = sections.len();
        for s in sections {
            obj.add_section(s);
        }
        if n > 0 {
            for (i, (name, offset, size, global)) in symbols.into_iter().enumerate() {
                obj.add_symbol(Symbol {
                    name,
                    section: propeller_obj::SectionId((i % n) as u32),
                    offset,
                    size,
                    global,
                    kind: if i % 2 == 0 { SymbolKind::Func } else { SymbolKind::Label },
                });
            }
        }
        obj
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn wire_format_round_trips(obj in arb_object()) {
        let bytes = obj.encode();
        let decoded = ObjectFile::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(&obj, &decoded);
        // Hash is stable through the round trip.
        prop_assert_eq!(obj.content_hash(), decoded.content_hash());
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        // Any result is fine; panics are not.
        let _ = ObjectFile::decode(&bytes);
        let _ = propeller_obj::BbAddrMap::decode(&bytes);
    }

    #[test]
    fn every_truncation_errors_cleanly(obj in arb_object()) {
        let bytes = obj.encode();
        // Check a sample of prefixes (all of them would be O(n^2)).
        let step = (bytes.len() / 16).max(1);
        for cut in (0..bytes.len()).step_by(step) {
            prop_assert!(ObjectFile::decode(&bytes[..cut]).is_err());
        }
    }
}
