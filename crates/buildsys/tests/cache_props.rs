//! Property tests for the action cache's bookkeeping invariants.

use propeller_buildsys::ActionCache;
use propeller_obj::ContentHash;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every lookup is exactly one hit or one miss, regardless of the
    /// interleaving of lookups, inserts, and computes.
    ///
    /// `ops` drives a random sequence over a small key space (so keys
    /// repeat and both hits and misses occur): op 0 = lookup,
    /// op 1 = insert, op 2 = get_or_compute.
    #[test]
    fn hits_plus_misses_equals_lookups(
        ops in prop::collection::vec((0u8..3, 0u8..16, any::<u32>()), 0..200),
    ) {
        let mut cache: ActionCache<u32> = ActionCache::new();
        for (op, key, value) in ops {
            let key = ContentHash::of_bytes(&[key]);
            match op {
                0 => {
                    cache.lookup(key);
                }
                1 => {
                    cache.insert(key, value);
                }
                _ => {
                    cache.get_or_compute(key, || value);
                }
            }
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, stats.lookups);
        prop_assert!(stats.hit_rate() >= 0.0 && stats.hit_rate() <= 1.0);

        // The invariant survives the trip through the metrics registry:
        // record into telemetry, read back from the drained snapshot.
        let tel = propeller_telemetry::Telemetry::enabled();
        stats.record_metrics(&tel, "cache");
        let m = tel.drain().metrics;
        prop_assert_eq!(m.counter("cache.hits") + m.counter("cache.misses"),
                        m.counter("cache.lookups"));
        prop_assert_eq!(m.counter("cache.lookups"), stats.lookups);
        prop_assert_eq!(m.counter("cache.insertions"), stats.insertions);
    }

    /// A second `get_or_compute` of the same key is a hit returning the
    /// first computation's value, and never re-runs the closure.
    #[test]
    fn get_or_compute_is_idempotent(
        keys in prop::collection::vec(0u8..24, 1..100),
    ) {
        let mut cache: ActionCache<u64> = ActionCache::new();
        let mut computes = 0u64;
        for &k in &keys {
            let key = ContentHash::of_bytes(&[k]);
            let (v, _hit) = cache.get_or_compute(key, || {
                computes += 1;
                k as u64 * 1000
            });
            prop_assert_eq!(v, k as u64 * 1000);
        }
        let distinct = {
            let mut s = keys.clone();
            s.sort_unstable();
            s.dedup();
            s.len() as u64
        };
        prop_assert_eq!(computes, distinct, "closure ran once per distinct key");
        prop_assert_eq!(cache.stats().misses, distinct);
        prop_assert_eq!(cache.stats().hits, keys.len() as u64 - distinct);
    }
}
