//! Build system failures.

use std::error::Error;
use std::fmt;

/// A failure of the (simulated) distributed build system.
///
/// The only way a well-formed action can fail is by asking for more
/// resources than the infrastructure grants a single action — the
/// paper's 12 GB per-action ceiling (§2.1) that keeps monolithic
/// rewriters like BOLT off the distributed build.
#[derive(Clone, PartialEq, Debug)]
pub enum BuildError {
    /// An action declared a peak RSS above the machine's per-action
    /// memory limit and was rejected before being scheduled.
    ActionOverMemoryLimit {
        /// Name of the rejected action.
        action: String,
        /// Bytes the action would have needed.
        needed_bytes: u64,
        /// The per-action limit in force.
        limit_bytes: u64,
    },
}

fn gib(bytes: u64) -> f64 {
    bytes as f64 / crate::GIB as f64
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ActionOverMemoryLimit {
                action,
                needed_bytes,
                limit_bytes,
            } => write!(
                f,
                "action `{action}` needs {:.1} GiB but the per-action memory limit is {:.1} GiB",
                gib(*needed_bytes),
                gib(*limit_bytes)
            ),
        }
    }
}

impl Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GIB;

    #[test]
    fn display_names_action_and_both_sizes() {
        let e = BuildError::ActionOverMemoryLimit {
            action: "llvm-bolt".into(),
            needed_bytes: 36 * GIB,
            limit_bytes: 12 * GIB,
        };
        let s = e.to_string();
        assert!(s.contains("llvm-bolt"), "{s}");
        assert!(s.contains("36.0 GiB"), "{s}");
        assert!(s.contains("12.0 GiB"), "{s}");
    }
}
