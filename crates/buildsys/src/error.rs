//! Build system failures.

use std::error::Error;
use std::fmt;

/// A failure of the (simulated) distributed build system.
///
/// A well-formed action can fail in two ways: by asking for more
/// resources than the infrastructure grants a single action — the
/// paper's 12 GB per-action ceiling (§2.1) that keeps monolithic
/// rewriters like BOLT off the distributed build — or by its worker
/// panicking while executing real (not just modeled) work on the
/// local thread pool.
#[derive(Clone, PartialEq, Debug)]
pub enum BuildError {
    /// An action declared a peak RSS above the machine's per-action
    /// memory limit and was rejected before being scheduled.
    ActionOverMemoryLimit {
        /// Name of the rejected action.
        action: String,
        /// Bytes the action would have needed.
        needed_bytes: u64,
        /// The per-action limit in force.
        limit_bytes: u64,
    },
    /// A worker thread panicked while executing pooled work. The pool
    /// catches the unwind, finishes draining the remaining items, and
    /// surfaces the first panic as this typed error — never a hang,
    /// never a poisoned lock.
    WorkerPanicked {
        /// What the pool was executing (e.g. `"codegen batch"`).
        what: String,
        /// The panic payload, when it was a string.
        message: String,
    },
}

fn gib(bytes: u64) -> f64 {
    bytes as f64 / crate::GIB as f64
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ActionOverMemoryLimit {
                action,
                needed_bytes,
                limit_bytes,
            } => write!(
                f,
                "action `{action}` needs {:.1} GiB but the per-action memory limit is {:.1} GiB",
                gib(*needed_bytes),
                gib(*limit_bytes)
            ),
            BuildError::WorkerPanicked { what, message } => {
                write!(f, "worker panicked while executing {what}: {message}")
            }
        }
    }
}

impl Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GIB;

    #[test]
    fn display_names_action_and_both_sizes() {
        let e = BuildError::ActionOverMemoryLimit {
            action: "llvm-bolt".into(),
            needed_bytes: 36 * GIB,
            limit_bytes: 12 * GIB,
        };
        let s = e.to_string();
        assert!(s.contains("llvm-bolt"), "{s}");
        assert!(s.contains("36.0 GiB"), "{s}");
        assert!(s.contains("12.0 GiB"), "{s}");
    }

    #[test]
    fn worker_panic_display_names_site_and_payload() {
        let e = BuildError::WorkerPanicked {
            what: "codegen batch".into(),
            message: "index out of bounds".into(),
        };
        let s = e.to_string();
        assert!(s.contains("codegen batch"), "{s}");
        assert!(s.contains("index out of bounds"), "{s}");
    }
}
