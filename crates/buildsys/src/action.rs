//! Build actions and per-phase execution reports.

/// One schedulable unit of build work: a compile, a codegen, a link,
/// an analysis run.
///
/// Actions declare their resource needs up front — the distributed
/// build admits an action only if its declared peak RSS fits the
/// per-action memory limit (§2.1).
#[derive(Clone, PartialEq, Debug)]
pub struct ActionSpec {
    /// Human-readable action name (e.g. `"codegen rpc_17.cc"`).
    pub name: String,
    /// CPU seconds the action consumes on one worker.
    pub cpu_secs: f64,
    /// Peak resident-set bytes the action needs while running.
    pub peak_rss_bytes: u64,
}

impl ActionSpec {
    /// Creates an action consuming `cpu_secs` of CPU with the given
    /// peak RSS.
    pub fn new(name: impl Into<String>, cpu_secs: f64, peak_rss_bytes: u64) -> Self {
        ActionSpec {
            name: name.into(),
            cpu_secs,
            peak_rss_bytes,
        }
    }
}

/// What one [`crate::Executor::run_phase`] call cost (the Table 5 /
/// Fig. 9 accounting unit).
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub struct PhaseReport {
    /// Modeled wall-clock seconds for the phase.
    pub wall_secs: f64,
    /// Total CPU seconds across all of the phase's actions.
    pub cpu_secs: f64,
    /// Actions executed (cache hits never become actions).
    pub num_actions: usize,
    /// Largest single-action peak RSS in the phase — the number the
    /// per-action limit is compared against, and the paper's Fig. 4
    /// y-axis.
    pub max_action_memory: u64,
    /// *Measured* wall-clock microseconds the phase's real local work
    /// took on the worker pool. Zero for modeled-only phases (where
    /// nothing executes locally). Never enters `run_report.json` —
    /// real timing is nondeterministic and would break the 0%-tolerance
    /// determinism gate; it feeds the doctor and human-facing output.
    pub wall_us: u64,
    /// Measured microseconds of useful work summed across workers
    /// (`busy/(wall × jobs)` is the pool's parallel efficiency). Zero
    /// for modeled-only phases.
    pub busy_us: u64,
}

impl PhaseReport {
    /// The report of running this phase and then `next`: wall and CPU
    /// time accumulate, the memory high-water mark is the max.
    pub fn then(&self, next: &PhaseReport) -> PhaseReport {
        PhaseReport {
            wall_secs: self.wall_secs + next.wall_secs,
            cpu_secs: self.cpu_secs + next.cpu_secs,
            num_actions: self.num_actions + next.num_actions,
            max_action_memory: self.max_action_memory.max(next.max_action_memory),
            wall_us: self.wall_us + next.wall_us,
            busy_us: self.busy_us + next.busy_us,
        }
    }

    /// Fraction of the pool's capacity the measured work kept busy:
    /// `busy_us / (wall_us × jobs)`, in `[0, 1]`-ish (small overshoot
    /// possible from timer granularity). `None` when nothing was
    /// measured.
    pub fn parallel_efficiency(&self, jobs: usize) -> Option<f64> {
        if self.wall_us == 0 || jobs == 0 {
            return None;
        }
        Some(self.busy_us as f64 / (self.wall_us as f64 * jobs as f64))
    }

    /// How far the measured wall clock diverges from what the pool
    /// model predicts at `jobs` workers (`wall ≈ busy/jobs`), as a
    /// ratio ≥ 1. Equals `1 / parallel_efficiency`. `None` when
    /// nothing was measured. The doctor WARNs above 5×.
    pub fn wall_model_divergence(&self, jobs: usize) -> Option<f64> {
        self.parallel_efficiency(jobs)
            .filter(|&e| e > 0.0)
            .map(|e| 1.0 / e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn then_accumulates_time_and_maxes_memory() {
        let a = PhaseReport {
            wall_secs: 2.0,
            cpu_secs: 10.0,
            num_actions: 4,
            max_action_memory: 512,
            wall_us: 100,
            busy_us: 90,
        };
        let b = PhaseReport {
            wall_secs: 1.5,
            cpu_secs: 1.5,
            num_actions: 1,
            max_action_memory: 2048,
            wall_us: 50,
            busy_us: 40,
        };
        let c = a.then(&b);
        assert_eq!(c.num_actions, 5);
        assert_eq!(c.max_action_memory, 2048);
        assert!((c.wall_secs - 3.5).abs() < 1e-12);
        assert!((c.cpu_secs - 11.5).abs() < 1e-12);
        assert_eq!(c.wall_us, 150);
        assert_eq!(c.busy_us, 130);
    }

    #[test]
    fn parallel_efficiency_and_divergence() {
        let r = PhaseReport {
            wall_us: 1000,
            busy_us: 1600,
            ..PhaseReport::default()
        };
        // 1600 µs of work over 1000 µs of wall on 2 workers: 80% busy.
        let e = r.parallel_efficiency(2).unwrap();
        assert!((e - 0.8).abs() < 1e-12);
        assert!((r.wall_model_divergence(2).unwrap() - 1.25).abs() < 1e-12);
        // Unmeasured phases report nothing rather than 0 or infinity.
        assert_eq!(PhaseReport::default().parallel_efficiency(2), None);
        assert_eq!(r.parallel_efficiency(0), None);
    }

    #[test]
    fn action_spec_new_fills_fields() {
        let a = ActionSpec::new("link app", 3.25, 1 << 30);
        assert_eq!(a.name, "link app");
        assert_eq!(a.peak_rss_bytes, 1 << 30);
        assert!((a.cpu_secs - 3.25).abs() < 1e-12);
    }
}
