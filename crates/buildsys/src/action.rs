//! Build actions and per-phase execution reports.

/// One schedulable unit of build work: a compile, a codegen, a link,
/// an analysis run.
///
/// Actions declare their resource needs up front — the distributed
/// build admits an action only if its declared peak RSS fits the
/// per-action memory limit (§2.1).
#[derive(Clone, PartialEq, Debug)]
pub struct ActionSpec {
    /// Human-readable action name (e.g. `"codegen rpc_17.cc"`).
    pub name: String,
    /// CPU seconds the action consumes on one worker.
    pub cpu_secs: f64,
    /// Peak resident-set bytes the action needs while running.
    pub peak_rss_bytes: u64,
}

impl ActionSpec {
    /// Creates an action consuming `cpu_secs` of CPU with the given
    /// peak RSS.
    pub fn new(name: impl Into<String>, cpu_secs: f64, peak_rss_bytes: u64) -> Self {
        ActionSpec {
            name: name.into(),
            cpu_secs,
            peak_rss_bytes,
        }
    }
}

/// What one [`crate::Executor::run_phase`] call cost (the Table 5 /
/// Fig. 9 accounting unit).
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub struct PhaseReport {
    /// Modeled wall-clock seconds for the phase.
    pub wall_secs: f64,
    /// Total CPU seconds across all of the phase's actions.
    pub cpu_secs: f64,
    /// Actions executed (cache hits never become actions).
    pub num_actions: usize,
    /// Largest single-action peak RSS in the phase — the number the
    /// per-action limit is compared against, and the paper's Fig. 4
    /// y-axis.
    pub max_action_memory: u64,
}

impl PhaseReport {
    /// The report of running this phase and then `next`: wall and CPU
    /// time accumulate, the memory high-water mark is the max.
    pub fn then(&self, next: &PhaseReport) -> PhaseReport {
        PhaseReport {
            wall_secs: self.wall_secs + next.wall_secs,
            cpu_secs: self.cpu_secs + next.cpu_secs,
            num_actions: self.num_actions + next.num_actions,
            max_action_memory: self.max_action_memory.max(next.max_action_memory),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn then_accumulates_time_and_maxes_memory() {
        let a = PhaseReport {
            wall_secs: 2.0,
            cpu_secs: 10.0,
            num_actions: 4,
            max_action_memory: 512,
        };
        let b = PhaseReport {
            wall_secs: 1.5,
            cpu_secs: 1.5,
            num_actions: 1,
            max_action_memory: 2048,
        };
        let c = a.then(&b);
        assert_eq!(c.num_actions, 5);
        assert_eq!(c.max_action_memory, 2048);
        assert!((c.wall_secs - 3.5).abs() < 1e-12);
        assert!((c.cpu_secs - 11.5).abs() < 1e-12);
    }

    #[test]
    fn action_spec_new_fills_fields() {
        let a = ActionSpec::new("link app", 3.25, 1 << 30);
        assert_eq!(a.name, "link app");
        assert_eq!(a.peak_rss_bytes, 1 << 30);
        assert!((a.cpu_secs - 3.25).abs() < 1e-12);
    }
}
