//! The content-addressed action cache.
//!
//! The distributed build system caches every action's outputs under
//! the hash of its inputs (§2.1). A later build whose action inputs
//! are unchanged retrieves the artifact instead of re-running the
//! action — across successive releases of a warehouse-scale
//! application the observed hit rate exceeds 90%, which is what makes
//! Propeller's Phase 4 "regenerate only the hot modules" cheap: every
//! cold object is a cache hit.

use propeller_obj::ContentHash;
use std::collections::HashMap;

/// Cumulative cache counters.
///
/// Invariant: `hits + misses == lookups` ([`ActionCache::get_or_compute`]
/// counts as one lookup).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Total lookups served (including the implicit lookup of
    /// `get_or_compute`).
    pub lookups: u64,
    /// Lookups that found an artifact.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Artifacts stored (an insert over an existing key counts too).
    pub insertions: u64,
}

impl CacheStats {
    /// Hits as a fraction of lookups (`0.0` before any lookup).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Records these cumulative counters into `tel` under
    /// `{prefix}.lookups` / `.hits` / `.misses` / `.insertions`, plus a
    /// `{prefix}.hit_rate` gauge.
    ///
    /// Counters merge by addition, so call this once per cache at the
    /// end of a run — not per lookup — or totals will double-count.
    pub fn record_metrics(&self, tel: &propeller_telemetry::Telemetry, prefix: &str) {
        if !tel.is_enabled() {
            return;
        }
        tel.counter_add(&format!("{prefix}.lookups"), self.lookups);
        tel.counter_add(&format!("{prefix}.hits"), self.hits);
        tel.counter_add(&format!("{prefix}.misses"), self.misses);
        tel.counter_add(&format!("{prefix}.insertions"), self.insertions);
        tel.gauge_set(&format!("{prefix}.hit_rate"), self.hit_rate());
    }
}

/// A content-addressed cache from input hashes to artifacts of type
/// `T`.
///
/// `T` is whatever a build action produces — an IR fingerprint, a
/// shared object-file artifact — and is returned by clone, so sharable
/// artifacts are usually stored as `Arc<..>`.
#[derive(Clone, Debug)]
pub struct ActionCache<T> {
    map: HashMap<ContentHash, T>,
    stats: CacheStats,
}

impl<T> Default for ActionCache<T> {
    fn default() -> Self {
        ActionCache {
            map: HashMap::new(),
            stats: CacheStats::default(),
        }
    }
}

impl<T> ActionCache<T> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached artifacts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Stores `value` under `key`, replacing any previous artifact
    /// (identical inputs produce identical outputs, so a replacement
    /// only ever happens when two racing builds computed the same
    /// thing).
    pub fn insert(&mut self, key: ContentHash, value: T) {
        self.stats.insertions += 1;
        self.map.insert(key, value);
    }
}

impl<T: Clone> ActionCache<T> {
    /// Looks up `key`, counting a hit or a miss.
    pub fn lookup(&mut self, key: ContentHash) -> Option<T> {
        self.stats.lookups += 1;
        match self.map.get(&key) {
            Some(v) => {
                self.stats.hits += 1;
                Some(v.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Returns the cached artifact for `key`, or computes, stores and
    /// returns it. The boolean is `true` on a cache hit.
    pub fn get_or_compute(&mut self, key: ContentHash, compute: impl FnOnce() -> T) -> (T, bool) {
        match self.lookup(key) {
            Some(v) => (v, true),
            None => {
                let v = compute();
                self.insert(key, v.clone());
                (v, false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> ContentHash {
        ContentHash::of_bytes(&n.to_le_bytes())
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let mut c = ActionCache::new();
        assert_eq!(c.lookup(key(1)), None);
        c.insert(key(1), "artifact");
        assert_eq!(c.lookup(key(1)), Some("artifact"));
        assert_eq!(c.lookup(key(2)), None);
        let s = c.stats();
        assert_eq!((s.lookups, s.hits, s.misses, s.insertions), (3, 1, 2, 1));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn get_or_compute_is_idempotent() {
        let mut c = ActionCache::new();
        let mut calls = 0;
        let (v, hit) = c.get_or_compute(key(7), || {
            calls += 1;
            42
        });
        assert_eq!((v, hit, calls), (42, false, 1));
        let (v, hit) = c.get_or_compute(key(7), || {
            calls += 1;
            unreachable!("cached key must not recompute")
        });
        assert_eq!((v, hit, calls), (42, true, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn empty_cache_reports_zero_hit_rate() {
        let c: ActionCache<u32> = ActionCache::new();
        assert!(c.is_empty());
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    fn stats_record_into_telemetry_under_prefix() {
        let mut c = ActionCache::new();
        c.insert(key(1), 10);
        c.lookup(key(1));
        c.lookup(key(2));
        let tel = propeller_telemetry::Telemetry::enabled();
        c.stats().record_metrics(&tel, "cache.ir");
        let m = tel.drain().metrics;
        assert_eq!(m.counter("cache.ir.lookups"), 2);
        assert_eq!(m.counter("cache.ir.hits"), 1);
        assert_eq!(m.counter("cache.ir.misses"), 1);
        assert_eq!(m.counter("cache.ir.insertions"), 1);
        assert!((m.gauges["cache.ir.hit_rate"] - 0.5).abs() < 1e-12);
    }
}
