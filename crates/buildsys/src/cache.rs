//! The content-addressed action cache.
//!
//! The distributed build system caches every action's outputs under
//! the hash of its inputs (§2.1). A later build whose action inputs
//! are unchanged retrieves the artifact instead of re-running the
//! action — across successive releases of a warehouse-scale
//! application the observed hit rate exceeds 90%, which is what makes
//! Propeller's Phase 4 "regenerate only the hot modules" cheap: every
//! cold object is a cache hit.

use propeller_faults::{FaultInjector, FaultKind};
use propeller_obj::ContentHash;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// What a verified lookup observed about the entry it touched.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CacheEvent {
    /// The entry was present and its content digest verified.
    Hit,
    /// No entry was stored under the key.
    Miss,
    /// An entry was present but its content digest did not match its
    /// key: the cache invalidated it and reported a miss. The caller
    /// must rebuild the artifact.
    CorruptInvalidated,
    /// The entry had been silently evicted between insert and lookup;
    /// indistinguishable from a plain miss except to the ledger.
    Evicted,
}

/// Cumulative cache counters.
///
/// Invariant: `hits + misses == lookups` ([`ActionCache::get_or_compute`]
/// counts as one lookup).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Total lookups served (including the implicit lookup of
    /// `get_or_compute`).
    pub lookups: u64,
    /// Lookups that found an artifact.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Artifacts stored (an insert over an existing key counts too).
    pub insertions: u64,
}

impl CacheStats {
    /// The counter deltas accumulated since `earlier` was snapshotted —
    /// per-release cache accounting for callers (the fleet loop) that
    /// share one cumulative cache across many pipeline runs. Saturates
    /// at zero if `earlier` is not actually an earlier snapshot of the
    /// same cache.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            lookups: self.lookups.saturating_sub(earlier.lookups),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            insertions: self.insertions.saturating_sub(earlier.insertions),
        }
    }

    /// Hits as a fraction of lookups (`0.0` before any lookup).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Records these cumulative counters into `tel` under
    /// `{prefix}.lookups` / `.hits` / `.misses` / `.insertions`, plus a
    /// `{prefix}.hit_rate` gauge.
    ///
    /// Counters merge by addition, so call this once per cache at the
    /// end of a run — not per lookup — or totals will double-count.
    pub fn record_metrics(&self, tel: &propeller_telemetry::Telemetry, prefix: &str) {
        if !tel.is_enabled() {
            return;
        }
        tel.counter_add(&format!("{prefix}.lookups"), self.lookups);
        tel.counter_add(&format!("{prefix}.hits"), self.hits);
        tel.counter_add(&format!("{prefix}.misses"), self.misses);
        tel.counter_add(&format!("{prefix}.insertions"), self.insertions);
        tel.gauge_set(&format!("{prefix}.hit_rate"), self.hit_rate());
    }
}

/// A stored artifact plus the content digest recorded at insert time.
///
/// The digest is derived from the key, so a verifying lookup can
/// recompute the expected value and detect storage-level corruption
/// (modeled by the fault injector flipping the stored digest) without
/// trusting the entry itself.
#[derive(Clone, Debug)]
struct Entry<T> {
    value: T,
    digest: u64,
    /// Tenant that inserted the entry (eviction-pressure attribution).
    owner: u32,
    /// Monotonic insertion stamp; drives FIFO eviction order and lets
    /// the eviction queue skip stale records for replaced keys.
    stamp: u64,
}

/// Extra mixing over the raw key hash, so the stored digest is not
/// trivially equal to the key the map is addressed by.
fn digest_of(key: ContentHash) -> u64 {
    let mut z = key.0 ^ 0xD1E5_7A1E_5EED_F00D;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A content-addressed cache from input hashes to artifacts of type
/// `T`.
///
/// `T` is whatever a build action produces — an IR fingerprint, a
/// shared object-file artifact — and is returned by clone, so sharable
/// artifacts are usually stored as `Arc<..>`.
///
/// Every entry carries a content digest recorded at insert;
/// [`lookup_verified`](ActionCache::lookup_verified) re-derives the
/// expected digest from the key and treats a mismatch as corruption:
/// the entry is invalidated and the lookup reports a miss, so callers
/// rebuild instead of consuming a damaged artifact.
#[derive(Clone, Debug)]
pub struct ActionCache<T> {
    map: HashMap<ContentHash, Entry<T>>,
    stats: CacheStats,
    /// Maximum live entries (`None` = unbounded, the default). When
    /// bounded, inserts evict the oldest-inserted live entries first —
    /// a deterministic FIFO, independent of hash-map iteration order.
    capacity: Option<usize>,
    /// Tenant all subsequent operations are attributed to. The service
    /// sets this serially before each job; batch runs leave it at 0.
    owner: u32,
    /// Next insertion stamp.
    next_stamp: u64,
    /// Insertion order of live entries (may contain stale records for
    /// replaced or removed keys; skipped lazily during eviction).
    order: VecDeque<(u64, ContentHash)>,
    /// Per-owner slice of [`CacheStats`].
    owner_stats: BTreeMap<u32, CacheStats>,
    /// Per-owner count of *their* entries lost to pressure eviction
    /// (capacity bound or forced storm), keyed by the entry's owner.
    owner_evictions: BTreeMap<u32, u64>,
    /// Total pressure evictions (sum of `owner_evictions`).
    pressure_evictions: u64,
}

impl<T> Default for ActionCache<T> {
    fn default() -> Self {
        ActionCache {
            map: HashMap::new(),
            stats: CacheStats::default(),
            capacity: None,
            owner: 0,
            next_stamp: 0,
            order: VecDeque::new(),
            owner_stats: BTreeMap::new(),
            owner_evictions: BTreeMap::new(),
            pressure_evictions: 0,
        }
    }
}

impl<T> ActionCache<T> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached artifacts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Bound the cache to at most `capacity` live entries, evicting
    /// oldest-inserted-first when the bound is exceeded. `None`
    /// restores the unbounded default (existing entries stay).
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity.map(|c| c.max(1));
        self.enforce_capacity();
    }

    /// The configured capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Attribute all subsequent lookups/inserts to `owner`. Callers
    /// that interleave tenants must set this from deterministic,
    /// sequential code (the service's event loop does).
    pub fn set_owner(&mut self, owner: u32) {
        self.owner = owner;
    }

    /// The counters attributed to `owner` (zero if never seen).
    pub fn owner_stats(&self, owner: u32) -> CacheStats {
        self.owner_stats.get(&owner).copied().unwrap_or_default()
    }

    /// How many of `owner`'s entries were lost to pressure eviction.
    pub fn owner_evictions(&self, owner: u32) -> u64 {
        self.owner_evictions.get(&owner).copied().unwrap_or(0)
    }

    /// Total entries lost to pressure eviction (capacity or storm).
    pub fn pressure_evictions(&self) -> u64 {
        self.pressure_evictions
    }

    /// Stores `value` under `key`, replacing any previous artifact
    /// (identical inputs produce identical outputs, so a replacement
    /// only ever happens when two racing builds computed the same
    /// thing).
    pub fn insert(&mut self, key: ContentHash, value: T) {
        self.stats.insertions += 1;
        self.owner_stats.entry(self.owner).or_default().insertions += 1;
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.map.insert(key, Entry { value, digest: digest_of(key), owner: self.owner, stamp });
        self.order.push_back((stamp, key));
        self.enforce_capacity();
    }

    /// Force-evict up to `n` oldest-inserted live entries (the
    /// `evict-storm` fault). Returns how many entries were actually
    /// evicted; each is attributed to the owner that inserted it.
    pub fn evict_oldest(&mut self, n: usize) -> u64 {
        let mut evicted = 0;
        while evicted < n as u64 {
            if !self.evict_front() {
                break;
            }
            evicted += 1;
        }
        evicted
    }

    /// Pop stale order records until a live entry is evicted. Returns
    /// false when nothing live remains.
    fn evict_front(&mut self) -> bool {
        while let Some((stamp, key)) = self.order.pop_front() {
            let live = matches!(self.map.get(&key), Some(entry) if entry.stamp == stamp);
            if live {
                let entry = self.map.remove(&key).expect("live entry exists");
                *self.owner_evictions.entry(entry.owner).or_insert(0) += 1;
                self.pressure_evictions += 1;
                return true;
            }
        }
        false
    }

    fn enforce_capacity(&mut self) {
        if let Some(cap) = self.capacity {
            while self.map.len() > cap {
                if !self.evict_front() {
                    break;
                }
            }
        }
    }
}

impl<T: Clone> ActionCache<T> {
    /// Looks up `key`, counting a hit or a miss. Digest verification
    /// still runs (a corrupt entry is invalidated and reported as a
    /// miss); this is [`lookup_verified`](ActionCache::lookup_verified)
    /// without an injector.
    pub fn lookup(&mut self, key: ContentHash) -> Option<T> {
        self.lookup_verified(key, None).0
    }

    /// Looks up `key`, verifying the stored content digest, with an
    /// optional fault injector modeling storage-level damage.
    ///
    /// When an injector is supplied and an entry exists, the lookup
    /// first rolls for [`FaultKind::CacheEviction`] (the entry
    /// vanishes silently) and then [`FaultKind::CacheCorruption`] (the
    /// stored digest is flipped, which the verification below then
    /// genuinely detects). Faults only roll against live entries, so
    /// every fired cache fault corresponds to exactly one observable
    /// [`CacheEvent`] — that is what lets the degradation ledger
    /// account for injected faults exactly.
    ///
    /// Anything other than [`CacheEvent::Hit`] counts as a miss in
    /// [`CacheStats`], preserving `hits + misses == lookups`.
    pub fn lookup_verified(
        &mut self,
        key: ContentHash,
        faults: Option<&FaultInjector>,
    ) -> (Option<T>, CacheEvent) {
        let owner = self.owner;
        self.stats.lookups += 1;
        self.owner_stats.entry(owner).or_default().lookups += 1;
        if self.map.contains_key(&key) {
            if let Some(inj) = faults {
                let site = format!("{:016x}", key.0);
                if inj.fires(FaultKind::CacheEviction, &site) {
                    self.map.remove(&key);
                    self.stats.misses += 1;
                    self.owner_stats.entry(owner).or_default().misses += 1;
                    return (None, CacheEvent::Evicted);
                }
                if inj.fires(FaultKind::CacheCorruption, &site) {
                    if let Some(entry) = self.map.get_mut(&key) {
                        entry.digest ^= 0xDEAD_BEEF_0BAD_CAFE;
                    }
                }
            }
        }
        match self.map.get(&key) {
            Some(entry) if entry.digest == digest_of(key) => {
                self.stats.hits += 1;
                self.owner_stats.entry(owner).or_default().hits += 1;
                (Some(entry.value.clone()), CacheEvent::Hit)
            }
            Some(_) => {
                // Digest mismatch: the artifact can't be trusted.
                // Drop it so the caller's rebuild re-inserts a clean
                // entry.
                self.map.remove(&key);
                self.stats.misses += 1;
                self.owner_stats.entry(owner).or_default().misses += 1;
                (None, CacheEvent::CorruptInvalidated)
            }
            None => {
                self.stats.misses += 1;
                self.owner_stats.entry(owner).or_default().misses += 1;
                (None, CacheEvent::Miss)
            }
        }
    }

    /// Returns the cached artifact for `key`, or computes, stores and
    /// returns it. The boolean is `true` on a cache hit.
    pub fn get_or_compute(&mut self, key: ContentHash, compute: impl FnOnce() -> T) -> (T, bool) {
        match self.lookup(key) {
            Some(v) => (v, true),
            None => {
                let v = compute();
                self.insert(key, v.clone());
                (v, false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> ContentHash {
        ContentHash::of_bytes(&n.to_le_bytes())
    }

    #[test]
    fn since_yields_per_window_deltas() {
        let mut cache: ActionCache<u64> = ActionCache::new();
        cache.insert(key(1), 10);
        let _ = cache.lookup(key(1));
        let _ = cache.lookup(key(2));
        let before = cache.stats();
        let _ = cache.lookup(key(1));
        let _ = cache.lookup(key(1));
        let delta = cache.stats().since(&before);
        assert_eq!(delta.lookups, 2);
        assert_eq!(delta.hits, 2);
        assert_eq!(delta.misses, 0);
        assert_eq!(delta.insertions, 0);
        assert_eq!(delta.hit_rate(), 1.0);
        // A non-snapshot "earlier" saturates instead of wrapping.
        let weird = CacheStats {
            lookups: u64::MAX,
            ..before
        };
        assert_eq!(cache.stats().since(&weird).lookups, 0);
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let mut c = ActionCache::new();
        assert_eq!(c.lookup(key(1)), None);
        c.insert(key(1), "artifact");
        assert_eq!(c.lookup(key(1)), Some("artifact"));
        assert_eq!(c.lookup(key(2)), None);
        let s = c.stats();
        assert_eq!((s.lookups, s.hits, s.misses, s.insertions), (3, 1, 2, 1));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn get_or_compute_is_idempotent() {
        let mut c = ActionCache::new();
        let mut calls = 0;
        let (v, hit) = c.get_or_compute(key(7), || {
            calls += 1;
            42
        });
        assert_eq!((v, hit, calls), (42, false, 1));
        let (v, hit) = c.get_or_compute(key(7), || {
            calls += 1;
            unreachable!("cached key must not recompute")
        });
        assert_eq!((v, hit, calls), (42, true, 1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn empty_cache_reports_zero_hit_rate() {
        let c: ActionCache<u32> = ActionCache::new();
        assert!(c.is_empty());
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    fn verified_lookup_without_injector_matches_plain_lookup() {
        let mut c = ActionCache::new();
        c.insert(key(3), "v");
        assert_eq!(c.lookup_verified(key(3), None), (Some("v"), CacheEvent::Hit));
        assert_eq!(c.lookup_verified(key(4), None), (None, CacheEvent::Miss));
    }

    #[test]
    fn corruption_is_detected_invalidated_and_rebuildable() {
        use propeller_faults::{FaultPlan, FaultSpec};
        let plan = FaultPlan { cache_corruption: FaultSpec::always(), ..FaultPlan::none() };
        let inj = FaultInjector::new(plan, 1);
        let mut c = ActionCache::new();
        c.insert(key(5), "artifact");
        let (v, ev) = c.lookup_verified(key(5), Some(&inj));
        assert_eq!((v, ev), (None, CacheEvent::CorruptInvalidated));
        assert!(c.is_empty(), "corrupt entry must be invalidated");
        // The rebuild re-inserts a clean entry that verifies again.
        c.insert(key(5), "rebuilt");
        assert_eq!(c.lookup(key(5)), Some("rebuilt"));
        let s = c.stats();
        assert_eq!((s.lookups, s.hits, s.misses), (2, 1, 1));
        assert_eq!(inj.fired(FaultKind::CacheCorruption), 1);
    }

    #[test]
    fn eviction_is_a_silent_miss() {
        use propeller_faults::{FaultPlan, FaultSpec};
        let plan = FaultPlan { cache_eviction: FaultSpec::always(), ..FaultPlan::none() };
        let inj = FaultInjector::new(plan, 2);
        let mut c = ActionCache::new();
        c.insert(key(6), 99);
        assert_eq!(c.lookup_verified(key(6), Some(&inj)), (None, CacheEvent::Evicted));
        assert!(c.is_empty());
        // Faults only roll against live entries: a lookup of an absent
        // key is a plain miss and fires nothing.
        assert_eq!(c.lookup_verified(key(6), Some(&inj)), (None, CacheEvent::Miss));
        assert_eq!(inj.fired(FaultKind::CacheEviction), 1);
    }

    #[test]
    fn capacity_bound_evicts_oldest_first() {
        let mut c = ActionCache::new();
        c.set_capacity(Some(2));
        c.insert(key(1), "a");
        c.insert(key(2), "b");
        c.insert(key(3), "c");
        // key(1) was inserted first, so it is the one evicted.
        assert_eq!(c.len(), 2);
        assert_eq!(c.lookup(key(1)), None);
        assert_eq!(c.lookup(key(2)), Some("b"));
        assert_eq!(c.lookup(key(3)), Some("c"));
        assert_eq!(c.pressure_evictions(), 1);
        assert_eq!(c.owner_evictions(0), 1);
    }

    #[test]
    fn replacement_does_not_double_evict() {
        let mut c = ActionCache::new();
        c.set_capacity(Some(2));
        c.insert(key(1), "a");
        c.insert(key(1), "a2"); // replaces; stale order record remains
        c.insert(key(2), "b");
        // Still 2 live entries — the stale record for key(1)'s first
        // insert must not count toward the bound or get "evicted".
        assert_eq!(c.len(), 2);
        assert_eq!(c.pressure_evictions(), 0);
        c.insert(key(3), "c");
        // Now key(1) (oldest live stamp) goes.
        assert_eq!(c.lookup(key(1)), None);
        assert_eq!(c.lookup(key(2)), Some("b"));
        assert_eq!(c.pressure_evictions(), 1);
    }

    #[test]
    fn unbounded_default_never_evicts() {
        let mut c = ActionCache::new();
        for i in 0..100 {
            c.insert(key(i), i);
        }
        assert_eq!(c.len(), 100);
        assert_eq!(c.capacity(), None);
        assert_eq!(c.pressure_evictions(), 0);
    }

    #[test]
    fn per_owner_stats_split_lookup_traffic() {
        let mut c = ActionCache::new();
        c.set_owner(1);
        c.insert(key(1), "a");
        assert_eq!(c.lookup(key(1)), Some("a"));
        c.set_owner(2);
        assert_eq!(c.lookup(key(1)), Some("a"));
        assert_eq!(c.lookup(key(2)), None);
        let s1 = c.owner_stats(1);
        let s2 = c.owner_stats(2);
        assert_eq!((s1.lookups, s1.hits, s1.misses, s1.insertions), (1, 1, 0, 1));
        assert_eq!((s2.lookups, s2.hits, s2.misses, s2.insertions), (2, 1, 1, 0));
        // Owner slices sum to the global stats.
        let g = c.stats();
        assert_eq!(g.lookups, s1.lookups + s2.lookups);
        assert_eq!(g.hits, s1.hits + s2.hits);
        assert_eq!(g.misses, s1.misses + s2.misses);
        assert_eq!(g.insertions, s1.insertions + s2.insertions);
        // hits + misses == lookups holds per owner.
        assert_eq!(s1.hits + s1.misses, s1.lookups);
        assert_eq!(s2.hits + s2.misses, s2.lookups);
    }

    #[test]
    fn eviction_storm_attributes_victims_to_their_owners() {
        let mut c = ActionCache::new();
        c.set_owner(1);
        c.insert(key(1), "a");
        c.insert(key(2), "b");
        c.set_owner(2);
        c.insert(key(3), "c");
        let evicted = c.evict_oldest(2);
        assert_eq!(evicted, 2);
        assert_eq!(c.owner_evictions(1), 2);
        assert_eq!(c.owner_evictions(2), 0);
        assert_eq!(c.lookup(key(3)), Some("c"));
        // Asking for more than remains evicts what's there.
        assert_eq!(c.evict_oldest(5), 1);
        assert!(c.is_empty());
        assert_eq!(c.pressure_evictions(), 3);
    }

    #[test]
    fn stats_record_into_telemetry_under_prefix() {
        let mut c = ActionCache::new();
        c.insert(key(1), 10);
        c.lookup(key(1));
        c.lookup(key(2));
        let tel = propeller_telemetry::Telemetry::enabled();
        c.stats().record_metrics(&tel, "cache.ir");
        let m = tel.drain().metrics;
        assert_eq!(m.counter("cache.ir.lookups"), 2);
        assert_eq!(m.counter("cache.ir.hits"), 1);
        assert_eq!(m.counter("cache.ir.misses"), 1);
        assert_eq!(m.counter("cache.ir.insertions"), 1);
        assert!((m.gauges["cache.ir.hit_rate"] - 0.5).abs() < 1e-12);
    }
}
