//! The phase executor: admission control, a wall-clock model for
//! distributed and workstation builds, and a deterministic local
//! worker pool that executes the real work behind the modeled actions.

use crate::{ActionSpec, BuildError, PhaseReport, GIB};
use propeller_faults::{FaultInjector, FaultKind, RetryPolicy};
use propeller_telemetry::{SpanId, Telemetry};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The default worker count: one per available hardware thread.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Where a build's actions run.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum MachineConfig {
    /// The warehouse distributed build system (§2.1): effectively
    /// unbounded independent workers, one action per worker, but a
    /// hard per-action memory ceiling and a fixed scheduling/dispatch
    /// overhead per phase.
    Distributed {
        /// Per-action peak-RSS limit in bytes (the paper's 12 GB).
        ram_limit: u64,
        /// Scheduler dispatch overhead added to each phase's
        /// wall-clock.
        dispatch_secs: f64,
    },
    /// A single developer workstation: actions run back to back on one
    /// machine, with no per-action admission limit (this is where
    /// monolithic tools like BOLT live).
    Workstation,
}

impl MachineConfig {
    /// The default distributed build: 12 GiB per-action limit, 2 s
    /// dispatch overhead.
    pub fn distributed() -> Self {
        MachineConfig::Distributed {
            ram_limit: 12 * GIB,
            dispatch_secs: 2.0,
        }
    }

    /// A workstation build.
    pub fn workstation() -> Self {
        MachineConfig::Workstation
    }

    /// The per-action memory limit, if this machine enforces one.
    pub fn ram_limit(&self) -> Option<u64> {
        match self {
            MachineConfig::Distributed { ram_limit, .. } => Some(*ram_limit),
            MachineConfig::Workstation => None,
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::distributed()
    }
}

/// Runs phases of independent actions on a [`MachineConfig`].
///
/// The executor does two things: *admission control* (every action's
/// declared peak RSS is checked against the machine's per-action
/// limit before anything is scheduled) and *time accounting*. Actions
/// handed to one [`run_phase`](Executor::run_phase) call are
/// independent by construction — the pipeline only batches actions
/// with no mutual data dependencies — so the distributed critical
/// path is the single longest action.
#[derive(Clone, Debug)]
pub struct Executor {
    machine: MachineConfig,
    /// When present, scheduled faults
    /// ([transient failures](FaultKind::TransientActionFailure) and
    /// [timeouts](FaultKind::ActionTimeout)) hit actions run through
    /// [`run_phase_resilient_traced`](Executor::run_phase_resilient_traced),
    /// which retries them under `retry`.
    faults: Option<Arc<FaultInjector>>,
    retry: RetryPolicy,
    /// Local worker-pool width for [`execute_indexed`]
    /// (Executor::execute_indexed). `1` runs everything inline on the
    /// calling thread (the exact legacy path); the default is one
    /// worker per hardware thread.
    jobs: usize,
}

/// Measured timing of one [`Executor::execute_indexed`] batch: real
/// wall microseconds end to end, and useful-work microseconds summed
/// across workers. Feeds [`PhaseReport::wall_us`] / `busy_us`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PoolStats {
    /// Wall-clock microseconds for the whole batch.
    pub wall_us: u64,
    /// Work microseconds summed over all workers.
    pub busy_us: u64,
}

/// Per-phase retry accounting from a resilient run, feeding the
/// degradation ledger. All-zero when no fault fired.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ResilienceReport {
    /// Attempts that failed transiently and were retried.
    pub retries: u64,
    /// Attempts that hit the modeled timeout deadline.
    pub timeouts: u64,
    /// Modeled seconds spent waiting in backoff (incl. jitter).
    pub backoff_secs: f64,
}

impl Executor {
    /// Creates an executor for `machine` with no fault injection and
    /// the default worker-pool width ([`default_jobs`]).
    pub fn new(machine: MachineConfig) -> Self {
        Executor {
            machine,
            faults: None,
            retry: RetryPolicy::default(),
            jobs: default_jobs(),
        }
    }

    /// Attaches a fault injector and the retry policy that absorbs the
    /// faults it schedules.
    pub fn with_faults(mut self, faults: Arc<FaultInjector>, retry: RetryPolicy) -> Self {
        self.faults = Some(faults);
        self.retry = retry;
        self
    }

    /// Sets the local worker-pool width (`--jobs`). `1` ⇒ the exact
    /// serial legacy path; values are clamped to at least 1.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// The configured worker-pool width.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The attached fault injector, if any.
    pub fn faults(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// The retry policy used by the resilient phase runner.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The machine this executor schedules onto.
    pub fn machine(&self) -> MachineConfig {
        self.machine
    }

    /// Runs `f` over every item on the worker pool and returns the
    /// results **in item order**, bit-identically to a serial loop.
    ///
    /// Determinism contract: `f(worker, index, &item)` must be a pure
    /// function of `(index, item)` — the `worker` argument is a lane id
    /// for telemetry only. Workers pull indices from a shared cursor
    /// (dynamic load balancing), write each result into its slot, and
    /// the slots are read back in index order; result order, and
    /// therefore every downstream fold over the results, is independent
    /// of thread interleaving. With `jobs == 1` (or one item) the items
    /// run inline on the calling thread — the exact legacy path.
    ///
    /// # Errors
    ///
    /// A panic inside `f` is caught on the worker, the remaining items
    /// still run, and the *lowest-index* panic surfaces as
    /// [`BuildError::WorkerPanicked`] — a typed error, never a hang or
    /// a propagated unwind.
    pub fn execute_indexed<T, R, F>(
        &self,
        what: &str,
        items: &[T],
        f: F,
    ) -> Result<(Vec<R>, PoolStats), BuildError>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, usize, &T) -> R + Sync,
    {
        let start = Instant::now();
        let workers = self.jobs.min(items.len()).max(1);
        if workers == 1 {
            let mut out = Vec::with_capacity(items.len());
            let mut busy_us = 0u64;
            for (i, item) in items.iter().enumerate() {
                let t0 = Instant::now();
                let r = std::panic::catch_unwind(AssertUnwindSafe(|| f(0, i, item)));
                busy_us += t0.elapsed().as_micros() as u64;
                match r {
                    Ok(v) => out.push(v),
                    Err(payload) => {
                        return Err(BuildError::WorkerPanicked {
                            what: what.to_string(),
                            message: panic_message(&*payload),
                        })
                    }
                }
            }
            let stats = PoolStats { wall_us: start.elapsed().as_micros() as u64, busy_us };
            return Ok((out, stats));
        }

        let next = AtomicUsize::new(0);
        let busy = AtomicU64::new(0);
        let slots: parking_lot::Mutex<Vec<Option<std::thread::Result<R>>>> =
            parking_lot::Mutex::new((0..items.len()).map(|_| None).collect());
        let f = &f;
        let (next_ref, busy_ref, slots_ref) = (&next, &busy, &slots);
        crossbeam::thread::scope(|s| {
            for w in 0..workers {
                s.spawn(move |_| loop {
                    let i = next_ref.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let t0 = Instant::now();
                    // Catch the unwind *inside* the worker: a panicking
                    // closure must not take the scope (and the caller)
                    // down with it, and other workers keep draining.
                    let r = std::panic::catch_unwind(AssertUnwindSafe(|| f(w, i, item)));
                    busy_ref.fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                    slots_ref.lock()[i] = Some(r);
                });
            }
        })
        .expect("pool workers catch their own panics");

        let mut out = Vec::with_capacity(items.len());
        for (i, slot) in slots.into_inner().into_iter().enumerate() {
            match slot {
                Some(Ok(v)) => out.push(v),
                Some(Err(payload)) => {
                    return Err(BuildError::WorkerPanicked {
                        what: what.to_string(),
                        message: panic_message(&*payload),
                    })
                }
                None => {
                    return Err(BuildError::WorkerPanicked {
                        what: what.to_string(),
                        message: format!("slot {i} left unfilled"),
                    })
                }
            }
        }
        let stats = PoolStats {
            wall_us: start.elapsed().as_micros() as u64,
            busy_us: busy.into_inner(),
        };
        Ok((out, stats))
    }

    /// Executes one phase of independent actions.
    ///
    /// Wall-clock:
    /// * distributed — `dispatch_secs + max(action cpu)`: every action
    ///   gets its own worker, so the phase takes as long as its
    ///   longest action, plus the scheduler overhead;
    /// * workstation — `sum(action cpu)`: serial execution.
    ///
    /// An empty phase (everything was a cache hit) costs nothing.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::ActionOverMemoryLimit`] if any action's
    /// declared peak RSS exceeds the distributed per-action limit; no
    /// action of the phase runs in that case.
    pub fn run_phase(&self, actions: &[ActionSpec]) -> Result<PhaseReport, BuildError> {
        if let Some(limit) = self.machine.ram_limit() {
            if let Some(over) = actions.iter().find(|a| a.peak_rss_bytes > limit) {
                return Err(BuildError::ActionOverMemoryLimit {
                    action: over.name.clone(),
                    needed_bytes: over.peak_rss_bytes,
                    limit_bytes: limit,
                });
            }
        }
        if actions.is_empty() {
            return Ok(PhaseReport::default());
        }
        let cpu_secs: f64 = actions.iter().map(|a| a.cpu_secs).sum();
        let critical_path = actions.iter().map(|a| a.cpu_secs).fold(0.0, f64::max);
        let wall_secs = match self.machine {
            MachineConfig::Distributed { dispatch_secs, .. } => dispatch_secs + critical_path,
            MachineConfig::Workstation => cpu_secs,
        };
        Ok(PhaseReport {
            wall_secs,
            cpu_secs,
            num_actions: actions.len(),
            max_action_memory: actions
                .iter()
                .map(|a| a.peak_rss_bytes)
                .max()
                .unwrap_or(0),
            // Modeled phases execute nothing locally; measured timing
            // is merged in by callers that ran real work on the pool.
            wall_us: 0,
            busy_us: 0,
        })
    }

    /// [`run_phase`](Executor::run_phase), plus one telemetry span per
    /// action under `parent`.
    ///
    /// Actions here are *modeled* — their cost lives in the cost model,
    /// not in local wall-clock — so each span is emitted with zero wall
    /// duration, its modeled CPU seconds as simulated time, and its
    /// declared peak RSS. The phase's wall-clock (dispatch + critical
    /// path, or serial sum) stays on the `parent` span the caller owns.
    pub fn run_phase_traced(
        &self,
        actions: &[ActionSpec],
        tel: &Telemetry,
        parent: Option<SpanId>,
    ) -> Result<PhaseReport, BuildError> {
        let report = self.run_phase(actions)?;
        if tel.is_enabled() {
            for a in actions {
                tel.emit_span(
                    format!("action:{}", a.name),
                    parent,
                    a.cpu_secs,
                    a.peak_rss_bytes,
                );
                tel.observe("executor.action_rss_bytes", a.peak_rss_bytes as f64);
            }
            tel.counter_add("executor.actions", actions.len() as u64);
            tel.gauge_max(
                "executor.max_action_rss_bytes",
                report.max_action_memory as f64,
            );
        }
        Ok(report)
    }

    /// [`run_phase_traced`](Executor::run_phase_traced) with fault
    /// absorption: transient failures and timeouts scheduled by the
    /// attached injector are retried under the [`RetryPolicy`], with
    /// exponential backoff + deterministic jitter charged in *modeled*
    /// seconds (nothing sleeps).
    ///
    /// Retry semantics: faults only roll on attempts that still have
    /// retry budget left, so the final budgeted attempt of a flaky
    /// action always succeeds — modeling the build system reassigning
    /// the action to a healthy worker. Failed attempts burn their full
    /// modeled cost (the action's CPU seconds for a transient crash,
    /// the timeout deadline for a hang), and each retry waits out a
    /// backoff; all of it lands in the phase's wall/CPU accounting, so
    /// chaos shows up in Table-5-style numbers instead of being free.
    ///
    /// Without an injector (or with an empty plan) this is exactly
    /// [`run_phase_traced`](Executor::run_phase_traced): same report,
    /// same spans, zero [`ResilienceReport`] — the guarantee behind
    /// "zero-fault runs are bit-identical".
    pub fn run_phase_resilient_traced(
        &self,
        actions: &[ActionSpec],
        tel: &Telemetry,
        parent: Option<SpanId>,
    ) -> Result<(PhaseReport, ResilienceReport), BuildError> {
        let inj = match &self.faults {
            Some(inj) if !inj.plan().is_none() => inj,
            _ => {
                let report = self.run_phase_traced(actions, tel, parent)?;
                return Ok((report, ResilienceReport::default()));
            }
        };
        // Admission control is unchanged: an over-limit action is a
        // plan error, not a fault to retry.
        if let Some(limit) = self.machine.ram_limit() {
            if let Some(over) = actions.iter().find(|a| a.peak_rss_bytes > limit) {
                return Err(BuildError::ActionOverMemoryLimit {
                    action: over.name.clone(),
                    needed_bytes: over.peak_rss_bytes,
                    limit_bytes: limit,
                });
            }
        }
        if actions.is_empty() {
            return Ok((PhaseReport::default(), ResilienceReport::default()));
        }
        let mut res = ResilienceReport::default();
        let mut cpu_secs = 0.0f64;
        let mut critical_path = 0.0f64;
        let mut serial_latency = 0.0f64;
        for a in actions {
            // One worker's modeled timeline for this action: failed
            // attempts + backoffs + the final successful run.
            let mut work = 0.0f64; // CPU the attempts burned
            let mut waited = 0.0f64; // backoff between attempts
            let mut attempt: u32 = 0;
            loop {
                let retryable = attempt + 1 < self.retry.max_attempts.max(1);
                // Roll order is fixed (hang before crash) and rolls
                // only happen while budget remains, so every fired
                // fault is observed and retried exactly once.
                if retryable && inj.fires(FaultKind::ActionTimeout, &a.name) {
                    work += self.retry.timeout_secs;
                    res.timeouts += 1;
                } else if retryable && inj.fires(FaultKind::TransientActionFailure, &a.name) {
                    work += a.cpu_secs;
                    res.retries += 1;
                } else {
                    work += a.cpu_secs;
                    break;
                }
                let backoff = self.retry.backoff_secs(inj, &a.name, attempt);
                waited += backoff;
                res.backoff_secs += backoff;
                attempt += 1;
            }
            let latency = work + waited;
            cpu_secs += work;
            critical_path = critical_path.max(latency);
            serial_latency += latency;
            if tel.is_enabled() {
                tel.emit_span(format!("action:{}", a.name), parent, latency, a.peak_rss_bytes);
                tel.observe("executor.action_rss_bytes", a.peak_rss_bytes as f64);
            }
        }
        let wall_secs = match self.machine {
            MachineConfig::Distributed { dispatch_secs, .. } => dispatch_secs + critical_path,
            MachineConfig::Workstation => serial_latency,
        };
        let report = PhaseReport {
            wall_secs,
            cpu_secs,
            num_actions: actions.len(),
            max_action_memory: actions.iter().map(|a| a.peak_rss_bytes).max().unwrap_or(0),
            wall_us: 0,
            busy_us: 0,
        };
        if tel.is_enabled() {
            tel.counter_add("executor.actions", actions.len() as u64);
            tel.gauge_max("executor.max_action_rss_bytes", report.max_action_memory as f64);
            if res.retries > 0 {
                tel.counter_add("executor.action_retries", res.retries);
            }
            if res.timeouts > 0 {
                tel.counter_add("executor.action_timeouts", res.timeouts);
            }
        }
        Ok((report, res))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase() -> Vec<ActionSpec> {
        vec![
            ActionSpec::new("a", 1.0, 100),
            ActionSpec::new("b", 4.0, 300),
            ActionSpec::new("c", 2.0, 200),
        ]
    }

    #[test]
    fn distributed_wall_is_dispatch_plus_critical_path() {
        let ex = Executor::new(MachineConfig::Distributed {
            ram_limit: GIB,
            dispatch_secs: 2.0,
        });
        let r = ex.run_phase(&phase()).unwrap();
        assert!((r.wall_secs - 6.0).abs() < 1e-12, "2 + max(1,4,2)");
        assert!((r.cpu_secs - 7.0).abs() < 1e-12);
        assert_eq!(r.num_actions, 3);
        assert_eq!(r.max_action_memory, 300);
    }

    #[test]
    fn workstation_wall_is_serial_sum() {
        let ex = Executor::new(MachineConfig::workstation());
        let r = ex.run_phase(&phase()).unwrap();
        assert!((r.wall_secs - 7.0).abs() < 1e-12, "1 + 4 + 2 serially");
    }

    #[test]
    fn empty_phase_is_free() {
        let ex = Executor::new(MachineConfig::distributed());
        let r = ex.run_phase(&[]).unwrap();
        assert_eq!(r, PhaseReport::default());
    }

    #[test]
    fn distributed_rejects_over_limit_action() {
        let ex = Executor::new(MachineConfig::distributed());
        let err = ex
            .run_phase(&[
                ActionSpec::new("ok", 1.0, GIB),
                ActionSpec::new("llvm-bolt", 600.0, 36 * GIB),
            ])
            .unwrap_err();
        assert_eq!(
            err,
            BuildError::ActionOverMemoryLimit {
                action: "llvm-bolt".into(),
                needed_bytes: 36 * GIB,
                limit_bytes: 12 * GIB,
            }
        );
    }

    #[test]
    fn workstation_admits_any_size() {
        let ex = Executor::new(MachineConfig::workstation());
        let r = ex
            .run_phase(&[ActionSpec::new("llvm-bolt", 600.0, 36 * GIB)])
            .unwrap();
        assert_eq!(r.max_action_memory, 36 * GIB);
    }

    #[test]
    fn traced_phase_emits_one_span_per_action() {
        let tel = Telemetry::enabled();
        let ex = Executor::new(MachineConfig::distributed());
        let parent = {
            let phase_span = tel.span("phase");
            ex.run_phase_traced(&phase(), &tel, phase_span.id()).unwrap();
            phase_span.id().unwrap()
        };
        let trace = tel.drain();
        let children = trace.children(parent);
        assert_eq!(children.len(), 3);
        assert!(children.iter().any(|s| s.name == "action:b" && s.sim_secs == 4.0));
        assert_eq!(trace.metrics.counter("executor.actions"), 3);
        assert_eq!(trace.metrics.gauges["executor.max_action_rss_bytes"], 300.0);
    }

    #[test]
    fn traced_phase_on_disabled_handle_records_nothing() {
        let tel = Telemetry::disabled();
        let ex = Executor::new(MachineConfig::distributed());
        let r = ex.run_phase_traced(&phase(), &tel, None).unwrap();
        assert_eq!(r.num_actions, 3);
        assert!(tel.drain().spans.is_empty());
    }

    #[test]
    fn resilient_without_faults_matches_legacy_exactly() {
        let ex = Executor::new(MachineConfig::distributed());
        let tel = Telemetry::enabled();
        let (r, res) = ex.run_phase_resilient_traced(&phase(), &tel, None).unwrap();
        assert_eq!(r, ex.run_phase(&phase()).unwrap());
        assert_eq!(res, ResilienceReport::default());
        let trace = tel.drain();
        assert_eq!(trace.spans.len(), 3);
        assert_eq!(trace.metrics.counter("executor.action_retries"), 0);
    }

    #[test]
    fn always_transient_retries_and_charges_wasted_work() {
        use propeller_faults::{FaultPlan, FaultSpec};
        let plan =
            FaultPlan { transient_action_failure: FaultSpec::always(), ..FaultPlan::none() };
        let rp = RetryPolicy { jitter_frac: 0.0, ..RetryPolicy::default() };
        let ex = Executor::new(MachineConfig::workstation())
            .with_faults(Arc::new(FaultInjector::new(plan, 3)), rp);
        let actions = [ActionSpec::new("a", 1.0, 100)];
        let (r, res) = ex
            .run_phase_resilient_traced(&actions, &Telemetry::disabled(), None)
            .unwrap();
        // 4 attempts: 3 transient failures + the guaranteed final
        // success, plus backoffs 0.5 + 1.0 + 2.0.
        assert_eq!(res.retries, 3);
        assert_eq!(res.timeouts, 0);
        assert!((res.backoff_secs - 3.5).abs() < 1e-12);
        assert!((r.cpu_secs - 4.0).abs() < 1e-12);
        assert!((r.wall_secs - 7.5).abs() < 1e-12);
    }

    #[test]
    fn always_timeout_burns_deadline_not_cpu() {
        use propeller_faults::{FaultPlan, FaultSpec};
        let plan = FaultPlan { action_timeout: FaultSpec::count(1.0, 1), ..FaultPlan::none() };
        let rp = RetryPolicy { jitter_frac: 0.0, timeout_secs: 10.0, ..RetryPolicy::default() };
        let ex = Executor::new(MachineConfig::workstation())
            .with_faults(Arc::new(FaultInjector::new(plan, 3)), rp);
        let actions = [ActionSpec::new("a", 1.0, 100)];
        let (r, res) = ex
            .run_phase_resilient_traced(&actions, &Telemetry::disabled(), None)
            .unwrap();
        assert_eq!(res.timeouts, 1);
        // Hung attempt (10 s) + backoff (0.5 s) + clean rerun (1 s).
        assert!((r.cpu_secs - 11.0).abs() < 1e-12);
        assert!((r.wall_secs - 11.5).abs() < 1e-12);
    }

    #[test]
    fn resilient_runs_are_deterministic() {
        use propeller_faults::{FaultPlan, FaultSpec};
        let plan = FaultPlan {
            transient_action_failure: FaultSpec::p(0.4),
            action_timeout: FaultSpec::p(0.2),
            ..FaultPlan::none()
        };
        let run = |seed| {
            let ex = Executor::new(MachineConfig::distributed()).with_faults(
                Arc::new(FaultInjector::new(plan.clone(), seed)),
                RetryPolicy::default(),
            );
            ex.run_phase_resilient_traced(&phase(), &Telemetry::disabled(), None).unwrap()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn resilient_still_rejects_over_limit_actions() {
        use propeller_faults::{FaultPlan, FaultSpec};
        let plan =
            FaultPlan { transient_action_failure: FaultSpec::always(), ..FaultPlan::none() };
        let ex = Executor::new(MachineConfig::distributed())
            .with_faults(Arc::new(FaultInjector::new(plan, 1)), RetryPolicy::default());
        let err = ex
            .run_phase_resilient_traced(
                &[ActionSpec::new("llvm-bolt", 600.0, 36 * GIB)],
                &Telemetry::disabled(),
                None,
            )
            .unwrap_err();
        assert!(matches!(err, BuildError::ActionOverMemoryLimit { .. }));
    }

    #[test]
    fn exactly_at_limit_is_admitted() {
        let ex = Executor::new(MachineConfig::distributed());
        assert!(ex
            .run_phase(&[ActionSpec::new("edge", 1.0, 12 * GIB)])
            .is_ok());
    }

    #[test]
    fn pool_results_are_in_item_order_at_any_width() {
        let items: Vec<u64> = (0..100).collect();
        let serial = Executor::new(MachineConfig::distributed()).with_jobs(1);
        let (expect, _) = serial
            .execute_indexed("square", &items, |_, i, &x| (i as u64, x * x))
            .unwrap();
        for jobs in [2, 3, 8] {
            let ex = Executor::new(MachineConfig::distributed()).with_jobs(jobs);
            let (got, stats) = ex
                .execute_indexed("square", &items, |_, i, &x| (i as u64, x * x))
                .unwrap();
            assert_eq!(got, expect, "jobs={jobs}");
            assert!(stats.wall_us > 0 || stats.busy_us == 0);
        }
    }

    #[test]
    fn pool_handles_empty_and_single_item_batches() {
        let ex = Executor::new(MachineConfig::distributed()).with_jobs(8);
        let (empty, _) = ex.execute_indexed("noop", &[] as &[u32], |_, _, &x| x).unwrap();
        assert!(empty.is_empty());
        let (one, _) = ex.execute_indexed("one", &[7u32], |w, _, &x| (w, x)).unwrap();
        // A single item runs inline on the calling thread as worker 0.
        assert_eq!(one, vec![(0, 7)]);
    }

    #[test]
    fn panicked_worker_surfaces_as_typed_error_not_a_hang() {
        for jobs in [1, 4] {
            let ex = Executor::new(MachineConfig::distributed()).with_jobs(jobs);
            let items: Vec<u32> = (0..32).collect();
            let err = ex
                .execute_indexed("flaky batch", &items, |_, _, &x| {
                    if x == 13 {
                        panic!("unlucky item {x}");
                    }
                    x
                })
                .unwrap_err();
            match err {
                BuildError::WorkerPanicked { what, message } => {
                    assert_eq!(what, "flaky batch");
                    assert!(message.contains("unlucky item 13"), "{message}");
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
        }
    }

    #[test]
    fn lowest_index_panic_wins_regardless_of_interleaving() {
        let ex = Executor::new(MachineConfig::distributed()).with_jobs(8);
        let items: Vec<u32> = (0..64).collect();
        let err = ex
            .execute_indexed("double panic", &items, |_, _, &x| {
                if x == 9 || x == 40 {
                    panic!("item {x}");
                }
                x
            })
            .unwrap_err();
        assert!(matches!(
            err,
            BuildError::WorkerPanicked { ref message, .. } if message.contains("item 9")
        ));
    }

    #[test]
    fn with_jobs_clamps_to_one() {
        let ex = Executor::new(MachineConfig::distributed()).with_jobs(0);
        assert_eq!(ex.jobs(), 1);
    }
}
