//! The phase executor: admission control plus a wall-clock model for
//! distributed and workstation builds.

use crate::{ActionSpec, BuildError, PhaseReport, GIB};
use propeller_telemetry::{SpanId, Telemetry};

/// Where a build's actions run.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum MachineConfig {
    /// The warehouse distributed build system (§2.1): effectively
    /// unbounded independent workers, one action per worker, but a
    /// hard per-action memory ceiling and a fixed scheduling/dispatch
    /// overhead per phase.
    Distributed {
        /// Per-action peak-RSS limit in bytes (the paper's 12 GB).
        ram_limit: u64,
        /// Scheduler dispatch overhead added to each phase's
        /// wall-clock.
        dispatch_secs: f64,
    },
    /// A single developer workstation: actions run back to back on one
    /// machine, with no per-action admission limit (this is where
    /// monolithic tools like BOLT live).
    Workstation,
}

impl MachineConfig {
    /// The default distributed build: 12 GiB per-action limit, 2 s
    /// dispatch overhead.
    pub fn distributed() -> Self {
        MachineConfig::Distributed {
            ram_limit: 12 * GIB,
            dispatch_secs: 2.0,
        }
    }

    /// A workstation build.
    pub fn workstation() -> Self {
        MachineConfig::Workstation
    }

    /// The per-action memory limit, if this machine enforces one.
    pub fn ram_limit(&self) -> Option<u64> {
        match self {
            MachineConfig::Distributed { ram_limit, .. } => Some(*ram_limit),
            MachineConfig::Workstation => None,
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::distributed()
    }
}

/// Runs phases of independent actions on a [`MachineConfig`].
///
/// The executor does two things: *admission control* (every action's
/// declared peak RSS is checked against the machine's per-action
/// limit before anything is scheduled) and *time accounting*. Actions
/// handed to one [`run_phase`](Executor::run_phase) call are
/// independent by construction — the pipeline only batches actions
/// with no mutual data dependencies — so the distributed critical
/// path is the single longest action.
#[derive(Clone, Debug)]
pub struct Executor {
    machine: MachineConfig,
}

impl Executor {
    /// Creates an executor for `machine`.
    pub fn new(machine: MachineConfig) -> Self {
        Executor { machine }
    }

    /// The machine this executor schedules onto.
    pub fn machine(&self) -> MachineConfig {
        self.machine
    }

    /// Executes one phase of independent actions.
    ///
    /// Wall-clock:
    /// * distributed — `dispatch_secs + max(action cpu)`: every action
    ///   gets its own worker, so the phase takes as long as its
    ///   longest action, plus the scheduler overhead;
    /// * workstation — `sum(action cpu)`: serial execution.
    ///
    /// An empty phase (everything was a cache hit) costs nothing.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::ActionOverMemoryLimit`] if any action's
    /// declared peak RSS exceeds the distributed per-action limit; no
    /// action of the phase runs in that case.
    pub fn run_phase(&self, actions: &[ActionSpec]) -> Result<PhaseReport, BuildError> {
        if let Some(limit) = self.machine.ram_limit() {
            if let Some(over) = actions.iter().find(|a| a.peak_rss_bytes > limit) {
                return Err(BuildError::ActionOverMemoryLimit {
                    action: over.name.clone(),
                    needed_bytes: over.peak_rss_bytes,
                    limit_bytes: limit,
                });
            }
        }
        if actions.is_empty() {
            return Ok(PhaseReport::default());
        }
        let cpu_secs: f64 = actions.iter().map(|a| a.cpu_secs).sum();
        let critical_path = actions.iter().map(|a| a.cpu_secs).fold(0.0, f64::max);
        let wall_secs = match self.machine {
            MachineConfig::Distributed { dispatch_secs, .. } => dispatch_secs + critical_path,
            MachineConfig::Workstation => cpu_secs,
        };
        Ok(PhaseReport {
            wall_secs,
            cpu_secs,
            num_actions: actions.len(),
            max_action_memory: actions
                .iter()
                .map(|a| a.peak_rss_bytes)
                .max()
                .unwrap_or(0),
        })
    }

    /// [`run_phase`](Executor::run_phase), plus one telemetry span per
    /// action under `parent`.
    ///
    /// Actions here are *modeled* — their cost lives in the cost model,
    /// not in local wall-clock — so each span is emitted with zero wall
    /// duration, its modeled CPU seconds as simulated time, and its
    /// declared peak RSS. The phase's wall-clock (dispatch + critical
    /// path, or serial sum) stays on the `parent` span the caller owns.
    pub fn run_phase_traced(
        &self,
        actions: &[ActionSpec],
        tel: &Telemetry,
        parent: Option<SpanId>,
    ) -> Result<PhaseReport, BuildError> {
        let report = self.run_phase(actions)?;
        if tel.is_enabled() {
            for a in actions {
                tel.emit_span(
                    format!("action:{}", a.name),
                    parent,
                    a.cpu_secs,
                    a.peak_rss_bytes,
                );
                tel.observe("executor.action_rss_bytes", a.peak_rss_bytes as f64);
            }
            tel.counter_add("executor.actions", actions.len() as u64);
            tel.gauge_max(
                "executor.max_action_rss_bytes",
                report.max_action_memory as f64,
            );
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase() -> Vec<ActionSpec> {
        vec![
            ActionSpec::new("a", 1.0, 100),
            ActionSpec::new("b", 4.0, 300),
            ActionSpec::new("c", 2.0, 200),
        ]
    }

    #[test]
    fn distributed_wall_is_dispatch_plus_critical_path() {
        let ex = Executor::new(MachineConfig::Distributed {
            ram_limit: GIB,
            dispatch_secs: 2.0,
        });
        let r = ex.run_phase(&phase()).unwrap();
        assert!((r.wall_secs - 6.0).abs() < 1e-12, "2 + max(1,4,2)");
        assert!((r.cpu_secs - 7.0).abs() < 1e-12);
        assert_eq!(r.num_actions, 3);
        assert_eq!(r.max_action_memory, 300);
    }

    #[test]
    fn workstation_wall_is_serial_sum() {
        let ex = Executor::new(MachineConfig::workstation());
        let r = ex.run_phase(&phase()).unwrap();
        assert!((r.wall_secs - 7.0).abs() < 1e-12, "1 + 4 + 2 serially");
    }

    #[test]
    fn empty_phase_is_free() {
        let ex = Executor::new(MachineConfig::distributed());
        let r = ex.run_phase(&[]).unwrap();
        assert_eq!(r, PhaseReport::default());
    }

    #[test]
    fn distributed_rejects_over_limit_action() {
        let ex = Executor::new(MachineConfig::distributed());
        let err = ex
            .run_phase(&[
                ActionSpec::new("ok", 1.0, GIB),
                ActionSpec::new("llvm-bolt", 600.0, 36 * GIB),
            ])
            .unwrap_err();
        assert_eq!(
            err,
            BuildError::ActionOverMemoryLimit {
                action: "llvm-bolt".into(),
                needed_bytes: 36 * GIB,
                limit_bytes: 12 * GIB,
            }
        );
    }

    #[test]
    fn workstation_admits_any_size() {
        let ex = Executor::new(MachineConfig::workstation());
        let r = ex
            .run_phase(&[ActionSpec::new("llvm-bolt", 600.0, 36 * GIB)])
            .unwrap();
        assert_eq!(r.max_action_memory, 36 * GIB);
    }

    #[test]
    fn traced_phase_emits_one_span_per_action() {
        let tel = Telemetry::enabled();
        let ex = Executor::new(MachineConfig::distributed());
        let parent = {
            let phase_span = tel.span("phase");
            ex.run_phase_traced(&phase(), &tel, phase_span.id()).unwrap();
            phase_span.id().unwrap()
        };
        let trace = tel.drain();
        let children = trace.children(parent);
        assert_eq!(children.len(), 3);
        assert!(children.iter().any(|s| s.name == "action:b" && s.sim_secs == 4.0));
        assert_eq!(trace.metrics.counter("executor.actions"), 3);
        assert_eq!(trace.metrics.gauges["executor.max_action_rss_bytes"], 300.0);
    }

    #[test]
    fn traced_phase_on_disabled_handle_records_nothing() {
        let tel = Telemetry::disabled();
        let ex = Executor::new(MachineConfig::distributed());
        let r = ex.run_phase_traced(&phase(), &tel, None).unwrap();
        assert_eq!(r.num_actions, 3);
        assert!(tel.drain().spans.is_empty());
    }

    #[test]
    fn exactly_at_limit_is_admitted() {
        let ex = Executor::new(MachineConfig::distributed());
        assert!(ex
            .run_phase(&[ActionSpec::new("edge", 1.0, 12 * GIB)])
            .is_ok());
    }
}
