//! # The distributed build system, simulated
//!
//! Propeller is not a standalone binary rewriter — it is a *relinking*
//! optimizer designed to ride an existing caching, distributed build
//! system (§2.1). That infrastructure is what this crate models:
//!
//! * a content-addressed [`ActionCache`]: artifacts keyed by the hash
//!   of their inputs, so unchanged modules across releases are hits
//!   (the paper's ">90% hit rate" that makes relinking cheap);
//! * an [`Executor`] over a [`MachineConfig`]: admission control
//!   against the per-action memory ceiling (the 12 GB limit that
//!   excludes monolithic rewriters) plus a wall-clock model —
//!   dispatch overhead + critical path when distributed, a serial sum
//!   on a workstation;
//! * a [`CostModel`] turning work sizes into CPU seconds for the
//!   Table 5 / Fig. 9 build-time accounting;
//! * a [`MemoryMeter`] that charges modeled data structures their
//!   honest byte cost, for the Fig. 4 peak-RSS comparison.
//!
//! # Example
//!
//! ```
//! use propeller_buildsys::{ActionSpec, BuildError, Executor, MachineConfig, GIB};
//!
//! let distributed = Executor::new(MachineConfig::distributed());
//!
//! // Phase-sized actions fit comfortably…
//! let phase = [
//!     ActionSpec::new("codegen m1.cc", 1.4, 2 * GIB),
//!     ActionSpec::new("codegen m2.cc", 0.9, 2 * GIB),
//! ];
//! let report = distributed.run_phase(&phase).unwrap();
//! assert_eq!(report.num_actions, 2);
//! assert!((report.wall_secs - (2.0 + 1.4)).abs() < 1e-12);
//!
//! // …but a monolithic 36 GiB rewrite is rejected outright.
//! let bolt = ActionSpec::new("llvm-bolt", 600.0, 36 * GIB);
//! assert!(matches!(
//!     distributed.run_phase(std::slice::from_ref(&bolt)),
//!     Err(BuildError::ActionOverMemoryLimit { .. })
//! ));
//! ```

mod action;
mod cache;
mod cost;
mod error;
mod executor;
mod meter;

pub use action::{ActionSpec, PhaseReport};
pub use cache::{ActionCache, CacheEvent, CacheStats};
pub use cost::CostModel;
pub use error::BuildError;
pub use executor::{default_jobs, Executor, MachineConfig, PoolStats, ResilienceReport};
pub use meter::{MemoryMeter, MeteredSize};

/// One gibibyte, the unit of the paper's per-action memory limits.
pub const GIB: u64 = 1 << 30;
