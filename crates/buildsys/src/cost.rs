//! The build-action cost model.
//!
//! Converts work sizes (instructions compiled, bytes linked, profile
//! bytes converted, dynamic-CFG edges analyzed, text bytes
//! disassembled) into modeled CPU seconds. The rates are calibrated so
//! full-scale extrapolations land in the regime the paper reports
//! (Table 5, Fig. 9): warehouse-scale links take tens of seconds,
//! profile conversion takes minutes on multi-gigabyte profiles, and
//! BOLT's disassemble-everything pass scales with text size while
//! Propeller's relink does not.

/// Per-unit CPU-cost rates for every kind of build action.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct CostModel {
    /// Frontend + middle-end seconds per IR instruction (Phase 1).
    pub compile_secs_per_inst: f64,
    /// Backend codegen seconds per IR instruction (Phases 2 and 4).
    pub codegen_secs_per_inst: f64,
    /// Link seconds per input byte.
    pub link_secs_per_byte: f64,
    /// Profile-conversion seconds per raw profile byte (Phase 3).
    pub profile_conversion_secs_per_byte: f64,
    /// Whole-program-analysis seconds per dynamic-CFG edge (Phase 3).
    pub wpa_secs_per_edge: f64,
    /// Disassembly seconds per text byte (BOLT's mandatory first
    /// step; Propeller never pays this).
    pub disassembly_secs_per_byte: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            compile_secs_per_inst: 3.0e-4,
            codegen_secs_per_inst: 2.0e-4,
            link_secs_per_byte: 4.0e-8,
            profile_conversion_secs_per_byte: 1.0e-7,
            wpa_secs_per_edge: 1.0e-6,
            disassembly_secs_per_byte: 4.0e-8,
        }
    }
}

impl CostModel {
    /// CPU seconds to compile `insts` IR instructions to optimized IR.
    pub fn compile_secs(&self, insts: u64) -> f64 {
        insts as f64 * self.compile_secs_per_inst
    }

    /// CPU seconds of backend code generation for `insts` instructions.
    pub fn codegen_secs(&self, insts: u64) -> f64 {
        insts as f64 * self.codegen_secs_per_inst
    }

    /// CPU seconds to link `input_bytes` of object-file input.
    pub fn link_secs(&self, input_bytes: u64) -> f64 {
        input_bytes as f64 * self.link_secs_per_byte
    }

    /// CPU seconds to convert `raw_bytes` of raw LBR profile into
    /// aggregated branch counters.
    pub fn profile_conversion_secs(&self, raw_bytes: u64) -> f64 {
        raw_bytes as f64 * self.profile_conversion_secs_per_byte
    }

    /// CPU seconds of whole-program analysis over `dcfg_edges` dynamic
    /// CFG edges.
    pub fn wpa_secs(&self, dcfg_edges: u64) -> f64 {
        dcfg_edges as f64 * self.wpa_secs_per_edge
    }

    /// CPU seconds to disassemble `text_bytes` of machine code.
    pub fn disassembly_secs(&self, text_bytes: u64) -> f64 {
        text_bytes as f64 * self.disassembly_secs_per_byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_are_linear_in_work() {
        let c = CostModel::default();
        assert!((c.codegen_secs(2_000) - 2.0 * c.codegen_secs(1_000)).abs() < 1e-12);
        assert!((c.link_secs(1 << 30) - 2.0 * c.link_secs(1 << 29)).abs() < 1e-12);
        assert_eq!(c.wpa_secs(0), 0.0);
    }

    #[test]
    fn compile_costs_more_than_codegen() {
        // Phase 1 (frontend + middle-end optimization) dominates the
        // backend run — that ordering is what makes Propeller's
        // "rerun only backends" phase cheap relative to a full build.
        let c = CostModel::default();
        assert!(c.compile_secs(1_000_000) > c.codegen_secs(1_000_000));
    }
}
