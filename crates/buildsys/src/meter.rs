//! Honest byte-cost memory metering.
//!
//! The paper's Fig. 4 compares *peak RSS* of Propeller's Phase 3
//! against BOLT's `perf2bolt`. We cannot reproduce LLVM's absolute
//! gigabytes, so modeled tools charge a [`MemoryMeter`] the real
//! in-memory size of every live data structure instead: what a `Vec`
//! actually occupies (its heap capacity), what a hash map's table
//! costs, and so on. The resulting *relative* shape is the claim that
//! matters — Propeller's analysis memory stays small and flat-ish
//! while a disassembler's grows with binary size.

use std::mem;

/// Tracks the live and peak bytes a modeled tool has allocated.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct MemoryMeter {
    live: u64,
    peak: u64,
}

impl MemoryMeter {
    /// A meter with nothing charged.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `bytes` of newly allocated data, raising the peak if
    /// needed. Returns the new live total.
    pub fn charge(&mut self, bytes: u64) -> u64 {
        self.live += bytes;
        self.peak = self.peak.max(self.live);
        self.live
    }

    /// Releases `bytes` of freed data (saturating: releasing more than
    /// is live clamps to zero rather than panicking, so approximate
    /// models stay usable).
    pub fn release(&mut self, bytes: u64) {
        self.live = self.live.saturating_sub(bytes);
    }

    /// Charges a value's honest in-memory size.
    pub fn charge_value<T: MeteredSize>(&mut self, value: &T) -> u64 {
        self.charge(value.metered_bytes())
    }

    /// Releases a value's honest in-memory size (call when the modeled
    /// tool drops the structure).
    pub fn release_value<T: MeteredSize>(&mut self, value: &T) {
        self.release(value.metered_bytes());
    }

    /// Bytes currently live.
    pub fn live_bytes(&self) -> u64 {
        self.live
    }

    /// The high-water mark — the number an [`crate::ActionSpec`]
    /// declares as its peak RSS.
    pub fn peak_bytes(&self) -> u64 {
        self.peak
    }

    /// Forgets everything, including the peak.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// The honest in-memory byte cost of a data structure: stack size plus
/// owned heap allocations.
pub trait MeteredSize {
    /// Total bytes this value keeps resident.
    fn metered_bytes(&self) -> u64;
}

macro_rules! metered_by_size_of {
    ($($t:ty),* $(,)?) => {$(
        impl MeteredSize for $t {
            fn metered_bytes(&self) -> u64 {
                mem::size_of::<$t>() as u64
            }
        }
    )*};
}

metered_by_size_of!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char);

impl<A: MeteredSize, B: MeteredSize> MeteredSize for (A, B) {
    fn metered_bytes(&self) -> u64 {
        self.0.metered_bytes() + self.1.metered_bytes()
    }
}

impl<T: MeteredSize> MeteredSize for Vec<T> {
    fn metered_bytes(&self) -> u64 {
        // The vec header, the heap block it reserved (capacity, not
        // length), plus whatever each element owns beyond its stack
        // size.
        let header = mem::size_of::<Vec<T>>() as u64;
        let slack = (self.capacity() - self.len()) as u64 * mem::size_of::<T>() as u64;
        header + slack + self.iter().map(MeteredSize::metered_bytes).sum::<u64>()
    }
}

impl MeteredSize for String {
    fn metered_bytes(&self) -> u64 {
        mem::size_of::<String>() as u64 + self.capacity() as u64
    }
}

impl<K: MeteredSize, V: MeteredSize> MeteredSize for std::collections::HashMap<K, V> {
    fn metered_bytes(&self) -> u64 {
        // SwissTable buckets hold (K, V) pairs plus one control byte
        // each; model the table at its allocated capacity.
        let header = mem::size_of::<Self>() as u64;
        let bucket = (mem::size_of::<K>() + mem::size_of::<V>() + 1) as u64;
        let slack = (self.capacity() - self.len()) as u64 * bucket;
        header
            + slack
            + self
                .iter()
                .map(|(k, v)| k.metered_bytes() + v.metered_bytes() + 1)
                .sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_survives_release() {
        let mut m = MemoryMeter::new();
        m.charge(100);
        m.charge(200);
        m.release(250);
        assert_eq!(m.live_bytes(), 50);
        assert_eq!(m.peak_bytes(), 300);
        m.reset();
        assert_eq!(m.peak_bytes(), 0);
    }

    #[test]
    fn release_saturates() {
        let mut m = MemoryMeter::new();
        m.charge(10);
        m.release(1000);
        assert_eq!(m.live_bytes(), 0);
        assert_eq!(m.peak_bytes(), 10);
    }

    #[test]
    fn vec_charges_capacity_not_length() {
        let mut v: Vec<u64> = Vec::with_capacity(64);
        v.extend([1, 2, 3]);
        let bytes = v.metered_bytes();
        assert!(bytes >= 64 * 8, "heap block is 64 u64s, got {bytes}");
        let mut m = MemoryMeter::new();
        m.charge_value(&v);
        assert_eq!(m.peak_bytes(), bytes);
        m.release_value(&v);
        assert_eq!(m.live_bytes(), 0);
    }

    #[test]
    fn string_and_map_are_meterable() {
        let s = String::from("propeller");
        assert!(s.metered_bytes() >= 9);
        let mut map = std::collections::HashMap::new();
        map.insert(1u64, 2u64);
        assert!(map.metered_bytes() > 17);
    }
}
