//! Synthetic instructions and block terminators.

use crate::ids::{BlockId, FunctionId};
use std::fmt;

/// A non-terminator instruction in the synthetic ISA.
///
/// Instructions carry no operands beyond what layout optimization needs:
/// calls name their callee so the call graph and inter-procedural layout
/// can be computed, everything else is opaque "work". Encoded byte sizes
/// are defined by the codegen crate.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Inst {
    /// Register-to-register arithmetic/logic.
    Alu,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Direct call to another function.
    Call(FunctionId),
    /// Software prefetch of another function's entry line (the §3.5
    /// post-link prefetch-insertion optimization; inserted by the
    /// pipeline, not by frontends).
    Prefetch(FunctionId),
    /// One-byte padding instruction.
    Nop,
}

impl Inst {
    /// Returns the callee for a call instruction, if any.
    pub fn callee(self) -> Option<FunctionId> {
        match self {
            Inst::Call(f) => Some(f),
            _ => None,
        }
    }

    /// Returns any function this instruction references (call target
    /// or prefetch target).
    pub fn referenced_function(self) -> Option<FunctionId> {
        match self {
            Inst::Call(f) | Inst::Prefetch(f) => Some(f),
            _ => None,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Alu => write!(f, "alu"),
            Inst::Load => write!(f, "load"),
            Inst::Store => write!(f, "store"),
            Inst::Call(callee) => write!(f, "call {callee}"),
            Inst::Prefetch(target) => write!(f, "prefetch {target}"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

/// The control-flow-transferring instruction ending a basic block.
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum Terminator {
    /// Unconditional jump to another block of the same function.
    Jump(BlockId),
    /// Two-way conditional branch.
    ///
    /// `prob_taken` is the *static* probability that control transfers to
    /// `taken`; the remainder falls through to `fallthrough`. This drives
    /// both frequency propagation and the execution simulator.
    CondBr {
        /// Target when the branch is taken.
        taken: BlockId,
        /// Target when the branch falls through.
        fallthrough: BlockId,
        /// Probability of taking the branch, in `[0, 1]`.
        prob_taken: f64,
    },
    /// Return to the caller.
    Ret,
}

impl Terminator {
    /// Returns all successor blocks with their transfer probabilities.
    pub fn successors(&self) -> Vec<(BlockId, f64)> {
        match *self {
            Terminator::Jump(t) => vec![(t, 1.0)],
            Terminator::CondBr {
                taken,
                fallthrough,
                prob_taken,
            } => vec![(taken, prob_taken), (fallthrough, 1.0 - prob_taken)],
            Terminator::Ret => Vec::new(),
        }
    }

    /// Returns `true` if control leaves the function here.
    pub fn is_return(&self) -> bool {
        matches!(self, Terminator::Ret)
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump(t) => write!(f, "jmp {t}"),
            Terminator::CondBr {
                taken,
                fallthrough,
                prob_taken,
            } => write!(f, "br {taken} (p={prob_taken:.2}) else {fallthrough}"),
            Terminator::Ret => write!(f, "ret"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn callee_extraction() {
        assert_eq!(Inst::Call(FunctionId(4)).callee(), Some(FunctionId(4)));
        assert_eq!(Inst::Alu.callee(), None);
        assert_eq!(Inst::Nop.callee(), None);
    }

    #[test]
    fn successor_probabilities_sum_to_one() {
        let t = Terminator::CondBr {
            taken: BlockId(1),
            fallthrough: BlockId(2),
            prob_taken: 0.3,
        };
        let succs = t.successors();
        assert_eq!(succs.len(), 2);
        let total: f64 = succs.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jump_has_single_successor() {
        let succs = Terminator::Jump(BlockId(5)).successors();
        assert_eq!(succs, vec![(BlockId(5), 1.0)]);
    }

    #[test]
    fn ret_has_no_successors() {
        assert!(Terminator::Ret.successors().is_empty());
        assert!(Terminator::Ret.is_return());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Inst::Call(FunctionId(1)).to_string(), "call f1");
        assert_eq!(Terminator::Jump(BlockId(2)).to_string(), "jmp bb2");
    }
}
