//! Aggregate program characteristics (the Table 2 columns).

use crate::program::Program;
use std::fmt;

/// Aggregate characteristics of a program, mirroring the columns of the
/// paper's Table 2 (text size is computed post-codegen by the object
/// layer; here we report instruction counts as the size proxy).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProgramStats {
    /// Number of modules (translation units).
    pub num_modules: usize,
    /// Number of functions.
    pub num_functions: usize,
    /// Number of basic blocks.
    pub num_blocks: usize,
    /// Number of instructions (including terminators).
    pub num_insts: usize,
    /// Number of modules in which every function is cold.
    pub num_cold_modules: usize,
    /// Number of functions with no nonzero-frequency block.
    pub num_cold_functions: usize,
}

impl ProgramStats {
    /// Computes statistics for `program`.
    pub fn compute(program: &Program) -> Self {
        let mut s = ProgramStats {
            num_modules: program.num_modules(),
            ..Default::default()
        };
        for m in program.modules() {
            if m.is_cold() {
                s.num_cold_modules += 1;
            }
            for f in &m.functions {
                s.num_functions += 1;
                s.num_blocks += f.num_blocks();
                s.num_insts += f.num_insts();
                if f.is_cold() {
                    s.num_cold_functions += 1;
                }
            }
        }
        s
    }

    /// Fraction of modules that are entirely cold, in `[0, 1]`.
    pub fn cold_module_fraction(&self) -> f64 {
        if self.num_modules == 0 {
            0.0
        } else {
            self.num_cold_modules as f64 / self.num_modules as f64
        }
    }
}

impl fmt::Display for ProgramStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} modules ({} cold), {} funcs ({} cold), {} blocks, {} insts",
            self.num_modules,
            self.num_cold_modules,
            self.num_functions,
            self.num_cold_functions,
            self.num_blocks,
            self.num_insts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ProgramBuilder};
    use crate::inst::{Inst, Terminator};

    #[test]
    fn counts_cold_entities() {
        let mut pb = ProgramBuilder::new();
        let m0 = pb.add_module("hot.cc");
        let m1 = pb.add_module("cold.cc");
        let mut hot = FunctionBuilder::new("hot");
        let b = hot.add_block(vec![Inst::Alu, Inst::Alu], Terminator::Ret);
        hot.set_block_freq(b, 9);
        pb.add_function(m0, hot);
        let mut cold = FunctionBuilder::new("cold");
        cold.add_block(vec![Inst::Alu], Terminator::Ret);
        pb.add_function(m1, cold);
        let s = pb.finish().unwrap().stats();
        assert_eq!(s.num_modules, 2);
        assert_eq!(s.num_cold_modules, 1);
        assert_eq!(s.num_cold_functions, 1);
        assert_eq!(s.num_insts, 3 + 2);
        assert!((s.cold_module_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_program_fraction_is_zero() {
        let s = ProgramStats::default();
        assert_eq!(s.cold_module_fraction(), 0.0);
        assert!(!s.to_string().is_empty());
    }
}
