//! Modules (translation units).

use crate::function::Function;
use crate::ids::ModuleId;

/// A translation unit: the unit of distributed compilation and caching.
///
/// In the paper's workflow, each module is compiled to optimized IR in
/// Phase 1, code-generated (with metadata) in Phase 2, and selectively
/// re-code-generated in Phase 4 if it contains hot functions.
#[derive(Clone, PartialEq, Debug)]
pub struct Module {
    /// Dense module id.
    pub id: ModuleId,
    /// Source file name, e.g. `"s_1.cc"`.
    pub name: String,
    /// Functions owned by this module.
    pub functions: Vec<Function>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(id: ModuleId, name: impl Into<String>) -> Self {
        Module {
            id,
            name: name.into(),
            functions: Vec::new(),
        }
    }

    /// Total number of basic blocks in the module.
    pub fn num_blocks(&self) -> usize {
        self.functions.iter().map(Function::num_blocks).sum()
    }

    /// Returns `true` if every function in the module is cold
    /// (per the embedded PGO frequencies).
    pub fn is_cold(&self) -> bool {
        self.functions.iter().all(Function::is_cold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BasicBlock;
    use crate::ids::{BlockId, FunctionId};
    use crate::inst::Terminator;

    fn tiny_function(id: u32, freq: u64) -> Function {
        let mut b = BasicBlock::new(BlockId(0), Vec::new(), Terminator::Ret);
        b.freq = freq;
        Function {
            id: FunctionId(id),
            name: format!("f{id}"),
            module: ModuleId(0),
            blocks: vec![b],
        }
    }

    #[test]
    fn counts_blocks() {
        let mut m = Module::new(ModuleId(0), "a.cc");
        m.functions.push(tiny_function(0, 0));
        m.functions.push(tiny_function(1, 5));
        assert_eq!(m.num_blocks(), 2);
    }

    #[test]
    fn cold_iff_all_functions_cold() {
        let mut m = Module::new(ModuleId(0), "a.cc");
        m.functions.push(tiny_function(0, 0));
        assert!(m.is_cold());
        m.functions.push(tiny_function(1, 5));
        assert!(!m.is_cold());
    }
}
