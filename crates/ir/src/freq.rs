//! Block frequency propagation.

use crate::function::Function;

/// Number of damped iterations used to converge cyclic CFGs.
const ITERATIONS: usize = 64;

/// Propagates an entry frequency through a function's CFG, writing the
/// resulting frequency into each block.
///
/// Frequencies follow branch probabilities: a block's frequency is the
/// probability-weighted sum of its predecessors' frequencies, with the
/// entry block additionally receiving `entry_freq`. Loops (back edges
/// with probability `< 1`) converge geometrically; the iteration count is
/// bounded, so pathological always-taken loops saturate rather than
/// diverge.
///
/// This models the PGO frequency metadata that the compiler would have
/// computed from an instrumented profile.
pub fn propagate_frequencies(f: &mut Function, entry_freq: u64) {
    let n = f.blocks.len();
    let mut freq = vec![0.0f64; n];
    // Precompute the successor lists once.
    let succs: Vec<Vec<(usize, f64)>> = f
        .blocks
        .iter()
        .map(|b| {
            b.successors()
                .into_iter()
                .map(|(id, p)| (id.index(), p))
                .collect()
        })
        .collect();
    for _ in 0..ITERATIONS {
        let mut next = vec![0.0f64; n];
        next[0] = entry_freq as f64;
        for (i, out) in succs.iter().enumerate() {
            for &(j, p) in out {
                next[j] += freq[i] * p;
            }
        }
        // Converged?
        let delta: f64 = next
            .iter()
            .zip(&freq)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        freq = next;
        if delta < 0.5 {
            break;
        }
    }
    for (b, v) in f.blocks.iter_mut().zip(&freq) {
        b.freq = v.round() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BasicBlock;
    use crate::ids::{BlockId, FunctionId, ModuleId};
    use crate::inst::{Inst, Terminator};

    fn function(blocks: Vec<BasicBlock>) -> Function {
        Function {
            id: FunctionId(0),
            name: "f".into(),
            module: ModuleId(0),
            blocks,
        }
    }

    #[test]
    fn straight_line_keeps_entry_freq() {
        let mut f = function(vec![
            BasicBlock::new(BlockId(0), vec![Inst::Alu], Terminator::Jump(BlockId(1))),
            BasicBlock::new(BlockId(1), vec![Inst::Alu], Terminator::Ret),
        ]);
        propagate_frequencies(&mut f, 100);
        assert_eq!(f.blocks[0].freq, 100);
        assert_eq!(f.blocks[1].freq, 100);
    }

    #[test]
    fn diamond_splits_by_probability() {
        let mut f = function(vec![
            BasicBlock::new(
                BlockId(0),
                Vec::new(),
                Terminator::CondBr {
                    taken: BlockId(1),
                    fallthrough: BlockId(2),
                    prob_taken: 0.25,
                },
            ),
            BasicBlock::new(BlockId(1), Vec::new(), Terminator::Jump(BlockId(3))),
            BasicBlock::new(BlockId(2), Vec::new(), Terminator::Jump(BlockId(3))),
            BasicBlock::new(BlockId(3), Vec::new(), Terminator::Ret),
        ]);
        propagate_frequencies(&mut f, 1000);
        assert_eq!(f.blocks[1].freq, 250);
        assert_eq!(f.blocks[2].freq, 750);
        assert_eq!(f.blocks[3].freq, 1000);
    }

    #[test]
    fn loop_converges_geometrically() {
        // bb0 -> bb1; bb1 -> bb1 (p=0.9) | bb2; expected bb1 freq = 10x entry.
        let mut f = function(vec![
            BasicBlock::new(BlockId(0), Vec::new(), Terminator::Jump(BlockId(1))),
            BasicBlock::new(
                BlockId(1),
                Vec::new(),
                Terminator::CondBr {
                    taken: BlockId(1),
                    fallthrough: BlockId(2),
                    prob_taken: 0.9,
                },
            ),
            BasicBlock::new(BlockId(2), Vec::new(), Terminator::Ret),
        ]);
        propagate_frequencies(&mut f, 100);
        let loop_freq = f.blocks[1].freq as f64;
        assert!((900.0..=1000.0).contains(&loop_freq), "freq={loop_freq}");
        assert!((95..=100).contains(&f.blocks[2].freq));
    }

    #[test]
    fn unreachable_blocks_stay_cold() {
        let mut f = function(vec![
            BasicBlock::new(BlockId(0), Vec::new(), Terminator::Ret),
            BasicBlock::new(BlockId(1), Vec::new(), Terminator::Ret),
        ]);
        propagate_frequencies(&mut f, 50);
        assert_eq!(f.blocks[0].freq, 50);
        assert_eq!(f.blocks[1].freq, 0);
    }
}
