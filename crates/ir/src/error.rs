//! IR validation errors.

use crate::ids::{BlockId, FunctionId};
use std::error::Error;
use std::fmt;

/// An invariant violation detected while validating IR.
#[derive(Clone, PartialEq, Debug)]
pub enum IrError {
    /// A function has no basic blocks.
    EmptyFunction(FunctionId),
    /// `blocks[i].id != i`.
    MisnumberedBlock {
        /// Function containing the block.
        function: FunctionId,
        /// The id implied by the block's position.
        expected: BlockId,
        /// The id actually stored on the block.
        found: BlockId,
    },
    /// A terminator names a block that does not exist.
    DanglingTarget {
        /// Function containing the branch.
        function: FunctionId,
        /// Block whose terminator is broken.
        block: BlockId,
        /// The nonexistent target.
        target: BlockId,
    },
    /// A branch probability is outside `[0, 1]` or NaN.
    BadProbability {
        /// Function containing the branch.
        function: FunctionId,
        /// Block whose terminator is broken.
        block: BlockId,
        /// The offending probability.
        prob: f64,
    },
    /// A call instruction names a function that does not exist.
    UnknownCallee {
        /// The calling function.
        function: FunctionId,
        /// The nonexistent callee.
        callee: FunctionId,
    },
    /// Two functions share a symbol name.
    DuplicateName(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::EmptyFunction(id) => write!(f, "function {id} has no blocks"),
            IrError::MisnumberedBlock {
                function,
                expected,
                found,
            } => write!(
                f,
                "function {function}: block at index {expected} carries id {found}"
            ),
            IrError::DanglingTarget {
                function,
                block,
                target,
            } => write!(
                f,
                "function {function}: block {block} branches to nonexistent {target}"
            ),
            IrError::BadProbability {
                function,
                block,
                prob,
            } => write!(
                f,
                "function {function}: block {block} has branch probability {prob}"
            ),
            IrError::UnknownCallee { function, callee } => {
                write!(f, "function {function} calls nonexistent {callee}")
            }
            IrError::DuplicateName(name) => write!(f, "duplicate function name {name:?}"),
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            IrError::EmptyFunction(FunctionId(1)),
            IrError::DuplicateName("x".into()),
            IrError::UnknownCallee {
                function: FunctionId(0),
                callee: FunctionId(5),
            },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }
}
