//! Human-readable IR listings (the `.ll`-style dump).

use crate::function::Function;
use crate::program::Program;
use std::fmt::Write;

/// Renders one function as an assembly-like listing.
///
/// ```
/// use propeller_ir::{pretty, FunctionBuilder, Inst, ProgramBuilder, Terminator};
///
/// let mut pb = ProgramBuilder::new();
/// let m = pb.add_module("m.cc");
/// let mut f = FunctionBuilder::new("f");
/// f.add_block(vec![Inst::Alu], Terminator::Ret);
/// pb.add_function(m, f);
/// let p = pb.finish().expect("valid");
/// let text = pretty::function_to_string(p.functions().next().expect("one"));
/// assert!(text.contains("define f"));
/// ```
pub fn function_to_string(f: &Function) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "define {} ({}) {{", f.name, f.id);
    for b in &f.blocks {
        let lp = if b.is_landing_pad { " ; landing pad" } else { "" };
        let _ = writeln!(out, "{}: ; freq={}{}", b.id, b.freq, lp);
        for i in &b.insts {
            let _ = writeln!(out, "    {i}");
        }
        let _ = writeln!(out, "    {}", b.term);
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a whole program, module by module.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    for m in p.modules() {
        let _ = writeln!(out, "; module {} ({})", m.name, m.id);
        for f in &m.functions {
            out.push_str(&function_to_string(f));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ProgramBuilder};
    use crate::ids::BlockId;
    use crate::inst::{Inst, Terminator};

    fn sample() -> Program {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("demo.cc");
        let mut f = FunctionBuilder::new("work");
        let b0 = f.add_block(
            vec![Inst::Alu, Inst::Load],
            Terminator::CondBr {
                taken: BlockId(1),
                fallthrough: BlockId(1),
                prob_taken: 0.25,
            },
        );
        f.set_block_freq(b0, 42);
        let lp = f.add_block(Vec::new(), Terminator::Ret);
        f.set_landing_pad(lp);
        pb.add_function(m, f);
        pb.finish().unwrap()
    }

    #[test]
    fn listing_contains_structure() {
        let p = sample();
        let text = program_to_string(&p);
        assert!(text.contains("; module demo.cc (m0)"));
        assert!(text.contains("define work (f0)"));
        assert!(text.contains("bb0: ; freq=42"));
        assert!(text.contains("    alu"));
        assert!(text.contains("br bb1 (p=0.25) else bb1"));
        assert!(text.contains("; landing pad"));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn every_block_listed_once() {
        let p = sample();
        let text = function_to_string(p.functions().next().unwrap());
        assert_eq!(text.matches("bb0:").count(), 1);
        assert_eq!(text.matches("bb1:").count(), 1);
    }
}
