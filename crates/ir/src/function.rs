//! Functions and intra-function CFG queries.

use crate::block::BasicBlock;
use crate::error::IrError;
use crate::ids::{BlockId, FunctionId, ModuleId};
use crate::inst::Terminator;

/// A function: an entry block plus a list of basic blocks forming a CFG.
///
/// Invariants (checked by [`Function::validate`]):
/// * `blocks[i].id == BlockId(i)`;
/// * the entry block is `blocks[0]`;
/// * every terminator target names an existing block;
/// * at least one block exists.
#[derive(Clone, PartialEq, Debug)]
pub struct Function {
    /// Program-unique id.
    pub id: FunctionId,
    /// Symbol name (unique across the program).
    pub name: String,
    /// Owning module.
    pub module: ModuleId,
    /// Blocks in original (source) order. `blocks[0]` is the entry.
    pub blocks: Vec<BasicBlock>,
}

impl Function {
    /// The entry block.
    ///
    /// # Panics
    ///
    /// Panics if the function has no blocks (invalid by construction;
    /// [`crate::FunctionBuilder`] prevents this).
    pub fn entry(&self) -> &BasicBlock {
        &self.blocks[0]
    }

    /// Looks up a block by id.
    pub fn block(&self, id: BlockId) -> Option<&BasicBlock> {
        self.blocks.get(id.index())
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total number of instructions, including terminators.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(BasicBlock::len).sum()
    }

    /// Sum of block frequencies weighted by block length; a proxy for the
    /// function's share of dynamic instructions.
    pub fn dynamic_weight(&self) -> u128 {
        self.blocks
            .iter()
            .map(|b| b.freq as u128 * b.len() as u128)
            .sum()
    }

    /// The function entry frequency (frequency of the entry block).
    pub fn entry_freq(&self) -> u64 {
        self.entry().freq
    }

    /// Returns `true` if no block has a nonzero frequency.
    pub fn is_cold(&self) -> bool {
        self.blocks.iter().all(|b| b.freq == 0)
    }

    /// Predecessor lists for every block, indexed by block id.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in &self.blocks {
            for (succ, _) in b.successors() {
                preds[succ.index()].push(b.id);
            }
        }
        preds
    }

    /// All call sites: `(calling block, callee)` pairs in layout order.
    pub fn call_sites(&self) -> Vec<(BlockId, FunctionId)> {
        let mut out = Vec::new();
        for b in &self.blocks {
            for callee in b.callees() {
                out.push((b.id, callee));
            }
        }
        out
    }

    /// Whether any block is an exception landing pad.
    pub fn has_landing_pads(&self) -> bool {
        self.blocks.iter().any(|b| b.is_landing_pad)
    }

    /// Checks structural invariants.
    ///
    /// # Errors
    ///
    /// Returns an [`IrError`] describing the first violated invariant:
    /// an empty function, a misnumbered block, a dangling branch target,
    /// or a branch probability outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), IrError> {
        if self.blocks.is_empty() {
            return Err(IrError::EmptyFunction(self.id));
        }
        for (i, b) in self.blocks.iter().enumerate() {
            if b.id.index() != i {
                return Err(IrError::MisnumberedBlock {
                    function: self.id,
                    expected: BlockId(i as u32),
                    found: b.id,
                });
            }
            if let Terminator::CondBr { prob_taken, .. } = b.term {
                if !(0.0..=1.0).contains(&prob_taken) || prob_taken.is_nan() {
                    return Err(IrError::BadProbability {
                        function: self.id,
                        block: b.id,
                        prob: prob_taken,
                    });
                }
            }
            for (succ, _) in b.successors() {
                if succ.index() >= self.blocks.len() {
                    return Err(IrError::DanglingTarget {
                        function: self.id,
                        block: b.id,
                        target: succ,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    fn diamond() -> Function {
        // bb0 -> bb1 / bb2 -> bb3 -> ret
        let mut blocks = vec![
            BasicBlock::new(
                BlockId(0),
                vec![Inst::Alu],
                Terminator::CondBr {
                    taken: BlockId(1),
                    fallthrough: BlockId(2),
                    prob_taken: 0.25,
                },
            ),
            BasicBlock::new(BlockId(1), vec![Inst::Load], Terminator::Jump(BlockId(3))),
            BasicBlock::new(BlockId(2), vec![Inst::Store], Terminator::Jump(BlockId(3))),
            BasicBlock::new(BlockId(3), vec![Inst::Call(FunctionId(9))], Terminator::Ret),
        ];
        blocks[0].freq = 100;
        blocks[1].freq = 25;
        blocks[2].freq = 75;
        blocks[3].freq = 100;
        Function {
            id: FunctionId(0),
            name: "diamond".into(),
            module: ModuleId(0),
            blocks,
        }
    }

    #[test]
    fn validate_accepts_well_formed() {
        diamond().validate().unwrap();
    }

    #[test]
    fn validate_rejects_dangling_target() {
        let mut f = diamond();
        f.blocks[1].term = Terminator::Jump(BlockId(99));
        assert!(matches!(
            f.validate(),
            Err(IrError::DanglingTarget { .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_probability() {
        let mut f = diamond();
        f.blocks[0].term = Terminator::CondBr {
            taken: BlockId(1),
            fallthrough: BlockId(2),
            prob_taken: 1.5,
        };
        assert!(matches!(f.validate(), Err(IrError::BadProbability { .. })));
    }

    #[test]
    fn validate_rejects_misnumbered_blocks() {
        let mut f = diamond();
        f.blocks[2].id = BlockId(7);
        assert!(matches!(
            f.validate(),
            Err(IrError::MisnumberedBlock { .. })
        ));
    }

    #[test]
    fn predecessors_are_inverted_successors() {
        let f = diamond();
        let preds = f.predecessors();
        assert!(preds[0].is_empty());
        assert_eq!(preds[1], vec![BlockId(0)]);
        assert_eq!(preds[2], vec![BlockId(0)]);
        assert_eq!(preds[3], vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn call_sites_found() {
        assert_eq!(diamond().call_sites(), vec![(BlockId(3), FunctionId(9))]);
    }

    #[test]
    fn counts_and_weights() {
        let f = diamond();
        assert_eq!(f.num_blocks(), 4);
        assert_eq!(f.num_insts(), 8);
        assert_eq!(f.entry_freq(), 100);
        assert!(!f.is_cold());
        assert_eq!(f.dynamic_weight(), 100 * 2 + 25 * 2 + 75 * 2 + 100 * 2);
    }

    #[test]
    fn cold_function_detection() {
        let mut f = diamond();
        for b in &mut f.blocks {
            b.freq = 0;
        }
        assert!(f.is_cold());
    }
}
