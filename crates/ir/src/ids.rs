//! Strongly-typed identifiers for IR entities.

use std::fmt;

/// Identifies a [`crate::Module`] (translation unit) within a program.
///
/// Module ids are dense: the `n`-th module added to a
/// [`crate::ProgramBuilder`] receives `ModuleId(n)`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ModuleId(pub u32);

/// Identifies a [`crate::Function`], uniquely across the whole program.
///
/// Function ids are dense in creation order, independent of which module
/// owns the function.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FunctionId(pub u32);

/// Identifies a [`crate::BasicBlock`] *within one function*.
///
/// Block ids are local: `BlockId(i)` is the block at index `i` of the
/// owning function's block list, mirroring how the real Propeller's basic
/// block address map identifies machine basic blocks by intra-function id.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BlockId(pub u32);

impl ModuleId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl FunctionId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl BlockId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for FunctionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(ModuleId(3).to_string(), "m3");
        assert_eq!(FunctionId(12).to_string(), "f12");
        assert_eq!(BlockId(0).to_string(), "bb0");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(FunctionId(1) < FunctionId(2));
        assert!(BlockId(0) < BlockId(10));
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(ModuleId(7).index(), 7);
        assert_eq!(FunctionId(9).index(), 9);
        assert_eq!(BlockId(4).index(), 4);
    }
}
