//! Whole programs.

use crate::error::IrError;
use crate::function::Function;
use crate::ids::{FunctionId, ModuleId};
use crate::module::Module;
use crate::stats::ProgramStats;
use std::collections::HashMap;

/// A whole program: a set of modules plus a function index.
///
/// Construct via [`crate::ProgramBuilder`], which guarantees the index is
/// consistent and all invariants hold.
#[derive(Clone, Debug)]
pub struct Program {
    pub(crate) modules: Vec<Module>,
    /// `FunctionId -> (module index, function index within module)`.
    pub(crate) index: HashMap<FunctionId, (usize, usize)>,
}

impl Program {
    /// All modules, in id order.
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// Mutable access to modules. Intended for generators and
    /// transforms that adjust metadata (e.g. frequencies) in place;
    /// structural edits must keep ids dense or lookups will break.
    pub fn modules_mut(&mut self) -> &mut [Module] {
        &mut self.modules
    }

    /// Looks up a module by id.
    pub fn module(&self, id: ModuleId) -> Option<&Module> {
        self.modules.get(id.index())
    }

    /// Looks up a function by id.
    pub fn function(&self, id: FunctionId) -> Option<&Function> {
        self.index
            .get(&id)
            .map(|&(m, f)| &self.modules[m].functions[f])
    }

    /// Iterates over every function in module order.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.modules.iter().flat_map(|m| m.functions.iter())
    }

    /// Total number of functions.
    pub fn num_functions(&self) -> usize {
        self.index.len()
    }

    /// Total number of modules.
    pub fn num_modules(&self) -> usize {
        self.modules.len()
    }

    /// Appends a new function to an existing module, returning its id.
    ///
    /// Ids stay dense: the new function receives the next id after the
    /// current maximum, exactly as [`crate::ProgramBuilder::add_function`]
    /// would have assigned it. This is the structural-edit entry point
    /// for program evolution (release-over-release mutation in the
    /// fleet simulator): unlike [`Program::modules_mut`], it keeps the
    /// function index consistent.
    ///
    /// # Panics
    ///
    /// Panics if `module` does not exist.
    pub fn push_function(
        &mut self,
        module: ModuleId,
        builder: crate::FunctionBuilder,
    ) -> FunctionId {
        let id = FunctionId(self.num_functions() as u32);
        let (name, blocks) = builder.into_parts();
        let m = &mut self.modules[module.index()];
        self.index.insert(id, (module.index(), m.functions.len()));
        m.functions.push(Function {
            id,
            name,
            module,
            blocks,
        });
        id
    }

    /// Computes aggregate characteristics (the Table 2 columns).
    pub fn stats(&self) -> ProgramStats {
        ProgramStats::compute(self)
    }

    /// Validates every function plus cross-function invariants
    /// (callee existence, name uniqueness).
    ///
    /// # Errors
    ///
    /// Returns the first [`IrError`] encountered.
    pub fn validate(&self) -> Result<(), IrError> {
        let mut names = HashMap::new();
        for f in self.functions() {
            f.validate()?;
            if let Some(_prev) = names.insert(f.name.clone(), f.id) {
                return Err(IrError::DuplicateName(f.name.clone()));
            }
            for b in &f.blocks {
                for inst in &b.insts {
                    if let Some(target) = inst.referenced_function() {
                        if !self.index.contains_key(&target) {
                            return Err(IrError::UnknownCallee {
                                function: f.id,
                                callee: target,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::{FunctionBuilder, ProgramBuilder};
    use crate::inst::{Inst, Terminator};

    fn two_module_program() -> crate::Program {
        let mut pb = ProgramBuilder::new();
        let m0 = pb.add_module("a.cc");
        let m1 = pb.add_module("b.cc");
        let mut f = FunctionBuilder::new("alpha");
        f.add_block(vec![Inst::Alu], Terminator::Ret);
        let alpha = pb.add_function(m0, f);
        let mut g = FunctionBuilder::new("beta");
        g.add_block(vec![Inst::Call(alpha)], Terminator::Ret);
        pb.add_function(m1, g);
        pb.finish().unwrap()
    }

    #[test]
    fn function_lookup_crosses_modules() {
        let p = two_module_program();
        assert_eq!(p.num_modules(), 2);
        assert_eq!(p.num_functions(), 2);
        let beta = p.functions().find(|f| f.name == "beta").unwrap();
        assert_eq!(p.function(beta.id).unwrap().name, "beta");
    }

    #[test]
    fn validate_accepts_cross_module_calls() {
        two_module_program().validate().unwrap();
    }

    #[test]
    fn push_function_keeps_ids_dense_and_index_consistent() {
        let mut p = two_module_program();
        let m1 = p.modules()[1].id;
        let mut h = FunctionBuilder::new("gamma");
        h.add_block(vec![Inst::Alu; 2], Terminator::Ret);
        let id = p.push_function(m1, h);
        assert_eq!(id.0, 2, "next dense id after the two existing functions");
        assert_eq!(p.num_functions(), 3);
        let f = p.function(id).unwrap();
        assert_eq!(f.name, "gamma");
        assert_eq!(f.module, m1);
        p.validate().unwrap();
    }

    #[test]
    fn stats_match_structure() {
        let p = two_module_program();
        let s = p.stats();
        assert_eq!(s.num_functions, 2);
        assert_eq!(s.num_blocks, 2);
        assert_eq!(s.num_modules, 2);
    }
}
