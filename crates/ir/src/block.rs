//! Basic blocks.

use crate::ids::{BlockId, FunctionId};
use crate::inst::{Inst, Terminator};

/// A straight-line sequence of instructions ending in a [`Terminator`].
#[derive(Clone, PartialEq, Debug)]
pub struct BasicBlock {
    /// The block's intra-function id (its index in the function's block
    /// list).
    pub id: BlockId,
    /// Non-terminator instructions, executed in order.
    pub insts: Vec<Inst>,
    /// The terminating control transfer.
    pub term: Terminator,
    /// Whether this block is an exception landing pad (§4.5 of the paper:
    /// landing pads are grouped together and may need a leading nop).
    pub is_landing_pad: bool,
    /// Estimated execution frequency from the (instrumented-PGO style)
    /// profile embedded in the IR. Post-link hardware profiles are
    /// collected separately by the simulator; this field models the
    /// compile-time profile that PGO already consumed.
    pub freq: u64,
}

impl BasicBlock {
    /// Creates a block with the given instructions and terminator,
    /// zero frequency, and no landing-pad marker.
    pub fn new(id: BlockId, insts: Vec<Inst>, term: Terminator) -> Self {
        BasicBlock {
            id,
            insts,
            term,
            is_landing_pad: false,
            freq: 0,
        }
    }

    /// Number of instructions including the terminator.
    pub fn len(&self) -> usize {
        self.insts.len() + 1
    }

    /// A block always contains at least its terminator.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over callees invoked by this block, in source order.
    pub fn callees(&self) -> impl Iterator<Item = FunctionId> + '_ {
        self.insts.iter().filter_map(|i| i.callee())
    }

    /// Successor blocks and probabilities (delegates to the terminator).
    pub fn successors(&self) -> Vec<(BlockId, f64)> {
        self.term.successors()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BasicBlock {
        BasicBlock::new(
            BlockId(0),
            vec![Inst::Alu, Inst::Call(FunctionId(3)), Inst::Load],
            Terminator::Ret,
        )
    }

    #[test]
    fn len_counts_terminator() {
        assert_eq!(sample().len(), 4);
        assert!(!sample().is_empty());
    }

    #[test]
    fn callees_filters_calls() {
        let callees: Vec<_> = sample().callees().collect();
        assert_eq!(callees, vec![FunctionId(3)]);
    }

    #[test]
    fn defaults() {
        let b = sample();
        assert!(!b.is_landing_pad);
        assert_eq!(b.freq, 0);
    }
}
