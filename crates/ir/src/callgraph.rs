//! Whole-program call graph.

use crate::ids::{BlockId, FunctionId};
use crate::program::Program;
use std::collections::HashMap;

/// One call-graph edge: a specific call site plus its dynamic weight.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CallEdge {
    /// Calling function.
    pub caller: FunctionId,
    /// Block containing the call.
    pub site: BlockId,
    /// Called function.
    pub callee: FunctionId,
    /// Weight: frequency of the calling block (each execution of the
    /// block executes the call once).
    pub weight: u64,
}

/// A weighted, call-site-granular call graph.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    edges: Vec<CallEdge>,
    by_caller: HashMap<FunctionId, Vec<usize>>,
    by_callee: HashMap<FunctionId, Vec<usize>>,
}

impl CallGraph {
    /// Builds the call graph from every call site in the program, using
    /// block frequencies as edge weights.
    pub fn build(program: &Program) -> Self {
        let mut g = CallGraph::default();
        for f in program.functions() {
            for b in &f.blocks {
                for callee in b.callees() {
                    let idx = g.edges.len();
                    g.edges.push(CallEdge {
                        caller: f.id,
                        site: b.id,
                        callee,
                        weight: b.freq,
                    });
                    g.by_caller.entry(f.id).or_default().push(idx);
                    g.by_callee.entry(callee).or_default().push(idx);
                }
            }
        }
        g
    }

    /// All edges, in discovery order.
    pub fn edges(&self) -> &[CallEdge] {
        &self.edges
    }

    /// Edges leaving `caller`.
    pub fn callees_of(&self, caller: FunctionId) -> impl Iterator<Item = &CallEdge> {
        self.by_caller
            .get(&caller)
            .into_iter()
            .flatten()
            .map(move |&i| &self.edges[i])
    }

    /// Edges entering `callee`.
    pub fn callers_of(&self, callee: FunctionId) -> impl Iterator<Item = &CallEdge> {
        self.by_callee
            .get(&callee)
            .into_iter()
            .flatten()
            .map(move |&i| &self.edges[i])
    }

    /// Total dynamic call weight into `callee`.
    pub fn incoming_weight(&self, callee: FunctionId) -> u64 {
        self.callers_of(callee).map(|e| e.weight).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ProgramBuilder};
    use crate::inst::{Inst, Terminator};

    fn program_with_calls() -> (Program, FunctionId, FunctionId, FunctionId) {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m.cc");
        let mut leaf = FunctionBuilder::new("leaf");
        leaf.add_block(vec![Inst::Alu], Terminator::Ret);
        let leaf = pb.add_function(m, leaf);

        let mut mid = FunctionBuilder::new("mid");
        let b = mid.add_block(vec![Inst::Call(leaf), Inst::Call(leaf)], Terminator::Ret);
        mid.set_block_freq(b, 10);
        let mid = pb.add_function(m, mid);

        let mut top = FunctionBuilder::new("top");
        let b = top.add_block(vec![Inst::Call(mid)], Terminator::Ret);
        top.set_block_freq(b, 3);
        let top = pb.add_function(m, top);

        (pb.finish().unwrap(), leaf, mid, top)
    }

    #[test]
    fn edges_carry_block_frequency() {
        let (p, leaf, mid, _top) = program_with_calls();
        let g = CallGraph::build(&p);
        assert_eq!(g.edges().len(), 3);
        // Two call sites from mid to leaf, each weight 10.
        assert_eq!(g.incoming_weight(leaf), 20);
        assert_eq!(g.incoming_weight(mid), 3);
    }

    #[test]
    fn adjacency_queries() {
        let (p, leaf, mid, top) = program_with_calls();
        let g = CallGraph::build(&p);
        assert_eq!(g.callees_of(mid).count(), 2);
        assert_eq!(g.callers_of(leaf).count(), 2);
        assert_eq!(g.callees_of(top).count(), 1);
        assert_eq!(g.callers_of(top).count(), 0);
    }
}
