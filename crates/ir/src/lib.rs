//! Program intermediate representation for the Propeller reproduction.
//!
//! This crate models the part of LLVM IR / Machine IR that a post-link
//! layout optimizer actually cares about: a [`Program`] is a set of
//! [`Module`]s (translation units), each containing [`Function`]s made of
//! [`BasicBlock`]s. Blocks carry synthetic [`Inst`]ructions and a
//! [`Terminator`] describing control flow, along with execution
//! frequencies used to model profile-guided decisions.
//!
//! The IR is deliberately *structural*: Propeller never looks at the
//! semantics of instructions, only at code sizes, branch shapes, call
//! sites and frequencies. See `DESIGN.md` at the repository root for the
//! substitution rationale.
//!
//! # Example
//!
//! ```
//! use propeller_ir::{FunctionBuilder, Inst, ProgramBuilder, Terminator};
//!
//! let mut pb = ProgramBuilder::new();
//! let module = pb.add_module("main.cc");
//! let mut f = FunctionBuilder::new("main");
//! let entry = f.add_block(vec![Inst::Alu; 4], Terminator::Ret);
//! f.set_entry(entry);
//! pb.add_function(module, f);
//! let program = pb.finish().expect("valid program");
//! assert_eq!(program.num_functions(), 1);
//! ```

mod block;
mod builder;
mod callgraph;
mod error;
mod freq;
mod function;
mod ids;
mod inst;
mod module;
pub mod pretty;
mod program;
mod stats;

pub use block::BasicBlock;
pub use builder::{FunctionBuilder, ProgramBuilder};
pub use callgraph::{CallEdge, CallGraph};
pub use error::IrError;
pub use freq::propagate_frequencies;
pub use function::Function;
pub use ids::{BlockId, FunctionId, ModuleId};
pub use inst::{Inst, Terminator};
pub use module::Module;
pub use program::Program;
pub use stats::ProgramStats;
