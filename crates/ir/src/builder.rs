//! Builders for functions and programs.

use crate::block::BasicBlock;
use crate::error::IrError;
use crate::function::Function;
use crate::ids::{BlockId, FunctionId, ModuleId};
use crate::inst::{Inst, Terminator};
use crate::module::Module;
use crate::program::Program;
use std::collections::HashMap;

/// Incrementally constructs a [`Function`].
///
/// Blocks receive dense ids in insertion order; the first block added is
/// the entry unless [`FunctionBuilder::set_entry`] moves another block to
/// position zero.
///
/// # Example
///
/// ```
/// use propeller_ir::{FunctionBuilder, Inst, Terminator};
///
/// let mut fb = FunctionBuilder::new("f");
/// let b = fb.add_block(vec![Inst::Alu], Terminator::Ret);
/// fb.set_block_freq(b, 10);
/// ```
#[derive(Clone, Debug)]
pub struct FunctionBuilder {
    name: String,
    blocks: Vec<BasicBlock>,
}

impl FunctionBuilder {
    /// Starts building a function with the given symbol name.
    pub fn new(name: impl Into<String>) -> Self {
        FunctionBuilder {
            name: name.into(),
            blocks: Vec::new(),
        }
    }

    /// Appends a block, returning its id.
    pub fn add_block(&mut self, insts: Vec<Inst>, term: Terminator) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BasicBlock::new(id, insts, term));
        id
    }

    /// Sets a block's PGO frequency.
    ///
    /// # Panics
    ///
    /// Panics if `block` was not created by this builder.
    pub fn set_block_freq(&mut self, block: BlockId, freq: u64) {
        self.blocks[block.index()].freq = freq;
    }

    /// Marks a block as an exception landing pad.
    ///
    /// # Panics
    ///
    /// Panics if `block` was not created by this builder.
    pub fn set_landing_pad(&mut self, block: BlockId) {
        self.blocks[block.index()].is_landing_pad = true;
    }

    /// Declares which block is the function entry.
    ///
    /// The entry must already be block 0 (the common case when it is the
    /// first block added); this method only asserts that, keeping block
    /// ids stable for already-recorded branches.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is not block 0.
    pub fn set_entry(&mut self, entry: BlockId) {
        assert_eq!(
            entry,
            BlockId(0),
            "the entry block must be the first block added"
        );
    }

    /// Number of blocks added so far.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Decomposes the builder for [`crate::Program::push_function`].
    pub(crate) fn into_parts(self) -> (String, Vec<BasicBlock>) {
        (self.name, self.blocks)
    }
}

/// Incrementally constructs a [`Program`].
#[derive(Clone, Debug, Default)]
pub struct ProgramBuilder {
    modules: Vec<Module>,
    next_function: u32,
    index: HashMap<FunctionId, (usize, usize)>,
}

impl ProgramBuilder {
    /// Starts an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an empty module, returning its id.
    pub fn add_module(&mut self, name: impl Into<String>) -> ModuleId {
        let id = ModuleId(self.modules.len() as u32);
        self.modules.push(Module::new(id, name));
        id
    }

    /// Reserves the id the *next* call to [`ProgramBuilder::add_function`]
    /// will assign. Useful for creating mutually-recursive call sites
    /// before the callee exists.
    pub fn peek_next_function_id(&self) -> FunctionId {
        FunctionId(self.next_function)
    }

    /// Finalizes `builder` into `module`, returning the new function's id.
    ///
    /// # Panics
    ///
    /// Panics if `module` does not exist.
    pub fn add_function(&mut self, module: ModuleId, builder: FunctionBuilder) -> FunctionId {
        let id = FunctionId(self.next_function);
        self.next_function += 1;
        let m = &mut self.modules[module.index()];
        let f = Function {
            id,
            name: builder.name,
            module,
            blocks: builder.blocks,
        };
        self.index.insert(id, (module.index(), m.functions.len()));
        m.functions.push(f);
        id
    }

    /// Validates and returns the finished program.
    ///
    /// # Errors
    ///
    /// Returns an [`IrError`] if any function or cross-function invariant
    /// is violated.
    pub fn finish(self) -> Result<Program, IrError> {
        let p = Program {
            modules: self.modules,
            index: self.index,
        };
        p.validate()?;
        Ok(p)
    }

    /// Returns the finished program without validating.
    ///
    /// Intended for generators that guarantee well-formedness by
    /// construction and build very large programs where re-validation is
    /// measurable.
    pub fn finish_unchecked(self) -> Program {
        Program {
            modules: self.modules,
            index: self.index,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_function_ids_across_modules() {
        let mut pb = ProgramBuilder::new();
        let m0 = pb.add_module("a.cc");
        let m1 = pb.add_module("b.cc");
        let mut f = FunctionBuilder::new("one");
        f.add_block(Vec::new(), Terminator::Ret);
        let id0 = pb.add_function(m1, f);
        let mut g = FunctionBuilder::new("two");
        g.add_block(Vec::new(), Terminator::Ret);
        let id1 = pb.add_function(m0, g);
        assert_eq!(id0, FunctionId(0));
        assert_eq!(id1, FunctionId(1));
        let p = pb.finish().unwrap();
        assert_eq!(p.function(id0).unwrap().module, m1);
        assert_eq!(p.function(id1).unwrap().module, m0);
    }

    #[test]
    fn peek_matches_assignment() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("a.cc");
        let peeked = pb.peek_next_function_id();
        let mut f = FunctionBuilder::new("self_call");
        f.add_block(vec![Inst::Call(peeked)], Terminator::Ret);
        let actual = pb.add_function(m, f);
        assert_eq!(peeked, actual);
        pb.finish().unwrap();
    }

    #[test]
    fn finish_rejects_duplicate_names() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("a.cc");
        for _ in 0..2 {
            let mut f = FunctionBuilder::new("same");
            f.add_block(Vec::new(), Terminator::Ret);
            pb.add_function(m, f);
        }
        assert!(matches!(pb.finish(), Err(IrError::DuplicateName(_))));
    }

    #[test]
    fn finish_rejects_unknown_callee() {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("a.cc");
        let mut f = FunctionBuilder::new("f");
        f.add_block(vec![Inst::Call(FunctionId(42))], Terminator::Ret);
        pb.add_function(m, f);
        assert!(matches!(pb.finish(), Err(IrError::UnknownCallee { .. })));
    }

    #[test]
    #[should_panic(expected = "entry block must be the first")]
    fn set_entry_enforces_position_zero() {
        let mut fb = FunctionBuilder::new("f");
        fb.add_block(Vec::new(), Terminator::Ret);
        let second = fb.add_block(Vec::new(), Terminator::Ret);
        fb.set_entry(second);
    }
}
