//! Benchmark specifications (the paper's Table 2 plus behavioral
//! attributes referenced elsewhere in the evaluation).

/// Benchmark family.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BenchKind {
    /// Warehouse-scale application built on the distributed build
    /// system.
    WarehouseScale,
    /// Open-source workload built on a workstation.
    OpenSource,
    /// SPEC2017 integer benchmark.
    Spec2017,
}

/// Full-scale characteristics and behavioral attributes of one
/// benchmark.
#[derive(Clone, PartialEq, Debug)]
pub struct BenchmarkSpec {
    /// Benchmark name as used in the paper.
    pub name: &'static str,
    /// Family.
    pub kind: BenchKind,
    /// The Table 3 performance metric label.
    pub metric: &'static str,
    /// `.text` size in bytes (Table 2).
    pub text_bytes: u64,
    /// Function count (Table 2).
    pub funcs: u64,
    /// Basic block count (Table 2).
    pub blocks: u64,
    /// Fraction of object files that are wholly cold (Table 2, "% Cold").
    pub cold_object_fraction: f64,
    /// Fraction of functions that are hot under the representative
    /// workload (derived: cold objects bound it above).
    pub hot_function_fraction: f64,
    /// Whether the deployment maps text with 2 MiB hugepages (§5.5:
    /// Search only).
    pub hugepages: bool,
    /// Whether the binary contains restartable-sequence or
    /// FIPS-integrity-checked code that a disassembly-driven rewriter
    /// corrupts (§5.8; Spanner, Superroot and Bigtable crash at
    /// startup under BOLT in Table 3).
    pub bolt_startup_crash: bool,
    /// Per-action RAM limit override in GiB (Superroot gets 24, §5).
    pub action_ram_gib: u64,
    /// Scale factor applied by the experiment harness when generating
    /// the program (1.0 = full size).
    pub default_scale: f64,
}

impl BenchmarkSpec {
    /// Average text bytes per basic block at full scale.
    pub fn bytes_per_block(&self) -> f64 {
        self.text_bytes as f64 / self.blocks as f64
    }

    /// Average blocks per function at full scale.
    pub fn blocks_per_function(&self) -> f64 {
        self.blocks as f64 / self.funcs as f64
    }
}

/// All benchmarks of the evaluation, in the paper's Table 2 order,
/// with the eight SPEC2017 integer benchmarks expanded
/// (520.omnetpp is excluded: "fails to build with clang", §5.4).
pub fn all_specs() -> Vec<BenchmarkSpec> {
    let wsc = |name, metric, text_mb: u64, funcs_k: u64, blocks_m: f64, cold, hot, hp, crash, ram, scale| {
        BenchmarkSpec {
            name,
            kind: BenchKind::WarehouseScale,
            metric,
            text_bytes: text_mb * 1024 * 1024,
            funcs: funcs_k * 1000,
            blocks: (blocks_m * 1e6) as u64,
            cold_object_fraction: cold,
            hot_function_fraction: hot,
            hugepages: hp,
            bolt_startup_crash: crash,
            action_ram_gib: ram,
            default_scale: scale,
        }
    };
    let spec = |name, text_kb: u64, funcs: u64, blocks: u64, cold: f64, hot: f64| BenchmarkSpec {
        name,
        kind: BenchKind::Spec2017,
        metric: "Runtime",
        text_bytes: text_kb * 1024,
        funcs,
        blocks,
        cold_object_fraction: cold,
        hot_function_fraction: hot,
        hugepages: false,
        bolt_startup_crash: false,
        action_ram_gib: 12,
        default_scale: 1.0,
    };
    vec![
        BenchmarkSpec {
            name: "clang",
            kind: BenchKind::OpenSource,
            metric: "Walltime",
            text_bytes: 72 * 1024 * 1024,
            funcs: 160_000,
            blocks: 2_100_000,
            cold_object_fraction: 0.67,
            hot_function_fraction: 0.12,
            hugepages: false,
            bolt_startup_crash: false,
            action_ram_gib: 12,
            default_scale: 1.0 / 30.0,
        },
        BenchmarkSpec {
            name: "mysql",
            kind: BenchKind::OpenSource,
            metric: "Latency",
            text_bytes: 26 * 1024 * 1024,
            funcs: 61_000,
            blocks: 1_400_000,
            cold_object_fraction: 0.93,
            hot_function_fraction: 0.04,
            hugepages: false,
            bolt_startup_crash: false,
            action_ram_gib: 12,
            default_scale: 1.0 / 20.0,
        },
        wsc("spanner", "Latency", 175, 562, 7.8, 0.83, 0.08, false, true, 12, 1.0 / 100.0),
        wsc("search", "QPS", 413, 1_700, 18.0, 0.95, 0.03, true, false, 12, 1.0 / 200.0),
        wsc("bigtable", "QPS", 93, 368, 4.2, 0.88, 0.06, false, true, 12, 1.0 / 50.0),
        wsc("superroot", "QPS", 598, 2_700, 30.0, 0.82, 0.07, false, true, 24, 1.0 / 300.0),
        spec("500.perlbench", 2048, 2_500, 75_000, 0.40, 0.30),
        spec("502.gcc", 4096, 12_000, 107_000, 0.21, 0.35),
        spec("505.mcf", 34, 80, 1_000, 0.88, 0.50),
        spec("523.xalancbmk", 3072, 9_000, 90_000, 0.35, 0.25),
        spec("525.x264", 1024, 1_500, 30_000, 0.45, 0.35),
        spec("531.deepsjeng", 120, 200, 3_000, 0.60, 0.50),
        spec("541.leela", 300, 500, 8_000, 0.55, 0.40),
        spec("557.xz", 200, 300, 5_000, 0.70, 0.45),
    ]
}

/// Looks up a spec by name.
pub fn spec_by_name(name: &str) -> Option<BenchmarkSpec> {
    all_specs().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_benchmarks() {
        let specs = all_specs();
        assert_eq!(specs.len(), 14);
        assert_eq!(
            specs
                .iter()
                .filter(|s| s.kind == BenchKind::Spec2017)
                .count(),
            8
        );
        assert_eq!(
            specs
                .iter()
                .filter(|s| s.kind == BenchKind::WarehouseScale)
                .count(),
            4
        );
    }

    #[test]
    fn table2_invariants() {
        for s in all_specs() {
            assert!(s.text_bytes > 0, "{}", s.name);
            assert!(s.blocks > s.funcs, "{}", s.name);
            assert!((0.0..=1.0).contains(&s.cold_object_fraction), "{}", s.name);
            assert!((0.0..1.0).contains(&s.hot_function_fraction), "{}", s.name);
            assert!(s.bytes_per_block() > 10.0 && s.bytes_per_block() < 64.0, "{}", s.name);
            assert!(s.default_scale > 0.0 && s.default_scale <= 1.0);
        }
    }

    #[test]
    fn crash_injection_matches_table3() {
        let crashing: Vec<_> = all_specs()
            .into_iter()
            .filter(|s| s.bolt_startup_crash)
            .map(|s| s.name)
            .collect();
        assert_eq!(crashing, vec!["spanner", "bigtable", "superroot"]);
        assert!(spec_by_name("search").unwrap().hugepages);
        assert_eq!(spec_by_name("superroot").unwrap().action_ram_gib, 24);
    }

    #[test]
    fn lookup_by_name() {
        assert!(spec_by_name("clang").is_some());
        assert!(spec_by_name("505.mcf").is_some());
        assert!(spec_by_name("nope").is_none());
    }
}
