//! Seeded release-over-release program evolution.
//!
//! The fleet lifecycle (paper §2, §5) never relinks the same binary
//! twice: every release carries source churn — functions added and
//! deleted, blocks resized, branch behavior drifting as workloads
//! shift. [`evolve`] applies exactly that churn to a generated
//! benchmark, deterministically in `(seed, release)`, with one `drift`
//! knob scaling every mutation class. `drift == 0.0` returns an exact
//! clone, which is the control arm of the speedup-vs-staleness curve:
//! a release train with no churn must behave identically forever.
//!
//! Stored block frequencies (the compile-time PGO view) are left
//! untouched: real release churn changes *behavior* first and the
//! instrumented profile only catches up at the next FDO refresh, so the
//! gap between stored frequencies and true branch probabilities widens
//! with drift — exactly the staleness the post-link optimizer exists to
//! fix.

use crate::gen::GeneratedBenchmark;
use propeller_ir::{FunctionBuilder, Inst, Terminator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Evolution parameters for one release step.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct DriftParams {
    /// Churn intensity in `[0, 1]`: scales the probability of every
    /// mutation class. `0.0` is a bit-identical clone.
    pub drift: f64,
    /// Fleet seed; combined with `release` so each step draws an
    /// independent deterministic stream.
    pub seed: u64,
    /// Release index this step produces (1 = first evolution of the
    /// freshly generated program).
    pub release: u32,
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Evolves `bench` by one release of churn.
///
/// Mutation classes, each gated on `params.drift`:
///
/// * **Hotness drift** — conditional branch probabilities perturbed,
///   so the simulated behavior moves away from both the stored PGO
///   frequencies and any previously collected profile;
/// * **Block resize** — straight-line instructions appended to or
///   trimmed from block bodies (terminators and call sites intact, so
///   the CFG and call graph stay valid);
/// * **Function deletion** — a non-entry function's body collapses to
///   a single `ret` stub (the id and symbol survive, as callers still
///   reference them);
/// * **Function addition** — new cold functions appended to existing
///   modules under release-unique names, dirtying those modules'
///   fingerprints the way fresh code does.
///
/// Entry points and their dispatch weights are preserved: the workload
/// *mix* is held fixed so the curve isolates binary churn.
pub fn evolve(bench: &GeneratedBenchmark, params: &DriftParams) -> GeneratedBenchmark {
    let mut next = bench.clone();
    if params.drift <= 0.0 {
        return next;
    }
    let drift = params.drift.min(1.0);
    let mut rng = StdRng::seed_from_u64(params.seed ^ splitmix(params.release as u64));
    let entry_ids: Vec<_> = bench.entries.iter().map(|(id, _)| *id).collect();

    let p_branch = drift * 0.5;
    let p_resize = drift * 0.3;
    let p_delete = drift * 0.05;

    for module in next.program.modules_mut() {
        for f in &mut module.functions {
            if !entry_ids.contains(&f.id) && f.blocks.len() > 1 && rng.gen::<f64>() < p_delete {
                // Delete-as-stub: the symbol must survive (callers
                // still name it), but the body is gone.
                let entry = f.blocks[0].id;
                f.blocks.truncate(1);
                f.blocks[0] = propeller_ir::BasicBlock::new(entry, Vec::new(), Terminator::Ret);
                continue;
            }
            for b in &mut f.blocks {
                if let Terminator::CondBr { prob_taken, .. } = &mut b.term {
                    if rng.gen::<f64>() < p_branch {
                        let delta: f64 = rng.gen_range(-0.5..0.5) * drift;
                        *prob_taken = (*prob_taken + delta).clamp(0.001, 0.999);
                    }
                }
                if rng.gen::<f64>() < p_resize {
                    if rng.gen::<bool>() {
                        let extra = rng.gen_range(1..=4);
                        b.insts.extend(std::iter::repeat_n(Inst::Alu, extra));
                    } else {
                        // Trim only trailing plain ALU ops so call
                        // sites (and thus the call graph) survive.
                        let mut trim = rng.gen_range(1..=4usize);
                        while trim > 0 && matches!(b.insts.last(), Some(Inst::Alu)) {
                            b.insts.pop();
                            trim -= 1;
                        }
                    }
                }
            }
        }
    }

    // Fresh cold code: a few new functions per release, spread over
    // existing modules (dirtying their fingerprints like real churn).
    let n_new = ((next.program.num_functions() as f64) * drift * 0.03).round() as usize;
    let n_modules = next.program.num_modules();
    for j in 0..n_new {
        let mut fb = FunctionBuilder::new(format!(
            "{}_r{}_new{j}",
            bench.spec.name, params.release
        ));
        let body = rng.gen_range(2..16);
        fb.add_block(vec![Inst::Alu; body], Terminator::Ret);
        let module = next.program.modules()[rng.gen_range(0..n_modules)].id;
        next.program.push_function(module, fb);
    }

    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenParams};
    use crate::spec::spec_by_name;

    fn base() -> GeneratedBenchmark {
        let spec = spec_by_name("541.leela").unwrap();
        generate(
            &spec,
            &GenParams {
                scale: 0.05,
                seed: 11,
                funcs_per_module: 10,
                entry_points: 3,
            },
        )
    }

    fn stats_fingerprint(b: &GeneratedBenchmark) -> String {
        format!("{:?}", b.program.stats())
    }

    #[test]
    fn zero_drift_is_an_exact_clone() {
        let b = base();
        let e = evolve(
            &b,
            &DriftParams {
                drift: 0.0,
                seed: 99,
                release: 3,
            },
        );
        assert_eq!(stats_fingerprint(&b), stats_fingerprint(&e));
        for (f, g) in b.program.functions().zip(e.program.functions()) {
            assert_eq!(f.name, g.name);
            assert_eq!(f.blocks.len(), g.blocks.len());
        }
        assert_eq!(b.entries, e.entries);
    }

    #[test]
    fn evolution_is_deterministic_and_release_dependent() {
        let b = base();
        let p = DriftParams {
            drift: 0.4,
            seed: 7,
            release: 1,
        };
        let e1 = evolve(&b, &p);
        let e2 = evolve(&b, &p);
        assert_eq!(stats_fingerprint(&e1), stats_fingerprint(&e2));
        let other = evolve(&b, &DriftParams { release: 2, ..p });
        assert_ne!(stats_fingerprint(&e1), stats_fingerprint(&other));
    }

    #[test]
    fn evolved_programs_stay_valid_across_releases() {
        let mut cur = base();
        for release in 1..=5 {
            cur = evolve(
                &cur,
                &DriftParams {
                    drift: 0.8,
                    seed: 13,
                    release,
                },
            );
            cur.program.validate().unwrap();
        }
        // Churn actually happened: new functions accumulated.
        assert!(cur.program.num_functions() > base().program.num_functions());
    }

    #[test]
    fn entry_points_survive_heavy_drift() {
        let b = base();
        let e = evolve(
            &b,
            &DriftParams {
                drift: 1.0,
                seed: 5,
                release: 1,
            },
        );
        assert_eq!(b.entries, e.entries);
        // Only delete-as-stub changes a function's block count, and
        // entries are exempt from it.
        for (id, _) in &e.entries {
            assert_eq!(
                e.program.function(*id).unwrap().blocks.len(),
                b.program.function(*id).unwrap().blocks.len(),
                "entry {id:?} must never be stubbed out"
            );
        }
    }
}
