//! Program generation.

use crate::spec::{BenchKind, BenchmarkSpec};
use propeller_ir::{
    propagate_frequencies, BlockId, FunctionBuilder, FunctionId, Inst, Program, ProgramBuilder,
    Terminator,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generation parameters beyond the spec itself.
#[derive(Clone, PartialEq, Debug)]
pub struct GenParams {
    /// Scale factor on function/block counts (1.0 = Table 2 size).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Functions per translation unit.
    pub funcs_per_module: usize,
    /// Number of workload entry-point functions.
    pub entry_points: usize,
}

impl GenParams {
    /// Parameters using the spec's default scale.
    pub fn for_spec(spec: &BenchmarkSpec) -> Self {
        GenParams {
            scale: spec.default_scale,
            seed: 0xB0B0 ^ spec.name.len() as u64,
            funcs_per_module: 12,
            entry_points: 4,
        }
    }
}

/// A generated benchmark: the program plus its workload roots.
#[derive(Clone, Debug)]
pub struct GeneratedBenchmark {
    /// The spec this was generated from.
    pub spec: BenchmarkSpec,
    /// The program.
    pub program: Program,
    /// Workload entry functions with dispatch weights.
    pub entries: Vec<(FunctionId, f64)>,
    /// The scale that was applied (memory/time figures extrapolate by
    /// `1 / scale`).
    pub scale: f64,
}

/// Draws from a geometric-ish distribution with the given mean,
/// clamped to `[1, cap]`.
fn geometric(rng: &mut StdRng, mean: f64, cap: usize) -> usize {
    let mean = mean.max(1.0);
    let p = 1.0 / mean;
    let u: f64 = rng.gen_range(1e-12..1.0);
    let k = 1.0 + (u.ln() / (1.0 - p).max(1e-12).ln()).floor();
    (k as usize).clamp(1, cap)
}

/// Generates a program matching `spec` at `params.scale`.
///
/// Deterministic in `params.seed`.
///
/// # Panics
///
/// Panics if the spec/params produce fewer than two functions.
pub fn generate(spec: &BenchmarkSpec, params: &GenParams) -> GeneratedBenchmark {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let n_funcs = ((spec.funcs as f64 * params.scale).round() as usize).max(8);
    let n_hot = ((n_funcs as f64 * spec.hot_function_fraction).round() as usize)
        .clamp(params.entry_points.max(2), n_funcs);
    let avg_blocks = spec.blocks_per_function();
    // Average encoded bytes per straight instruction is ~3.4; each
    // block also spends a few bytes on its terminator.
    let insts_per_block = ((spec.bytes_per_block() - 2.5) / 3.4).max(1.0);

    let n_modules = n_funcs.div_ceil(params.funcs_per_module).max(2);
    // Table 2's "% Cold" is a fraction of *object files*: spread hot
    // functions over exactly the non-cold share of modules (cold
    // functions go everywhere), so the generated cold-object fraction
    // matches the spec.
    let hot_modules = (((1.0 - spec.cold_object_fraction) * n_modules as f64).round() as usize)
        .clamp(1, n_modules);
    let mut pb = ProgramBuilder::new();
    let modules: Vec<_> = (0..n_modules)
        .map(|m| pb.add_module(format!("{}_{m}.cc", spec.name)))
        .collect();

    // Function `i` gets FunctionId(i): hot functions first, so callee
    // selection can stay within the hot set by index.
    for i in 0..n_funcs {
        let hot = i < n_hot;
        let module = if hot {
            modules[i % hot_modules]
        } else {
            modules[(i - n_hot) % n_modules]
        };
        let mut fb = FunctionBuilder::new(format!("{}_fn{i}", spec.name));
        let nblocks = geometric(&mut rng, avg_blocks, 400);

        // Pass 1: plan terminators.
        let mut plans: Vec<Terminator> = Vec::with_capacity(nblocks);
        for b in 0..nblocks {
            let last = b == nblocks - 1;
            let term = if last {
                Terminator::Ret
            } else {
                let r: f64 = rng.gen();
                if r < 0.12 && b > 1 {
                    // Loop back edge.
                    let back = rng.gen_range(b.saturating_sub(8)..b);
                    Terminator::CondBr {
                        taken: BlockId(back as u32),
                        fallthrough: BlockId(b as u32 + 1),
                        prob_taken: rng.gen_range(0.55..0.92),
                    }
                } else if r < 0.55 {
                    // Forward branch. Three flavors:
                    //  - biased-not-taken: the compile-time layout is
                    //    already right (hot path falls through);
                    //  - biased-TAKEN: a *profile mismatch* — the hot
                    //    successor is the jump target, i.e. the layout
                    //    PGO produced is stale or heuristic. This is
                    //    the headroom post-link optimizers exploit
                    //    (§2.4: "post link profiles fix inaccuracies
                    //    accrued ... as optimizations transform the
                    //    source");
                    //  - genuinely mixed.
                    let target = rng.gen_range(b + 1..nblocks);
                    let flavor: f64 = rng.gen();
                    let p = if flavor < 0.55 {
                        rng.gen_range(0.004..0.10)
                    } else if flavor < 0.85 {
                        rng.gen_range(0.90..0.996)
                    } else {
                        rng.gen_range(0.3..0.6)
                    };
                    Terminator::CondBr {
                        taken: BlockId(target as u32),
                        fallthrough: BlockId(b as u32 + 1),
                        prob_taken: p,
                    }
                } else if r < 0.60 {
                    Terminator::Ret
                } else {
                    Terminator::Jump(BlockId(b as u32 + 1))
                }
            };
            plans.push(term);
        }
        // Pass 2: for mismatch branches (hot side taken), make the
        // target reachable *only* through the taken edge: the straight-
        // line path in front of it jumps past it. This is the classic
        // stale-profile shape — the compiler believes the target is
        // dead, while at run time it is the hot continuation.
        for b in 0..nblocks {
            if let Terminator::CondBr {
                taken, prob_taken, ..
            } = plans[b]
            {
                let j = taken.index();
                if prob_taken > 0.85 && j > b + 1 && j + 1 < nblocks && j >= 1 && j - 1 != b {
                    plans[j - 1] = Terminator::Jump(BlockId(j as u32 + 1));
                }
            }
        }

        // Pass 3: build the blocks.
        for (b, term) in plans.into_iter().enumerate() {
            let mut insts = Vec::new();
            let body_len = geometric(&mut rng, insts_per_block, 60);
            for _ in 0..body_len {
                let r: f64 = rng.gen();
                insts.push(if r < 0.60 {
                    Inst::Alu
                } else if r < 0.85 {
                    Inst::Load
                } else {
                    Inst::Store
                });
            }
            // Call sites: hot functions mostly call hot functions
            // (forming the hot trunk of the call graph); cold call
            // anything.
            if rng.gen::<f64>() < 0.22 && n_funcs > 2 {
                let callee = if hot {
                    // Nearby hot callee.
                    let span = n_hot.max(2);
                    (i + 1 + rng.gen_range(0..span.max(1))) % span.max(1)
                } else {
                    rng.gen_range(0..n_funcs)
                };
                if callee != i {
                    let pos = if insts.is_empty() {
                        0
                    } else {
                        rng.gen_range(0..=insts.len())
                    };
                    insts.insert(pos, Inst::Call(FunctionId(callee as u32)));
                }
            }
            let bid = fb.add_block(insts, term);
            // Occasional landing pads in exception-using codebases.
            if spec.kind != BenchKind::Spec2017 && b > 0 && rng.gen::<f64>() < 0.01 {
                fb.set_landing_pad(bid);
            }
        }
        let fid = pb.add_function(module, fb);
        debug_assert_eq!(fid, FunctionId(i as u32));
    }

    let mut program = pb.finish_unchecked();

    // Frequencies: Zipf-weighted entry counts for hot functions
    // (identified by id; functions are interleaved across modules).
    //
    // The stored frequencies model the *compile-time PGO profile*,
    // which in production is stale by the time the binary ships (§2.2:
    // "code transformations can cause a mismatch between the profile
    // data and the code being optimized"). The mismatch branches the
    // generator creates (hot side on the taken edge) are exactly the
    // ones whose PGO view is wrong: the compiler believed they were
    // never taken. Frequencies are therefore propagated through a
    // *distorted* CFG where those branches have probability zero,
    // while the simulator executes the true probabilities.
    for module in program.modules_mut() {
        for f in &mut module.functions {
            let id = f.id.index();
            if id < n_hot {
                let entry_freq = (1_000_000.0 / (id as f64 + 1.0)).round() as u64;
                let mut stale = f.clone();
                for b in &mut stale.blocks {
                    if let Terminator::CondBr { prob_taken, .. } = &mut b.term {
                        if *prob_taken > 0.85 {
                            *prob_taken = 0.0;
                        }
                    }
                }
                propagate_frequencies(&mut stale, entry_freq);
                for (real, distorted) in f.blocks.iter_mut().zip(&stale.blocks) {
                    real.freq = distorted.freq;
                }
            }
        }
    }

    let entries: Vec<(FunctionId, f64)> = (0..params.entry_points.min(n_hot))
        .map(|i| (FunctionId(i as u32), 1.0 / (i as f64 + 1.0)))
        .collect();

    GeneratedBenchmark {
        spec: spec.clone(),
        program,
        entries,
        scale: params.scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{all_specs, spec_by_name};

    fn small_params(seed: u64, scale: f64) -> GenParams {
        GenParams {
            scale,
            seed,
            funcs_per_module: 10,
            entry_points: 3,
        }
    }

    #[test]
    fn generated_programs_validate() {
        for spec in all_specs().iter().take(3) {
            let g = generate(spec, &small_params(1, f64::max(0.002, spec.default_scale / 8.0)));
            g.program.validate().unwrap();
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let spec = spec_by_name("541.leela").unwrap();
        let a = generate(&spec, &small_params(7, 1.0));
        let b = generate(&spec, &small_params(7, 1.0));
        assert_eq!(a.program.stats(), b.program.stats());
        let c = generate(&spec, &small_params(8, 1.0));
        assert_ne!(a.program.stats(), c.program.stats());
    }

    #[test]
    fn characteristics_track_spec() {
        let spec = spec_by_name("505.mcf").unwrap();
        let g = generate(&spec, &small_params(3, 1.0));
        let stats = g.program.stats();
        let funcs = stats.num_functions as f64;
        assert!(
            (funcs - spec.funcs as f64).abs() / spec.funcs as f64 <= 0.15,
            "funcs {funcs} vs {}",
            spec.funcs
        );
        let blocks = stats.num_blocks as f64;
        assert!(
            (blocks - spec.blocks as f64).abs() / spec.blocks as f64 <= 0.50,
            "blocks {blocks} vs {}",
            spec.blocks
        );
        // Hot/cold split respected.
        assert!(stats.num_cold_functions > 0);
        assert!(stats.num_cold_functions < stats.num_functions);
        // Entries are hot.
        for (e, w) in &g.entries {
            assert!(*w > 0.0);
            assert!(!g.program.function(*e).unwrap().is_cold());
        }
    }

    #[test]
    fn cold_module_fraction_roughly_matches() {
        let spec = spec_by_name("mysql").unwrap(); // 93% cold objects
        let g = generate(&spec, &small_params(5, 0.01));
        let frac = g.program.stats().cold_module_fraction();
        assert!(
            (frac - spec.cold_object_fraction).abs() < 0.15,
            "cold module fraction {frac} vs {}",
            spec.cold_object_fraction
        );
    }

    #[test]
    fn scale_shrinks_program() {
        let spec = spec_by_name("502.gcc").unwrap();
        let small = generate(&spec, &small_params(2, 0.05));
        let large = generate(&spec, &small_params(2, 0.2));
        assert!(large.program.stats().num_blocks > 2 * small.program.stats().num_blocks);
    }
}
