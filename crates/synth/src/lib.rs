//! Synthetic benchmark generation.
//!
//! The paper evaluates Propeller on four warehouse-scale applications
//! (Spanner, Search, Superroot, Bigtable), two open-source workloads
//! (Clang, MySQL) and eight SPEC2017 integer benchmarks. None of those
//! programs can be compiled by this reproduction's toolchain, so this
//! crate generates programs matching their *Table 2 characteristics* —
//! text size, function count, basic block count, cold-object fraction —
//! with realistic structure: lognormal-ish function sizes, loops,
//! biased branches, multi-module layout with wholly-cold modules, a
//! call graph with hot trunks and cold fringes, and exception landing
//! pads.
//!
//! The generated [`propeller_ir::Program`] is deterministic in the
//! seed; [`BenchmarkSpec::default_scale`] shrinks warehouse-scale
//! programs to laptop-friendly sizes while preserving the ratios the
//! experiments depend on (the harness extrapolates memory figures back
//! through the scale factor).

mod gen;
mod mutate;
mod spec;

pub use gen::{generate, GeneratedBenchmark, GenParams};
pub use mutate::{evolve, DriftParams};
pub use spec::{all_specs, spec_by_name, BenchKind, BenchmarkSpec};
