//! A BOLT-style monolithic post-link binary optimizer — the paper's
//! comparator (§5, "Lightning BOLT" configuration).
//!
//! Where Propeller relinks from cached objects, this tool takes the
//! *final linked binary* and:
//!
//! 1. discovers functions from the symbol table ([`disasm`]),
//! 2. linearly **disassembles** every function (the memory- and
//!    time-dominant step the paper's Figures 4, 5 and 9 measure),
//! 3. reconstructs control flow graphs from the decoded branches
//!    ([`mod@cfg`]),
//! 4. converts the hardware profile onto the reconstructed CFGs
//!    (the `perf2bolt` step),
//! 5. reorders blocks with Ext-TSP, splits hot/cold, and reorders
//!    functions with an hfsort-style clustering ([`hfsort`]),
//! 6. **rewrites** the binary: optimized code goes into a new text
//!    segment aligned to a 2 MiB boundary while the original `.text`
//!    is retained — the §5.3 size behavior.
//!
//! The §5.8 failure modes are modeled: rewriting requires static
//! relocations in the input, and binaries containing restartable
//! sequences or FIPS integrity checks produce output that crashes at
//! startup.

pub mod cfg;
pub mod disasm;
pub mod hfsort;
mod rewrite;

mod driver;
mod error;

pub use driver::{run_bolt, run_bolt_traced, BoltOptions, BoltOutput, BoltStats};
pub use error::BoltError;
