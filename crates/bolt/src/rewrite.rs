//! Binary rewriting: placing optimized code in a new text segment.
//!
//! BOLT cannot shrink or move the original `.text` (other code may
//! reference it), so optimized functions are *copied* into a fresh
//! segment — aligned to a 2 MiB boundary for hugepages — and the
//! original bytes stay behind. This is why BOLT-optimized binaries are
//! 30-150% larger (§5.3 / Figure 6), which this module reproduces in
//! its size accounting.

use crate::cfg::{RecCfg, RecTerm};
use propeller_linker::{FinalLayout, LinkedBinary};
use std::collections::HashMap;

/// Layout plan for one optimized function.
#[derive(Clone, Debug)]
pub struct FunctionPlan {
    /// Index into the discovered-function/CFG arrays.
    pub func_idx: usize,
    /// Hot blocks (CFG block indices) in their new order; the entry
    /// block is first.
    pub hot_order: Vec<usize>,
    /// Cold blocks, moved to the shared cold region.
    pub cold: Vec<usize>,
}

/// Accounting results of the rewrite.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct RewriteStats {
    /// Bytes of newly emitted text (hot + cold regions).
    pub new_text_bytes: u64,
    /// Padding inserted to reach the segment alignment.
    pub alignment_padding: u64,
    /// Functions rewritten.
    pub optimized_functions: usize,
    /// Contiguous text fragments created (for CFI accounting).
    pub fragments: usize,
}

/// New encoded size of a reconstructed block given its successor
/// adjacency in the new layout.
fn new_block_size(
    cfg: &RecCfg,
    block: usize,
    next_in_layout: Option<usize>,
) -> u64 {
    let b = &cfg.blocks[block];
    let succ_of_addr = |addr: u64| cfg.block_starting_at(addr);
    let old_fallthrough = if block + 1 < cfg.blocks.len() {
        Some(block + 1)
    } else {
        None
    };
    let branch_bytes = match b.term {
        RecTerm::Ret => 1,
        RecTerm::Fallthrough => {
            if old_fallthrough == next_in_layout {
                0
            } else {
                5 // must synthesize a jump to the old successor
            }
        }
        RecTerm::Jump(t) => {
            if succ_of_addr(t) == next_in_layout {
                0 // jump deleted: target follows
            } else {
                5
            }
        }
        RecTerm::Cond { taken } | RecTerm::CondJump { taken, .. } => {
            let taken_idx = succ_of_addr(taken);
            let ft_idx = match b.term {
                RecTerm::CondJump { ft, .. } => succ_of_addr(ft),
                _ => old_fallthrough,
            };
            if ft_idx == next_in_layout || taken_idx == next_in_layout {
                6 // single (possibly inverted) conditional
            } else {
                11 // conditional + jump pair
            }
        }
    };
    b.straight_bytes + branch_bytes
}

/// Applies the plans, producing the post-rewrite block layout and size
/// accounting.
///
/// The rewrite is modeled at layout granularity: every basic block of
/// every optimized function receives its new address and re-encoded
/// size; bytes are not materialized (the simulator consumes addresses,
/// not bytes).
pub fn rewrite(
    binary: &LinkedBinary,
    cfgs: &[Option<RecCfg>],
    plans: &[FunctionPlan],
    func_order: &[usize],
    huge_page_align: bool,
) -> (FinalLayout, RewriteStats) {
    let mut stats = RewriteStats::default();
    let old_end = binary.base + binary.image.len() as u64;
    let align: u64 = if huge_page_align { 2 << 20 } else { 4096 };
    let seg_base = old_end.div_ceil(align) * align;
    stats.alignment_padding = seg_base - old_end;

    let plan_by_func: HashMap<usize, &FunctionPlan> =
        plans.iter().map(|p| (p.func_idx, p)).collect();

    // Pass 1: assign new addresses to every (func, block) in the plan.
    // Hot regions first (in hfsort order), then all cold regions.
    let mut new_addr: HashMap<(usize, usize), u64> = HashMap::new();
    let mut new_size: HashMap<(usize, usize), u64> = HashMap::new();
    let mut cursor = seg_base;
    for &fi in func_order {
        let Some(plan) = plan_by_func.get(&fi) else {
            continue;
        };
        let cfg = cfgs[fi].as_ref().expect("planned functions have CFGs");
        cursor = cursor.div_ceil(16) * 16;
        for (i, &b) in plan.hot_order.iter().enumerate() {
            let next = plan.hot_order.get(i + 1).copied();
            let sz = new_block_size(cfg, b, next);
            new_addr.insert((fi, b), cursor);
            new_size.insert((fi, b), sz);
            cursor += sz;
        }
        stats.optimized_functions += 1;
        stats.fragments += 1;
    }
    for &fi in func_order {
        let Some(plan) = plan_by_func.get(&fi) else {
            continue;
        };
        if plan.cold.is_empty() {
            continue;
        }
        let cfg = cfgs[fi].as_ref().expect("planned functions have CFGs");
        for (i, &b) in plan.cold.iter().enumerate() {
            let next = plan.cold.get(i + 1).copied();
            let sz = new_block_size(cfg, b, next);
            new_addr.insert((fi, b), cursor);
            new_size.insert((fi, b), sz);
            cursor += sz;
        }
        stats.fragments += 1;
    }
    stats.new_text_bytes = cursor - seg_base;

    // Pass 2: patch the IR-level layout. Each reconstructed block is a
    // union of whole IR blocks; interior IR blocks keep their relative
    // offsets, the last one absorbs the branch re-encoding delta.
    let mut layout = binary.layout.clone();
    // Index IR blocks by address for fast range queries.
    let mut by_addr: Vec<(u64, usize, usize)> = Vec::new(); // (addr, func idx in layout, block idx)
    for (li, f) in layout.functions.iter().enumerate() {
        for (bi, b) in f.blocks.iter().enumerate() {
            by_addr.push((b.addr, li, bi));
        }
    }
    by_addr.sort_unstable();
    for (&(fi, b), &naddr) in &new_addr {
        let cfg = cfgs[fi].as_ref().expect("planned");
        let rb = &cfg.blocks[b];
        let nsize = new_size[&(fi, b)];
        let from = by_addr.partition_point(|&(a, _, _)| a < rb.addr);
        let mut covered: Vec<(usize, usize)> = Vec::new();
        for &(a, li, bi) in &by_addr[from..] {
            if a >= rb.end() {
                break;
            }
            covered.push((li, bi));
            let _ = a;
        }
        for (k, &(li, bi)) in covered.iter().enumerate() {
            let old = layout.functions[li].blocks[bi];
            let rel = old.addr - rb.addr;
            let blk = &mut layout.functions[li].blocks[bi];
            blk.addr = naddr + rel;
            if k == covered.len() - 1 {
                // Last covered IR block absorbs the size delta.
                blk.size = (nsize - rel) as u32;
            }
        }
    }
    (layout, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::RecBlock;

    fn cfg_with(blocks: Vec<RecBlock>) -> RecCfg {
        let addr = blocks[0].addr;
        let size = blocks.last().unwrap().end() - addr;
        RecCfg { addr, size, blocks }
    }

    #[test]
    fn jump_deleted_when_target_follows() {
        let cfg = cfg_with(vec![
            RecBlock {
                addr: 0x1000,
                size: 8, // 3 straight + 5 jump
                straight_bytes: 3,
                calls: Vec::new(),
                term: RecTerm::Jump(0x1010),
            },
            RecBlock {
                addr: 0x1008,
                size: 8,
                straight_bytes: 8,
                calls: Vec::new(),
                term: RecTerm::Fallthrough,
            },
            RecBlock {
                addr: 0x1010,
                size: 1,
                straight_bytes: 0,
                calls: Vec::new(),
                term: RecTerm::Ret,
            },
        ]);
        // New order: block 0 then block 2 (its jump target): jump dies.
        assert_eq!(new_block_size(&cfg, 0, Some(2)), 3);
        // Block 0 followed by something else: jump stays.
        assert_eq!(new_block_size(&cfg, 0, Some(1)), 8);
        // Fallthrough block moved away from its successor grows a jump.
        assert_eq!(new_block_size(&cfg, 1, Some(0)), 13);
        assert_eq!(new_block_size(&cfg, 1, Some(2)), 8);
        // Ret unchanged.
        assert_eq!(new_block_size(&cfg, 2, None), 1);
    }

    #[test]
    fn cond_inversion_and_pairing() {
        let cfg = cfg_with(vec![
            RecBlock {
                addr: 0,
                size: 9, // 3 + 6 (cond long)
                straight_bytes: 3,
                calls: Vec::new(),
                term: RecTerm::Cond { taken: 20 },
            },
            RecBlock {
                addr: 9,
                size: 11,
                straight_bytes: 11,
                calls: Vec::new(),
                term: RecTerm::Fallthrough,
            },
            RecBlock {
                addr: 20,
                size: 1,
                straight_bytes: 0,
                calls: Vec::new(),
                term: RecTerm::Ret,
            },
        ]);
        // Fall-through (1) follows: single cond.
        assert_eq!(new_block_size(&cfg, 0, Some(1)), 9);
        // Taken (2) follows: inverted single cond.
        assert_eq!(new_block_size(&cfg, 0, Some(2)), 9);
        // Neither follows: cond + jump.
        assert_eq!(new_block_size(&cfg, 0, None), 14);
    }
}
