//! hfsort/C³-style function reordering (the `-reorder-functions=hfsort`
//! pass of the comparator).
//!
//! "Call-Chain Clustering": functions are visited hottest-first; each
//! is appended to its heaviest caller's cluster unless the merged
//! cluster would exceed the size cap. Clusters are then emitted in
//! decreasing density order.

use std::collections::HashMap;

/// A function as the clusterer sees it.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct FuncInfo {
    /// Caller-meaningful id.
    pub id: u32,
    /// Code size in bytes.
    pub size: u64,
    /// Sample count.
    pub samples: u64,
}

/// Maximum merged-cluster size: keeps clusters within a hugepage so
/// the hottest functions land on few pages.
pub const MAX_CLUSTER_BYTES: u64 = 2 * 1024 * 1024;

/// Orders functions by call-chain clustering.
///
/// `calls` maps `(caller id, callee id)` to call weight. Functions
/// never sampled keep their relative order after all sampled ones.
pub fn hfsort_order(funcs: &[FuncInfo], calls: &HashMap<(u32, u32), u64>) -> Vec<u32> {
    let n = funcs.len();
    let idx_of: HashMap<u32, usize> = funcs.iter().enumerate().map(|(i, f)| (f.id, i)).collect();
    // Heaviest caller per function.
    let mut best_caller: HashMap<usize, (usize, u64)> = HashMap::new();
    for (&(caller, callee), &w) in calls {
        let (Some(&c), Some(&f)) = (idx_of.get(&caller), idx_of.get(&callee)) else {
            continue;
        };
        if c == f {
            continue;
        }
        let e = best_caller.entry(f).or_insert((c, 0));
        if w > e.1 || (w == e.1 && c < e.0) {
            *e = (c, w);
        }
    }

    // Clusters as ordered member lists.
    let mut cluster_of: Vec<usize> = (0..n).collect();
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut sizes: Vec<u64> = funcs.iter().map(|f| f.size.max(1)).collect();
    let mut samples: Vec<u64> = funcs.iter().map(|f| f.samples).collect();

    let mut hot: Vec<usize> = (0..n).filter(|&i| funcs[i].samples > 0).collect();
    hot.sort_by(|&a, &b| {
        let da = funcs[a].samples as f64 / funcs[a].size.max(1) as f64;
        let db = funcs[b].samples as f64 / funcs[b].size.max(1) as f64;
        db.total_cmp(&da).then(a.cmp(&b))
    });

    for &f in &hot {
        let Some(&(caller, _)) = best_caller.get(&f) else {
            continue;
        };
        let cf = cluster_of[f];
        let cc = cluster_of[caller];
        if cf == cc || sizes[cf] + sizes[cc] > MAX_CLUSTER_BYTES {
            continue;
        }
        // Append f's cluster to the caller's.
        let moved = std::mem::take(&mut members[cf]);
        for &m in &moved {
            cluster_of[m] = cc;
        }
        members[cc].extend(moved);
        sizes[cc] += sizes[cf];
        samples[cc] += samples[cf];
        sizes[cf] = 0;
        samples[cf] = 0;
    }

    // Emit sampled clusters by density, then never-sampled functions
    // in input order.
    let mut roots: Vec<usize> = (0..n).filter(|&c| !members[c].is_empty()).collect();
    roots.sort_by(|&a, &b| {
        let da = samples[a] as f64 / sizes[a].max(1) as f64;
        let db = samples[b] as f64 / sizes[b].max(1) as f64;
        db.total_cmp(&da).then(a.cmp(&b))
    });
    let mut order = Vec::with_capacity(n);
    let mut trailer = Vec::new();
    for c in roots {
        for &m in &members[c] {
            if samples[cluster_of[m]] > 0 || funcs[m].samples > 0 {
                order.push(funcs[m].id);
            } else {
                trailer.push(funcs[m].id);
            }
        }
    }
    order.extend(trailer);
    debug_assert_eq!(order.len(), n);
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(id: u32, size: u64, samples: u64) -> FuncInfo {
        FuncInfo { id, size, samples }
    }

    #[test]
    fn callee_joins_heaviest_caller() {
        // 0 calls 2 heavily, 1 calls 2 lightly.
        let funcs = vec![f(0, 100, 1000), f(1, 100, 900), f(2, 100, 800)];
        let mut calls = HashMap::new();
        calls.insert((0, 2), 500u64);
        calls.insert((1, 2), 10);
        let order = hfsort_order(&funcs, &calls);
        let p0 = order.iter().position(|&x| x == 0).unwrap();
        let p2 = order.iter().position(|&x| x == 2).unwrap();
        assert_eq!(p2, p0 + 1, "callee right after its hot caller: {order:?}");
    }

    #[test]
    fn cold_functions_trail() {
        let funcs = vec![f(0, 10, 0), f(1, 10, 100), f(2, 10, 0)];
        let order = hfsort_order(&funcs, &HashMap::new());
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn size_cap_blocks_merging() {
        let funcs = vec![f(0, MAX_CLUSTER_BYTES, 1000), f(1, MAX_CLUSTER_BYTES, 900)];
        let mut calls = HashMap::new();
        calls.insert((0, 1), 500u64);
        let order = hfsort_order(&funcs, &calls);
        assert_eq!(order.len(), 2);
        assert_eq!(order[0], 0);
    }

    #[test]
    fn output_is_permutation() {
        let funcs: Vec<FuncInfo> = (0..50)
            .map(|i| f(i, 64 + i as u64, (i as u64 * 7) % 13))
            .collect();
        let mut calls = HashMap::new();
        for i in 0..49u32 {
            calls.insert((i, i + 1), (i as u64 * 31) % 40);
        }
        let mut order = hfsort_order(&funcs, &calls);
        order.sort_unstable();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }
}
