//! CFG reconstruction from disassembly.

use crate::disasm::DisassembledFunction;
use propeller_codegen::isa::Decoded;
use std::collections::BTreeSet;

/// A reconstructed block's terminator, in address terms.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RecTerm {
    /// Execution continues into the next block (the block boundary
    /// exists only because the next address is a branch target).
    Fallthrough,
    /// Unconditional jump to the target address.
    Jump(u64),
    /// Conditional branch to `taken`; not-taken falls into the next
    /// block.
    Cond {
        /// Taken-target address.
        taken: u64,
    },
    /// Conditional branch followed by an unconditional jump.
    CondJump {
        /// Taken-target address.
        taken: u64,
        /// Jump target address (the rewired fall-through).
        ft: u64,
    },
    /// Return.
    Ret,
}

/// One reconstructed basic block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RecBlock {
    /// Start address.
    pub addr: u64,
    /// Total size in bytes.
    pub size: u64,
    /// Bytes excluding the trailing control-transfer instructions.
    pub straight_bytes: u64,
    /// Call sites within the block: `(call address, target address)`.
    pub calls: Vec<(u64, u64)>,
    /// The terminator.
    pub term: RecTerm,
}

impl RecBlock {
    /// The address one past the block.
    pub fn end(&self) -> u64 {
        self.addr + self.size
    }
}

/// A reconstructed function CFG.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RecCfg {
    /// Function start address.
    pub addr: u64,
    /// Function extent.
    pub size: u64,
    /// Blocks in address order.
    pub blocks: Vec<RecBlock>,
}

impl RecCfg {
    /// Index of the block containing `addr`, if any.
    pub fn block_at(&self, addr: u64) -> Option<usize> {
        let i = self.blocks.partition_point(|b| b.addr <= addr);
        let b = i.checked_sub(1)?;
        (addr < self.blocks[b].end()).then_some(b)
    }

    /// Index of the block starting exactly at `addr`.
    pub fn block_starting_at(&self, addr: u64) -> Option<usize> {
        self.blocks
            .binary_search_by_key(&addr, |b| b.addr)
            .ok()
    }
}

/// Modeled memory of one reconstructed block record.
pub const BYTES_PER_BLOCK_RECORD: u64 = 64;

/// Reconstructs the CFG of one disassembled (simple) function.
///
/// Returns `None` for non-simple functions.
pub fn reconstruct(d: &DisassembledFunction) -> Option<RecCfg> {
    if !d.simple || d.insts.is_empty() {
        return None;
    }
    let start = d.func.addr;
    let end = start + d.func.size;
    // Leaders: function entry, branch targets within the function, and
    // the instruction after any control transfer.
    let mut leaders: BTreeSet<u64> = BTreeSet::new();
    leaders.insert(start);
    for di in &d.insts {
        let next = di.addr + di.inst.len() as u64;
        match di.inst {
            Decoded::Jump { disp, .. } | Decoded::CondBr { disp, .. } => {
                let target = (next as i64 + disp) as u64;
                if (start..end).contains(&target) {
                    leaders.insert(target);
                }
                if next < end {
                    leaders.insert(next);
                }
            }
            Decoded::Ret
                if next < end => {
                    leaders.insert(next);
                }
            _ => {}
        }
    }
    let bounds: Vec<u64> = leaders.into_iter().collect();
    let mut blocks = Vec::with_capacity(bounds.len());
    let mut inst_idx = 0usize;
    for (bi, &baddr) in bounds.iter().enumerate() {
        let bend = bounds.get(bi + 1).copied().unwrap_or(end);
        // Collect this block's instructions.
        let mut calls = Vec::new();
        let mut trailing: Vec<(u64, Decoded)> = Vec::new();
        while inst_idx < d.insts.len() && d.insts[inst_idx].addr < bend {
            let di = d.insts[inst_idx];
            match di.inst {
                Decoded::Call { disp, len } => {
                    let target = (di.addr as i64 + len as i64 + disp) as u64;
                    calls.push((di.addr, target));
                    trailing.clear();
                }
                Decoded::Jump { .. } | Decoded::CondBr { .. } | Decoded::Ret => {
                    trailing.push((di.addr, di.inst));
                }
                Decoded::Straight { .. } => trailing.clear(),
            }
            inst_idx += 1;
        }
        // Interpret the trailing control instructions.
        let resolve = |addr: u64, inst: &Decoded| -> u64 {
            let (disp, len) = match *inst {
                Decoded::Jump { disp, len } | Decoded::CondBr { disp, len } => (disp, len),
                _ => unreachable!(),
            };
            (addr as i64 + len as i64 + disp) as u64
        };
        let (term, branch_bytes) = match trailing.as_slice() {
            [] => (RecTerm::Fallthrough, 0u64),
            [(_, Decoded::Ret)] => (RecTerm::Ret, 1),
            [(a, j @ Decoded::Jump { len, .. })] => (RecTerm::Jump(resolve(*a, j)), *len as u64),
            [(a, c @ Decoded::CondBr { len, .. })] => {
                (RecTerm::Cond { taken: resolve(*a, c) }, *len as u64)
            }
            [(a, c @ Decoded::CondBr { len: cl, .. }), (b, j @ Decoded::Jump { len: jl, .. })] => (
                RecTerm::CondJump {
                    taken: resolve(*a, c),
                    ft: resolve(*b, j),
                },
                (*cl + *jl) as u64,
            ),
            // Anything stranger (e.g. padding after a ret inside the
            // extent): treat the last transfer alone, rest as bytes.
            many => {
                let (a, last) = many.last().expect("nonempty");
                match last {
                    Decoded::Ret => (RecTerm::Ret, 1),
                    Decoded::Jump { len, .. } => (RecTerm::Jump(resolve(*a, last)), *len as u64),
                    Decoded::CondBr { len, .. } => {
                        (RecTerm::Cond { taken: resolve(*a, last) }, *len as u64)
                    }
                    Decoded::Straight { .. } | Decoded::Call { .. } => (RecTerm::Fallthrough, 0),
                }
            }
        };
        let size = bend - baddr;
        blocks.push(RecBlock {
            addr: baddr,
            size,
            straight_bytes: size - branch_bytes,
            calls,
            term,
        });
    }
    Some(RecCfg {
        addr: start,
        size: end - start,
        blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::{disassemble, discover_functions};
    use propeller_codegen::{codegen_module, CodegenOptions};
    use propeller_ir::{BlockId, FunctionBuilder, Inst, ProgramBuilder, Terminator};
    use propeller_linker::{link, LinkInput, LinkOptions};

    fn one_function_cfg() -> RecCfg {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m.cc");
        let mut callee = FunctionBuilder::new("callee");
        callee.add_block(Vec::new(), Terminator::Ret);
        let callee = pb.add_function(m, callee);
        let mut f = FunctionBuilder::new("subject");
        f.add_block(
            vec![Inst::Alu],
            Terminator::CondBr {
                taken: BlockId(2),
                fallthrough: BlockId(1),
                prob_taken: 0.1,
            },
        );
        f.add_block(vec![Inst::Call(callee)], Terminator::Jump(BlockId(3)));
        f.add_block(vec![Inst::Store; 2], Terminator::Jump(BlockId(3)));
        f.add_block(Vec::new(), Terminator::Ret);
        pb.add_function(m, f);
        let p = pb.finish().unwrap();
        let r = codegen_module(&p.modules()[0], &p, &CodegenOptions::baseline()).unwrap();
        let bin = link(
            &[LinkInput::new(r.object, r.debug_layout)],
            &LinkOptions::default(),
        )
        .unwrap();
        let funcs = discover_functions(&bin);
        let subject = funcs.iter().find(|f| f.name == "subject").unwrap();
        reconstruct(&disassemble(&bin, subject)).unwrap()
    }

    #[test]
    fn blocks_match_source_structure() {
        let cfg = one_function_cfg();
        // Source has 4 blocks; reconstruction may add a padding block
        // at the end but must find at least the 4 real leaders.
        assert!(cfg.blocks.len() >= 4, "{cfg:#?}");
        assert!(matches!(cfg.blocks[0].term, RecTerm::Cond { .. }));
        // bb1 ends in an explicit jump over bb2.
        assert!(matches!(cfg.blocks[1].term, RecTerm::Jump(_)));
        assert!(!cfg.blocks[1].calls.is_empty());
        // bb2 falls through into bb3 (jump to next was elided by the
        // compiler).
        assert!(matches!(
            cfg.blocks[2].term,
            RecTerm::Fallthrough | RecTerm::Jump(_)
        ));
    }

    #[test]
    fn cond_taken_target_resolves_to_block_leader() {
        let cfg = one_function_cfg();
        let RecTerm::Cond { taken } = cfg.blocks[0].term else {
            panic!();
        };
        assert!(cfg.block_starting_at(taken).is_some());
    }

    #[test]
    fn block_lookup() {
        let cfg = one_function_cfg();
        let b1 = &cfg.blocks[1];
        assert_eq!(cfg.block_at(b1.addr), Some(1));
        assert_eq!(cfg.block_at(b1.addr + 1), Some(1));
        assert_eq!(cfg.block_at(cfg.addr + cfg.size + 10), None);
    }

    #[test]
    fn straight_bytes_exclude_branches() {
        let cfg = one_function_cfg();
        for b in &cfg.blocks {
            assert!(b.straight_bytes <= b.size);
        }
        // bb0: 1 ALU (3 bytes) + short-or-long condbr.
        assert_eq!(cfg.blocks[0].straight_bytes, 3);
    }
}
