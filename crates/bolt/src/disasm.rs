//! Function discovery and linear disassembly.

use propeller_codegen::isa::{decode, Decoded};
use propeller_linker::LinkedBinary;

/// Modeled in-memory cost of one decoded instruction record (BOLT's
/// `MCInst` plus annotation storage).
pub const BYTES_PER_INST_RECORD: u64 = 80;

/// One discovered function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DiscoveredFunction {
    /// Symbol name.
    pub name: String,
    /// Start address.
    pub addr: u64,
    /// Extent in bytes (to the next symbol or end of text).
    pub size: u64,
}

/// A decoded instruction at an address.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct DecodedInst {
    /// Instruction address.
    pub addr: u64,
    /// Decoded form.
    pub inst: Decoded,
}

/// The result of disassembling one function.
#[derive(Clone, PartialEq, Debug)]
pub struct DisassembledFunction {
    /// Discovery record.
    pub func: DiscoveredFunction,
    /// Instructions in address order; empty if the function was not
    /// *simple* (decoding failed somewhere — data in code, alignment
    /// islands...), in which case BOLT leaves it untouched.
    pub insts: Vec<DecodedInst>,
    /// Whether decoding covered the whole extent cleanly.
    pub simple: bool,
}

/// Discovers functions from the binary's symbol table: every global
/// symbol inside the text segment anchors a function; extents run to
/// the next symbol.
pub fn discover_functions(binary: &LinkedBinary) -> Vec<DiscoveredFunction> {
    let mut syms: Vec<(&String, u64)> = binary
        .symbols
        .iter()
        .filter(|&(_, &a)| a >= binary.text_start && a < binary.text_end)
        .map(|(n, &a)| (n, a))
        .collect();
    syms.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(b.0)));
    let mut out = Vec::with_capacity(syms.len());
    for (i, &(name, addr)) in syms.iter().enumerate() {
        // Co-located symbols (aliases) keep only the first.
        if i + 1 < syms.len() && syms[i + 1].1 == addr {
            continue;
        }
        let end = syms
            .get(i + 1)
            .map(|&(_, a)| a)
            .unwrap_or(binary.text_end);
        out.push(DiscoveredFunction {
            name: name.clone(),
            addr,
            size: end - addr,
        });
    }
    out
}

/// Linearly disassembles one function's bytes.
///
/// Trailing nop padding (inserted by the linker between sections) is
/// tolerated; any other decode failure marks the function non-simple.
pub fn disassemble(binary: &LinkedBinary, func: &DiscoveredFunction) -> DisassembledFunction {
    let mut insts = Vec::new();
    let Some(bytes) = binary.read(func.addr, func.size as usize) else {
        return DisassembledFunction {
            func: func.clone(),
            insts: Vec::new(),
            simple: false,
        };
    };
    let mut off = 0usize;
    let mut simple = true;
    while off < bytes.len() {
        match decode(&bytes[off..]) {
            Some(d) => {
                insts.push(DecodedInst {
                    addr: func.addr + off as u64,
                    inst: d,
                });
                off += d.len();
            }
            None => {
                simple = false;
                break;
            }
        }
    }
    if !simple {
        insts.clear();
    }
    DisassembledFunction {
        func: func.clone(),
        insts,
        simple,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_codegen::{codegen_module, CodegenOptions};
    use propeller_ir::{BlockId, FunctionBuilder, Inst, ProgramBuilder, Terminator};
    use propeller_linker::{link, LinkInput, LinkOptions};

    fn binary() -> LinkedBinary {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m.cc");
        let mut f = FunctionBuilder::new("first");
        f.add_block(
            vec![Inst::Alu; 2],
            Terminator::CondBr {
                taken: BlockId(1),
                fallthrough: BlockId(1),
                prob_taken: 0.5,
            },
        );
        f.add_block(vec![Inst::Load], Terminator::Ret);
        pb.add_function(m, f);
        let mut g = FunctionBuilder::new("second");
        g.add_block(vec![Inst::Store], Terminator::Ret);
        pb.add_function(m, g);
        let p = pb.finish().unwrap();
        let r = codegen_module(&p.modules()[0], &p, &CodegenOptions::baseline()).unwrap();
        link(
            &[LinkInput::new(r.object, r.debug_layout)],
            &LinkOptions {
                retain_relocs: true,
                ..LinkOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn discovery_orders_by_address_with_extents() {
        let bin = binary();
        let funcs = discover_functions(&bin);
        assert_eq!(funcs.len(), 2);
        assert_eq!(funcs[0].name, "first");
        assert_eq!(funcs[1].name, "second");
        assert_eq!(funcs[0].addr + funcs[0].size, funcs[1].addr);
        assert_eq!(funcs[1].addr + funcs[1].size, bin.text_end);
    }

    #[test]
    fn disassembly_decodes_whole_function() {
        let bin = binary();
        let funcs = discover_functions(&bin);
        let d = disassemble(&bin, &funcs[0]);
        assert!(d.simple);
        // 2x ALU + condbr + load + ret (+ possible alignment nops).
        assert!(d.insts.len() >= 5);
        assert!(matches!(d.insts.last().unwrap().inst, Decoded::Ret | Decoded::Straight { .. }));
    }

    #[test]
    fn garbage_bytes_mark_function_non_simple() {
        let mut bin = binary();
        let funcs = discover_functions(&bin);
        // Corrupt the opcode byte of `first`'s second instruction
        // (operand bytes are opaque; only opcodes drive decoding).
        let off = (funcs[0].addr - bin.base + 3) as usize;
        bin.image[off] = 0xEE;
        let d = disassemble(&bin, &funcs[0]);
        assert!(!d.simple);
        assert!(d.insts.is_empty());
    }
}
