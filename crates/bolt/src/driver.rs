//! The `llvm-bolt` + `perf2bolt` driver.

use crate::cfg::{reconstruct, RecCfg, BYTES_PER_BLOCK_RECORD};
use crate::disasm::{disassemble, discover_functions, DiscoveredFunction, BYTES_PER_INST_RECORD};
use crate::error::BoltError;
use crate::hfsort::{hfsort_order, FuncInfo};
use crate::rewrite::{rewrite, FunctionPlan};
use propeller_linker::{FinalLayout, LinkedBinary};
use propeller_obj::SizeBreakdown;
use propeller_profile::{AggregatedProfile, HardwareProfile};
use propeller_telemetry::{SpanId, Telemetry};
use propeller_wpa::exttsp::{order_nodes_traced, Edge, ExtTspParams, Node};
use std::collections::HashMap;

/// Configuration of the comparator, mirroring the paper's command
/// lines (§5, Methodology).
#[derive(Clone, PartialEq, Debug)]
pub struct BoltOptions {
    /// Selective processing (Lightning BOLT `-lite`): only sampled
    /// functions are carried through the optimization stage, reducing
    /// its memory. Profile conversion still disassembles everything.
    pub lite: bool,
    /// `-reorder-blocks=cache+` (Ext-TSP block reordering).
    pub reorder_blocks: bool,
    /// `-split-functions` / `-split-all-cold`.
    pub split_functions: bool,
    /// `-reorder-functions=hfsort`.
    pub reorder_functions: bool,
    /// Align the new text segment to 2 MiB for hugepages (BOLT's
    /// default; §5.3).
    pub huge_page_align: bool,
    /// The input contains restartable sequences or FIPS-140-2
    /// integrity-checked modules that naive rewriting corrupts (§5.8).
    pub input_has_integrity_checks: bool,
}

impl Default for BoltOptions {
    fn default() -> Self {
        BoltOptions {
            lite: false,
            reorder_blocks: true,
            split_functions: true,
            reorder_functions: true,
            huge_page_align: true,
            input_has_integrity_checks: false,
        }
    }
}

/// Work and memory measures of one BOLT run.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct BoltStats {
    /// Functions discovered from the symbol table.
    pub functions_discovered: usize,
    /// Functions that disassembled cleanly.
    pub simple_functions: usize,
    /// Instructions decoded (everything; conversion needs it all).
    pub insts_decoded: u64,
    /// Blocks reconstructed.
    pub blocks_reconstructed: u64,
    /// Functions actually rewritten.
    pub optimized_functions: usize,
    /// Input text bytes.
    pub text_bytes: u64,
    /// Newly emitted text bytes.
    pub new_text_bytes: u64,
    /// Padding inserted to reach the new segment's alignment.
    pub alignment_padding: u64,
    /// Modeled peak memory of profile conversion (`perf2bolt`): full
    /// linear disassembly plus profile maps (Figure 4's right-hand
    /// bars).
    pub profile_conversion_peak_memory: u64,
    /// Modeled peak memory of the optimization + rewrite stage
    /// (Figure 5's right-hand bars).
    pub optimize_peak_memory: u64,
}

/// The comparator's output.
#[derive(Clone, Debug)]
pub struct BoltOutput {
    /// Post-rewrite block layout (for the simulator).
    pub layout: FinalLayout,
    /// Output file size accounting.
    pub size_breakdown: SizeBreakdown,
    /// Whether the rewritten binary crashes at startup (§5.8).
    pub crash_on_startup: bool,
    /// Statistics.
    pub stats: BoltStats,
}

/// Profile data mapped onto reconstructed CFGs.
struct CfgProfile {
    /// Per function: block index -> count.
    counts: Vec<HashMap<usize, u64>>,
    /// Per function: (src block, dst block) -> weight.
    edges: Vec<HashMap<(usize, usize), u64>>,
    /// (caller func idx, callee func idx) -> weight.
    calls: HashMap<(u32, u32), u64>,
}

fn func_at(funcs: &[DiscoveredFunction], addr: u64) -> Option<usize> {
    let i = funcs.partition_point(|f| f.addr <= addr);
    let fi = i.checked_sub(1)?;
    (addr < funcs[fi].addr + funcs[fi].size).then_some(fi)
}

fn convert_profile(
    funcs: &[DiscoveredFunction],
    cfgs: &[Option<RecCfg>],
    agg: &AggregatedProfile,
) -> CfgProfile {
    let mut prof = CfgProfile {
        counts: vec![HashMap::new(); funcs.len()],
        edges: vec![HashMap::new(); funcs.len()],
        calls: HashMap::new(),
    };
    for (&(from, to), &w) in &agg.branches {
        let (Some(sf), Some(df)) = (func_at(funcs, from), func_at(funcs, to)) else {
            continue;
        };
        if sf == df {
            let Some(cfg) = &cfgs[sf] else { continue };
            let (Some(sb), Some(db)) = (cfg.block_at(from), cfg.block_at(to)) else {
                continue;
            };
            *prof.edges[sf].entry((sb, db)).or_insert(0) += w;
            for b in [sb, db] {
                let c = prof.counts[sf].entry(b).or_insert(0);
                *c = (*c).max(w);
            }
        } else if to == funcs[df].addr {
            *prof.calls.entry((sf as u32, df as u32)).or_insert(0) += w;
        }
    }
    for (&(lo, hi), &w) in &agg.fallthroughs {
        let Some(fi) = func_at(funcs, lo) else { continue };
        let Some(cfg) = &cfgs[fi] else { continue };
        let Some(mut b) = cfg.block_at(lo) else { continue };
        let mut prev: Option<usize> = None;
        while b < cfg.blocks.len() && cfg.blocks[b].addr <= hi {
            *prof.counts[fi].entry(b).or_insert(0) += w;
            if let Some(p) = prev {
                *prof.edges[fi].entry((p, b)).or_insert(0) += w;
            }
            prev = Some(b);
            b += 1;
        }
    }
    prof
}

/// Runs the monolithic post-link optimizer over a linked binary.
///
/// # Errors
///
/// Returns [`BoltError::MissingRelocations`] if the binary was linked
/// without `--emit-relocs`-style static relocations, or
/// [`BoltError::NoFunctions`] if function discovery found nothing.
pub fn run_bolt(
    binary: &LinkedBinary,
    profile: &HardwareProfile,
    opts: &BoltOptions,
) -> Result<BoltOutput, BoltError> {
    run_bolt_traced(binary, profile, opts, &Telemetry::disabled(), None)
}

/// [`run_bolt`], plus telemetry: a `bolt` span under `parent` (peak
/// bytes = the larger of the two modeled stage peaks) with stage
/// children for disassembly, profile conversion, layout planning,
/// hfsort and rewrite, and counters for decoded instructions and
/// reconstructed blocks.
///
/// # Errors
///
/// Same as [`run_bolt`].
pub fn run_bolt_traced(
    binary: &LinkedBinary,
    profile: &HardwareProfile,
    opts: &BoltOptions,
    tel: &Telemetry,
    parent: Option<SpanId>,
) -> Result<BoltOutput, BoltError> {
    let mut bolt_span = tel.span_under("bolt", parent);
    let bolt_id = bolt_span.id();
    let out = run_bolt_impl(binary, profile, opts, tel, bolt_id)?;
    if tel.is_enabled() {
        bolt_span.set_peak_bytes(
            out.stats
                .profile_conversion_peak_memory
                .max(out.stats.optimize_peak_memory),
        );
        tel.counter_add("bolt.insts_decoded", out.stats.insts_decoded);
        tel.counter_add("bolt.blocks_reconstructed", out.stats.blocks_reconstructed);
        tel.counter_add("bolt.optimized_functions", out.stats.optimized_functions as u64);
    }
    Ok(out)
}

fn run_bolt_impl(
    binary: &LinkedBinary,
    profile: &HardwareProfile,
    opts: &BoltOptions,
    tel: &Telemetry,
    bolt_id: Option<SpanId>,
) -> Result<BoltOutput, BoltError> {
    if binary.size_breakdown.relocs == 0 {
        return Err(BoltError::MissingRelocations);
    }
    let funcs = discover_functions(binary);
    if funcs.is_empty() {
        return Err(BoltError::NoFunctions);
    }

    // Linear disassembly of every discovered function (conversion
    // requires full coverage).
    let disasm_span = tel.span_under("bolt.disassemble", bolt_id);
    let mut cfgs: Vec<Option<RecCfg>> = Vec::with_capacity(funcs.len());
    let mut stats = BoltStats {
        functions_discovered: funcs.len(),
        text_bytes: binary.text_end - binary.text_start,
        ..BoltStats::default()
    };
    for f in &funcs {
        let d = disassemble(binary, f);
        stats.insts_decoded += d.insts.len() as u64;
        if d.simple {
            stats.simple_functions += 1;
        }
        let cfg = reconstruct(&d);
        if let Some(c) = &cfg {
            stats.blocks_reconstructed += c.blocks.len() as u64;
        }
        cfgs.push(cfg);
    }
    drop(disasm_span);

    // perf2bolt.
    let agg;
    let prof;
    {
        let mut s = tel.span_under("bolt.convert_profile", bolt_id);
        agg = AggregatedProfile::from_profile(profile);
        prof = convert_profile(&funcs, &cfgs, &agg);
        stats.profile_conversion_peak_memory = stats.insts_decoded * BYTES_PER_INST_RECORD
            + agg.modeled_memory_bytes()
            + profile.raw_size_bytes();
        s.set_peak_bytes(stats.profile_conversion_peak_memory);
    }

    // Plan per-function layouts.
    let plan_span = tel.span_under("bolt.plan_layouts", bolt_id);
    let mut plans: Vec<FunctionPlan> = Vec::new();
    let mut opt_insts = 0u64;
    for (fi, cfg) in cfgs.iter().enumerate() {
        let Some(cfg) = cfg else { continue };
        let total: u64 = prof.counts[fi].values().sum();
        if total == 0 {
            continue;
        }
        opt_insts += cfg.blocks.len() as u64 * 4; // re-decoded per stage
        let count = |b: usize| prof.counts[fi].get(&b).copied().unwrap_or(0);
        let mut hot: Vec<usize> = (0..cfg.blocks.len()).filter(|&b| count(b) > 0).collect();
        if !hot.contains(&0) {
            hot.insert(0, 0);
        }
        let hot_order: Vec<usize> = if opts.reorder_blocks {
            let nodes: Vec<Node> = hot
                .iter()
                .map(|&b| Node {
                    id: b as u32,
                    size: cfg.blocks[b].size as u32,
                    count: count(b),
                })
                .collect();
            let mut edges: Vec<Edge> = prof.edges[fi]
                .iter()
                .filter(|(&(s, d), _)| hot.contains(&s) && hot.contains(&d))
                .map(|(&(s, d), &w)| Edge {
                    src: s as u32,
                    dst: d as u32,
                    weight: w,
                })
                .collect();
            edges.sort_unstable_by_key(|e| (e.src, e.dst));
            order_nodes_traced(&nodes, &edges, 0, &ExtTspParams::default(), tel)
                .into_iter()
                .map(|b| b as usize)
                .collect()
        } else {
            hot.clone()
        };
        let cold: Vec<usize> = (0..cfg.blocks.len()).filter(|b| !hot.contains(b)).collect();
        let (hot_order, cold) = if opts.split_functions {
            (hot_order, cold)
        } else {
            let mut all = hot_order;
            all.extend(&cold);
            (all, Vec::new())
        };
        plans.push(FunctionPlan {
            func_idx: fi,
            hot_order,
            cold,
        });
    }

    drop(plan_span);

    // hfsort over the optimized functions.
    let hfsort_span = tel.span_under("bolt.hfsort", bolt_id);
    let planned: Vec<usize> = plans.iter().map(|p| p.func_idx).collect();
    let func_order: Vec<usize> = if opts.reorder_functions {
        let infos: Vec<FuncInfo> = planned
            .iter()
            .map(|&fi| FuncInfo {
                id: fi as u32,
                size: funcs[fi].size,
                samples: prof.counts[fi].values().sum(),
            })
            .collect();
        hfsort_order(&infos, &prof.calls)
            .into_iter()
            .map(|id| id as usize)
            .collect()
    } else {
        planned.clone()
    };

    drop(hfsort_span);

    let rewrite_span = tel.span_under("bolt.rewrite", bolt_id);
    let (layout, rstats) = rewrite(binary, &cfgs, &plans, &func_order, opts.huge_page_align);
    drop(rewrite_span);
    stats.optimized_functions = rstats.optimized_functions;
    stats.new_text_bytes = rstats.new_text_bytes;
    stats.alignment_padding = rstats.alignment_padding;

    let stage_insts = if opts.lite {
        opt_insts.max(1)
    } else {
        stats.insts_decoded
    };
    stats.optimize_peak_memory = stage_insts * BYTES_PER_INST_RECORD
        + stats.blocks_reconstructed * BYTES_PER_BLOCK_RECORD
        + 2 * stats.text_bytes;

    let mut size_breakdown = binary.size_breakdown;
    size_breakdown.text += (rstats.alignment_padding + rstats.new_text_bytes) as usize;
    size_breakdown.eh_frame += rstats.fragments * 40;

    Ok(BoltOutput {
        layout,
        size_breakdown,
        crash_on_startup: opts.input_has_integrity_checks,
        stats,
    })
}
