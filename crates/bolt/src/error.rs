//! BOLT driver errors.

use std::error::Error;
use std::fmt;

/// Failure modes of the monolithic rewriter.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BoltError {
    /// The input binary was linked without static relocations
    /// (`.rela`); disassembly-driven rewriting needs them (§5.3:
    /// "static relocations necessary to ease disassembly and binary
    /// rewriting").
    MissingRelocations,
    /// No text symbols were found to anchor function discovery.
    NoFunctions,
}

impl fmt::Display for BoltError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoltError::MissingRelocations => {
                write!(f, "input binary retains no static relocations; rebuild with --emit-relocs")
            }
            BoltError::NoFunctions => write!(f, "no function symbols found in text"),
        }
    }
}

impl Error for BoltError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(BoltError::MissingRelocations.to_string().contains("relocs"));
        assert!(!BoltError::NoFunctions.to_string().is_empty());
    }
}
