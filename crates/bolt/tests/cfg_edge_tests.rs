//! CFG-reconstruction edge cases for the disassembly-driven comparator.

use propeller_bolt::cfg::{reconstruct, RecTerm};
use propeller_bolt::disasm::{disassemble, discover_functions};
use propeller_codegen::{codegen_module, CodegenOptions};
use propeller_ir::{BlockId, FunctionBuilder, Inst, ProgramBuilder, Terminator};
use propeller_linker::{link, LinkInput, LinkOptions, LinkedBinary};

fn link_single(f: FunctionBuilder) -> LinkedBinary {
    let mut pb = ProgramBuilder::new();
    let m = pb.add_module("m.cc");
    pb.add_function(m, f);
    let p = pb.finish().unwrap();
    let r = codegen_module(&p.modules()[0], &p, &CodegenOptions::baseline()).unwrap();
    link(
        &[LinkInput::new(r.object, r.debug_layout)],
        &LinkOptions::default(),
    )
    .unwrap()
}

#[test]
fn cond_plus_jump_pair_reconstructed() {
    // bb0's branch has neither successor adjacent: the compiler must
    // emit Jcc + JMP, and the disassembler must see a CondJump.
    let mut f = FunctionBuilder::new("pair");
    f.add_block(
        vec![Inst::Alu],
        Terminator::CondBr {
            taken: BlockId(2),
            fallthrough: BlockId(3),
            prob_taken: 0.5,
        },
    );
    f.add_block(vec![Inst::Load], Terminator::Ret); // unreachable filler
    f.add_block(vec![Inst::Store], Terminator::Ret);
    f.add_block(vec![Inst::Alu; 2], Terminator::Ret);
    let bin = link_single(f);
    let funcs = discover_functions(&bin);
    let d = disassemble(&bin, &funcs[0]);
    assert!(d.simple);
    let cfg = reconstruct(&d).unwrap();
    // The emitter produced Jcc taken; JMP ft. The address after the
    // Jcc is a leader (its fall-through target), so reconstruction
    // yields a Cond block whose fall-through successor is a bare Jump
    // block — the same CFG, split at the leader.
    let RecTerm::Cond { taken } = cfg.blocks[0].term else {
        panic!("expected Cond, got {:?}", cfg.blocks[0].term);
    };
    assert!(cfg.block_starting_at(taken).is_some());
    let jmp_block = &cfg.blocks[1];
    let RecTerm::Jump(ft) = jmp_block.term else {
        panic!("expected trailing Jump block, got {:?}", jmp_block.term);
    };
    assert!(cfg.block_starting_at(ft).is_some());
    assert_ne!(taken, ft);
    assert_eq!(jmp_block.straight_bytes, 0, "the jump block is only the jump");
    // The Cond block's straight bytes are the single ALU.
    assert_eq!(cfg.blocks[0].straight_bytes, 3);
}

#[test]
fn backward_loop_branch_reconstructed() {
    let mut f = FunctionBuilder::new("loopy");
    f.add_block(vec![Inst::Alu], Terminator::Jump(BlockId(1)));
    f.add_block(
        vec![Inst::Load],
        Terminator::CondBr {
            taken: BlockId(1),
            fallthrough: BlockId(2),
            prob_taken: 0.9,
        },
    );
    f.add_block(Vec::new(), Terminator::Ret);
    let bin = link_single(f);
    let funcs = discover_functions(&bin);
    let cfg = reconstruct(&disassemble(&bin, &funcs[0])).unwrap();
    // The loop head is a leader (target of the back edge).
    let head = cfg
        .blocks
        .iter()
        .find(|b| matches!(b.term, RecTerm::Cond { taken } if taken == b.addr))
        .expect("self-looping block found");
    assert!(head.straight_bytes > 0);
}

#[test]
fn non_simple_function_excluded_from_rewriting() {
    // Corrupt one function; run the full BOLT driver; the corrupt
    // function must keep its original layout.
    let mut pb = ProgramBuilder::new();
    let m = pb.add_module("m.cc");
    let bbb_id = propeller_ir::FunctionId(1);
    let mut a = FunctionBuilder::new("aaa_fine");
    let mut insts = vec![Inst::Alu; 4];
    insts.push(Inst::Call(bbb_id)); // a call keeps a relocation in the BM binary
    a.add_block(insts, Terminator::Ret);
    pb.add_function(m, a);
    let mut b = FunctionBuilder::new("bbb_corrupt");
    b.add_block(vec![Inst::Alu; 4], Terminator::Ret);
    pb.add_function(m, b);
    let p = pb.finish().unwrap();
    let r = codegen_module(&p.modules()[0], &p, &CodegenOptions::baseline()).unwrap();
    let mut bin = link(
        &[LinkInput::new(r.object, r.debug_layout)],
        &LinkOptions {
            retain_relocs: true,
            ..LinkOptions::default()
        },
    )
    .unwrap();
    // Smash an opcode in bbb_corrupt.
    let addr = bin.symbol("bbb_corrupt").unwrap();
    let off = (addr - bin.base + 3) as usize;
    bin.image[off] = 0xEE;

    // An (empty-ish) profile naming both functions.
    let mut profile = propeller_profile::HardwareProfile::new("t");
    let aaa = bin.symbol("aaa_fine").unwrap();
    profile.samples.push(propeller_profile::LbrSample::new(vec![
        propeller_profile::LbrRecord {
            from: aaa + 1,
            to: aaa,
        };
        5
    ]));
    let out = propeller_bolt::run_bolt(&bin, &profile, &propeller_bolt::BoltOptions::default())
        .unwrap();
    assert_eq!(out.stats.simple_functions, 1);
    // bbb_corrupt's block stays at its original address.
    let orig = bin
        .layout
        .functions
        .iter()
        .find(|f| f.func_symbol == "bbb_corrupt")
        .unwrap()
        .blocks[0];
    let after = out
        .layout
        .functions
        .iter()
        .find(|f| f.func_symbol == "bbb_corrupt")
        .unwrap()
        .blocks[0];
    assert_eq!(orig, after);
}
