//! End-to-end comparator tests: BOLT vs baseline vs Propeller on the
//! same profile.

use propeller_bolt::{run_bolt, BoltError, BoltOptions};
use propeller_codegen::{codegen_module, CodegenOptions};
use propeller_ir::{FunctionId, Program};
use propeller_linker::{link, LinkInput, LinkOptions, LinkedBinary};
use propeller_profile::SamplingConfig;
use propeller_sim::{simulate, ProgramImage, SimOptions, UarchConfig, Workload};
use propeller_synth::{generate, spec_by_name, GenParams};

fn build(p: &Program, cg: &CodegenOptions, lk: &LinkOptions) -> LinkedBinary {
    let inputs: Vec<LinkInput> = p
        .modules()
        .iter()
        .map(|m| {
            let r = codegen_module(m, p, cg).unwrap();
            LinkInput::new(r.object, r.debug_layout)
        })
        .collect();
    link(&inputs, lk).unwrap()
}

fn fixture() -> (Program, Vec<(FunctionId, f64)>) {
    let spec = spec_by_name("541.leela").unwrap();
    let g = generate(
        &spec,
        &GenParams {
            scale: 0.35,
            seed: 99,
            funcs_per_module: 12,
            entry_points: 3,
        },
    );
    (g.program, g.entries)
}

#[test]
fn bolt_requires_relocations() {
    let (p, _) = fixture();
    let plain = build(&p, &CodegenOptions::baseline(), &LinkOptions::default());
    let profile = propeller_profile::HardwareProfile::new("x");
    assert!(matches!(
        run_bolt(&plain, &profile, &BoltOptions::default()),
        Err(BoltError::MissingRelocations)
    ));
}

#[test]
fn bolt_improves_layout_like_propeller() {
    let (p, entries) = fixture();
    let bm = build(
        &p,
        &CodegenOptions::baseline(),
        &LinkOptions {
            retain_relocs: true,
            ..LinkOptions::default()
        },
    );
    let img = ProgramImage::build(&p, &bm.layout).unwrap();
    let workload = Workload::new(entries.clone(), 250_000);
    let prof_run = simulate(
        &img,
        &workload,
        &UarchConfig::default(),
        &SimOptions {
            sampling: Some(SamplingConfig { period: 61 }),
            heatmap: None,
            collect_call_misses: false,
            attribution: false,
        },
    );
    let profile = prof_run.profile.unwrap();

    let out = run_bolt(&bm, &profile, &BoltOptions::default()).unwrap();
    assert!(!out.crash_on_startup);
    assert!(out.stats.optimized_functions > 0);
    assert!(out.stats.simple_functions > 0);
    assert!(out.stats.insts_decoded > 0);

    // The BOLT-optimized layout must beat the baseline.
    let base = simulate(&img, &workload, &UarchConfig::default(), &SimOptions::default()).counters;
    let opt_img = ProgramImage::build(&p, &out.layout).unwrap();
    let opt = simulate(&opt_img, &workload, &UarchConfig::default(), &SimOptions::default()).counters;
    assert!(
        opt.taken_branches < base.taken_branches,
        "taken {} -> {}",
        base.taken_branches,
        opt.taken_branches
    );
    assert!(opt.speedup_pct_over(&base) > 0.0);
}

#[test]
fn bolt_binary_is_much_larger_than_input() {
    let (p, entries) = fixture();
    let bm = build(
        &p,
        &CodegenOptions::baseline(),
        &LinkOptions {
            retain_relocs: true,
            ..LinkOptions::default()
        },
    );
    let img = ProgramImage::build(&p, &bm.layout).unwrap();
    let profile = simulate(
        &img,
        &Workload::new(entries, 150_000),
        &UarchConfig::default(),
        &SimOptions {
            sampling: Some(SamplingConfig { period: 61 }),
            heatmap: None,
            collect_call_misses: false,
            attribution: false,
        },
    )
    .profile
    .unwrap();
    let out = run_bolt(&bm, &profile, &BoltOptions::default()).unwrap();
    // Original text retained + new segment + 2MiB alignment: the text
    // grows substantially (§5.3).
    assert!(
        out.size_breakdown.text as f64 > 1.3 * bm.size_breakdown.text as f64,
        "text {} -> {}",
        bm.size_breakdown.text,
        out.size_breakdown.text
    );
    // Without hugepage alignment the growth is smaller.
    let no_huge = run_bolt(
        &bm,
        &profile,
        &BoltOptions {
            huge_page_align: false,
            ..BoltOptions::default()
        },
    )
    .unwrap();
    assert!(no_huge.size_breakdown.text < out.size_breakdown.text);
}

#[test]
fn lite_mode_reduces_optimize_memory() {
    let (p, entries) = fixture();
    let bm = build(
        &p,
        &CodegenOptions::baseline(),
        &LinkOptions {
            retain_relocs: true,
            ..LinkOptions::default()
        },
    );
    let img = ProgramImage::build(&p, &bm.layout).unwrap();
    let profile = simulate(
        &img,
        &Workload::new(entries, 150_000),
        &UarchConfig::default(),
        &SimOptions {
            sampling: Some(SamplingConfig { period: 61 }),
            heatmap: None,
            collect_call_misses: false,
            attribution: false,
        },
    )
    .profile
    .unwrap();
    let full = run_bolt(&bm, &profile, &BoltOptions::default()).unwrap();
    let lite = run_bolt(
        &bm,
        &profile,
        &BoltOptions {
            lite: true,
            ..BoltOptions::default()
        },
    )
    .unwrap();
    assert!(lite.stats.optimize_peak_memory < full.stats.optimize_peak_memory);
    // Profile conversion disassembles everything either way.
    assert_eq!(
        lite.stats.profile_conversion_peak_memory,
        full.stats.profile_conversion_peak_memory
    );
}

#[test]
fn integrity_checked_binaries_crash_at_startup() {
    let (p, entries) = fixture();
    let bm = build(
        &p,
        &CodegenOptions::baseline(),
        &LinkOptions {
            retain_relocs: true,
            ..LinkOptions::default()
        },
    );
    let img = ProgramImage::build(&p, &bm.layout).unwrap();
    let profile = simulate(
        &img,
        &Workload::new(entries, 50_000),
        &UarchConfig::default(),
        &SimOptions {
            sampling: Some(SamplingConfig { period: 61 }),
            heatmap: None,
            collect_call_misses: false,
            attribution: false,
        },
    )
    .profile
    .unwrap();
    let out = run_bolt(
        &bm,
        &profile,
        &BoltOptions {
            input_has_integrity_checks: true,
            ..BoltOptions::default()
        },
    )
    .unwrap();
    assert!(out.crash_on_startup);
}
