//! Pipeline errors.

use propeller_buildsys::BuildError;
use propeller_codegen::CodegenError;
use propeller_linker::LinkError;
use std::error::Error;
use std::fmt;

/// Any failure of the four-phase pipeline.
#[derive(Clone, PartialEq, Debug)]
pub enum PipelineError {
    /// A codegen action failed.
    Codegen(CodegenError),
    /// A link action failed.
    Link(LinkError),
    /// The build system rejected an action (memory limit).
    Build(BuildError),
    /// A phase was invoked before its prerequisite phase.
    PhaseOrder {
        /// The missing prerequisite.
        needs: &'static str,
    },
    /// The simulator could not build an image from the linked binary.
    Image(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Codegen(e) => write!(f, "codegen action failed: {e}"),
            PipelineError::Link(e) => write!(f, "link action failed: {e}"),
            PipelineError::Build(e) => write!(f, "build system rejected action: {e}"),
            PipelineError::PhaseOrder { needs } => {
                write!(f, "phase invoked before {needs} completed")
            }
            PipelineError::Image(e) => write!(f, "simulator image construction failed: {e}"),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Codegen(e) => Some(e),
            PipelineError::Link(e) => Some(e),
            PipelineError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodegenError> for PipelineError {
    fn from(e: CodegenError) -> Self {
        PipelineError::Codegen(e)
    }
}

impl From<LinkError> for PipelineError {
    fn from(e: LinkError) -> Self {
        PipelineError::Link(e)
    }
}

impl From<BuildError> for PipelineError {
    fn from(e: BuildError) -> Self {
        PipelineError::Build(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = PipelineError::PhaseOrder { needs: "phase 3" };
        assert!(e.to_string().contains("phase 3"));
        let e = PipelineError::Link(LinkError::DuplicateSymbol("x".into()));
        assert!(e.source().is_some());
    }
}
