//! Pipeline errors.
//!
//! Every variant wraps its typed source error (no stringification), so
//! degradation logic can match on causes — e.g. distinguishing a
//! [`BuildError::ActionOverMemoryLimit`] plan error (not retryable)
//! from an [`ImageError::MissingFunction`] layout inconsistency.

use propeller_buildsys::BuildError;
use propeller_codegen::CodegenError;
use propeller_linker::LinkError;
use propeller_sim::ImageError;
use std::error::Error;
use std::fmt;

/// Any failure of the four-phase pipeline.
#[derive(Clone, PartialEq, Debug)]
pub enum PipelineError {
    /// A codegen action failed.
    Codegen(CodegenError),
    /// A link action failed.
    Link(LinkError),
    /// The build system rejected an action (memory limit).
    Build(BuildError),
    /// A phase was invoked before its prerequisite phase.
    PhaseOrder {
        /// The missing prerequisite.
        needs: &'static str,
    },
    /// The simulator could not build an image from the linked binary.
    /// The nested [`ImageError`] names the exact inconsistency
    /// (missing function/block, malformed branch bytes).
    Image(ImageError),
    /// An internal invariant the pipeline relies on did not hold.
    /// Reaching this is a bug in the pipeline, not in its inputs; it
    /// is a typed error instead of a panic so chaos runs degrade
    /// rather than abort.
    Internal {
        /// The violated invariant.
        what: &'static str,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Codegen(e) => write!(f, "codegen action failed: {e}"),
            PipelineError::Link(e) => write!(f, "link action failed: {e}"),
            PipelineError::Build(e) => write!(f, "build system rejected action: {e}"),
            PipelineError::PhaseOrder { needs } => {
                write!(f, "phase invoked before {needs} completed")
            }
            PipelineError::Image(e) => write!(f, "simulator image construction failed: {e}"),
            PipelineError::Internal { what } => {
                write!(f, "pipeline invariant violated: {what}")
            }
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Codegen(e) => Some(e),
            PipelineError::Link(e) => Some(e),
            PipelineError::Build(e) => Some(e),
            PipelineError::Image(e) => Some(e),
            PipelineError::PhaseOrder { .. } | PipelineError::Internal { .. } => None,
        }
    }
}

impl From<CodegenError> for PipelineError {
    fn from(e: CodegenError) -> Self {
        PipelineError::Codegen(e)
    }
}

impl From<LinkError> for PipelineError {
    fn from(e: LinkError) -> Self {
        PipelineError::Link(e)
    }
}

impl From<BuildError> for PipelineError {
    fn from(e: BuildError) -> Self {
        PipelineError::Build(e)
    }
}

impl From<ImageError> for PipelineError {
    fn from(e: ImageError) -> Self {
        PipelineError::Image(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = PipelineError::PhaseOrder { needs: "phase 3" };
        assert!(e.to_string().contains("phase 3"));
        assert!(e.source().is_none());
        let e = PipelineError::Link(LinkError::DuplicateSymbol("x".into()));
        assert!(e.source().is_some());
    }

    #[test]
    fn image_variant_preserves_the_typed_cause() {
        let e = PipelineError::from(ImageError::MissingFunction("hot_fn".into()));
        // Degradation logic can match on the nested cause…
        assert!(matches!(
            e,
            PipelineError::Image(ImageError::MissingFunction(ref name)) if name == "hot_fn"
        ));
        // …and the source chain is intact for error reporters.
        assert!(e.source().unwrap().to_string().contains("hot_fn"));
    }

    #[test]
    fn internal_variant_names_the_invariant() {
        let e = PipelineError::Internal { what: "profiler returned no profile" };
        assert!(e.to_string().contains("no profile"));
    }
}
