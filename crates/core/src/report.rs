//! Pipeline reports.

use propeller_buildsys::{CacheStats, PhaseReport};
use propeller_faults::DegradationLedger;
use propeller_sim::{AttributedCounters, CounterSet};
use propeller_wpa::WpaStats;

/// Wall/CPU time and memory of the four phases (the Table 5 columns).
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub struct PhaseTimes {
    /// Phase 1: compile + cache optimized IR.
    pub phase1: PhaseReport,
    /// Phase 2: metadata build (backends + link).
    pub phase2: PhaseReport,
    /// Phase 3: profile conversion + whole-program analysis.
    pub phase3: PhaseReport,
    /// Phase 4: hot codegen + relink.
    pub phase4: PhaseReport,
}

impl PhaseTimes {
    /// Total wall-clock seconds across phases.
    pub fn total_wall_secs(&self) -> f64 {
        self.phase1.wall_secs + self.phase2.wall_secs + self.phase3.wall_secs + self.phase4.wall_secs
    }

    /// These times with the *measured* pool timings (`wall_us`,
    /// `busy_us`) zeroed — the deterministic view [`PropellerReport`]
    /// embeds. Measured wall-clock differs between identical runs, so
    /// it must never participate in replay equality or serialized
    /// reports; it stays on [`crate::Propeller::times`] for the doctor
    /// and human-facing output.
    pub fn modeled_only(&self) -> PhaseTimes {
        let strip = |mut p: PhaseReport| {
            p.wall_us = 0;
            p.busy_us = 0;
            p
        };
        PhaseTimes {
            phase1: strip(self.phase1),
            phase2: strip(self.phase2),
            phase3: strip(self.phase3),
            phase4: strip(self.phase4),
        }
    }
}

/// The summary a [`crate::Propeller::run_all`] invocation returns.
#[derive(Clone, PartialEq, Debug)]
pub struct PropellerReport {
    /// Per-phase times and memory.
    pub times: PhaseTimes,
    /// IR-cache statistics from Phase 1 (the §2.1 ">90% hit rate"
    /// incremental-release effect shows up here).
    pub ir_cache: CacheStats,
    /// Object-cache statistics across phases 2 and 4 (Phase 4's hit
    /// rate is the "% Cold" effect: cold objects come from cache).
    pub object_cache: CacheStats,
    /// Fraction of modules re-code-generated in Phase 4.
    pub hot_module_fraction: f64,
    /// Hot functions found by WPA.
    pub hot_functions: usize,
    /// Full Phase 3 whole-program-analysis statistics (coverage inputs:
    /// skipped functions, unmapped addresses, DCFG size).
    pub wpa: WpaStats,
    /// Relaxation statistics of the final relink.
    pub deleted_jumps: u64,
    /// Branches shrunk by the final relink.
    pub shrunk_branches: u64,
    /// Name of the optimized output.
    pub optimized_binary_name: String,
    /// Exact account of every degradation the run performed — clean
    /// (all-zero, optimized layout) unless the configured fault plan
    /// actually fired.
    pub degradation: DegradationLedger,
    /// Per-symbol attribution of the Phase 3 profiling run, when
    /// [`crate::PropellerOptions::attribution`] requested it — the
    /// `perf report` view of the very execution the layout was
    /// derived from.
    pub profile_attribution: Option<AttributedCounters>,
}

/// Baseline-vs-optimized measurement from the simulator.
#[derive(Clone, PartialEq, Debug)]
pub struct EvalReport {
    /// Counters on the baseline (PGO+ThinLTO-equivalent) binary.
    pub baseline: CounterSet,
    /// Counters on the Propeller-optimized binary.
    pub optimized: CounterSet,
}

impl EvalReport {
    /// Percent speedup of optimized over baseline (Table 3 metric).
    pub fn speedup_pct(&self) -> f64 {
        self.optimized.speedup_pct_over(&self.baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_phases() {
        let mut t = PhaseTimes::default();
        t.phase1.wall_secs = 1.0;
        t.phase3.wall_secs = 2.5;
        assert!((t.total_wall_secs() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn eval_speedup_delegates() {
        let base = CounterSet {
            insts: 100,
            cycles: 200,
            ..CounterSet::default()
        };
        let opt = CounterSet {
            insts: 100,
            cycles: 100,
            ..CounterSet::default()
        };
        let e = EvalReport {
            baseline: base,
            optimized: opt,
        };
        assert!((e.speedup_pct() - 100.0).abs() < 1e-9);
    }
}
