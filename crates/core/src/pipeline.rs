//! The four-phase Propeller pipeline.

use crate::error::PipelineError;
use crate::fingerprint::module_fingerprint;
use crate::report::{EvalReport, PhaseTimes, PropellerReport};
use parking_lot::Mutex;
use propeller_buildsys::{
    ActionCache, ActionSpec, CacheEvent, CostModel, Executor, MachineConfig, PhaseReport,
    PoolStats, ResilienceReport,
};
use propeller_codegen::{
    codegen_module_traced, CodegenError, CodegenOptions, CodegenResult, FunctionClusters,
};
use propeller_faults::{
    DegradationLedger, FaultInjector, FaultKind, FaultPlan, LayoutMode, RetryPolicy,
};
use propeller_ir::{FunctionId, Program};
use propeller_linker::{link_traced, LinkInput, LinkOptions, LinkedBinary};
use propeller_obj::ContentHash;
use propeller_profile::{
    degrade_profile, salvage_profile, AggregatedProfile, HardwareProfile, SamplingConfig,
};
use propeller_sim::{simulate_traced, CounterSet, ProgramImage, SimOptions, UarchConfig, Workload};
use propeller_telemetry::{SpanId, Telemetry};
use propeller_wpa::{
    apply_prefetches, prefetch_directives, run_wpa_agg_traced, run_wpa_traced, WpaOptions,
    WpaOutput,
};
use std::sync::Arc;

/// What [`Propeller::codegen_batch`] hands back: artifacts in plan
/// order, the action specs for the misses, and the pool's measured
/// timing.
type CodegenBatch = (Vec<Arc<CodegenResult>>, Vec<ActionSpec>, PoolStats);

/// One cache miss computed on the worker pool: its submission-order
/// plan position, its cache key, and the codegen outcome.
type ComputedModule = (usize, ContentHash, Result<Arc<CodegenResult>, CodegenError>);

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct PropellerOptions {
    /// Whole-program-analysis configuration.
    pub wpa: WpaOptions,
    /// LBR sampling configuration for the profiling run.
    pub sampling: SamplingConfig,
    /// Basic blocks to execute while profiling (the "representative
    /// load" duration).
    pub profile_budget: u64,
    /// Microarchitecture the workload runs on.
    pub uarch: UarchConfig,
    /// Machine the build runs on (distributed by default).
    pub machine: MachineConfig,
    /// Build-action cost model.
    pub cost: CostModel,
    /// Workload seed.
    pub seed: u64,
    /// §3.5 software prefetch insertion: `Some(min_misses)` enables
    /// the pass, inserting prefetches at call sites whose callee entry
    /// missed the L1i at least `min_misses` times during profiling.
    pub prefetch: Option<u64>,
    /// Scheduled faults for chaos testing. The default (empty) plan
    /// injects nothing and the pipeline takes the exact legacy code
    /// path — zero-fault runs are bit-identical to builds without a
    /// fault layer.
    pub faults: FaultPlan,
    /// Retry budget / backoff for transient action failures and
    /// timeouts (only consulted when `faults` schedules any).
    pub retry: RetryPolicy,
    /// Minimum fraction of LBR records that must survive salvage for
    /// the WPA layout to be trusted. Below the floor, the hot
    /// functions are marked cold and the relink falls back to the
    /// identity symbol order (a correct, baseline-equivalent layout).
    pub profile_floor: f64,
    /// Figure-7 heat-map resolution `(address buckets, time buckets)`
    /// for the Phase 3 profiling run; `None` (the default) collects no
    /// heat map.
    pub heatmap: Option<(usize, usize)>,
    /// Attribute the Phase 3 profiling run's events to symbols and
    /// blocks (the `perf report` view); off by default.
    pub attribution: bool,
    /// Record full layout decision provenance during Phase 3: every
    /// Ext-TSP merge evaluated (accepted and rejected), and which
    /// profile edges funded each CFG edge weight. Off by default;
    /// arming never changes the layout or any default report.
    pub provenance: bool,
    /// Worker threads for real local work: the codegen fan-out of
    /// Phases 2/4 and the Ext-TSP gain evaluation. Defaults to the
    /// machine's available parallelism; `1` forces the exact serial
    /// legacy path. Every output is bit-identical at every value —
    /// results are always reduced in submission order.
    pub jobs: usize,
}

impl Default for PropellerOptions {
    fn default() -> Self {
        PropellerOptions {
            wpa: WpaOptions::default(),
            sampling: SamplingConfig::default(),
            profile_budget: 200_000,
            uarch: UarchConfig::default(),
            machine: MachineConfig::distributed(),
            cost: CostModel::default(),
            seed: 0x5eed,
            prefetch: None,
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
            profile_floor: 0.25,
            heatmap: None,
            attribution: false,
            provenance: false,
            jobs: propeller_buildsys::default_jobs(),
        }
    }
}

/// Content-addressed build caches, shareable between pipeline
/// instances: successive releases of the same application reuse each
/// other's IR and object artifacts exactly the way the paper's
/// distributed build system does (§2.1, ">90% hit rate").
#[derive(Clone, Default)]
pub struct BuildCaches {
    ir: Arc<Mutex<ActionCache<ContentHash>>>,
    obj: Arc<Mutex<ActionCache<Arc<CodegenResult>>>>,
}

impl BuildCaches {
    /// Creates empty caches.
    pub fn new() -> Self {
        Self::default()
    }

    /// Object-cache statistics (cumulative across every pipeline
    /// sharing these caches).
    pub fn object_stats(&self) -> propeller_buildsys::CacheStats {
        self.obj.lock().stats()
    }

    /// IR-cache statistics (cumulative across every pipeline sharing
    /// these caches).
    pub fn ir_stats(&self) -> propeller_buildsys::CacheStats {
        self.ir.lock().stats()
    }

    /// Bound both caches to `capacity` live entries each (FIFO
    /// pressure eviction). `None` restores the unbounded default.
    pub fn set_capacity(&self, capacity: Option<usize>) {
        self.ir.lock().set_capacity(capacity);
        self.obj.lock().set_capacity(capacity);
    }

    /// Attribute subsequent cache traffic to `tenant`. The relink
    /// service calls this serially before each job; batch runs never
    /// touch it, so their traffic lands on tenant 0.
    pub fn set_tenant(&self, tenant: u32) {
        self.ir.lock().set_owner(tenant);
        self.obj.lock().set_owner(tenant);
    }

    /// Object-cache counters attributed to `tenant`.
    pub fn tenant_object_stats(&self, tenant: u32) -> propeller_buildsys::CacheStats {
        self.obj.lock().owner_stats(tenant)
    }

    /// IR-cache counters attributed to `tenant`.
    pub fn tenant_ir_stats(&self, tenant: u32) -> propeller_buildsys::CacheStats {
        self.ir.lock().owner_stats(tenant)
    }

    /// How many of `tenant`'s entries (both caches) were lost to
    /// pressure eviction.
    pub fn tenant_pressure_evictions(&self, tenant: u32) -> u64 {
        self.ir.lock().owner_evictions(tenant) + self.obj.lock().owner_evictions(tenant)
    }

    /// Force-evict the `n` oldest entries from the object cache (the
    /// `evict-storm` fault). Returns how many were actually evicted.
    pub fn evict_oldest_objects(&self, n: usize) -> u64 {
        self.obj.lock().evict_oldest(n)
    }

    /// Live entries in (ir, obj).
    pub fn len(&self) -> (usize, usize) {
        (self.ir.lock().len(), self.obj.lock().len())
    }

    /// True when both caches are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == (0, 0)
    }
}

/// The pipeline driver. Owns the program, the build caches, and all
/// intermediate artifacts.
pub struct Propeller {
    program: Arc<Program>,
    entries: Vec<(FunctionId, f64)>,
    opts: PropellerOptions,
    executor: Executor,
    caches: BuildCaches,
    fingerprints: Vec<ContentHash>,
    compiled: bool,
    pm_binary: Option<Arc<LinkedBinary>>,
    baseline_binary: Option<Arc<LinkedBinary>>,
    profile: Option<HardwareProfile>,
    wpa_output: Option<WpaOutput>,
    po_binary: Option<Arc<LinkedBinary>>,
    /// The program Phase 4 regenerated from (prefetch-augmented when
    /// the §3.5 pass is enabled).
    phase4_program: Option<Arc<Program>>,
    /// Counters of the Phase 3 profiling run — the `perf stat` view of
    /// the same execution `perf record` sampled; profile-quality audits
    /// compare the profile against these.
    profiled_counters: Option<CounterSet>,
    /// Heat map of the Phase 3 profiling run, when the options request
    /// one (the Figure 7 "before" picture: the PM binary still has the
    /// baseline layout).
    profile_heatmap: Option<propeller_sim::HeatMap>,
    /// Symbol attribution of the Phase 3 profiling run, when requested.
    profile_attribution: Option<propeller_sim::AttributedCounters>,
    /// Folded call stacks of the Phase 3 profiling run (cycle-weighted
    /// flamegraph input), collected together with the attribution.
    profile_folded: Option<propeller_sim::FoldedStacks>,
    call_misses: Option<std::collections::HashMap<(u64, u64), u64>>,
    times: PhaseTimes,
    hot_module_fraction: f64,
    tel: Telemetry,
    /// Present iff the options schedule any fault; `None` keeps every
    /// hot path on the exact legacy branch.
    injector: Option<Arc<FaultInjector>>,
    /// Running account of every degradation this pipeline performed.
    ledger: DegradationLedger,
}

fn tag(s: &str) -> ContentHash {
    ContentHash::of_bytes(s.as_bytes())
}

fn clusters_hash(clusters: &FunctionClusters) -> ContentHash {
    let mut bytes = Vec::new();
    for c in &clusters.clusters {
        bytes.push(0xC1);
        for b in &c.blocks {
            bytes.extend_from_slice(&b.0.to_le_bytes());
        }
    }
    ContentHash::of_bytes(&bytes)
}

impl Propeller {
    /// Creates a pipeline over `program` with the given workload entry
    /// points and fresh build caches.
    pub fn new(
        program: Program,
        entries: Vec<(FunctionId, f64)>,
        opts: PropellerOptions,
    ) -> Self {
        Self::with_caches(program, entries, opts, BuildCaches::new())
    }

    /// Creates a pipeline that shares `caches` with other pipelines —
    /// the incremental-release scenario: a later build of a slightly
    /// changed program hits the cache for every unchanged module.
    pub fn with_caches(
        program: Program,
        entries: Vec<(FunctionId, f64)>,
        opts: PropellerOptions,
        caches: BuildCaches,
    ) -> Self {
        let mut opts = opts;
        // One knob drives every parallel stage: the Ext-TSP gain
        // evaluation honors the same worker count as the codegen pool.
        opts.wpa.exttsp.jobs = opts.jobs;
        // One knob arms every provenance collector.
        opts.wpa.provenance = opts.provenance;
        let injector = if opts.faults.is_none() {
            None
        } else {
            Some(Arc::new(FaultInjector::new(opts.faults.clone(), opts.seed)))
        };
        let mut executor = Executor::new(opts.machine).with_jobs(opts.jobs);
        if let Some(inj) = &injector {
            executor = executor.with_faults(inj.clone(), opts.retry);
        }
        let fingerprints = program.modules().iter().map(module_fingerprint).collect();
        Propeller {
            program: Arc::new(program),
            entries,
            opts,
            executor,
            caches,
            fingerprints,
            compiled: false,
            pm_binary: None,
            baseline_binary: None,
            profile: None,
            wpa_output: None,
            po_binary: None,
            phase4_program: None,
            profiled_counters: None,
            profile_heatmap: None,
            profile_attribution: None,
            profile_folded: None,
            call_misses: None,
            times: PhaseTimes::default(),
            hot_module_fraction: 0.0,
            tel: Telemetry::disabled(),
            injector,
            ledger: DegradationLedger::default(),
        }
    }

    /// Attaches a telemetry handle; every later phase records spans and
    /// metrics into it. The default (disabled) handle costs one branch
    /// per instrumentation site.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// The pipeline's telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// The program under optimization.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The Phase 2 metadata binary, if built.
    pub fn pm_binary(&self) -> Option<&LinkedBinary> {
        self.pm_binary.as_deref()
    }

    /// The Phase 4 optimized binary, if built.
    pub fn po_binary(&self) -> Option<&LinkedBinary> {
        self.po_binary.as_deref()
    }

    /// The collected hardware profile, if Phase 3 ran.
    pub fn profile(&self) -> Option<&HardwareProfile> {
        self.profile.as_ref()
    }

    /// The WPA output, if Phase 3 ran.
    pub fn wpa_output(&self) -> Option<&WpaOutput> {
        self.wpa_output.as_ref()
    }

    /// Simulator counters of the Phase 3 profiling run, if it ran.
    pub fn profiled_counters(&self) -> Option<&CounterSet> {
        self.profiled_counters.as_ref()
    }

    /// Heat map of the Phase 3 profiling run, if
    /// [`PropellerOptions::heatmap`] requested one and Phase 3 ran.
    pub fn profile_heatmap(&self) -> Option<&propeller_sim::HeatMap> {
        self.profile_heatmap.as_ref()
    }

    /// Symbol attribution of the Phase 3 profiling run, if
    /// [`PropellerOptions::attribution`] requested it and Phase 3 ran.
    pub fn profile_attribution(&self) -> Option<&propeller_sim::AttributedCounters> {
        self.profile_attribution.as_ref()
    }

    /// Folded call stacks of the Phase 3 profiling run, if
    /// [`PropellerOptions::attribution`] requested them and Phase 3
    /// ran. [`propeller_sim::FoldedStacks::to_text`] is the flamegraph
    /// input format.
    pub fn profile_folded(&self) -> Option<&propeller_sim::FoldedStacks> {
        self.profile_folded.as_ref()
    }

    /// The program Phase 4 regenerated from (prefetch-augmented when
    /// that pass is on), if Phase 4 ran.
    pub fn phase4_program(&self) -> Option<&Arc<Program>> {
        self.phase4_program.as_ref()
    }

    /// The pipeline's configuration.
    pub fn options(&self) -> &PropellerOptions {
        &self.opts
    }

    /// The degradation ledger accumulated so far. Clean unless the
    /// configured fault plan actually fired.
    pub fn degradation(&self) -> &DegradationLedger {
        &self.ledger
    }

    /// The fault injector, when the options schedule faults.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// Folds one resilient phase run's retry accounting into the
    /// ledger.
    fn absorb_resilience(&mut self, res: ResilienceReport) {
        self.ledger.action_retries += res.retries;
        self.ledger.action_timeouts += res.timeouts;
        self.ledger.retry_backoff_secs += res.backoff_secs;
    }

    /// Folds one verified cache lookup's outcome into the ledger. A
    /// corrupt or evicted entry forces a rebuild (the caller recomputes
    /// on the reported miss), so both count one `cache_rebuilds`.
    fn absorb_cache_event(&mut self, event: CacheEvent) {
        match event {
            CacheEvent::CorruptInvalidated => {
                self.ledger.cache_corruptions += 1;
                self.ledger.cache_rebuilds += 1;
            }
            CacheEvent::Evicted => {
                self.ledger.cache_evictions += 1;
                self.ledger.cache_rebuilds += 1;
            }
            CacheEvent::Hit | CacheEvent::Miss => {}
        }
    }

    /// Per-phase times so far.
    pub fn times(&self) -> &PhaseTimes {
        &self.times
    }

    /// A simulator workload over this pipeline's entries.
    pub fn workload(&self, block_budget: u64) -> Workload {
        let mut w = Workload::new(self.entries.clone(), block_budget);
        w.seed = self.opts.seed;
        w
    }

    /// Phase 1: compile modules to optimized IR and cache them.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Build`] if an action exceeds the
    /// machine's memory limit.
    pub fn phase1_compile(&mut self) -> Result<PhaseReport, PipelineError> {
        let mut span = self.tel.span("phase1.compile");
        let injector = self.injector.clone();
        let mut actions = Vec::new();
        let mut events = Vec::new();
        for (m, &fp) in self.program.modules().iter().zip(&self.fingerprints) {
            let (artifact, event) =
                self.caches.ir.lock().lookup_verified(fp, injector.as_deref());
            events.push(event);
            if artifact.is_none() {
                // Miss (incl. a corrupt or evicted entry that was just
                // invalidated): recompile and re-insert a clean entry.
                self.caches.ir.lock().insert(fp, fp);
                let insts: u64 = m.functions.iter().map(|f| f.num_insts() as u64).sum();
                actions.push(ActionSpec::new(
                    format!("compile {}", m.name),
                    self.opts.cost.compile_secs(insts),
                    64 << 20,
                ));
            }
        }
        for e in events {
            self.absorb_cache_event(e);
        }
        let (report, res) =
            self.executor
                .run_phase_resilient_traced(&actions, &self.tel, span.id())?;
        self.absorb_resilience(res);
        span.set_sim_secs(report.wall_secs);
        span.set_peak_bytes(report.max_action_memory);
        self.compiled = true;
        self.times.phase1 = report;
        Ok(report)
    }

    /// Runs a batch of codegen actions through the object cache,
    /// computing cache misses in parallel (the distributed backend
    /// actions of Phases 2 and 4 are independent by construction).
    ///
    /// `plan` is `(module index, cache key, options)` per module, in
    /// link order; returns the artifacts in the same order, the action
    /// specs for the misses, and the pool's measured timing.
    fn codegen_batch(
        &mut self,
        program: &Program,
        plan: Vec<(usize, ContentHash, Arc<CodegenOptions>)>,
        parent: Option<SpanId>,
    ) -> Result<CodegenBatch, PipelineError> {
        let mut artifacts: Vec<Option<Arc<CodegenResult>>> = vec![None; plan.len()];
        let mut misses: Vec<(usize, ContentHash, Arc<CodegenOptions>)> = Vec::new();
        let injector = self.injector.clone();
        let mut events = Vec::new();
        {
            // Lookups run under the lock in plan order, so fault rolls
            // against cache entries are deterministic regardless of
            // worker interleaving below.
            let mut cache = self.caches.obj.lock();
            for (pos, (module_idx, key, cg)) in plan.iter().enumerate() {
                let (artifact, event) = cache.lookup_verified(*key, injector.as_deref());
                events.push(event);
                match artifact {
                    Some(artifact) => artifacts[pos] = Some(artifact),
                    // A corrupt/evicted entry surfaces as a miss here,
                    // so the rebuild below re-inserts a clean artifact.
                    None => misses.push((pos, *key, cg.clone())),
                }
                let _ = module_idx;
            }
        }
        for e in events {
            self.absorb_cache_event(e);
        }

        let modules = program.modules();
        // Workers record their spans under the caller's phase span via
        // the explicit parent — thread-local nesting does not cross the
        // pool boundary — and stamp their lane id so Chrome traces show
        // one row per worker. The pool writes each result into its
        // submission-order slot and hands the slots back in that order,
        // so the fold below (cache inserts, action list, f64 cost sums)
        // is identical no matter how threads interleave; `jobs == 1`
        // runs the items inline, the exact legacy path.
        let tel = self.tel.clone();
        let plan_ref = &plan;
        let (computed, pool): (Vec<ComputedModule>, PoolStats) = self
            .executor
            .execute_indexed("codegen batch", &misses, |w, _i, (pos, key, cg)| {
                let module_idx = plan_ref[*pos].0;
                let r = tel
                    .with_worker(w as u64, || {
                        codegen_module_traced(&modules[module_idx], program, cg, &tel, parent)
                    })
                    .map(Arc::new);
                (*pos, *key, r)
            })?;

        let cost = self.opts.cost;
        let mut actions = Vec::with_capacity(computed.len());
        {
            let mut cache = self.caches.obj.lock();
            for (pos, key, result) in computed {
                let artifact = result?;
                cache.insert(key, artifact.clone());
                let module_idx = plan[pos].0;
                let module = &modules[module_idx];
                let insts: u64 = module.functions.iter().map(|f| f.num_insts() as u64).sum();
                actions.push(ActionSpec::new(
                    format!("codegen {}", module.name),
                    cost.codegen_secs(insts),
                    (64 << 20) + artifact.stats.text_bytes as u64 * 8,
                ));
                artifacts[pos] = Some(artifact);
            }
        }
        // Every plan position was filled either by a cache hit above
        // or by the miss loop; an empty slot would mean a worker
        // dropped a module, which must surface as a typed error rather
        // than a panic.
        let artifacts = artifacts
            .into_iter()
            .map(|a| {
                a.ok_or(PipelineError::Internal {
                    what: "codegen batch left an artifact slot unfilled",
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok((artifacts, actions, pool))
    }

    /// Phase 2: code-generate every module with BB address map
    /// metadata and link the `PM` binary.
    ///
    /// # Errors
    ///
    /// Propagates codegen, link and build-system failures.
    pub fn phase2_build_metadata(&mut self) -> Result<PhaseReport, PipelineError> {
        if !self.compiled {
            return Err(PipelineError::PhaseOrder { needs: "phase 1" });
        }
        let mut span = self.tel.span("phase2.build_metadata");
        let span_id = span.id();
        let cg = Arc::new(CodegenOptions::with_labels());
        let plan: Vec<_> = (0..self.program.num_modules())
            .map(|i| (i, self.fingerprints[i].combine(tag("labels")), cg.clone()))
            .collect();
        let program = self.program.clone();
        let (artifacts, actions, pool) = self.codegen_batch(&program, plan, span_id)?;
        let inputs: Vec<LinkInput> = artifacts
            .iter()
            .map(|a| LinkInput::new(a.object.clone(), a.debug_layout.clone()))
            .collect();
        let (codegen_phase, res) =
            self.executor
                .run_phase_resilient_traced(&actions, &self.tel, span_id)?;
        self.absorb_resilience(res);
        let bin = link_traced(
            &inputs,
            &LinkOptions {
                output_name: "app.pm".into(),
                ..LinkOptions::default()
            },
            &self.tel,
            span_id,
        )?;
        let (link_phase, res) = self.executor.run_phase_resilient_traced(
            &[ActionSpec::new(
                "link app.pm",
                self.opts.cost.link_secs(bin.stats.input_bytes),
                bin.stats.modeled_peak_memory,
            )],
            &self.tel,
            span_id,
        )?;
        self.absorb_resilience(res);
        self.times.phase2 = codegen_phase.then(&link_phase);
        // Measured pool timing rides in PhaseReport only — never the
        // run report, whose bytes must not depend on real clocks.
        self.times.phase2.wall_us = pool.wall_us;
        self.times.phase2.busy_us = pool.busy_us;
        span.set_sim_secs(self.times.phase2.wall_secs);
        span.set_peak_bytes(self.times.phase2.max_action_memory);
        self.pm_binary = Some(Arc::new(bin));
        Ok(self.times.phase2)
    }

    /// Phase 3: run the workload under the profiler, then whole-program
    /// analysis.
    ///
    /// # Errors
    ///
    /// Propagates build-system failures (e.g. WPA exceeding the
    /// per-action memory limit) and image-construction failures.
    pub fn phase3_profile_and_analyze(&mut self) -> Result<PhaseReport, PipelineError> {
        let Some(pm) = self.pm_binary.clone() else {
            return Err(PipelineError::PhaseOrder { needs: "phase 2" });
        };
        let mut span = self.tel.span("phase3.profile_and_analyze");
        let span_id = span.id();
        let image = ProgramImage::build(&self.program, &pm.layout)?;
        let run = simulate_traced(
            &image,
            &self.workload(self.opts.profile_budget),
            &self.opts.uarch,
            &SimOptions {
                sampling: Some(self.opts.sampling),
                heatmap: self.opts.heatmap,
                collect_call_misses: self.opts.prefetch.is_some(),
                attribution: self.opts.attribution,
            },
            &self.tel,
            span_id,
        );
        self.call_misses = run.call_misses;
        self.profiled_counters = Some(run.counters);
        self.profile_heatmap = run.heatmap;
        self.profile_attribution = run.attribution;
        self.profile_folded = run.folded;
        let mut profile = run.profile.ok_or(PipelineError::Internal {
            what: "profiler returned no profile despite sampling being enabled",
        })?;
        // Model in-flight profile damage, then salvage what survives:
        // corrupt records are dropped, truncated samples keep their
        // committed prefix. The pipeline continues on whatever is
        // left — possibly nothing.
        let mut survival = 1.0f64;
        if let Some(inj) = self.injector.clone() {
            let stats = degrade_profile(&mut profile, &inj);
            let (salvaged, stats) =
                salvage_profile(&profile, pm.text_start..pm.text_end, stats);
            stats.record_into(&mut self.ledger);
            survival = stats.survival_rate();
            profile = salvaged;
        }
        let wpa = run_wpa_traced(&self.program, &pm, &profile, &self.opts.wpa, &self.tel, span_id);
        // Coverage floor: when too little of the profile survived, the
        // layout it implies cannot be trusted. Mark the affected hot
        // functions cold and fall back to the identity symbol order —
        // Phase 4 then reuses every Phase 2 artifact and the relink
        // yields a correct, baseline-equivalent binary.
        let wpa = if survival < self.opts.profile_floor {
            self.ledger.functions_marked_cold += wpa.stats.hot_functions as u64;
            self.ledger.layout_mode = LayoutMode::IdentityFallback;
            if self.tel.is_enabled() {
                self.tel.counter_add("faults.layout_fallbacks", 1);
            }
            WpaOutput::identity_fallback(wpa.stats)
        } else {
            wpa
        };
        let cpu = self.opts.cost.profile_conversion_secs(profile.raw_size_bytes())
            + self.opts.cost.wpa_secs(wpa.stats.dcfg_edges as u64);
        let (report, res) = self.executor.run_phase_resilient_traced(
            &[ActionSpec::new(
                "whole-program analysis",
                cpu,
                wpa.stats.modeled_peak_memory,
            )],
            &self.tel,
            span_id,
        )?;
        self.absorb_resilience(res);
        self.times.phase3 = report;
        span.set_sim_secs(report.wall_secs);
        span.set_peak_bytes(report.max_action_memory);
        self.profile = Some(profile);
        self.wpa_output = Some(wpa);
        Ok(report)
    }

    /// Phase 3 variant for the fleet lifecycle: whole-program analysis
    /// over an externally collected (and typically multi-machine
    /// merged, possibly stale) aggregated profile, skipping the local
    /// profiling run entirely.
    ///
    /// `profile_bytes` is the modeled raw size of the samples behind
    /// `agg`, used for the conversion-cost and memory models. The
    /// pipeline's own profile/counter slots stay empty — this phase
    /// consumes samples collected on *other* machines (and possibly an
    /// older binary, translated into this one's address space).
    ///
    /// # Errors
    ///
    /// Propagates build-system failures, as
    /// [`Propeller::phase3_profile_and_analyze`] does.
    pub fn phase3_analyze_merged(
        &mut self,
        agg: &AggregatedProfile,
        profile_bytes: u64,
    ) -> Result<PhaseReport, PipelineError> {
        let Some(pm) = self.pm_binary.clone() else {
            return Err(PipelineError::PhaseOrder { needs: "phase 2" });
        };
        let mut span = self.tel.span("phase3.analyze_merged");
        let span_id = span.id();
        let wpa = run_wpa_agg_traced(
            &self.program,
            &pm,
            agg,
            profile_bytes,
            &self.opts.wpa,
            &self.tel,
            span_id,
        );
        let cpu = self.opts.cost.profile_conversion_secs(profile_bytes)
            + self.opts.cost.wpa_secs(wpa.stats.dcfg_edges as u64);
        let (report, res) = self.executor.run_phase_resilient_traced(
            &[ActionSpec::new(
                "whole-program analysis (merged profile)",
                cpu,
                wpa.stats.modeled_peak_memory,
            )],
            &self.tel,
            span_id,
        )?;
        self.absorb_resilience(res);
        self.times.phase3 = report;
        span.set_sim_secs(report.wall_secs);
        span.set_peak_bytes(report.max_action_memory);
        self.wpa_output = Some(wpa);
        Ok(report)
    }

    /// Phase 3 variant for the fleet lifecycle's *reuse* decision: skip
    /// analysis and adopt the identity layout, so Phase 4 becomes an
    /// all-cold relink that reuses every Phase 2 artifact from the
    /// cache and ships a correct, baseline-equivalent binary.
    ///
    /// This is what "don't re-optimize this release" means in the
    /// release loop: when the only available profile is too stale to
    /// trust (skew above threshold), shipping the unoptimized layout is
    /// strictly safer than optimizing for the wrong distribution.
    ///
    /// # Errors
    ///
    /// Fails if Phase 2 has not produced the metadata binary yet.
    pub fn phase3_reuse_layout(&mut self) -> Result<PhaseReport, PipelineError> {
        if self.pm_binary.is_none() {
            return Err(PipelineError::PhaseOrder { needs: "phase 2" });
        }
        let mut span = self.tel.span("phase3.reuse_layout");
        let report = PhaseReport::default();
        self.times.phase3 = report;
        span.set_sim_secs(report.wall_secs);
        self.wpa_output = Some(WpaOutput::identity_fallback(Default::default()));
        Ok(report)
    }

    /// Phase 4: regenerate hot modules with basic block sections, reuse
    /// cold objects from the cache, and relink with the global order.
    ///
    /// # Errors
    ///
    /// Propagates codegen, link and build-system failures.
    pub fn phase4_relink(&mut self) -> Result<PhaseReport, PipelineError> {
        let Some(wpa) = self.wpa_output.as_ref() else {
            return Err(PipelineError::PhaseOrder { needs: "phase 3" });
        };
        let cluster_map = wpa.cluster_map.clone();
        let symbol_order = wpa.symbol_order.clone();
        let mut span = self.tel.span("phase4.relink");
        let span_id = span.id();

        // §3.5: insert software prefetches at miss-heavy call sites,
        // then regenerate hot modules from the augmented IR (the
        // paper's "summary-based directive" driving the distributed
        // codegen actions).
        let phase4_program: Arc<Program> = match (self.opts.prefetch, &self.call_misses) {
            (Some(min_misses), Some(misses)) => {
                // Phase 3 required the PM binary, so it exists here;
                // stay typed rather than panicking if that invariant
                // ever breaks.
                let pm = self
                    .pm_binary
                    .as_ref()
                    .ok_or(PipelineError::PhaseOrder { needs: "phase 2" })?;
                let directives =
                    prefetch_directives(&self.program, pm, misses, min_misses, 2);
                Arc::new(apply_prefetches(&self.program, &directives))
            }
            _ => self.program.clone(),
        };
        let phase4_fingerprints: Vec<ContentHash> = phase4_program
            .modules()
            .iter()
            .map(module_fingerprint)
            .collect();

        // A module is hot iff any of its functions has directives.
        let mut hot_modules = 0usize;
        let labels = Arc::new(CodegenOptions::with_labels());
        let clusters_cg = Arc::new(CodegenOptions::with_clusters(cluster_map.clone()));
        let injector = self.injector.clone();
        let mut plan = Vec::with_capacity(phase4_program.num_modules());
        // Modeled cost of hot re-codegens that permanently failed:
        // every budgeted attempt ran and died, so the wasted work still
        // lands in the phase's time accounting.
        let mut failed_actions = Vec::new();
        for (i, (module, fp)) in phase4_program
            .modules()
            .iter()
            .zip(&phase4_fingerprints)
            .enumerate()
        {
            let directive_hash = module
                .functions
                .iter()
                .filter_map(|f| cluster_map.get(f.id).map(clusters_hash))
                .fold(None::<ContentHash>, |acc, h| {
                    Some(acc.map_or(h, |a| a.combine(h)))
                });
            let (key, cg) = match directive_hash {
                Some(dh) => {
                    let permanent_failure = injector
                        .as_deref()
                        .is_some_and(|inj| {
                            inj.fires(FaultKind::PermanentCodegenFailure, &module.name)
                        });
                    if permanent_failure {
                        // Per-object graceful degradation: the hot
                        // re-codegen cannot succeed on any worker, so
                        // this object ships the cached baseline
                        // (Phase 2 labels) codegen instead. The module
                        // keeps its PM layout — correct, just not
                        // cluster-optimized. If that cached artifact
                        // is itself corrupt or evicted, codegen_batch
                        // rebuilds it (a counted cache rebuild).
                        let insts: u64 =
                            module.functions.iter().map(|f| f.num_insts() as u64).sum();
                        failed_actions.push(ActionSpec::new(
                            format!("codegen {} (permanent failure)", module.name),
                            f64::from(self.opts.retry.max_attempts.max(1))
                                * self.opts.cost.codegen_secs(insts),
                            64 << 20,
                        ));
                        self.ledger.objects_fallen_back += 1;
                        (fp.combine(tag("labels")), labels.clone())
                    } else {
                        hot_modules += 1;
                        (fp.combine(tag("clusters")).combine(dh), clusters_cg.clone())
                    }
                }
                // Module without cluster directives: its Phase 4
                // inputs are identical to the Phase 2 action's, so this
                // is a cache hit — the paper's "cold object files are
                // retrieved from the cache". The phase-4 fingerprint is
                // used so a module touched only by prefetch insertion
                // is correctly regenerated instead.
                None => (fp.combine(tag("labels")), labels.clone()),
            };
            plan.push((i, key, cg));
        }
        self.hot_module_fraction = hot_modules as f64 / self.program.num_modules().max(1) as f64;
        let (artifacts, mut actions, pool) =
            self.codegen_batch(&phase4_program.clone(), plan, span_id)?;
        actions.append(&mut failed_actions);
        let inputs: Vec<LinkInput> = artifacts
            .iter()
            .map(|a| LinkInput::new(a.object.clone(), a.debug_layout.clone()))
            .collect();
        let (codegen_phase, res) =
            self.executor
                .run_phase_resilient_traced(&actions, &self.tel, span_id)?;
        self.absorb_resilience(res);
        let bin = link_traced(
            &inputs,
            &LinkOptions {
                output_name: "app.propeller".into(),
                symbol_order: Some(symbol_order),
                relax: true,
                drop_cold_bb_addr_map: true,
                ..LinkOptions::default()
            },
            &self.tel,
            span_id,
        )?;
        let (link_phase, res) = self.executor.run_phase_resilient_traced(
            &[ActionSpec::new(
                "relink app.propeller",
                self.opts.cost.link_secs(bin.stats.input_bytes),
                bin.stats.modeled_peak_memory,
            )],
            &self.tel,
            span_id,
        )?;
        self.absorb_resilience(res);
        self.times.phase4 = codegen_phase.then(&link_phase);
        self.times.phase4.wall_us = pool.wall_us;
        self.times.phase4.busy_us = pool.busy_us;
        span.set_sim_secs(self.times.phase4.wall_secs);
        span.set_peak_bytes(self.times.phase4.max_action_memory);
        self.po_binary = Some(Arc::new(bin));
        self.phase4_program = Some(phase4_program);
        Ok(self.times.phase4)
    }

    /// Runs all four phases.
    ///
    /// # Errors
    ///
    /// Propagates the first failing phase's error.
    pub fn run_all(&mut self) -> Result<PropellerReport, PipelineError> {
        self.phase1_compile()?;
        self.phase2_build_metadata()?;
        self.phase3_profile_and_analyze()?;
        self.phase4_relink()?;
        // The phases above just ran, so these artifacts exist; stay
        // typed rather than panicking if that invariant ever breaks.
        let wpa = self
            .wpa_output
            .as_ref()
            .ok_or(PipelineError::PhaseOrder { needs: "phase 3" })?;
        let po = self
            .po_binary
            .as_ref()
            .ok_or(PipelineError::PhaseOrder { needs: "phase 4" })?;
        // Counters merge by addition, so cache statistics are recorded
        // exactly once per run, not per lookup.
        self.caches.ir_stats().record_metrics(&self.tel, "cache.ir");
        self.caches
            .object_stats()
            .record_metrics(&self.tel, "cache.obj");
        // A clean ledger records nothing, keeping zero-fault traces
        // identical to pre-fault-layer output.
        if !self.ledger.is_clean() {
            self.ledger.record_metrics(&self.tel, "faults");
        }
        Ok(PropellerReport {
            times: self.times.modeled_only(),
            ir_cache: self.caches.ir_stats(),
            object_cache: self.caches.object_stats(),
            hot_module_fraction: self.hot_module_fraction,
            hot_functions: wpa.stats.hot_functions,
            wpa: wpa.stats,
            deleted_jumps: po.stats.deleted_jumps,
            shrunk_branches: po.stats.shrunk_branches,
            optimized_binary_name: po.name.clone(),
            degradation: self.ledger.clone(),
            profile_attribution: self.profile_attribution.clone(),
        })
    }

    /// Builds (and caches) the plain baseline binary — the PGO+ThinLTO
    /// equivalent all evaluations compare against.
    ///
    /// # Errors
    ///
    /// Propagates codegen and link failures.
    pub fn build_baseline(&mut self) -> Result<Arc<LinkedBinary>, PipelineError> {
        if let Some(b) = &self.baseline_binary {
            return Ok(b.clone());
        }
        let span = self.tel.span("baseline.build");
        let span_id = span.id();
        let cg = Arc::new(CodegenOptions::baseline());
        let plan: Vec<_> = (0..self.program.num_modules())
            .map(|i| (i, self.fingerprints[i].combine(tag("baseline")), cg.clone()))
            .collect();
        let program = self.program.clone();
        let (artifacts, _, _) = self.codegen_batch(&program, plan, span_id)?;
        let inputs: Vec<LinkInput> = artifacts
            .iter()
            .map(|a| LinkInput::new(a.object.clone(), a.debug_layout.clone()))
            .collect();
        let bin = Arc::new(link_traced(
            &inputs,
            &LinkOptions {
                output_name: "app.baseline".into(),
                ..LinkOptions::default()
            },
            &self.tel,
            span_id,
        )?);
        self.baseline_binary = Some(bin.clone());
        Ok(bin)
    }

    /// Simulates baseline and optimized binaries under the same
    /// workload and reports both counter sets.
    ///
    /// # Errors
    ///
    /// Fails if Phase 4 has not run, or image construction fails.
    pub fn evaluate(&mut self, block_budget: u64) -> Result<EvalReport, PipelineError> {
        let (base, opt) = self.evaluate_with(block_budget, &SimOptions::default())?;
        Ok(EvalReport {
            baseline: base.counters,
            optimized: opt.counters,
        })
    }

    /// [`Propeller::evaluate`] with caller-chosen collection options —
    /// the same workload runs over the baseline and optimized images,
    /// and both full [`propeller_sim::SimReport`]s come back (counters
    /// plus whatever attribution/heat-map/flamegraph data `opts`
    /// requested).
    ///
    /// # Errors
    ///
    /// Fails if Phase 4 has not run, or image construction fails.
    pub fn evaluate_with(
        &mut self,
        block_budget: u64,
        sim_opts: &SimOptions,
    ) -> Result<(propeller_sim::SimReport, propeller_sim::SimReport), PipelineError> {
        let baseline = self.build_baseline()?;
        let Some(po) = self.po_binary.clone() else {
            return Err(PipelineError::PhaseOrder { needs: "phase 4" });
        };
        let workload = self.workload(block_budget);
        let base_img = ProgramImage::build(&self.program, &baseline.layout)?;
        let opt_program = self
            .phase4_program
            .clone()
            .ok_or(PipelineError::PhaseOrder { needs: "phase 4" })?;
        let opt_img = ProgramImage::build(&opt_program, &po.layout)?;
        let span = self.tel.span("evaluate");
        let span_id = span.id();
        let base = simulate_traced(
            &base_img,
            &workload,
            &self.opts.uarch,
            sim_opts,
            &self.tel,
            span_id,
        );
        let opt = simulate_traced(
            &opt_img,
            &workload,
            &self.opts.uarch,
            sim_opts,
            &self.tel,
            span_id,
        );
        Ok((base, opt))
    }
}
