//! Structural hashing of IR modules for the content-addressed cache.

use propeller_ir::{Inst, Module, Terminator};
use propeller_obj::ContentHash;

/// Computes a content hash over everything a codegen action reads from
/// a module: names, block structure, instructions, terminators and
/// frequencies. Two modules with the same fingerprint compile to the
/// same object under the same options.
pub fn module_fingerprint(module: &Module) -> ContentHash {
    let mut h = ContentHash::of_bytes(module.name.as_bytes());
    for f in &module.functions {
        h = h.combine(ContentHash::of_bytes(f.name.as_bytes()));
        for b in &f.blocks {
            let mut bytes = Vec::with_capacity(b.insts.len() * 5 + 32);
            bytes.extend_from_slice(&b.freq.to_le_bytes());
            bytes.push(u8::from(b.is_landing_pad));
            for i in &b.insts {
                match i {
                    Inst::Alu => bytes.push(1),
                    Inst::Load => bytes.push(2),
                    Inst::Store => bytes.push(3),
                    Inst::Nop => bytes.push(4),
                    Inst::Call(c) => {
                        bytes.push(5);
                        bytes.extend_from_slice(&c.0.to_le_bytes());
                    }
                    Inst::Prefetch(t) => {
                        bytes.push(6);
                        bytes.extend_from_slice(&t.0.to_le_bytes());
                    }
                }
            }
            match b.term {
                Terminator::Ret => bytes.push(10),
                Terminator::Jump(t) => {
                    bytes.push(11);
                    bytes.extend_from_slice(&t.0.to_le_bytes());
                }
                Terminator::CondBr {
                    taken,
                    fallthrough,
                    prob_taken,
                } => {
                    bytes.push(12);
                    bytes.extend_from_slice(&taken.0.to_le_bytes());
                    bytes.extend_from_slice(&fallthrough.0.to_le_bytes());
                    bytes.extend_from_slice(&prob_taken.to_le_bytes());
                }
            }
            h = h.combine(ContentHash::of_bytes(&bytes));
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_ir::{FunctionBuilder, ProgramBuilder};

    fn program_with(freq: u64) -> propeller_ir::Program {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("a.cc");
        let mut f = FunctionBuilder::new("f");
        let b = f.add_block(vec![Inst::Alu], Terminator::Ret);
        f.set_block_freq(b, freq);
        pb.add_function(m, f);
        pb.finish().unwrap()
    }

    #[test]
    fn stable_for_identical_modules() {
        let a = program_with(5);
        let b = program_with(5);
        assert_eq!(
            module_fingerprint(&a.modules()[0]),
            module_fingerprint(&b.modules()[0])
        );
    }

    #[test]
    fn sensitive_to_frequency_changes() {
        let a = program_with(5);
        let b = program_with(6);
        assert_ne!(
            module_fingerprint(&a.modules()[0]),
            module_fingerprint(&b.modules()[0])
        );
    }
}
