//! # Propeller: a profile guided, relinking optimizer
//!
//! A full reproduction of the ASPLOS'23 Propeller system: post-link
//! code layout optimization *without disassembly*, structured as four
//! phases over a (simulated) distributed build system:
//!
//! 1. **Compile and cache** — modules become optimized IR, cached by
//!    content hash ([`Propeller::phase1_compile`]);
//! 2. **Build with metadata** — backends emit objects with basic block
//!    address maps; the linker produces the `PM` metadata binary
//!    ([`Propeller::phase2_build_metadata`]);
//! 3. **Profile + whole-program analysis** — the workload runs under
//!    the hardware simulator collecting LBR samples; WPA maps them to
//!    blocks and computes cluster directives plus a global symbol
//!    order ([`Propeller::phase3_profile_and_analyze`]);
//! 4. **Relink** — only hot modules are re-code-generated with basic
//!    block sections; cold objects come straight from the cache; the
//!    final relink orders sections and relaxes branches
//!    ([`Propeller::phase4_relink`]).
//!
//! # Quickstart
//!
//! ```
//! use propeller::{Propeller, PropellerOptions};
//! use propeller_ir::{FunctionBuilder, Inst, ProgramBuilder, Terminator};
//!
//! # fn main() -> Result<(), propeller::PipelineError> {
//! let mut pb = ProgramBuilder::new();
//! let m = pb.add_module("app.cc");
//! let mut f = FunctionBuilder::new("main");
//! f.add_block(vec![Inst::Alu; 8], Terminator::Ret);
//! let main = pb.add_function(m, f);
//! let program = pb.finish().expect("valid program");
//!
//! let mut pipeline = Propeller::new(program, vec![(main, 1.0)], PropellerOptions::default());
//! let report = pipeline.run_all()?;
//! assert!(report.optimized_binary_name.contains("propeller"));
//! # Ok(())
//! # }
//! ```

mod error;
mod fingerprint;
mod pipeline;
mod report;

pub use error::PipelineError;
pub use fingerprint::module_fingerprint;
pub use pipeline::{BuildCaches, Propeller, PropellerOptions};
pub use report::{EvalReport, PhaseTimes, PropellerReport};

// Re-export the pieces a downstream user needs to drive the pipeline.
pub use propeller_buildsys::{CostModel, MachineConfig};
pub use propeller_faults::{
    DegradationLedger, FaultInjector, FaultKind, FaultPlan, FaultPlanParseError, FaultSpec,
    LayoutMode, RetryPolicy,
};
pub use propeller_linker::LinkedBinary;
pub use propeller_profile::SamplingConfig;
pub use propeller_sim::{CounterSet, UarchConfig, Workload};
pub use propeller_wpa::{GlobalOrder, IntraOrder, WpaOptions};
