//! End-to-end pipeline tests on generated benchmarks.

use propeller::{PipelineError, Propeller, PropellerOptions};
use propeller_synth::{generate, spec_by_name, GenParams};

fn pipeline(scale: f64, seed: u64) -> Propeller {
    let spec = spec_by_name("541.leela").unwrap();
    let g = generate(
        &spec,
        &GenParams {
            scale,
            seed,
            funcs_per_module: 12,
            entry_points: 3,
        },
    );
    Propeller::new(g.program, g.entries, PropellerOptions::default())
}

#[test]
fn four_phases_run_and_improve_performance() {
    let mut p = pipeline(0.3, 42);
    let report = p.run_all().unwrap();

    // Caching: phase 4 reused the cold objects from phase 2.
    assert!(report.object_cache.hits > 0, "{:?}", report.object_cache);
    assert!(report.hot_module_fraction > 0.0 && report.hot_module_fraction < 1.0);
    assert!(report.hot_functions > 0);
    assert!(report.times.total_wall_secs() > 0.0);
    assert!(report.deleted_jumps + report.shrunk_branches > 0);

    let eval = p.evaluate(200_000).unwrap();
    assert!(
        eval.speedup_pct() > 0.3,
        "expected improvement, got {:.2}% ({:?} vs {:?})",
        eval.speedup_pct(),
        eval.optimized.cycles,
        eval.baseline.cycles
    );
    // Taken branches drop (the §5.4 effect).
    assert!(eval.optimized.taken_branches < eval.baseline.taken_branches);
}

#[test]
fn phase_order_is_enforced() {
    let mut p = pipeline(0.1, 7);
    assert!(matches!(
        p.phase2_build_metadata(),
        Err(PipelineError::PhaseOrder { needs: "phase 1" })
    ));
    p.phase1_compile().unwrap();
    assert!(matches!(
        p.phase3_profile_and_analyze(),
        Err(PipelineError::PhaseOrder { needs: "phase 2" })
    ));
    p.phase2_build_metadata().unwrap();
    assert!(matches!(
        p.phase4_relink(),
        Err(PipelineError::PhaseOrder { needs: "phase 3" })
    ));
    assert!(matches!(
        p.evaluate(1000),
        Err(PipelineError::PhaseOrder { needs: "phase 4" })
    ));
}

#[test]
fn second_build_is_fully_cached() {
    let mut p = pipeline(0.15, 9);
    p.run_all().unwrap();
    let first_misses = {
        let r = p.run_all().unwrap();
        r.object_cache
    };
    // Re-running all phases performs no new codegen work.
    let mut p2_misses = first_misses.misses;
    let again = p.run_all().unwrap();
    assert_eq!(again.object_cache.misses, p2_misses);
    p2_misses += 0;
    let _ = p2_misses;
}

#[test]
fn relink_reuses_majority_of_objects() {
    let mut p = pipeline(0.3, 21);
    let report = p.run_all().unwrap();
    // The benchmark has ~55% cold objects; phase 4 regenerates only
    // hot modules.
    assert!(
        report.hot_module_fraction < 0.7,
        "hot fraction {}",
        report.hot_module_fraction
    );
}

#[test]
fn metadata_binary_is_larger_than_baseline() {
    let mut p = pipeline(0.2, 5);
    p.phase1_compile().unwrap();
    p.phase2_build_metadata().unwrap();
    let pm_size = p.pm_binary().unwrap().file_size();
    let base_size = p.build_baseline().unwrap().file_size();
    assert!(pm_size > base_size);
    // Metadata overhead should be well under 20% (paper: 7-9%).
    let overhead = (pm_size as f64 - base_size as f64) / base_size as f64;
    assert!(overhead < 0.20, "metadata overhead {overhead:.3}");
}

#[test]
fn optimized_binary_size_stays_close_to_baseline() {
    let mut p = pipeline(0.3, 13);
    p.run_all().unwrap();
    let base = p.build_baseline().unwrap().size_breakdown.text as f64;
    let po = p.po_binary().unwrap().size_breakdown.text as f64;
    assert!(
        (po - base).abs() / base < 0.10,
        "text size: baseline {base}, optimized {po}"
    );
}
