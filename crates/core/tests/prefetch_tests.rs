//! End-to-end tests of the §3.5 software prefetch pass.

use propeller::{Propeller, PropellerOptions};
use propeller_ir::{BlockId, FunctionBuilder, FunctionId, Inst, Program, ProgramBuilder, Terminator};

/// A dispatcher that round-robins over many large leaf functions: the
/// combined footprint exceeds L1i, so every call misses at the callee
/// entry — the prefetch pass's ideal prey.
fn dispatcher_program(n_leaves: usize, leaf_size: usize) -> (Program, FunctionId) {
    let mut pb = ProgramBuilder::new();
    let m = pb.add_module("disp.cc");
    let mut leaves = Vec::new();
    for i in 0..n_leaves {
        let mut f = FunctionBuilder::new(format!("leaf{i}"));
        f.add_block(vec![Inst::Alu; leaf_size], Terminator::Ret);
        leaves.push(pb.add_function(m, f));
    }
    let mut driver = FunctionBuilder::new("driver");
    driver.add_block(
        leaves.iter().map(|l| Inst::Call(*l)).collect(),
        Terminator::CondBr {
            taken: BlockId(0),
            fallthrough: BlockId(1),
            prob_taken: 0.995,
        },
    );
    driver.add_block(Vec::new(), Terminator::Ret);
    let driver = pb.add_function(m, driver);
    (pb.finish().unwrap(), driver)
}

#[test]
fn prefetch_pass_reduces_entry_misses() {
    let (p, driver) = dispatcher_program(96, 500);

    let run = |prefetch: Option<u64>| {
        let opts = PropellerOptions {
            prefetch,
            profile_budget: 120_000,
            ..PropellerOptions::default()
        };
        let mut pipeline = Propeller::new(p.clone(), vec![(driver, 1.0)], opts);
        pipeline.run_all().unwrap();
        pipeline.evaluate(200_000).unwrap()
    };

    let without = run(None);
    let with = run(Some(8));

    assert_eq!(without.optimized.prefetches, 0);
    assert!(with.optimized.prefetches > 0, "prefetches must execute");
    assert!(
        with.optimized.l1i_misses < without.optimized.l1i_misses,
        "prefetching must hide entry misses: {} vs {}",
        with.optimized.l1i_misses,
        without.optimized.l1i_misses
    );
    assert!(
        with.optimized.cycles < without.optimized.cycles,
        "and translate into cycles: {} vs {}",
        with.optimized.cycles,
        without.optimized.cycles
    );
    // The baseline runs are identical (prefetch only touches PO).
    assert_eq!(without.baseline, with.baseline);
}

#[test]
fn prefetch_disabled_by_default_and_threshold_respected() {
    let (p, driver) = dispatcher_program(16, 40);
    // Absurd threshold: pass enabled but no site qualifies.
    let opts = PropellerOptions {
        profile_budget: 40_000,
        prefetch: Some(u64::MAX / 2),
        ..PropellerOptions::default()
    };
    let mut pipeline = Propeller::new(p, vec![(driver, 1.0)], opts);
    pipeline.run_all().unwrap();
    let eval = pipeline.evaluate(50_000).unwrap();
    assert_eq!(eval.optimized.prefetches, 0);
}
