//! Edge-case tests for the execution engine.

use propeller_codegen::{codegen_module, CodegenOptions};
use propeller_ir::{BlockId, FunctionBuilder, FunctionId, Inst, Program, ProgramBuilder, Terminator};
use propeller_linker::{link, LinkInput, LinkOptions};
use propeller_profile::SamplingConfig;
use propeller_sim::{simulate, ProgramImage, SimOptions, UarchConfig, Workload};

fn image_of(p: &Program) -> ProgramImage {
    let inputs: Vec<LinkInput> = p
        .modules()
        .iter()
        .map(|m| {
            let r = codegen_module(m, p, &CodegenOptions::baseline()).unwrap();
            LinkInput::new(r.object, r.debug_layout)
        })
        .collect();
    let bin = link(&inputs, &LinkOptions::default()).unwrap();
    ProgramImage::build(p, &bin.layout).unwrap()
}

/// `ping` and `pong` call each other forever.
fn mutually_recursive() -> (Program, FunctionId) {
    let mut pb = ProgramBuilder::new();
    let m = pb.add_module("m.cc");
    let pong_id = propeller_ir::FunctionId(1);
    let mut ping = FunctionBuilder::new("ping");
    ping.add_block(vec![Inst::Alu, Inst::Call(pong_id)], Terminator::Ret);
    let ping_id = pb.add_function(m, ping);
    let mut pong = FunctionBuilder::new("pong");
    pong.add_block(vec![Inst::Alu, Inst::Call(ping_id)], Terminator::Ret);
    let actual_pong = pb.add_function(m, pong);
    assert_eq!(actual_pong, pong_id);
    (pb.finish().unwrap(), ping_id)
}

#[test]
fn zero_budget_executes_nothing() {
    let (p, entry) = mutually_recursive();
    let image = image_of(&p);
    let r = simulate(
        &image,
        &Workload::new(vec![(entry, 1.0)], 0),
        &UarchConfig::default(),
        &SimOptions::default(),
    );
    assert_eq!(r.counters.blocks, 0);
    assert_eq!(r.counters.insts, 0);
    assert_eq!(r.counters.cycles, 0);
}

#[test]
fn unbounded_recursion_is_capped_by_call_depth() {
    let (p, entry) = mutually_recursive();
    let image = image_of(&p);
    let mut w = Workload::new(vec![(entry, 1.0)], 10_000);
    w.max_call_depth = 16;
    let r = simulate(&image, &w, &UarchConfig::default(), &SimOptions::default());
    // The walk terminates (budget consumed) rather than overflowing.
    assert_eq!(r.counters.blocks, 10_000);
    // Calls beyond the depth cap were elided, so taken branches are
    // bounded by roughly two per block (call + ret).
    assert!(r.counters.taken_branches <= 2 * r.counters.blocks);
}

#[test]
fn single_block_program_loops_over_requests() {
    let mut pb = ProgramBuilder::new();
    let m = pb.add_module("m.cc");
    let mut f = FunctionBuilder::new("tiny");
    f.add_block(vec![Inst::Alu; 3], Terminator::Ret);
    let tiny = pb.add_function(m, f);
    let p = pb.finish().unwrap();
    let image = image_of(&p);
    let r = simulate(
        &image,
        &Workload::new(vec![(tiny, 1.0)], 500),
        &UarchConfig::default(),
        &SimOptions::default(),
    );
    // Each request is one block; the engine redispatches 500 times.
    assert_eq!(r.counters.blocks, 500);
    assert_eq!(r.counters.insts, 500 * 4); // 3 ALUs + ret
}

#[test]
fn multiple_entries_respect_weights() {
    let mut pb = ProgramBuilder::new();
    let m = pb.add_module("m.cc");
    let mut heavy = FunctionBuilder::new("heavy");
    heavy.add_block(vec![Inst::Alu; 10], Terminator::Ret);
    let heavy = pb.add_function(m, heavy);
    let mut light = FunctionBuilder::new("light");
    light.add_block(vec![Inst::Alu], Terminator::Ret);
    let light = pb.add_function(m, light);
    let p = pb.finish().unwrap();
    let image = image_of(&p);
    // 9:1 weighting — expected insts per block ~ (0.9*11 + 0.1*2).
    let r = simulate(
        &image,
        &Workload::new(vec![(heavy, 9.0), (light, 1.0)], 20_000),
        &UarchConfig::default(),
        &SimOptions::default(),
    );
    let avg = r.counters.insts as f64 / r.counters.blocks as f64;
    assert!((9.0..11.0).contains(&avg), "avg insts/block {avg}");
}

#[test]
fn sampling_period_bounds_sample_count() {
    let mut pb = ProgramBuilder::new();
    let m = pb.add_module("m.cc");
    let mut f = FunctionBuilder::new("looper");
    f.add_block(
        vec![Inst::Alu],
        Terminator::CondBr {
            taken: BlockId(0),
            fallthrough: BlockId(1),
            prob_taken: 0.9,
        },
    );
    f.add_block(Vec::new(), Terminator::Ret);
    let looper = pb.add_function(m, f);
    let p = pb.finish().unwrap();
    let image = image_of(&p);
    let r = simulate(
        &image,
        &Workload::new(vec![(looper, 1.0)], 50_000),
        &UarchConfig::default(),
        &SimOptions {
            sampling: Some(SamplingConfig { period: 100 }),
            heatmap: None,
            collect_call_misses: false,
            attribution: false,
        },
    );
    let profile = r.profile.unwrap();
    let taken = r.counters.taken_branches;
    let expected = taken / 100;
    let got = profile.samples.len() as u64;
    assert!(
        got.abs_diff(expected) <= 1,
        "samples {got} vs taken/period {expected}"
    );
}

#[test]
fn hugepage_config_changes_only_tlb_behavior() {
    let (p, entry) = mutually_recursive();
    let image = image_of(&p);
    let w = Workload::new(vec![(entry, 1.0)], 30_000);
    let small = simulate(&image, &w, &UarchConfig::default(), &SimOptions::default()).counters;
    let huge = simulate(
        &image,
        &w,
        &UarchConfig::with_hugepages(),
        &SimOptions::default(),
    )
    .counters;
    // Same instruction stream, same cache behavior; only TLB differs.
    assert_eq!(small.insts, huge.insts);
    assert_eq!(small.taken_branches, huge.taken_branches);
    assert_eq!(small.l1i_misses, huge.l1i_misses);
    assert!(huge.itlb_misses <= small.itlb_misses);
}
