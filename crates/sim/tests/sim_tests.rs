//! End-to-end simulator tests over real codegen + linker output.

use propeller_codegen::{codegen_module, ClusterMap, CodegenOptions, FunctionClusters};
use propeller_ir::{BlockId, FunctionBuilder, FunctionId, Inst, Program, ProgramBuilder, Terminator};
use propeller_linker::{link, LinkInput, LinkOptions, SymbolOrdering};
use propeller_sim::{simulate, ProgramImage, SimOptions, UarchConfig, Workload};
use propeller_profile::SamplingConfig;

/// `driver` loops `iters` times; each iteration calls `work`, which has
/// a hot path and a rarely-taken cold path full of padding.
fn looped_program(pad: usize) -> (Program, FunctionId) {
    let mut pb = ProgramBuilder::new();
    let m = pb.add_module("m.cc");

    let mut work = FunctionBuilder::new("work");
    let entry = work.add_block(
        vec![Inst::Alu; 4],
        Terminator::CondBr {
            taken: BlockId(1),
            fallthrough: BlockId(2),
            prob_taken: 0.03,
        },
    );
    let cold = work.add_block(vec![Inst::Store; pad], Terminator::Jump(BlockId(3)));
    let hot = work.add_block(vec![Inst::Alu; 6], Terminator::Jump(BlockId(3)));
    let exit = work.add_block(vec![Inst::Alu], Terminator::Ret);
    work.set_block_freq(entry, 10_000);
    work.set_block_freq(cold, 300);
    work.set_block_freq(hot, 9_700);
    work.set_block_freq(exit, 10_000);
    let work_id = pb.add_function(m, work);

    let mut driver = FunctionBuilder::new("driver");
    let loop_head = driver.add_block(
        vec![Inst::Call(work_id)],
        Terminator::CondBr {
            taken: BlockId(0),
            fallthrough: BlockId(1),
            prob_taken: 0.99,
        },
    );
    let done = driver.add_block(Vec::new(), Terminator::Ret);
    driver.set_block_freq(loop_head, 10_000);
    driver.set_block_freq(done, 100);
    let driver_id = pb.add_function(m, driver);

    (pb.finish().unwrap(), driver_id)
}

fn build_image(p: &Program, opts: &CodegenOptions, link_opts: &LinkOptions) -> ProgramImage {
    let inputs: Vec<LinkInput> = p
        .modules()
        .iter()
        .map(|m| {
            let r = codegen_module(m, p, opts).unwrap();
            LinkInput::new(r.object, r.debug_layout)
        })
        .collect();
    let bin = link(&inputs, link_opts).unwrap();
    ProgramImage::build(p, &bin.layout).unwrap()
}

fn workload(entry: FunctionId, budget: u64) -> Workload {
    Workload::new(vec![(entry, 1.0)], budget)
}

#[test]
fn counters_are_consistent() {
    let (p, driver) = looped_program(10);
    let image = build_image(&p, &CodegenOptions::baseline(), &LinkOptions::default());
    let r = simulate(
        &image,
        &workload(driver, 50_000),
        &UarchConfig::default(),
        &SimOptions::default(),
    );
    let c = r.counters;
    assert_eq!(c.blocks, 50_000);
    assert!(c.insts > c.blocks, "multiple insts per block");
    assert!(c.cycles > 0);
    assert!(c.taken_branches > 0);
    assert!(c.fallthroughs > 0);
    // Cache misses exist but are bounded by accesses.
    assert!(c.l2_code_misses <= c.l1i_misses);
    assert!(c.l3_code_misses <= c.l2_code_misses);
    assert!(c.stlb_walks <= c.itlb_misses);
}

#[test]
fn determinism_across_runs() {
    let (p, driver) = looped_program(10);
    let image = build_image(&p, &CodegenOptions::baseline(), &LinkOptions::default());
    let a = simulate(
        &image,
        &workload(driver, 20_000),
        &UarchConfig::default(),
        &SimOptions::default(),
    );
    let b = simulate(
        &image,
        &workload(driver, 20_000),
        &UarchConfig::default(),
        &SimOptions::default(),
    );
    assert_eq!(a.counters, b.counters);
    // And a different seed changes the trace.
    let mut w = workload(driver, 20_000);
    w.seed = 999;
    let c = simulate(&image, &w, &UarchConfig::default(), &SimOptions::default());
    assert_ne!(a.counters, c.counters);
}

#[test]
fn hot_cold_split_reduces_taken_branches_and_misses() {
    // Many hot functions, each dragging a large cold block: the
    // combined text (~70 KiB) exceeds the 32 KiB L1i, but the hot parts
    // alone fit once the cold blocks are split out.
    let mut pb = ProgramBuilder::new();
    let m = pb.add_module("m.cc");
    let n = 256;
    let mut workers = Vec::new();
    for i in 0..n {
        let mut f = FunctionBuilder::new(format!("work{i}"));
        f.add_block(
            vec![Inst::Alu; 4],
            Terminator::CondBr {
                taken: BlockId(1),
                fallthrough: BlockId(2),
                prob_taken: 0.002,
            },
        );
        f.add_block(vec![Inst::Store; 400], Terminator::Jump(BlockId(3))); // cold
        f.add_block(vec![Inst::Alu; 6], Terminator::Jump(BlockId(3)));
        f.add_block(Vec::new(), Terminator::Ret);
        workers.push(pb.add_function(m, f));
    }
    let mut driver = FunctionBuilder::new("driver");
    driver.add_block(
        workers.iter().map(|w| Inst::Call(*w)).collect(),
        Terminator::CondBr {
            taken: BlockId(0),
            fallthrough: BlockId(1),
            prob_taken: 0.995,
        },
    );
    driver.add_block(Vec::new(), Terminator::Ret);
    let driver = pb.add_function(m, driver);
    let p = pb.finish().unwrap();

    let baseline = build_image(&p, &CodegenOptions::baseline(), &LinkOptions::default());

    let mut map = ClusterMap::new();
    let mut order = vec!["driver".to_string()];
    for w in &workers {
        map.insert(
            *w,
            FunctionClusters::hot_cold(
                vec![BlockId(0), BlockId(2), BlockId(3)],
                vec![BlockId(1)],
            ),
        );
        let name = &p.function(*w).unwrap().name;
        order.push(name.clone());
    }
    for w in &workers {
        order.push(format!("{}.cold", p.function(*w).unwrap().name));
    }
    let optimized = build_image(
        &p,
        &CodegenOptions::with_clusters(map),
        &LinkOptions {
            symbol_order: Some(SymbolOrdering::new(order)),
            relax: true,
            ..LinkOptions::default()
        },
    );

    let w = workload(driver, 300_000);
    let base = simulate(&baseline, &w, &UarchConfig::default(), &SimOptions::default()).counters;
    let opt = simulate(&optimized, &w, &UarchConfig::default(), &SimOptions::default()).counters;

    assert!(
        opt.taken_branches < base.taken_branches,
        "taken: opt={} base={}",
        opt.taken_branches,
        base.taken_branches
    );
    assert!(
        (opt.l1i_misses as f64) < base.l1i_misses as f64 * 0.5,
        "l1i: opt={} base={}",
        opt.l1i_misses,
        base.l1i_misses
    );
    assert!(
        opt.speedup_pct_over(&base) > 1.0,
        "optimized layout should be faster: {:.2}%",
        opt.speedup_pct_over(&base)
    );
}

#[test]
fn lbr_sampling_produces_mappable_profile() {
    let (p, driver) = looped_program(10);
    let image = build_image(&p, &CodegenOptions::with_labels(), &LinkOptions::default());
    let r = simulate(
        &image,
        &workload(driver, 30_000),
        &UarchConfig::default(),
        &SimOptions {
            sampling: Some(SamplingConfig { period: 97 }),
            heatmap: None,
            collect_call_misses: false,
            attribution: false,
        },
    );
    let profile = r.profile.expect("sampling enabled");
    assert!(!profile.samples.is_empty());
    // Every recorded address falls inside the text segment.
    for s in &profile.samples {
        for rec in &s.records {
            assert!((image.text_start..image.text_end).contains(&rec.from));
            assert!((image.text_start..image.text_end).contains(&rec.to));
        }
    }
}

#[test]
fn hugepages_reduce_itlb_misses_on_large_text() {
    // Many functions spread over a lot of text.
    let mut pb = ProgramBuilder::new();
    let m = pb.add_module("big.cc");
    let n = 64;
    let mut callees = Vec::new();
    for i in 0..n {
        let mut f = FunctionBuilder::new(format!("leaf{i}"));
        f.add_block(vec![Inst::Alu; 600], Terminator::Ret);
        callees.push(pb.add_function(m, f));
    }
    let mut driver = FunctionBuilder::new("driver");
    let insts: Vec<Inst> = callees.iter().map(|c| Inst::Call(*c)).collect();
    driver.add_block(
        insts,
        Terminator::CondBr {
            taken: BlockId(0),
            fallthrough: BlockId(1),
            prob_taken: 0.98,
        },
    );
    driver.add_block(Vec::new(), Terminator::Ret);
    let driver = pb.add_function(m, driver);
    let p = pb.finish().unwrap();

    let image = build_image(&p, &CodegenOptions::baseline(), &LinkOptions::default());
    let w = workload(driver, 100_000);
    let small_pages = simulate(&image, &w, &UarchConfig::default(), &SimOptions::default());
    let huge_pages = simulate(&image, &w, &UarchConfig::with_hugepages(), &SimOptions::default());
    assert!(
        huge_pages.counters.itlb_misses < small_pages.counters.itlb_misses / 2,
        "huge={} small={}",
        huge_pages.counters.itlb_misses,
        small_pages.counters.itlb_misses
    );
}

#[test]
fn heatmap_covers_text_and_tracks_locality() {
    let (p, driver) = looped_program(300);
    let image = build_image(&p, &CodegenOptions::baseline(), &LinkOptions::default());
    let r = simulate(
        &image,
        &workload(driver, 20_000),
        &UarchConfig::default(),
        &SimOptions {
            sampling: None,
            heatmap: Some((32, 16)),
            collect_call_misses: false,
            attribution: false,
        },
    );
    let h = r.heatmap.expect("requested");
    assert!(h.active_rows() > 0);
    assert!(h.active_rows() <= 32);
    let art = h.render_ascii();
    assert_eq!(art.lines().count(), 32);
}
