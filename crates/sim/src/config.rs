//! Simulation configuration.

use propeller_ir::FunctionId;

/// Geometry of one cache level.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Associativity.
    pub assoc: usize,
    /// Line size in bytes.
    pub line: u64,
}

/// Instruction TLB geometry.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct TlbConfig {
    /// First-level iTLB entries for 4 KiB pages.
    pub l1_entries_4k: usize,
    /// First-level iTLB entries for 2 MiB pages (Skylake has 8).
    pub l1_entries_2m: usize,
    /// Unified second-level TLB entries.
    pub stlb_entries: usize,
    /// Whether the text segment is backed by 2 MiB hugepages.
    pub hugepages: bool,
}

/// Cycle penalties for the front-end model.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct Penalties {
    /// Base cycles per instruction (front-end throughput bound).
    pub base_cpi: f64,
    /// L1i miss that hits L2.
    pub l1i_miss: f64,
    /// L2 code miss that hits L3.
    pub l2_miss: f64,
    /// L3 code miss (memory fetch).
    pub l3_miss: f64,
    /// iTLB miss that hits the STLB.
    pub itlb_miss: f64,
    /// STLB miss (page walk).
    pub stlb_walk: f64,
    /// Front-end resteer on a BTB miss (`baclears.any`).
    pub baclears: f64,
    /// Fetch-redirect bubble charged to every taken branch.
    pub taken_branch: f64,
}

/// The full microarchitecture configuration. Defaults model a
/// Skylake-class server core.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct UarchConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L2 unified cache (code path only is modeled).
    pub l2: CacheConfig,
    /// L3 slice serving this core.
    pub l3: CacheConfig,
    /// Instruction TLBs.
    pub itlb: TlbConfig,
    /// Branch target buffer entries (modeled 8-way).
    pub btb_entries: usize,
    /// DSB (decoded uop cache) proxy capacity in 64-byte windows.
    pub dsb_windows: usize,
    /// Cycle penalties.
    pub penalties: Penalties,
}

impl Default for UarchConfig {
    fn default() -> Self {
        UarchConfig {
            l1i: CacheConfig {
                capacity: 32 * 1024,
                assoc: 8,
                line: 64,
            },
            l2: CacheConfig {
                capacity: 1024 * 1024,
                assoc: 16,
                line: 64,
            },
            l3: CacheConfig {
                capacity: 8 * 1024 * 1024,
                assoc: 16,
                line: 64,
            },
            itlb: TlbConfig {
                l1_entries_4k: 64,
                l1_entries_2m: 8,
                stlb_entries: 1536,
                hugepages: false,
            },
            // Scaled with the evaluation programs (a full Skylake BTB
            // holds ~4K branches; evaluation-scale programs have
            // proportionally fewer hot branch sites, so an unscaled
            // BTB would never show the resteer pressure of Figure 8).
            btb_entries: 512,
            dsb_windows: 512,
            penalties: Penalties {
                base_cpi: 0.30,
                l1i_miss: 10.0,
                l2_miss: 34.0,
                l3_miss: 160.0,
                itlb_miss: 9.0,
                stlb_walk: 90.0,
                baclears: 14.0,
                taken_branch: 0.8,
            },
        }
    }
}

impl UarchConfig {
    /// Skylake defaults with 2 MiB hugepages for text (the Search
    /// configuration in §5.5).
    pub fn with_hugepages() -> Self {
        let mut c = Self::default();
        c.itlb.hugepages = true;
        c
    }
}

/// What to run: entry points, how much of it, and the seed.
#[derive(Clone, PartialEq, Debug)]
pub struct Workload {
    /// `(entry function, relative weight)` — one is drawn per request.
    pub entries: Vec<(FunctionId, f64)>,
    /// Stop after this many executed basic blocks.
    pub block_budget: u64,
    /// RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// Maximum simulated call depth (deeper calls are elided).
    pub max_call_depth: usize,
}

impl Workload {
    /// A workload with the given entries and budget, default seed and
    /// call depth.
    pub fn new(entries: Vec<(FunctionId, f64)>, block_budget: u64) -> Self {
        Workload {
            entries,
            block_budget,
            seed: 0x5eed,
            max_call_depth: 128,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_skylake_shaped() {
        let c = UarchConfig::default();
        assert_eq!(c.l1i.capacity, 32 * 1024);
        assert_eq!(c.itlb.l1_entries_4k, 64);
        assert_eq!(c.itlb.l1_entries_2m, 8);
        assert!(!c.itlb.hugepages);
        assert!(UarchConfig::with_hugepages().itlb.hugepages);
    }

    #[test]
    fn workload_constructor_defaults() {
        let w = Workload::new(vec![(FunctionId(0), 1.0)], 1000);
        assert_eq!(w.max_call_depth, 128);
        assert_eq!(w.block_budget, 1000);
    }
}
