//! Text exporters for the observability artifacts: the Figure-7 heat
//! map as CSV or PGM, for plotting outside the repo (gnuplot,
//! matplotlib, any image viewer). The folded-stack flamegraph text
//! lives on [`crate::attr::FoldedStacks::to_text`]; these cover the
//! heat map.

use crate::heatmap::HeatMap;
use std::fmt::Write as _;

/// Renders the heat map as CSV: a header row naming the time buckets,
/// then one row per address bucket (low addresses first) whose first
/// column is the bucket's starting address in hex.
pub fn heatmap_csv(h: &HeatMap) -> String {
    let mut out = String::new();
    out.push_str("addr_bucket_start");
    for c in 0..h.time_buckets {
        let _ = write!(out, ",t{c}");
    }
    out.push('\n');
    let span = h.addr_end - h.addr_start;
    for r in 0..h.addr_buckets {
        let start = h.addr_start + span * r as u64 / h.addr_buckets as u64;
        let _ = write!(out, "0x{start:x}");
        for c in 0..h.time_buckets {
            let _ = write!(out, ",{}", h.cell(r, c));
        }
        out.push('\n');
    }
    out
}

/// Renders the heat map as a plain (ASCII, P2) PGM grayscale image:
/// one pixel per cell, rows = address buckets (top = low addresses),
/// columns = time buckets, brighter = hotter. Cell counts are scaled
/// to the 0–255 range by the maximum cell so the hottest cell is
/// white.
pub fn heatmap_pgm(h: &HeatMap) -> String {
    let max = h.cells.iter().copied().max().unwrap_or(0).max(1);
    let mut out = String::new();
    let _ = writeln!(out, "P2");
    let _ = writeln!(out, "# propeller-sim instruction-access heat map");
    let _ = writeln!(out, "{} {}", h.time_buckets, h.addr_buckets);
    let _ = writeln!(out, "255");
    for r in 0..h.addr_buckets {
        for c in 0..h.time_buckets {
            if c > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{}", h.cell(r, c) * 255 / max);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HeatMap {
        let mut h = HeatMap::new(0x1000, 0x2000, 4, 2, 4);
        h.record(0x1000);
        h.record(0x1fff);
        h.record(0x1800);
        h
    }

    #[test]
    fn csv_shape_and_counts() {
        let csv = heatmap_csv(&sample());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5); // header + 4 address rows
        assert_eq!(lines[0], "addr_bucket_start,t0,t1");
        assert_eq!(lines[1], "0x1000,1,0");
        assert_eq!(lines[3], "0x1800,0,1");
        assert_eq!(lines[4], "0x1c00,1,0");
    }

    #[test]
    fn pgm_is_valid_p2() {
        let pgm = heatmap_pgm(&sample());
        let mut lines = pgm.lines();
        assert_eq!(lines.next(), Some("P2"));
        let _comment = lines.next().unwrap();
        assert_eq!(lines.next(), Some("2 4")); // width height
        assert_eq!(lines.next(), Some("255"));
        let pixels: Vec<u32> = lines
            .flat_map(|l| l.split_whitespace())
            .map(|t| t.parse().unwrap())
            .collect();
        assert_eq!(pixels.len(), 8);
        assert!(pixels.iter().all(|&p| p <= 255));
        assert!(pixels.contains(&255)); // hottest cell saturates
    }
}
