//! Instruction-access heat maps (Figure 7).

/// A time x address histogram of instruction fetches over the text
/// segment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HeatMap {
    /// First text address covered.
    pub addr_start: u64,
    /// One past the last text address covered.
    pub addr_end: u64,
    /// Number of time buckets (columns).
    pub time_buckets: usize,
    /// Number of address buckets (rows).
    pub addr_buckets: usize,
    /// Row-major counts: `cells[row * time_buckets + col]`.
    pub cells: Vec<u64>,
    total_events: u64,
    events_per_column: u64,
}

impl HeatMap {
    /// Creates an empty heat map over `[addr_start, addr_end)` with the
    /// given resolution, expecting roughly `expected_events` fetch
    /// events (used to spread them across time columns).
    pub fn new(
        addr_start: u64,
        addr_end: u64,
        addr_buckets: usize,
        time_buckets: usize,
        expected_events: u64,
    ) -> Self {
        assert!(addr_end > addr_start);
        assert!(addr_buckets > 0 && time_buckets > 0);
        HeatMap {
            addr_start,
            addr_end,
            time_buckets,
            addr_buckets,
            cells: vec![0; addr_buckets * time_buckets],
            total_events: 0,
            events_per_column: (expected_events / time_buckets as u64).max(1),
        }
    }

    /// Records one instruction fetch at `addr`.
    pub fn record(&mut self, addr: u64) {
        if addr < self.addr_start || addr >= self.addr_end {
            return;
        }
        let span = self.addr_end - self.addr_start;
        let row = ((addr - self.addr_start) * self.addr_buckets as u64 / span) as usize;
        let col = ((self.total_events / self.events_per_column) as usize)
            .min(self.time_buckets - 1);
        self.cells[row * self.time_buckets + col] += 1;
        self.total_events += 1;
    }

    /// The count at `(addr bucket row, time bucket col)`.
    pub fn cell(&self, row: usize, col: usize) -> u64 {
        self.cells[row * self.time_buckets + col]
    }

    /// Number of address rows with any activity — the "band height" of
    /// Figure 7: tighter layouts touch fewer rows.
    pub fn active_rows(&self) -> usize {
        (0..self.addr_buckets)
            .filter(|&r| (0..self.time_buckets).any(|c| self.cell(r, c) > 0))
            .count()
    }

    /// Renders an ASCII art heat map (rows = addresses, top = low).
    pub fn render_ascii(&self) -> String {
        let max = self.cells.iter().copied().max().unwrap_or(0).max(1);
        let shades = [' ', '.', ':', '+', '*', '#'];
        let mut out = String::new();
        for r in 0..self.addr_buckets {
            for c in 0..self.time_buckets {
                let v = self.cell(r, c);
                let idx = if v == 0 {
                    0
                } else {
                    1 + ((v * (shades.len() as u64 - 2)) / max) as usize
                };
                out.push(shades[idx.min(shades.len() - 1)]);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_buckets() {
        let mut h = HeatMap::new(0x1000, 0x2000, 4, 2, 4);
        h.record(0x1000); // row 0, col 0
        h.record(0x1FFF); // row 3, col 0
        h.record(0x1800); // row 2, col 1
        assert_eq!(h.cell(0, 0), 1);
        assert_eq!(h.cell(3, 0), 1);
        assert_eq!(h.cell(2, 1), 1);
        assert_eq!(h.active_rows(), 3);
    }

    #[test]
    fn out_of_range_ignored() {
        let mut h = HeatMap::new(0x1000, 0x2000, 4, 4, 10);
        h.record(0x0FFF);
        h.record(0x2000);
        assert_eq!(h.active_rows(), 0);
    }

    #[test]
    fn ascii_rendering_shape() {
        let mut h = HeatMap::new(0, 100, 3, 5, 5);
        h.record(10);
        let art = h.render_ascii();
        assert_eq!(art.lines().count(), 3);
        assert!(art.lines().all(|l| l.len() == 5));
        assert!(art.contains(|c| c != ' ' && c != '\n'));
    }

    #[test]
    fn columns_advance_with_time() {
        let mut h = HeatMap::new(0, 64, 1, 4, 8);
        for _ in 0..8 {
            h.record(0);
        }
        // 2 events per column.
        for c in 0..4 {
            assert_eq!(h.cell(0, c), 2);
        }
    }
}
