//! A tiny deterministic RNG for the simulation hot loop.

/// SplitMix64: fast, well-distributed, and trivially seedable. Used
/// instead of a general-purpose RNG because the simulator draws
/// billions of branch decisions and must be bit-reproducible across
/// platforms.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift; bias is negligible for simulation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn chance_matches_probability_roughly() {
        let mut r = SplitMix64::new(11);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }
}
