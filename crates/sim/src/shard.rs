//! Sharded trace simulation.
//!
//! The sequential walk in [`crate::simulate`] threads one cache/RNG/
//! call-stack state through every executed block, so it cannot be
//! parallelized without changing its answer. What *can* be split is
//! the workload itself: `shards > 1` decomposes the block budget into
//! independent per-shard streams — each a complete simulation over the
//! same image with its own derived seed — and merges the results under
//! a conservation discipline: shard budgets sum to the total budget,
//! counters sum field-wise, and LBR samples concatenate, always in
//! shard order. The merged result is a function of `(workload, shard
//! count)` only, never of which thread ran which shard.
//!
//! `shards == 1` is byte-identical to [`crate::simulate`] — the exact
//! legacy path, taken by the pipeline's profiling run so that
//! `run_report.json` stays independent of every parallelism knob.

use crate::config::{UarchConfig, Workload};
use crate::counters::SimReport;
use crate::engine::{simulate, SimOptions};
use crate::image::ProgramImage;
use crate::rng::SplitMix64;
use propeller_profile::HardwareProfile;

/// Splits `total` into `shards` budgets that sum to exactly `total`:
/// the first `total % shards` shards carry one extra block.
pub fn shard_budgets(total: u64, shards: usize) -> Vec<u64> {
    let shards = shards.max(1) as u64;
    let base = total / shards;
    let extra = total % shards;
    (0..shards)
        .map(|i| base + u64::from(i < extra))
        .collect()
}

/// Derives one independent RNG seed per shard from the workload seed.
/// Shard 0 keeps the original seed, so a single shard replays the
/// unsharded stream exactly; later shards draw fresh SplitMix64 states.
pub fn shard_seeds(seed: u64, shards: usize) -> Vec<u64> {
    let mut gen = SplitMix64::new(seed);
    (0..shards.max(1))
        .map(|i| if i == 0 { seed } else { gen.next_u64() })
        .collect()
}

/// Runs `workload` as `shards` independent per-shard streams (at most
/// `jobs` of them concurrently) and merges the results in shard order.
///
/// Counters sum field-wise and the profiles' samples concatenate — both
/// merges are exact, so the output depends only on the shard count,
/// not on thread scheduling. Heat-map and attribution collection have
/// no shard-merge discipline (their sinks are stateful across the whole
/// stream), so a request for either falls back to the single-stream
/// walk; call-miss maps merge by summing per-site counts.
///
/// # Panics
///
/// Same as [`simulate`].
pub fn simulate_sharded(
    image: &ProgramImage,
    workload: &Workload,
    uarch: &UarchConfig,
    opts: &SimOptions,
    shards: usize,
    jobs: usize,
) -> SimReport {
    if shards <= 1 || opts.heatmap.is_some() || opts.attribution {
        return simulate(image, workload, uarch, opts);
    }
    let budgets = shard_budgets(workload.block_budget, shards);
    let seeds = shard_seeds(workload.seed, shards);
    let shard_loads: Vec<Workload> = budgets
        .iter()
        .zip(&seeds)
        .map(|(&budget, &seed)| {
            let mut w = workload.clone();
            w.block_budget = budget;
            w.seed = seed;
            w
        })
        .collect();

    // Contiguous chunks of the shard list per worker; per-chunk result
    // vectors concatenate in chunk order, so the merged stream order is
    // the shard order no matter how the threads interleave.
    let jobs = jobs.max(1).min(shard_loads.len());
    let reports: Vec<SimReport> = if jobs == 1 {
        shard_loads
            .iter()
            .map(|w| simulate(image, w, uarch, opts))
            .collect()
    } else {
        let chunk = shard_loads.len().div_ceil(jobs);
        let mut out = Vec::with_capacity(shard_loads.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = shard_loads
                .chunks(chunk)
                .map(|c| {
                    s.spawn(move || {
                        c.iter()
                            .map(|w| simulate(image, w, uarch, opts))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                out.extend(h.join().expect("shard simulation does not panic"));
            }
        });
        out
    };

    let mut merged = SimReport::default();
    let mut profile = opts
        .sampling
        .is_some()
        .then(|| HardwareProfile::new("simulated-binary"));
    let mut call_misses = opts
        .collect_call_misses
        .then(std::collections::HashMap::new);
    for r in reports {
        merged.counters = merged.counters.merged_with(&r.counters);
        if let (Some(p), Some(rp)) = (profile.as_mut(), r.profile) {
            p.samples.extend(rp.samples);
        }
        if let (Some(m), Some(rm)) = (call_misses.as_mut(), r.call_misses) {
            for (site, n) in rm {
                *m.entry(site).or_insert(0) += n;
            }
        }
    }
    merged.profile = profile;
    merged.call_misses = call_misses;
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_image() -> ProgramImage {
        use propeller_codegen::{codegen_module, CodegenOptions};
        use propeller_ir::{BlockId, FunctionBuilder, Inst, ProgramBuilder, Terminator};
        use propeller_linker::{link, LinkInput, LinkOptions};
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m.cc");
        let mut f = FunctionBuilder::new("f");
        let entry = f.add_block(
            vec![Inst::Alu; 4],
            Terminator::CondBr {
                taken: BlockId(1),
                fallthrough: BlockId(2),
                prob_taken: 0.7,
            },
        );
        let hot = f.add_block(vec![Inst::Alu; 3], Terminator::Jump(BlockId(3)));
        let cold = f.add_block(vec![Inst::Store; 2], Terminator::Jump(BlockId(3)));
        let exit = f.add_block(vec![Inst::Alu], Terminator::Ret);
        f.set_block_freq(entry, 100);
        f.set_block_freq(hot, 70);
        f.set_block_freq(cold, 30);
        f.set_block_freq(exit, 100);
        pb.add_function(m, f);
        let p = pb.finish().expect("program builds");
        let inputs: Vec<LinkInput> = p
            .modules()
            .iter()
            .map(|m| {
                let r = codegen_module(m, &p, &CodegenOptions::baseline()).expect("codegen");
                LinkInput::new(r.object, r.debug_layout)
            })
            .collect();
        let bin = link(&inputs, &LinkOptions::default()).expect("link");
        ProgramImage::build(&p, &bin.layout).expect("image builds")
    }

    #[test]
    fn budgets_conserve_total_and_balance() {
        assert_eq!(shard_budgets(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(shard_budgets(10, 4).iter().sum::<u64>(), 10);
        assert_eq!(shard_budgets(3, 8).iter().sum::<u64>(), 3);
        assert_eq!(shard_budgets(0, 5).iter().sum::<u64>(), 0);
        assert_eq!(shard_budgets(7, 1), vec![7]);
    }

    #[test]
    fn seeds_keep_shard_zero_on_the_legacy_stream() {
        let s = shard_seeds(0x5eed, 4);
        assert_eq!(s[0], 0x5eed);
        assert_eq!(s.len(), 4);
        // Derived seeds are distinct from each other and the original.
        let mut uniq: Vec<u64> = s.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4, "{s:?}");
        // And deterministic.
        assert_eq!(s, shard_seeds(0x5eed, 4));
    }

    #[test]
    fn one_shard_is_bitwise_the_legacy_walk() {
        let image = tiny_image();
        let w = Workload::new(vec![(propeller_ir::FunctionId(0), 1.0)], 500);
        let opts = SimOptions {
            sampling: Some(Default::default()),
            collect_call_misses: true,
            ..SimOptions::default()
        };
        let a = simulate(&image, &w, &UarchConfig::default(), &opts);
        let b = simulate_sharded(&image, &w, &UarchConfig::default(), &opts, 1, 8);
        assert_eq!(a.counters, b.counters);
        assert_eq!(
            a.profile.as_ref().map(|p| p.samples.len()),
            b.profile.as_ref().map(|p| p.samples.len())
        );
        assert_eq!(a.call_misses, b.call_misses);
    }

    #[test]
    fn sharded_walk_conserves_the_block_budget_and_is_thread_invariant() {
        let image = tiny_image();
        let w = Workload::new(vec![(propeller_ir::FunctionId(0), 1.0)], 1000);
        let opts = SimOptions::default();
        let uarch = UarchConfig::default();
        let serial = simulate_sharded(&image, &w, &uarch, &opts, 4, 1);
        assert_eq!(serial.counters.blocks, 1000, "budget conserved");
        // Same shard count at any worker count: identical merge.
        for jobs in [2, 4, 8] {
            let parallel = simulate_sharded(&image, &w, &uarch, &opts, 4, jobs);
            assert_eq!(serial.counters, parallel.counters, "jobs={jobs}");
        }
    }
}
