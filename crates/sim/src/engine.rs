//! The trace-driven front-end simulator.

use crate::attr::AttrSink;
use crate::cache::SetAssocCache;
use crate::config::{UarchConfig, Workload};
use crate::counters::{CounterSet, SimReport};
use crate::heatmap::HeatMap;
use crate::image::{ProgramImage, SimTerm};
use crate::rng::SplitMix64;
use propeller_profile::{HardwareProfile, LbrRecord, LbrSample, SamplingConfig, LBR_DEPTH};
use std::collections::{HashMap, VecDeque};

/// What to collect during simulation.
#[derive(Clone, Debug, Default)]
pub struct SimOptions {
    /// Collect LBR samples at this configuration.
    pub sampling: Option<SamplingConfig>,
    /// Collect a heat map with `(address buckets, time buckets)`.
    pub heatmap: Option<(usize, usize)>,
    /// Collect the call-site code-miss profile: counts of L1i misses at
    /// callee entry, keyed by `(call-site block address, callee entry
    /// address)` — the input to §3.5's prefetch insertion.
    pub collect_call_misses: bool,
    /// Attribute every counted event to the `(function, basic block)`
    /// it hit, plus folded call stacks weighted by cycles — the
    /// simulator-side `perf record -g` + `perf report` data.
    pub attribution: bool,
}

/// Encoded call instruction length (return address displacement).
const CALL_LEN: u64 = 5;

struct Frontend {
    l1i: SetAssocCache,
    l2: SetAssocCache,
    l3: SetAssocCache,
    itlb: SetAssocCache,
    stlb: SetAssocCache,
    btb: SetAssocCache,
    dsb: SetAssocCache,
    cycles: f64,
    counters: CounterSet,
    cfg: UarchConfig,
    heatmap: Option<HeatMap>,
}

impl Frontend {
    fn new(cfg: &UarchConfig, image: &ProgramImage, opts: &SimOptions, budget: u64) -> Self {
        let page = if cfg.itlb.hugepages { 2 << 20 } else { 4096 };
        let l1_entries = if cfg.itlb.hugepages {
            cfg.itlb.l1_entries_2m
        } else {
            cfg.itlb.l1_entries_4k
        };
        let heatmap = opts.heatmap.map(|(rows, cols)| {
            HeatMap::new(
                image.text_start,
                image.text_end.max(image.text_start + 1),
                rows,
                cols,
                budget * 2,
            )
        });
        Frontend {
            l1i: SetAssocCache::with_capacity(cfg.l1i.capacity, cfg.l1i.assoc, cfg.l1i.line),
            l2: SetAssocCache::with_capacity(cfg.l2.capacity, cfg.l2.assoc, cfg.l2.line),
            l3: SetAssocCache::with_capacity(cfg.l3.capacity, cfg.l3.assoc, cfg.l3.line),
            itlb: SetAssocCache::new(next_pow2(l1_entries / 4), 4, page),
            stlb: SetAssocCache::new(next_pow2(cfg.itlb.stlb_entries / 8), 8, page),
            btb: SetAssocCache::new(next_pow2(cfg.btb_entries / 8), 8, 1),
            dsb: SetAssocCache::new(next_pow2(cfg.dsb_windows / 8), 8, 64),
            cycles: 0.0,
            counters: CounterSet::default(),
            cfg: *cfg,
            heatmap,
        }
    }

    /// Fetches the byte range `[addr, addr + len)`; returns whether any
    /// line missed L1i.
    fn fetch(&mut self, addr: u64, len: u32) -> bool {
        let mut missed = false;
        let line = self.cfg.l1i.line;
        let mut a = addr & !(line - 1);
        let end = addr + len.max(1) as u64;
        while a < end {
            if !self.itlb.access(a) {
                self.counters.itlb_misses += 1;
                if !self.stlb.access(a) {
                    self.counters.stlb_walks += 1;
                    self.cycles += self.cfg.penalties.stlb_walk;
                } else {
                    self.cycles += self.cfg.penalties.itlb_miss;
                }
            }
            if !self.l1i.access(a) {
                missed = true;
                self.counters.l1i_misses += 1;
                if !self.l2.access(a) {
                    self.counters.l2_code_misses += 1;
                    if !self.l3.access(a) {
                        self.counters.l3_code_misses += 1;
                        self.cycles += self.cfg.penalties.l3_miss;
                    } else {
                        self.cycles += self.cfg.penalties.l2_miss;
                    }
                } else {
                    self.cycles += self.cfg.penalties.l1i_miss;
                }
            }
            if !self.dsb.access(a) {
                self.counters.dsb_misses += 1;
            }
            if let Some(h) = &mut self.heatmap {
                h.record(a);
            }
            a += line;
        }
        missed
    }

    /// Issues a software prefetch of `addr`: warms the i-caches and the
    /// TLBs without stall penalties or demand-miss counter charges.
    fn prefetch(&mut self, addr: u64) {
        self.counters.prefetches += 1;
        if !self.itlb.access(addr) {
            self.stlb.access(addr);
        }
        if !self.l1i.access(addr)
            && !self.l2.access(addr) {
                self.l3.access(addr);
            }
    }

    /// Retires `n` instructions.
    fn retire(&mut self, n: u32) {
        self.counters.insts += n as u64;
        self.cycles += n as f64 * self.cfg.penalties.base_cpi;
    }

    /// A taken control transfer from `from`; `predictable_by_btb` is
    /// false for returns (served by the RSB).
    fn taken(&mut self, from: u64, predictable_by_btb: bool) {
        self.counters.taken_branches += 1;
        self.cycles += self.cfg.penalties.taken_branch;
        if predictable_by_btb && !self.btb.access(from) {
            self.counters.baclears += 1;
            self.cycles += self.cfg.penalties.baclears;
        }
    }
}

fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

struct Sampler {
    ring: VecDeque<LbrRecord>,
    period: u64,
    until_next: u64,
    profile: HardwareProfile,
}

impl Sampler {
    fn new(cfg: &SamplingConfig, binary: &str) -> Self {
        Sampler {
            ring: VecDeque::with_capacity(LBR_DEPTH),
            period: cfg.period.max(1),
            until_next: cfg.period.max(1),
            profile: HardwareProfile::new(binary),
        }
    }

    fn record(&mut self, from: u64, to: u64) {
        if self.ring.len() == LBR_DEPTH {
            self.ring.pop_front();
        }
        self.ring.push_back(LbrRecord { from, to });
        self.until_next -= 1;
        if self.until_next == 0 {
            self.until_next = self.period;
            self.profile
                .samples
                .push(LbrSample::new(self.ring.iter().copied().collect()));
        }
    }
}

struct Frame {
    f: usize,
    b: usize,
    call_idx: usize,
    entered: bool,
}

/// [`simulate`], plus telemetry: a `simulate` span under `parent`
/// carrying the run's wall time, and `sim.*` counters (blocks, insts,
/// cycles, L1i/iTLB misses) accumulated across runs.
///
/// # Panics
///
/// Same as [`simulate`].
pub fn simulate_traced(
    image: &ProgramImage,
    workload: &Workload,
    uarch: &UarchConfig,
    opts: &SimOptions,
    tel: &propeller_telemetry::Telemetry,
    parent: Option<propeller_telemetry::SpanId>,
) -> SimReport {
    let _span = tel.span_under("simulate", parent);
    let report = simulate(image, workload, uarch, opts);
    if tel.is_enabled() {
        let c = &report.counters;
        tel.counter_add("sim.blocks", c.blocks);
        tel.counter_add("sim.insts", c.insts);
        tel.counter_add("sim.cycles", c.cycles);
        tel.counter_add("sim.l1i_misses", c.l1i_misses);
        tel.counter_add("sim.itlb_misses", c.itlb_misses);
        if let Some(a) = &report.attribution {
            let _attr_span = tel.span_under("sim.attribution", parent);
            tel.counter_add("attr.symbols", a.symbols.len() as u64);
            tel.counter_add("attr.block_rows", a.block_rows() as u64);
            if let Some(f) = &report.folded {
                tel.counter_add("attr.folded_stacks", f.stacks.len() as u64);
            }
        }
    }
    report
}

/// Runs `workload` over `image` with LBR sampling on and returns the
/// collected profile plus the run's counters — `perf record` and
/// `perf stat` over the same execution. This is the re-profiling
/// primitive quality audits use, e.g. re-simulating the workload
/// against an optimized layout to measure profile staleness.
///
/// # Panics
///
/// Same as [`simulate`].
pub fn collect_profile(
    image: &ProgramImage,
    workload: &Workload,
    uarch: &UarchConfig,
    sampling: SamplingConfig,
) -> (HardwareProfile, CounterSet) {
    let report = simulate(
        image,
        workload,
        uarch,
        &SimOptions {
            sampling: Some(sampling),
            ..SimOptions::default()
        },
    );
    (report.profile.expect("sampling enabled"), report.counters)
}

/// Runs the workload over the image and reports counters, an optional
/// LBR profile, and an optional heat map.
///
/// # Panics
///
/// Panics if the workload names an entry function absent from the
/// image, or has no entries with positive weight while the budget is
/// nonzero.
pub fn simulate(
    image: &ProgramImage,
    workload: &Workload,
    uarch: &UarchConfig,
    opts: &SimOptions,
) -> SimReport {
    let mut fe = Frontend::new(uarch, image, opts, workload.block_budget);
    let mut rng = SplitMix64::new(workload.seed);
    let mut sampler = opts
        .sampling
        .as_ref()
        .map(|cfg| Sampler::new(cfg, "simulated-binary"));

    let entries: Vec<(usize, f64)> = workload
        .entries
        .iter()
        .map(|(fid, w)| {
            (
                *image
                    .fn_index
                    .get(fid)
                    .unwrap_or_else(|| panic!("entry {fid} not in image")),
                *w,
            )
        })
        .collect();
    let total_weight: f64 = entries.iter().map(|(_, w)| w).sum();
    assert!(
        workload.block_budget == 0 || total_weight > 0.0,
        "workload needs weighted entries"
    );

    let mut stack: Vec<Frame> = Vec::new();
    // The function ids of the live frames, root first — the folded
    // call chain attribution charges cycle weights to. Mirrors
    // `stack` so attribution never needs to borrow it.
    let mut call_chain: Vec<u32> = Vec::new();
    let mut attr = opts.attribution.then(|| AttrSink::new(image));
    let mut executed_blocks = 0u64;
    let mut call_misses: HashMap<(u64, u64), u64> = HashMap::new();

    // Runs `$body` and charges every counter/cycle delta it produces
    // to block `$b` of function `$f` (snapshot-diff, so attribution
    // cannot drift from the aggregate counters). `$f`/`$b` are
    // evaluated before the body runs.
    macro_rules! charged {
        ($f:expr, $b:expr, $body:block) => {{
            if let Some(sink) = attr.as_mut() {
                let (cf, cb) = ($f, $b);
                let prev = fe.counters;
                let prev_cycles = fe.cycles;
                $body
                sink.charge(&call_chain, cf, cb, (&prev, prev_cycles), (&fe.counters, fe.cycles));
            } else {
                $body
            }
        }};
    }

    while executed_blocks < workload.block_budget {
        if stack.is_empty() {
            // Dispatch a new request.
            let mut draw = rng.next_f64() * total_weight;
            let mut chosen = entries[0].0;
            for &(f, w) in &entries {
                if draw < w {
                    chosen = f;
                    break;
                }
                draw -= w;
            }
            stack.push(Frame {
                f: chosen,
                b: 0,
                call_idx: 0,
                entered: false,
            });
            // Lossless: `ProgramImage::build` rejects programs whose
            // function count exceeds u32::MAX.
            call_chain.push(chosen as u32);
        }
        let top = stack.last_mut().expect("nonempty");
        let block = &image.functions[top.f].blocks[top.b];
        if !top.entered {
            top.entered = true;
            executed_blocks += 1;
            charged!(top.f, top.b, {
                fe.counters.blocks += 1;
                fe.fetch(block.addr, block.size);
                fe.retire(block.straight_insts);
                for &target in &block.prefetches {
                    fe.prefetch(image.functions[target as usize].blocks[0].addr);
                }
            });
        }
        if top.call_idx < block.calls.len() {
            let (off, callee) = block.calls[top.call_idx];
            let (cf, cb) = (top.f, top.b);
            top.call_idx += 1;
            if stack.len() < workload.max_call_depth {
                let from = block.addr + off as u64;
                let to = image.functions[callee as usize].blocks[0].addr;
                // The transfer itself belongs to the call site...
                charged!(cf, cb, {
                    fe.taken(from, true);
                });
                // Fetch the callee's entry line at transfer time; a miss
                // here is exactly what a software prefetch earlier in
                // the caller would have hidden. It is charged to the
                // callee's entry block, where `perf` reports it.
                let missed: bool;
                charged!(callee as usize, 0, {
                    missed = fe.fetch(to, 1);
                });
                if missed && opts.collect_call_misses {
                    *call_misses.entry((block.addr, to)).or_insert(0) += 1;
                }
                if let Some(s) = &mut sampler {
                    s.record(from, to);
                }
                stack.push(Frame {
                    f: callee as usize,
                    b: 0,
                    call_idx: 0,
                    entered: false,
                });
                call_chain.push(callee);
            }
            continue;
        }
        // Terminator.
        let end = block.addr + block.size as u64;
        let from = end.saturating_sub(1);
        match block.term {
            SimTerm::Ret => {
                // Both the return's retire and its transfer belong to
                // the returning block; charge before popping so the
                // call chain still names the callee as the leaf.
                let (rf, rb) = (top.f, top.b);
                charged!(rf, rb, {
                    fe.retire(block.branch_insts);
                    stack.pop();
                    if let Some(caller) = stack.last() {
                        let cblock = &image.functions[caller.f].blocks[caller.b];
                        let (call_off, _) = cblock.calls[caller.call_idx - 1];
                        let to = cblock.addr + call_off as u64 + CALL_LEN;
                        fe.taken(from, false);
                        if let Some(s) = &mut sampler {
                            s.record(from, to);
                        }
                    }
                });
                call_chain.pop();
            }
            SimTerm::Jump(t) => {
                charged!(top.f, top.b, {
                    fe.retire(block.branch_insts);
                    let target = &image.functions[top.f].blocks[t as usize];
                    if block.branch_insts == 0 {
                        debug_assert_eq!(target.addr, end, "deleted jump implies adjacency");
                        fe.counters.fallthroughs += 1;
                    } else {
                        fe.taken(from, true);
                        if let Some(s) = &mut sampler {
                            s.record(from, target.addr);
                        }
                    }
                });
                top.b = t as usize;
                top.call_idx = 0;
                top.entered = false;
            }
            SimTerm::Cond { taken, ft, p } => {
                let choose_taken = rng.chance(p);
                let t = if choose_taken { taken } else { ft };
                let target_addr = image.functions[top.f].blocks[t as usize].addr;
                let contiguous = target_addr == end;
                // Executed branch instructions: the first Jcc always;
                // the trailing JMP only on the (non-contiguous)
                // fall-through path of a two-branch block.
                let executed = if block.branch_insts == 2 && !choose_taken {
                    2
                } else {
                    block.branch_insts.min(1)
                };
                charged!(top.f, top.b, {
                    fe.retire(executed);
                    if contiguous {
                        fe.counters.fallthroughs += 1;
                    } else {
                        fe.taken(from, true);
                        if let Some(s) = &mut sampler {
                            s.record(from, target_addr);
                        }
                    }
                });
                top.b = t as usize;
                top.call_idx = 0;
                top.entered = false;
            }
        }
    }

    fe.counters.cycles = fe.cycles.round() as u64;
    let (attribution, folded) = match attr {
        Some(sink) => {
            let (a, f) = sink.finalize(&fe.counters);
            (Some(a), Some(f))
        }
        None => (None, None),
    };
    SimReport {
        counters: fe.counters,
        profile: sampler.map(|s| s.profile),
        heatmap: fe.heatmap,
        call_misses: opts.collect_call_misses.then_some(call_misses),
        attribution,
        folded,
    }
}
