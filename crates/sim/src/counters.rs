//! Performance counters and simulation reports.

use crate::heatmap::HeatMap;
use propeller_profile::HardwareProfile;

/// The hardware events the simulator counts; each maps onto a Table 4
/// event of the paper.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct CounterSet {
    /// Instructions retired.
    pub insts: u64,
    /// Basic blocks executed.
    pub blocks: u64,
    /// Total cycles (from the front-end penalty model).
    pub cycles: u64,
    /// Taken branch instructions — `br_inst_retired.near_taken` (B2).
    pub taken_branches: u64,
    /// Not-taken (fall-through) control transfers.
    pub fallthroughs: u64,
    /// L1 i-cache misses — `frontend_retired.l1i_miss` (I1).
    pub l1i_misses: u64,
    /// L2 code read misses — `l2_rqsts.code_rd_miss` (I2).
    pub l2_code_misses: u64,
    /// Code misses served from memory — `offcore code rd` (I3).
    pub l3_code_misses: u64,
    /// First-level iTLB misses — `icache_64b.iftag_miss` (T1).
    pub itlb_misses: u64,
    /// STLB misses causing a page walk — `frontend_retired.itlb_miss`
    /// (T2).
    pub stlb_walks: u64,
    /// Front-end resteers from BTB misses — `baclears.any` (B1).
    pub baclears: u64,
    /// DSB (uop cache) window misses.
    pub dsb_misses: u64,
    /// Software prefetch instructions executed.
    pub prefetches: u64,
}

impl CounterSet {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }

    /// Relative speedup of `self` over `baseline` in percent, measured
    /// in cycles per instruction at equal work (the Table 3 metric:
    /// positive means `self` is faster).
    pub fn speedup_pct_over(&self, baseline: &CounterSet) -> f64 {
        let own = self.cycles as f64 / self.insts.max(1) as f64;
        let base = baseline.cycles as f64 / baseline.insts.max(1) as f64;
        (base / own - 1.0) * 100.0
    }

    /// Percent change of `metric(self)` relative to `metric(baseline)`,
    /// normalized per instruction (negative = reduction).
    pub fn delta_pct(
        &self,
        baseline: &CounterSet,
        metric: impl Fn(&CounterSet) -> u64,
    ) -> f64 {
        let own = metric(self) as f64 / self.insts.max(1) as f64;
        let base = metric(baseline) as f64 / baseline.insts.max(1) as f64;
        if base == 0.0 {
            0.0
        } else {
            (own / base - 1.0) * 100.0
        }
    }
}

/// Everything one simulation run produces.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Event counts.
    pub counters: CounterSet,
    /// LBR profile, if sampling was enabled.
    pub profile: Option<HardwareProfile>,
    /// Instruction-access heat map, if requested.
    pub heatmap: Option<HeatMap>,
    /// Call-site code-miss counts keyed by `(call-site block address,
    /// callee entry address)`, if requested (§3.5 prefetch analysis).
    pub call_misses: Option<std::collections::HashMap<(u64, u64), u64>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_math() {
        let base = CounterSet {
            insts: 1000,
            cycles: 2000,
            ..CounterSet::default()
        };
        let opt = CounterSet {
            insts: 1000,
            cycles: 1000,
            ..CounterSet::default()
        };
        assert!((opt.speedup_pct_over(&base) - 100.0).abs() < 1e-9);
        assert!((base.speedup_pct_over(&base)).abs() < 1e-9);
    }

    #[test]
    fn delta_pct_normalizes_per_inst() {
        let base = CounterSet {
            insts: 1000,
            l1i_misses: 100,
            ..CounterSet::default()
        };
        let opt = CounterSet {
            insts: 2000, // twice the work...
            l1i_misses: 100, // ...same misses => 50% reduction per inst
            ..CounterSet::default()
        };
        assert!((opt.delta_pct(&base, |c| c.l1i_misses) + 50.0).abs() < 1e-9);
    }

    #[test]
    fn ipc_zero_when_no_cycles() {
        assert_eq!(CounterSet::default().ipc(), 0.0);
    }
}
