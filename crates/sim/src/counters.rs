//! Performance counters and simulation reports.

use crate::attr::{AttributedCounters, FoldedStacks};
use crate::heatmap::HeatMap;
use propeller_profile::HardwareProfile;

/// The hardware events the simulator counts; each maps onto a Table 4
/// event of the paper.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct CounterSet {
    /// Instructions retired.
    pub insts: u64,
    /// Basic blocks executed.
    pub blocks: u64,
    /// Total cycles (from the front-end penalty model).
    pub cycles: u64,
    /// Taken branch instructions — `br_inst_retired.near_taken` (B2).
    pub taken_branches: u64,
    /// Not-taken (fall-through) control transfers.
    pub fallthroughs: u64,
    /// L1 i-cache misses — `frontend_retired.l1i_miss` (I1).
    pub l1i_misses: u64,
    /// L2 code read misses — `l2_rqsts.code_rd_miss` (I2).
    pub l2_code_misses: u64,
    /// Code misses served from memory — `offcore code rd` (I3).
    pub l3_code_misses: u64,
    /// First-level iTLB misses — `icache_64b.iftag_miss` (T1).
    pub itlb_misses: u64,
    /// STLB misses causing a page walk — `frontend_retired.itlb_miss`
    /// (T2).
    pub stlb_walks: u64,
    /// Front-end resteers from BTB misses — `baclears.any` (B1).
    pub baclears: u64,
    /// DSB (uop cache) window misses.
    pub dsb_misses: u64,
    /// Software prefetch instructions executed.
    pub prefetches: u64,
}

impl CounterSet {
    /// Field-wise sum of `self` and `other` — the conservation
    /// discipline of sharded simulation: every event a shard counted
    /// appears exactly once in the merged set, and the merge is
    /// commutative/associative over integers, so a fixed shard order
    /// makes the result bit-identical regardless of which thread ran
    /// which shard.
    pub fn merged_with(&self, other: &CounterSet) -> CounterSet {
        CounterSet {
            insts: self.insts + other.insts,
            blocks: self.blocks + other.blocks,
            cycles: self.cycles + other.cycles,
            taken_branches: self.taken_branches + other.taken_branches,
            fallthroughs: self.fallthroughs + other.fallthroughs,
            l1i_misses: self.l1i_misses + other.l1i_misses,
            l2_code_misses: self.l2_code_misses + other.l2_code_misses,
            l3_code_misses: self.l3_code_misses + other.l3_code_misses,
            itlb_misses: self.itlb_misses + other.itlb_misses,
            stlb_walks: self.stlb_walks + other.stlb_walks,
            baclears: self.baclears + other.baclears,
            dsb_misses: self.dsb_misses + other.dsb_misses,
            prefetches: self.prefetches + other.prefetches,
        }
    }

    /// True when the run retired no work at all (no instructions and
    /// no cycles). Every ratio metric below treats an empty run as
    /// neutral — 0.0 IPC, 0.0% speedup, 0.0% delta — rather than
    /// letting a zero denominator make it look infinitely fast or
    /// slow.
    pub fn is_empty(&self) -> bool {
        self.insts == 0 && self.cycles == 0
    }

    /// Instructions per cycle; 0.0 for an empty run.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }

    /// `metric` per thousand retired instructions (the usual
    /// normalization for miss-rate comparisons); 0.0 when nothing
    /// retired.
    pub fn per_kilo_insts(&self, metric: impl Fn(&CounterSet) -> u64) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            metric(self) as f64 * 1000.0 / self.insts as f64
        }
    }

    /// Relative speedup of `self` over `baseline` in percent, measured
    /// in cycles per instruction at equal work (the Table 3 metric:
    /// positive means `self` is faster). If either run is empty the
    /// comparison is meaningless and reports 0.0 instead of ±∞.
    pub fn speedup_pct_over(&self, baseline: &CounterSet) -> f64 {
        if self.cycles == 0 || baseline.cycles == 0 {
            return 0.0;
        }
        let own = self.cycles as f64 / self.insts.max(1) as f64;
        let base = baseline.cycles as f64 / baseline.insts.max(1) as f64;
        (base / own - 1.0) * 100.0
    }

    /// Percent change of `metric(self)` relative to `metric(baseline)`,
    /// normalized per instruction (negative = reduction). Reports 0.0
    /// when the baseline count is zero or either run is empty.
    pub fn delta_pct(
        &self,
        baseline: &CounterSet,
        metric: impl Fn(&CounterSet) -> u64,
    ) -> f64 {
        if self.is_empty() || baseline.is_empty() {
            return 0.0;
        }
        let own = metric(self) as f64 / self.insts.max(1) as f64;
        let base = metric(baseline) as f64 / baseline.insts.max(1) as f64;
        if base == 0.0 {
            0.0
        } else {
            (own / base - 1.0) * 100.0
        }
    }
}

/// Everything one simulation run produces.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Event counts.
    pub counters: CounterSet,
    /// LBR profile, if sampling was enabled.
    pub profile: Option<HardwareProfile>,
    /// Instruction-access heat map, if requested.
    pub heatmap: Option<HeatMap>,
    /// Call-site code-miss counts keyed by `(call-site block address,
    /// callee entry address)`, if requested (§3.5 prefetch analysis).
    pub call_misses: Option<std::collections::HashMap<(u64, u64), u64>>,
    /// Per-symbol/per-block attributed counters, if requested. The
    /// per-event sums equal [`SimReport::counters`] exactly.
    pub attribution: Option<AttributedCounters>,
    /// Folded call stacks weighted by attributed cycles (flamegraph
    /// input), if attribution was requested.
    pub folded: Option<FoldedStacks>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_math() {
        let base = CounterSet {
            insts: 1000,
            cycles: 2000,
            ..CounterSet::default()
        };
        let opt = CounterSet {
            insts: 1000,
            cycles: 1000,
            ..CounterSet::default()
        };
        assert!((opt.speedup_pct_over(&base) - 100.0).abs() < 1e-9);
        assert!((base.speedup_pct_over(&base)).abs() < 1e-9);
    }

    #[test]
    fn delta_pct_normalizes_per_inst() {
        let base = CounterSet {
            insts: 1000,
            l1i_misses: 100,
            ..CounterSet::default()
        };
        let opt = CounterSet {
            insts: 2000, // twice the work...
            l1i_misses: 100, // ...same misses => 50% reduction per inst
            ..CounterSet::default()
        };
        assert!((opt.delta_pct(&base, |c| c.l1i_misses) + 50.0).abs() < 1e-9);
    }

    #[test]
    fn ipc_zero_when_no_cycles() {
        assert_eq!(CounterSet::default().ipc(), 0.0);
    }

    #[test]
    fn empty_runs_are_neutral_in_every_ratio() {
        let empty = CounterSet::default();
        let real = CounterSet {
            insts: 1000,
            cycles: 1500,
            l1i_misses: 10,
            ..CounterSet::default()
        };
        assert!(empty.is_empty());
        assert!(!real.is_empty());
        // An empty run must not look infinitely fast or slow.
        assert_eq!(empty.speedup_pct_over(&real), 0.0);
        assert_eq!(real.speedup_pct_over(&empty), 0.0);
        assert_eq!(empty.speedup_pct_over(&empty), 0.0);
        assert_eq!(empty.delta_pct(&real, |c| c.l1i_misses), 0.0);
        assert_eq!(real.delta_pct(&empty, |c| c.l1i_misses), 0.0);
        assert_eq!(empty.ipc(), 0.0);
        assert_eq!(empty.per_kilo_insts(|c| c.l1i_misses), 0.0);
        // All finite — no ∞/NaN escapes the guards.
        for v in [
            empty.speedup_pct_over(&real),
            real.speedup_pct_over(&empty),
            empty.delta_pct(&real, |c| c.l1i_misses),
        ] {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn per_kilo_insts_normalizes() {
        let c = CounterSet {
            insts: 2000,
            l1i_misses: 10,
            ..CounterSet::default()
        };
        assert!((c.per_kilo_insts(|c| c.l1i_misses) - 5.0).abs() < 1e-9);
    }
}
