//! The simulator's executable view: CFG structure married to final
//! addresses.

use propeller_ir::{Inst, Program, Terminator};
use propeller_linker::FinalLayout;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A terminator in simulator form (successors as dense block indices).
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum SimTerm {
    /// Unconditional jump.
    Jump(u32),
    /// Conditional branch.
    Cond {
        /// Index of the taken-successor block.
        taken: u32,
        /// Index of the fall-through-successor block.
        ft: u32,
        /// Probability of choosing `taken`.
        p: f64,
    },
    /// Return.
    Ret,
}

/// One executable basic block.
#[derive(Clone, PartialEq, Debug)]
pub struct SimBlock {
    /// Dense indices of functions this block software-prefetches.
    pub prefetches: Vec<u32>,
    /// Final virtual address.
    pub addr: u64,
    /// Final size in bytes (post-relaxation).
    pub size: u32,
    /// Number of non-control instructions.
    pub straight_insts: u32,
    /// Number of branch instructions encoded at the block end (0-2),
    /// derived from the final size; relaxation-aware.
    pub branch_insts: u32,
    /// Call sites: `(byte offset of the call, dense callee index)`.
    pub calls: Vec<(u32, u32)>,
    /// The terminator.
    pub term: SimTerm,
}

/// One executable function.
#[derive(Clone, PartialEq, Debug)]
pub struct SimFunction {
    /// Symbol name (diagnostics).
    pub name: String,
    /// Blocks indexed densely; block 0 is the entry.
    pub blocks: Vec<SimBlock>,
}

/// The whole executable, ready to simulate.
#[derive(Clone, Debug)]
pub struct ProgramImage {
    /// Functions, densely indexed.
    pub functions: Vec<SimFunction>,
    /// Maps IR function ids to dense indices.
    pub fn_index: HashMap<propeller_ir::FunctionId, usize>,
    /// Lowest text address.
    pub text_start: u64,
    /// One past the highest text address.
    pub text_end: u64,
}

/// An inconsistency between the program and the linked layout.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ImageError {
    /// A function in the program has no layout (its object was linked
    /// without debug info).
    MissingFunction(String),
    /// A block is missing from its function's layout.
    MissingBlock {
        /// Function name.
        function: String,
        /// Block index.
        block: u32,
    },
    /// The derived branch byte count is not a valid encoding
    /// combination (corrupt layout).
    BadBranchBytes {
        /// Function name.
        function: String,
        /// Block index.
        block: u32,
        /// The leftover byte count.
        bytes: i64,
    },
    /// The program has more functions than the image's dense `u32`
    /// indices (call targets, prefetch targets, call chains) can name.
    TooManyFunctions {
        /// How many functions the program has.
        count: usize,
    },
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::MissingFunction(n) => write!(f, "no layout for function {n}"),
            ImageError::MissingBlock { function, block } => {
                write!(f, "no layout for block bb{block} of {function}")
            }
            ImageError::BadBranchBytes {
                function,
                block,
                bytes,
            } => write!(
                f,
                "block bb{block} of {function} has {bytes} leftover branch bytes"
            ),
            ImageError::TooManyFunctions { count } => write!(
                f,
                "program has {count} functions but image indices are u32"
            ),
        }
    }
}

impl Error for ImageError {}

/// Encoded size of a straight-line instruction.
fn inst_bytes(i: &Inst) -> u32 {
    match i {
        Inst::Alu => 3,
        Inst::Load | Inst::Store => 4,
        Inst::Call(_) | Inst::Prefetch(_) => 5,
        Inst::Nop => 1,
    }
}

/// How many branch instructions a trailing byte count represents.
/// Valid values: 0; one of {2,5,6} for a single branch; one of
/// {4,7,8,11} for a conditional + jump pair.
fn branch_count(bytes: i64) -> Option<u32> {
    match bytes {
        0 => Some(0),
        2 | 5 | 6 => Some(1),
        4 | 7 | 8 | 11 => Some(2),
        _ => None,
    }
}

impl ProgramImage {
    /// Builds the image from a program and the linker's final layout.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError`] if any function or block lacks layout
    /// information, or sizes are inconsistent with the ISA.
    pub fn build(program: &Program, layout: &FinalLayout) -> Result<Self, ImageError> {
        let mut placed: HashMap<propeller_ir::FunctionId, HashMap<u32, (u64, u32)>> =
            HashMap::new();
        for fl in &layout.functions {
            let entry = placed.entry(fl.function).or_default();
            for b in &fl.blocks {
                entry.insert(b.block.0, (b.addr, b.size));
            }
        }

        let mut fn_index = HashMap::new();
        for (i, f) in program.functions().enumerate() {
            fn_index.insert(f.id, i);
        }
        // Validate the width once at the boundary: every dense function
        // index below (call/prefetch targets here, call-chain entries
        // in the engine and attribution) is stored as `u32`, so the
        // `as u32` narrowings downstream are lossless by construction.
        if u32::try_from(fn_index.len()).is_err() {
            return Err(ImageError::TooManyFunctions {
                count: fn_index.len(),
            });
        }

        let mut functions = Vec::with_capacity(fn_index.len());
        let mut text_start = u64::MAX;
        let mut text_end = 0u64;
        for f in program.functions() {
            let blocks_placed = placed
                .get(&f.id)
                .ok_or_else(|| ImageError::MissingFunction(f.name.clone()))?;
            let mut blocks = Vec::with_capacity(f.blocks.len());
            for b in &f.blocks {
                let &(addr, size) =
                    blocks_placed
                        .get(&b.id.0)
                        .ok_or_else(|| ImageError::MissingBlock {
                            function: f.name.clone(),
                            block: b.id.0,
                        })?;
                text_start = text_start.min(addr);
                text_end = text_end.max(addr + size as u64);
                let mut calls = Vec::new();
                let mut prefetches = Vec::new();
                let mut off = 0u32;
                let mut straight = 0u32;
                for inst in &b.insts {
                    match inst {
                        // Lossless: the function count was checked
                        // against u32::MAX above.
                        Inst::Call(callee) => calls.push((off, fn_index[callee] as u32)),
                        Inst::Prefetch(target) => prefetches.push(fn_index[target] as u32),
                        _ => {}
                    }
                    straight += 1;
                    off += inst_bytes(inst);
                }
                let trailing = size as i64 - off as i64
                    - i64::from(matches!(b.term, Terminator::Ret));
                let branch_insts =
                    branch_count(trailing).ok_or_else(|| ImageError::BadBranchBytes {
                        function: f.name.clone(),
                        block: b.id.0,
                        bytes: trailing,
                    })?;
                let term = match b.term {
                    Terminator::Jump(t) => SimTerm::Jump(t.0),
                    Terminator::CondBr {
                        taken,
                        fallthrough,
                        prob_taken,
                    } => SimTerm::Cond {
                        taken: taken.0,
                        ft: fallthrough.0,
                        p: prob_taken,
                    },
                    Terminator::Ret => SimTerm::Ret,
                };
                blocks.push(SimBlock {
                    prefetches,
                    addr,
                    size,
                    straight_insts: straight,
                    branch_insts: branch_insts
                        + u32::from(matches!(b.term, Terminator::Ret)),
                    calls,
                    term,
                });
            }
            functions.push(SimFunction {
                name: f.name.clone(),
                blocks,
            });
        }
        if functions.is_empty() || text_start == u64::MAX {
            text_start = 0;
            text_end = 0;
        }
        Ok(ProgramImage {
            functions,
            fn_index,
            text_start,
            text_end,
        })
    }

    /// Total text footprint in bytes.
    pub fn text_size(&self) -> u64 {
        self.text_end - self.text_start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_count_table() {
        assert_eq!(branch_count(0), Some(0));
        for b in [2, 5, 6] {
            assert_eq!(branch_count(b), Some(1));
        }
        for b in [4, 7, 8, 11] {
            assert_eq!(branch_count(b), Some(2));
        }
        for b in [1, 3, 9, 12, -1] {
            assert_eq!(branch_count(b), None, "bytes={b}");
        }
    }

    #[test]
    fn inst_byte_sizes_match_isa() {
        assert_eq!(inst_bytes(&Inst::Alu), 3);
        assert_eq!(inst_bytes(&Inst::Load), 4);
        assert_eq!(inst_bytes(&Inst::Store), 4);
        assert_eq!(inst_bytes(&Inst::Call(propeller_ir::FunctionId(0))), 5);
        assert_eq!(inst_bytes(&Inst::Nop), 1);
    }
}
