//! A generic set-associative LRU cache model (shared by the icache
//! levels, TLBs, BTB and DSB proxy).

/// Set-associative cache with true-LRU replacement.
///
/// Tags are full addresses shifted by the line granularity; capacity is
/// `sets * assoc` lines.
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    /// log2 of the line (or page) size in bytes.
    line_shift: u32,
    set_mask: u64,
    assoc: usize,
    /// `sets x assoc` tags; `u64::MAX` = invalid. LRU order is
    /// maintained by keeping the most recent at index 0.
    ways: Vec<u64>,
    accesses: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Builds a cache of `sets` sets (power of two), `assoc` ways, and
    /// `line_bytes` granularity (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line_bytes` is not a power of two, or
    /// `assoc` is zero.
    pub fn new(sets: usize, assoc: usize, line_bytes: u64) -> Self {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(assoc > 0, "associativity must be positive");
        SetAssocCache {
            line_shift: line_bytes.trailing_zeros(),
            set_mask: sets as u64 - 1,
            assoc,
            ways: vec![u64::MAX; sets * assoc],
            accesses: 0,
            misses: 0,
        }
    }

    /// Convenience: build from a total capacity in bytes.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity / (line_bytes * assoc)` is a positive
    /// power of two.
    pub fn with_capacity(capacity: u64, assoc: usize, line_bytes: u64) -> Self {
        let sets = (capacity / (line_bytes * assoc as u64)) as usize;
        Self::new(sets, assoc, line_bytes)
    }

    /// Accesses `addr`; returns `true` on hit. Misses fill.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let tag = addr >> self.line_shift;
        let set = (tag & self.set_mask) as usize;
        let base = set * self.assoc;
        let ways = &mut self.ways[base..base + self.assoc];
        if let Some(pos) = ways.iter().position(|&w| w == tag) {
            // Move to MRU.
            ways[..=pos].rotate_right(1);
            true
        } else {
            self.misses += 1;
            ways.rotate_right(1);
            ways[0] = tag;
            false
        }
    }

    /// The line/page granularity in bytes.
    pub fn line_bytes(&self) -> u64 {
        1 << self.line_shift
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidates all contents and zeroes counters.
    pub fn reset(&mut self) {
        self.ways.fill(u64::MAX);
        self.accesses = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_within_line() {
        let mut c = SetAssocCache::new(4, 2, 64);
        assert!(!c.access(0x100));
        assert!(c.access(0x13F)); // same 64B line
        assert!(!c.access(0x140)); // next line
        assert_eq!(c.misses(), 2);
        assert_eq!(c.accesses(), 3);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 1 set, 2 ways.
        let mut c = SetAssocCache::new(1, 2, 64);
        c.access(0); // A
        c.access(64); // B
        c.access(0); // A -> MRU
        assert!(!c.access(128)); // C evicts B
        assert!(c.access(0)); // A survives
        assert!(!c.access(64)); // B was evicted
    }

    #[test]
    fn capacity_constructor() {
        // 32 KiB, 8-way, 64 B lines => 64 sets.
        let c = SetAssocCache::with_capacity(32 * 1024, 8, 64);
        assert_eq!(c.line_bytes(), 64);
        // Fill more than capacity and expect evictions.
        let mut c = c;
        for i in 0..1024u64 {
            c.access(i * 64);
        }
        assert_eq!(c.misses(), 1024);
        // Re-touch the last 512 lines (exactly capacity): all hits.
        let before = c.misses();
        for i in 512..1024u64 {
            assert!(c.access(i * 64));
        }
        assert_eq!(c.misses(), before);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = SetAssocCache::new(2, 1, 64);
        c.access(0);
        c.reset();
        assert_eq!(c.accesses(), 0);
        assert!(!c.access(0));
    }

    #[test]
    fn page_granularity_works_for_tlb() {
        let mut tlb = SetAssocCache::new(16, 4, 4096);
        assert!(!tlb.access(0x40_0000));
        assert!(tlb.access(0x40_0FFF)); // same 4K page
        assert!(!tlb.access(0x40_1000)); // next page
    }
}
