//! Symbol-attributed µarch counters — the simulator's `perf report`.
//!
//! During simulation every counted event (cycles, retired instructions,
//! i-cache/iTLB misses, BACLEARs, taken branches, …) is charged to the
//! function and basic block whose address range it hit, yielding a
//! deterministic [`AttributedCounters`] table whose per-event sums are
//! *exactly* the whole-program [`CounterSet`] — the conservation
//! property the regression gate and the report renderers rely on.
//!
//! Collection piggybacks on the normal counter updates: the engine
//! snapshots the frontend's counters before each attributable
//! operation and charges the delta to the current `(function, block)`
//! context, so attribution can never drift from the aggregate
//! counters. Cycles accumulate as `f64` penalties and are converted to
//! integers by deterministic cumulative rounding, with the final
//! remainder (at most a rounding ulp) assigned to the hottest block so
//! the per-block sum equals the whole-program cycle count bit-exactly.

use crate::counters::CounterSet;
use crate::image::ProgramImage;
use std::collections::BTreeMap;

/// One hardware event the attribution layer can slice by. Each maps
/// onto a [`CounterSet`] field (and, through it, a Table 4 event).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Event {
    /// Total cycles.
    Cycles,
    /// Instructions retired.
    Insts,
    /// Basic blocks executed.
    Blocks,
    /// Taken branches (B2).
    TakenBranches,
    /// Not-taken (fall-through) transfers.
    Fallthroughs,
    /// L1 i-cache misses (I1).
    L1iMisses,
    /// L2 code read misses (I2).
    L2CodeMisses,
    /// Code misses served from memory (I3).
    L3CodeMisses,
    /// First-level iTLB misses (T1).
    ItlbMisses,
    /// STLB misses causing a page walk (T2).
    StlbWalks,
    /// Front-end resteers from BTB misses (B1).
    Baclears,
    /// DSB window misses.
    DsbMisses,
    /// Software prefetches executed.
    Prefetches,
}

impl Event {
    /// Every attributable event, in [`CounterSet`] field order.
    pub const ALL: [Event; 13] = [
        Event::Cycles,
        Event::Insts,
        Event::Blocks,
        Event::TakenBranches,
        Event::Fallthroughs,
        Event::L1iMisses,
        Event::L2CodeMisses,
        Event::L3CodeMisses,
        Event::ItlbMisses,
        Event::StlbWalks,
        Event::Baclears,
        Event::DsbMisses,
        Event::Prefetches,
    ];

    /// The event's stable name (JSON keys, CLI `--event` values).
    pub fn name(self) -> &'static str {
        match self {
            Event::Cycles => "cycles",
            Event::Insts => "insts",
            Event::Blocks => "blocks",
            Event::TakenBranches => "taken_branches",
            Event::Fallthroughs => "fallthroughs",
            Event::L1iMisses => "l1i_misses",
            Event::L2CodeMisses => "l2_code_misses",
            Event::L3CodeMisses => "l3_code_misses",
            Event::ItlbMisses => "itlb_misses",
            Event::StlbWalks => "stlb_walks",
            Event::Baclears => "baclears",
            Event::DsbMisses => "dsb_misses",
            Event::Prefetches => "prefetches",
        }
    }

    /// Parses [`Event::name`] output.
    pub fn from_name(s: &str) -> Option<Event> {
        Event::ALL.into_iter().find(|e| e.name() == s)
    }

    /// Reads this event's count out of a counter set.
    pub fn get(self, c: &CounterSet) -> u64 {
        match self {
            Event::Cycles => c.cycles,
            Event::Insts => c.insts,
            Event::Blocks => c.blocks,
            Event::TakenBranches => c.taken_branches,
            Event::Fallthroughs => c.fallthroughs,
            Event::L1iMisses => c.l1i_misses,
            Event::L2CodeMisses => c.l2_code_misses,
            Event::L3CodeMisses => c.l3_code_misses,
            Event::ItlbMisses => c.itlb_misses,
            Event::StlbWalks => c.stlb_walks,
            Event::Baclears => c.baclears,
            Event::DsbMisses => c.dsb_misses,
            Event::Prefetches => c.prefetches,
        }
    }

    /// Writes this event's count into a counter set.
    fn set(self, c: &mut CounterSet, v: u64) {
        match self {
            Event::Cycles => c.cycles = v,
            Event::Insts => c.insts = v,
            Event::Blocks => c.blocks = v,
            Event::TakenBranches => c.taken_branches = v,
            Event::Fallthroughs => c.fallthroughs = v,
            Event::L1iMisses => c.l1i_misses = v,
            Event::L2CodeMisses => c.l2_code_misses = v,
            Event::L3CodeMisses => c.l3_code_misses = v,
            Event::ItlbMisses => c.itlb_misses = v,
            Event::StlbWalks => c.stlb_walks = v,
            Event::Baclears => c.baclears = v,
            Event::DsbMisses => c.dsb_misses = v,
            Event::Prefetches => c.prefetches = v,
        }
    }
}

/// Adds `cur - prev` of every event into `into` (cycles stay zero
/// during collection; they are distributed from the `f64` accumulator
/// at finalize time).
fn add_delta(into: &mut CounterSet, prev: &CounterSet, cur: &CounterSet) {
    for e in Event::ALL {
        let d = e.get(cur) - e.get(prev);
        if d != 0 {
            e.set(into, e.get(into) + d);
        }
    }
}

/// Sums every event of `b` into `a`.
pub(crate) fn add_counters(a: &mut CounterSet, b: &CounterSet) {
    for e in Event::ALL {
        e.set(a, e.get(a) + e.get(b));
    }
}

/// One basic block's attributed events.
#[derive(Clone, PartialEq, Debug)]
pub struct BlockAttribution {
    /// The block's final virtual address.
    pub addr: u64,
    /// The block's final size in bytes.
    pub size: u32,
    /// Events charged to this block.
    pub counters: CounterSet,
}

/// One function's attributed events.
#[derive(Clone, PartialEq, Debug)]
pub struct SymbolAttribution {
    /// The function's symbol name.
    pub name: String,
    /// Sum over the function's blocks.
    pub total: CounterSet,
    /// Per-block rows, indexed by basic-block id.
    pub blocks: Vec<BlockAttribution>,
}

/// The symbol-attribution table of one simulation run.
///
/// Invariant: for every event, the per-symbol (and per-block) sums
/// equal the run's whole-program [`CounterSet`] exactly.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct AttributedCounters {
    /// One entry per function, in image (dense index) order.
    pub symbols: Vec<SymbolAttribution>,
}

impl AttributedCounters {
    /// Sum of every symbol's counters — by construction equal to the
    /// run's whole-program counter set.
    pub fn totals(&self) -> CounterSet {
        let mut t = CounterSet::default();
        for s in &self.symbols {
            add_counters(&mut t, &s.total);
        }
        t
    }

    /// Number of per-block rows in the table.
    pub fn block_rows(&self) -> usize {
        self.symbols.iter().map(|s| s.blocks.len()).sum()
    }

    /// The attribution row for `name`, if present.
    pub fn symbol(&self, name: &str) -> Option<&SymbolAttribution> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// Indices of the `n` symbols with the highest count for `event`,
    /// descending; ties break by symbol name so the order is
    /// deterministic. Symbols with a zero count are skipped.
    pub fn top_by(&self, event: Event, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.symbols.len())
            .filter(|&i| event.get(&self.symbols[i].total) > 0)
            .collect();
        idx.sort_by(|&a, &b| {
            let (va, vb) = (
                event.get(&self.symbols[a].total),
                event.get(&self.symbols[b].total),
            );
            vb.cmp(&va)
                .then_with(|| self.symbols[a].name.cmp(&self.symbols[b].name))
        });
        idx.truncate(n);
        idx
    }
}

/// Folded call stacks with attributed cycle weights — the input format
/// of Brendan Gregg's `flamegraph.pl` (one `a;b;c weight` line per
/// distinct stack).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct FoldedStacks {
    /// `(stack frames root-first, cycles)` per distinct stack, in
    /// deterministic (lexicographic) order.
    pub stacks: Vec<(Vec<String>, u64)>,
}

impl FoldedStacks {
    /// Renders the folded-stack text (`caller;callee weight` lines).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (frames, weight) in &self.stacks {
            if *weight == 0 {
                continue;
            }
            out.push_str(&frames.join(";"));
            out.push(' ');
            out.push_str(&weight.to_string());
            out.push('\n');
        }
        out
    }

    /// Total attributed weight across stacks.
    pub fn total_weight(&self) -> u64 {
        self.stacks.iter().map(|(_, w)| w).sum()
    }
}

/// One block's in-flight attribution state.
struct BlockSlot {
    addr: u64,
    size: u32,
    counters: CounterSet,
    cycles_f: f64,
}

/// The engine-side collector. Charges counter deltas to
/// `(function, block)` contexts and folded cycle weights to call
/// chains while the simulation runs.
pub(crate) struct AttrSink {
    names: Vec<String>,
    blocks: Vec<Vec<BlockSlot>>,
    folded: BTreeMap<Vec<u32>, f64>,
}

impl AttrSink {
    pub(crate) fn new(image: &ProgramImage) -> Self {
        AttrSink {
            names: image.functions.iter().map(|f| f.name.clone()).collect(),
            blocks: image
                .functions
                .iter()
                .map(|f| {
                    f.blocks
                        .iter()
                        .map(|b| BlockSlot {
                            addr: b.addr,
                            size: b.size,
                            counters: CounterSet::default(),
                            cycles_f: 0.0,
                        })
                        .collect()
                })
                .collect(),
            folded: BTreeMap::new(),
        }
    }

    /// Charges the window between the `prev` and `cur` engine
    /// snapshots (each a `(counters, cycles)` pair) to block `b` of
    /// function `f`, and its cycle delta to the call chain (with `f`
    /// as the leaf).
    pub(crate) fn charge(
        &mut self,
        chain: &[u32],
        f: usize,
        b: usize,
        prev: (&CounterSet, f64),
        cur: (&CounterSet, f64),
    ) {
        let slot = &mut self.blocks[f][b];
        add_delta(&mut slot.counters, prev.0, cur.0);
        let dc = cur.1 - prev.1;
        if dc > 0.0 {
            slot.cycles_f += dc;
            // Lossless: `f` is a dense image index and
            // `ProgramImage::build` caps the function count at u32::MAX.
            let mut key: Vec<u32> = chain.to_vec();
            if key.last() != Some(&(f as u32)) {
                key.push(f as u32);
            }
            *self.folded.entry(key).or_insert(0.0) += dc;
        }
    }

    /// Converts the collected state into the public table, distributing
    /// the `f64` cycle accumulators so the per-block integer sum equals
    /// `total.cycles` bit-exactly.
    pub(crate) fn finalize(self, total: &CounterSet) -> (AttributedCounters, FoldedStacks) {
        // Cumulative rounding: monotone because cycle deltas are
        // non-negative, so each block gets `round(cum) - assigned`.
        let mut assigned = 0u64;
        let mut cum = 0.0f64;
        let mut symbols = Vec::with_capacity(self.names.len());
        // Track the hottest block to absorb the final remainder (float
        // summation order here differs from the engine's event order,
        // so the two roundings can disagree by an ulp's worth).
        let mut hottest: Option<(usize, usize)> = None;
        let mut hottest_cycles = 0.0f64;
        for (fi, (name, slots)) in self.names.into_iter().zip(self.blocks).enumerate() {
            let mut blocks = Vec::with_capacity(slots.len());
            for (bi, slot) in slots.into_iter().enumerate() {
                cum += slot.cycles_f;
                let up_to = cum.round() as u64;
                let cycles = up_to.saturating_sub(assigned);
                assigned += cycles;
                if slot.cycles_f > hottest_cycles {
                    hottest_cycles = slot.cycles_f;
                    hottest = Some((fi, bi));
                }
                let mut counters = slot.counters;
                counters.cycles = cycles;
                blocks.push(BlockAttribution {
                    addr: slot.addr,
                    size: slot.size,
                    counters,
                });
            }
            symbols.push(SymbolAttribution {
                name,
                total: CounterSet::default(),
                blocks,
            });
        }
        // Absorb the remainder into the hottest block so the total is
        // exact even when the two float-summation orders round apart.
        if assigned != total.cycles {
            if let Some((fi, bi)) = hottest {
                let c = &mut symbols[fi].blocks[bi].counters.cycles;
                *c = (*c as i64 + (total.cycles as i64 - assigned as i64)).max(0) as u64;
            }
        }
        for s in &mut symbols {
            let mut t = CounterSet::default();
            for b in &s.blocks {
                add_counters(&mut t, &b.counters);
            }
            s.total = t;
        }

        // Fold the per-chain cycle accumulators the same way so the
        // flamegraph's total weight matches the run's cycle count.
        let mut stacks = Vec::with_capacity(self.folded.len());
        let mut cum = 0.0f64;
        let mut assigned = 0u64;
        for (key, cycles_f) in &self.folded {
            cum += cycles_f;
            let up_to = cum.round() as u64;
            let weight = up_to.saturating_sub(assigned);
            assigned += weight;
            stacks.push((
                key.iter().map(|&f| symbols[f as usize].name.clone()).collect(),
                weight,
            ));
        }
        if assigned != total.cycles && !stacks.is_empty() {
            let hot = (0..stacks.len())
                .max_by_key(|&i| stacks[i].1)
                .unwrap_or(0);
            let w = &mut stacks[hot].1;
            *w = (*w as i64 + (total.cycles as i64 - assigned as i64)).max(0) as u64;
        }
        (AttributedCounters { symbols }, FoldedStacks { stacks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_names_round_trip() {
        for e in Event::ALL {
            assert_eq!(Event::from_name(e.name()), Some(e));
        }
        assert_eq!(Event::from_name("no_such_event"), None);
    }

    #[test]
    fn event_get_set_cover_every_field() {
        let mut c = CounterSet::default();
        for (i, e) in Event::ALL.into_iter().enumerate() {
            e.set(&mut c, (i as u64 + 1) * 7);
        }
        for (i, e) in Event::ALL.into_iter().enumerate() {
            assert_eq!(e.get(&c), (i as u64 + 1) * 7, "{}", e.name());
        }
    }

    #[test]
    fn add_delta_charges_differences() {
        let prev = CounterSet {
            insts: 10,
            l1i_misses: 2,
            ..CounterSet::default()
        };
        let cur = CounterSet {
            insts: 15,
            l1i_misses: 2,
            baclears: 1,
            ..CounterSet::default()
        };
        let mut into = CounterSet::default();
        add_delta(&mut into, &prev, &cur);
        assert_eq!(into.insts, 5);
        assert_eq!(into.l1i_misses, 0);
        assert_eq!(into.baclears, 1);
    }

    #[test]
    fn top_by_sorts_descending_with_name_ties() {
        let sym = |name: &str, cycles: u64| SymbolAttribution {
            name: name.into(),
            total: CounterSet {
                cycles,
                ..CounterSet::default()
            },
            blocks: vec![],
        };
        let a = AttributedCounters {
            symbols: vec![sym("zeta", 10), sym("alpha", 10), sym("mid", 50), sym("cold", 0)],
        };
        assert_eq!(a.top_by(Event::Cycles, 10), vec![2, 1, 0]);
        assert_eq!(a.top_by(Event::Cycles, 1), vec![2]);
    }

    #[test]
    fn folded_text_skips_zero_weights() {
        let f = FoldedStacks {
            stacks: vec![
                (vec!["main".into(), "a".into()], 12),
                (vec!["main".into(), "b".into()], 0),
            ],
        };
        assert_eq!(f.to_text(), "main;a 12\n");
        assert_eq!(f.total_weight(), 12);
    }
}
