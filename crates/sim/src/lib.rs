//! Execution and front-end microarchitecture simulation.
//!
//! This crate stands in for the paper's Intel Skylake testbed plus
//! `linux perf`: it "runs" a linked binary by walking the program's CFG
//! (weighted by branch probabilities) at the *final addresses* the
//! linker assigned, and drives a front-end model — L1i/L2/L3 instruction
//! caches, a two-level iTLB with optional 2 MiB hugepages, a BTB whose
//! misses model branch resteers (`baclears`), and a DSB-style uop-cache
//! proxy. The counters it reports map one-to-one onto the paper's
//! Table 4 events, and its cycle model turns layout quality into the
//! walltime/latency/QPS deltas of Table 3.
//!
//! It also collects Last Branch Record samples exactly the way `perf`
//! does (32-deep taken-branch stacks at a fixed period), producing the
//! [`propeller_profile::HardwareProfile`] that Propeller's Phase 3
//! consumes, and can emit the Figure 7 instruction-access heat maps.
//!
//! Everything is deterministic given the workload seed.

mod attr;
mod cache;
mod config;
mod counters;
mod engine;
mod export;
mod heatmap;
mod image;
mod rng;
mod shard;

pub use attr::{
    AttributedCounters, BlockAttribution, Event, FoldedStacks, SymbolAttribution,
};
pub use cache::SetAssocCache;
pub use config::{CacheConfig, Penalties, TlbConfig, UarchConfig, Workload};
pub use counters::{CounterSet, SimReport};
pub use engine::{collect_profile, simulate, simulate_traced, SimOptions};
pub use shard::{shard_budgets, shard_seeds, simulate_sharded};
pub use export::{heatmap_csv, heatmap_pgm};
pub use heatmap::HeatMap;
pub use image::{ImageError, ProgramImage, SimBlock, SimTerm};
pub use rng::SplitMix64;
