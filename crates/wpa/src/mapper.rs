//! Mapping sampled addresses to machine basic blocks via the BB
//! address map — the step that replaces disassembly.

use propeller_linker::LinkedBinary;

/// A resolved sample location.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MappedLoc {
    /// The owning function's primary symbol.
    pub func_symbol: String,
    /// The machine basic block id within that function.
    pub bb_id: u32,
    /// Byte offset of the address within the block.
    pub offset_in_block: u32,
}

#[derive(Clone, Debug)]
struct Interval {
    start: u64,
    end: u64,
    func_idx: u32,
    bb_id: u32,
}

/// Binary-searchable map from virtual addresses to basic blocks, built
/// from a linked binary's merged `.llvm_bb_addr_map` and symbol table.
#[derive(Clone, Debug)]
pub struct AddressMapper {
    intervals: Vec<Interval>,
    func_symbols: Vec<String>,
    skipped_funcs: usize,
}

impl AddressMapper {
    /// Builds the mapper from the metadata binary.
    ///
    /// Functions whose range symbols cannot be resolved are skipped
    /// (they contribute no mappable blocks), mirroring how the real
    /// tool tolerates stripped inputs. The count of skipped functions
    /// is retained ([`AddressMapper::num_skipped_functions`]) so
    /// profile-quality audits can surface the loss instead of it
    /// vanishing silently.
    pub fn from_binary(binary: &LinkedBinary) -> Self {
        let mut intervals = Vec::new();
        let mut func_symbols = Vec::new();
        let mut skipped_funcs = 0usize;
        for f in &binary.bb_addr_map.functions {
            let func_idx = func_symbols.len() as u32;
            let mut any = false;
            for (range_sym, entries) in &f.ranges {
                let Some(base) = binary.symbol(range_sym) else {
                    continue;
                };
                any = true;
                for e in entries {
                    intervals.push(Interval {
                        start: base + e.offset as u64,
                        end: base + e.offset as u64 + e.size as u64,
                        func_idx,
                        bb_id: e.bb_id,
                    });
                }
            }
            if any {
                func_symbols.push(f.func_symbol.clone());
            } else {
                skipped_funcs += 1;
            }
        }
        intervals.sort_by_key(|i| i.start);
        AddressMapper {
            intervals,
            func_symbols,
            skipped_funcs,
        }
    }

    /// Resolves an address to its block, if any block covers it.
    pub fn lookup(&self, addr: u64) -> Option<MappedLoc> {
        let idx = self.intervals.partition_point(|i| i.start <= addr);
        let iv = &self.intervals[..idx].last()?;
        if addr < iv.end {
            Some(MappedLoc {
                func_symbol: self.func_symbols[iv.func_idx as usize].clone(),
                bb_id: iv.bb_id,
                offset_in_block: (addr - iv.start) as u32,
            })
        } else {
            None
        }
    }

    /// Resolves to indices (cheaper form used by the DCFG builder):
    /// `(function index, bb id)`.
    pub fn lookup_idx(&self, addr: u64) -> Option<(u32, u32)> {
        let idx = self.intervals.partition_point(|i| i.start <= addr);
        let iv = &self.intervals[..idx].last()?;
        (addr < iv.end).then_some((iv.func_idx, iv.bb_id))
    }

    /// All blocks whose start lies within `[lo, hi]`, as
    /// `(function index, bb id)` pairs — used to credit fall-through
    /// ranges.
    pub fn blocks_starting_in(&self, lo: u64, hi: u64) -> impl Iterator<Item = (u32, u32)> + '_ {
        let from = self.intervals.partition_point(|i| i.start < lo);
        self.intervals[from..]
            .iter()
            .take_while(move |i| i.start <= hi)
            .map(|i| (i.func_idx, i.bb_id))
    }

    /// The function symbol for a function index.
    pub fn func_symbol(&self, idx: u32) -> &str {
        &self.func_symbols[idx as usize]
    }

    /// The function index for a symbol, if mapped.
    pub fn func_index(&self, symbol: &str) -> Option<u32> {
        self.func_symbols
            .iter()
            .position(|s| s == symbol)
            .map(|i| i as u32)
    }

    /// Number of functions with mappable blocks.
    pub fn num_functions(&self) -> usize {
        self.func_symbols.len()
    }

    /// Number of address-map functions dropped because none of their
    /// range symbols resolved (stripped or garbage-collected symbols).
    /// Samples landing in these functions can never map.
    pub fn num_skipped_functions(&self) -> usize {
        self.skipped_funcs
    }

    /// Number of block intervals.
    pub fn num_intervals(&self) -> usize {
        self.intervals.len()
    }

    /// Modeled memory of the interval table (the dominant Phase 3
    /// structure besides the DCFG): ~32 bytes per interval.
    pub fn modeled_memory_bytes(&self) -> u64 {
        (self.intervals.len() * 32) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_codegen::{codegen_module, CodegenOptions};
    use propeller_ir::{FunctionBuilder, Inst, ProgramBuilder, Terminator};
    use propeller_linker::{link, LinkInput, LinkOptions};

    fn metadata_binary() -> LinkedBinary {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m.cc");
        let mut f = FunctionBuilder::new("alpha");
        f.add_block(vec![Inst::Alu; 3], Terminator::Jump(propeller_ir::BlockId(1)));
        f.add_block(vec![Inst::Load], Terminator::Ret);
        pb.add_function(m, f);
        let mut g = FunctionBuilder::new("beta");
        g.add_block(vec![Inst::Store; 2], Terminator::Ret);
        pb.add_function(m, g);
        let p = pb.finish().unwrap();
        let r = codegen_module(&p.modules()[0], &p, &CodegenOptions::with_labels()).unwrap();
        link(
            &[LinkInput::new(r.object, r.debug_layout)],
            &LinkOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn lookup_finds_blocks_and_offsets() {
        let bin = metadata_binary();
        let mapper = AddressMapper::from_binary(&bin);
        assert_eq!(mapper.num_functions(), 2);
        assert_eq!(mapper.num_intervals(), 3);
        let alpha = bin.symbol("alpha").unwrap();
        let loc = mapper.lookup(alpha).unwrap();
        assert_eq!(loc.func_symbol, "alpha");
        assert_eq!(loc.bb_id, 0);
        assert_eq!(loc.offset_in_block, 0);
        // Inside bb0 (3 ALUs = 9 bytes).
        let loc = mapper.lookup(alpha + 5).unwrap();
        assert_eq!((loc.bb_id, loc.offset_in_block), (0, 5));
        // bb1 starts at 9.
        let loc = mapper.lookup(alpha + 9).unwrap();
        assert_eq!(loc.bb_id, 1);
    }

    #[test]
    fn unresolvable_range_symbols_are_counted_as_skipped() {
        let mut bin = metadata_binary();
        bin.bb_addr_map.functions.push(propeller_obj::FuncAddrMap {
            func_symbol: "ghost".to_string(),
            ranges: vec![(
                "ghost.stripped".to_string(),
                vec![propeller_obj::BbEntry {
                    bb_id: 0,
                    offset: 0,
                    size: 16,
                    flags: propeller_obj::BbFlags::default(),
                }],
            )],
        });
        let mapper = AddressMapper::from_binary(&bin);
        assert_eq!(mapper.num_functions(), 2, "resolvable functions kept");
        assert_eq!(mapper.num_skipped_functions(), 1);
        assert!(mapper.func_index("ghost").is_none());
    }

    #[test]
    fn lookup_misses_outside_text() {
        let bin = metadata_binary();
        let mapper = AddressMapper::from_binary(&bin);
        assert!(mapper.lookup(0).is_none());
        assert!(mapper.lookup(bin.text_end + 100).is_none());
    }

    #[test]
    fn blocks_starting_in_range() {
        let bin = metadata_binary();
        let mapper = AddressMapper::from_binary(&bin);
        let alpha = bin.symbol("alpha").unwrap();
        let beta = bin.symbol("beta").unwrap();
        let all: Vec<_> = mapper.blocks_starting_in(alpha, beta).collect();
        assert_eq!(all.len(), 3);
        let first_two: Vec<_> = mapper.blocks_starting_in(alpha, alpha + 9).collect();
        assert_eq!(first_two.len(), 2);
    }
}
