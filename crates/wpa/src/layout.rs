//! The WPA driver: from profile to `cc_prof` + `ld_prof`.

use crate::dcfg::{Dcfg, DcfgFunction, EdgeFunding};
use crate::exttsp::{order_nodes_logged, order_nodes_traced, Edge, MergeLog, MergeStep, Node};
use crate::mapper::AddressMapper;
use crate::options::{GlobalOrder, IntraOrder, WpaOptions};
use propeller_codegen::{Cluster, ClusterMap, ClusterName, FunctionClusters};
use propeller_ir::{BlockId, FunctionId, Program};
use propeller_linker::{LinkedBinary, SymbolOrdering};
use propeller_profile::{AggregatedProfile, HardwareProfile};
use propeller_telemetry::{SpanId, Telemetry};
use std::collections::HashMap;

/// Statistics of one WPA run.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct WpaStats {
    /// Functions present in the metadata binary's address map.
    pub functions_seen: usize,
    /// Functions with at least one hot block (these get directives).
    pub hot_functions: usize,
    /// Hot blocks across all functions.
    pub hot_blocks: usize,
    /// Dynamic CFG edges processed.
    pub dcfg_edges: usize,
    /// Raw profile bytes read.
    pub profile_bytes: u64,
    /// Modeled peak memory: max(profile reading, address map + DCFG) —
    /// §5.1: "the peak memory usage is attributed to the maximum of
    /// reading profiles and the in-memory DCFG".
    pub modeled_peak_memory: u64,
    /// Address-map functions the mapper dropped because none of their
    /// range symbols resolved.
    pub skipped_funcs: usize,
    /// Sample-weighted address resolutions attempted while building the
    /// DCFG.
    pub addr_lookups: u64,
    /// Of [`WpaStats::addr_lookups`], how many found no mapped block.
    pub addr_unmapped: u64,
}

/// One planned cluster's provenance record.
#[derive(Clone, PartialEq, Debug)]
pub struct ClusterProvenance {
    /// The cluster's section symbol (e.g. `foo`, `foo.1`, `foo.cold`).
    pub symbol: String,
    /// Block ids in layout order.
    pub blocks: Vec<u32>,
    /// Total dynamic weight of the cluster's blocks.
    pub weight: u64,
    /// Total size in bytes.
    pub size: u64,
    /// Whether this is the function's cold cluster.
    pub cold: bool,
    /// Final position in the global symbol order, if listed.
    pub symbol_order_pos: Option<usize>,
}

/// Why one hot function's layout came out the way it did.
#[derive(Clone, PartialEq, Debug)]
pub struct FunctionProvenance {
    /// The function's primary symbol.
    pub func_symbol: String,
    /// Total dynamic weight observed for the function.
    pub total_samples: u64,
    /// Blocks classified hot / cold.
    pub hot_blocks: usize,
    /// Blocks classified cold.
    pub cold_blocks: usize,
    /// Ext-TSP chain merges committed while ordering the hot blocks
    /// (empty when the intra order was not Ext-TSP).
    pub merge_gains: Vec<f64>,
    /// Ext-TSP score of the emitted hot-block order.
    pub layout_score: f64,
    /// Ext-TSP score of the compiler's input order.
    pub input_score: f64,
    /// Whether the optimizer fell back to the input order.
    pub used_input_order: bool,
    /// The clusters emitted for this function.
    pub clusters: Vec<ClusterProvenance>,
}

/// Machine-readable record of every layout decision of one WPA run.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct LayoutProvenance {
    /// One record per hot function, in address-map order.
    pub functions: Vec<FunctionProvenance>,
}

/// The full, replayable decision record of one hot function — the
/// exact Ext-TSP problem it was given (hot nodes in dense order, the
/// sorted hot-to-hot edge list) and every merge step committed, with
/// the best rejected alternative at each step.
#[derive(Clone, PartialEq, Debug)]
pub struct RichFunctionRecord {
    /// The function's primary symbol.
    pub func_symbol: String,
    /// Mapper function index — joins [`EdgeFunding`] records.
    pub func_index: u32,
    /// Hot nodes exactly as handed to the optimizer (dense order).
    pub nodes: Vec<Node>,
    /// Hot-to-hot edges exactly as handed to the optimizer (sorted by
    /// `(src, dst, weight)`).
    pub edges: Vec<Edge>,
    /// Committed merge steps in commit order; replaying them over
    /// `nodes` reconstructs the emitted hot-block order.
    pub steps: Vec<MergeStep>,
    /// Total candidate merge evaluations the optimizer performed.
    pub evaluations: u64,
    /// Whether the optimizer fell back to the input order (in which
    /// case the emitted order is `nodes` order, not the replay result).
    pub used_input_order: bool,
    /// Ext-TSP score of the emitted order.
    pub final_score: f64,
    /// Ext-TSP score of the input order.
    pub input_score: f64,
}

/// Everything [`run_wpa_agg_traced`] collects when
/// [`WpaOptions::provenance`] is armed: the per-function replayable
/// merge records plus the sample-to-edge funding ledger. Deliberately
/// kept out of [`LayoutProvenance`] (and therefore out of
/// `run_report.json`) so armed runs stay bit-identical on the default
/// report surface.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct RichProvenance {
    /// One record per hot function, in address-map order.
    pub functions: Vec<RichFunctionRecord>,
    /// Which profile address pairs funded each CFG edge weight.
    pub funding: EdgeFunding,
}

/// The two Phase 3 outputs plus statistics.
#[derive(Clone, Debug)]
pub struct WpaOutput {
    /// Per-function cluster directives (`cc_prof`).
    pub cluster_map: ClusterMap,
    /// Global section order (`ld_prof`).
    pub symbol_order: SymbolOrdering,
    /// Run statistics.
    pub stats: WpaStats,
    /// Per-hot-function layout decisions (clusters, merge gains,
    /// symbol-order positions) for the doctor's `RunReport`.
    pub provenance: LayoutProvenance,
    /// Full decision provenance, present only when
    /// [`WpaOptions::provenance`] was armed. Never serialized into the
    /// run report — it feeds `layout_provenance.json`.
    pub rich: Option<RichProvenance>,
}

impl WpaOutput {
    /// The identity-layout fallback: no cluster directives and an
    /// empty symbol order, so Phase 4 emits every function exactly as
    /// the metadata build did and the relink keeps input section
    /// order. This is the degradation target when the profile that
    /// survived salvage is too thin to trust ("WPA input unusable"):
    /// the result is always a correct, baseline-equivalent binary.
    ///
    /// `stats` should carry the analysis counts actually observed
    /// (profile bytes read, DCFG edges, …) so build-time accounting
    /// still reflects the work done, but the hot classification is
    /// zeroed — nothing is hot when the layout is discarded.
    pub fn identity_fallback(stats: WpaStats) -> WpaOutput {
        WpaOutput {
            cluster_map: ClusterMap::new(),
            symbol_order: SymbolOrdering::default(),
            stats: WpaStats { hot_functions: 0, hot_blocks: 0, ..stats },
            provenance: LayoutProvenance::default(),
            rich: None,
        }
    }
}

/// One planned cluster, before serialization into the outputs.
struct PlannedCluster {
    symbol: String,
    weight: u64,
    size: u64,
    cold: bool,
}

/// Runs whole-program analysis.
///
/// `program` is used only to translate function symbols into
/// [`FunctionId`]s for the cluster map (the textual `cc_prof.txt` of
/// the real tool does the same by name); all layout inputs come from
/// the binary's address map and the profile.
pub fn run_wpa(
    program: &Program,
    binary: &LinkedBinary,
    profile: &HardwareProfile,
    opts: &WpaOptions,
) -> WpaOutput {
    run_wpa_traced(program, binary, profile, opts, &Telemetry::disabled(), None)
}

/// [`run_wpa`], plus telemetry: a `wpa` span under `parent` (peak bytes
/// = the run's modeled peak memory) with stage children for profile
/// aggregation, address mapping, dynamic-CFG construction, intra- and
/// inter-procedural layout, and counters for hot functions/blocks,
/// DCFG edges and Ext-TSP merges.
pub fn run_wpa_traced(
    program: &Program,
    binary: &LinkedBinary,
    profile: &HardwareProfile,
    opts: &WpaOptions,
    tel: &Telemetry,
    parent: Option<SpanId>,
) -> WpaOutput {
    let agg = AggregatedProfile::from_profile(profile);
    run_wpa_agg_traced(
        program,
        binary,
        &agg,
        profile.raw_size_bytes(),
        opts,
        tel,
        parent,
    )
}

/// [`run_wpa_traced`] over an already-aggregated profile.
///
/// The fleet lifecycle merges many machines' samples (with weights and
/// age decay) before analysis, so the raw [`HardwareProfile`] no longer
/// exists by the time WPA runs; this entry point accepts the merged
/// counts directly. `profile_bytes` is the modeled raw size of the
/// samples that fed the aggregation, carried into [`WpaStats`] for the
/// memory model.
pub fn run_wpa_agg_traced(
    program: &Program,
    binary: &LinkedBinary,
    agg: &AggregatedProfile,
    profile_bytes: u64,
    opts: &WpaOptions,
    tel: &Telemetry,
    parent: Option<SpanId>,
) -> WpaOutput {
    let mut wpa_span = tel.span_under("wpa", parent);
    let wpa_id = wpa_span.id();
    {
        let _s = tel.span_under("wpa.aggregate_profile", wpa_id);
    }
    let mapper = {
        let _s = tel.span_under("wpa.address_mapping", wpa_id);
        AddressMapper::from_binary(binary)
    };
    let armed = opts.provenance;
    let mut funding = if armed { Some(EdgeFunding::default()) } else { None };
    let dcfg = {
        let mut s = tel.span_under("wpa.dynamic_cfg", wpa_id);
        let dcfg = Dcfg::build_logged(&mapper, agg, funding.as_mut());
        s.set_peak_bytes(mapper.modeled_memory_bytes() + dcfg.modeled_memory_bytes());
        dcfg
    };

    let name_to_id: HashMap<&str, FunctionId> =
        program.functions().map(|f| (f.name.as_str(), f.id)).collect();
    let mapper_idx: HashMap<&str, u32> = (0..mapper.num_functions() as u32)
        .map(|i| (mapper.func_symbol(i), i))
        .collect();

    let mut cluster_map = ClusterMap::new();
    let mut planned: Vec<PlannedCluster> = Vec::new();
    // (mapper function idx, bb id) -> planned cluster index, for
    // inter-procedural edge mapping.
    let mut cluster_of_block: HashMap<(u32, u32), usize> = HashMap::new();
    let mut cold_clusters: Vec<PlannedCluster> = Vec::new();
    let mut stats = WpaStats {
        functions_seen: binary.bb_addr_map.functions.len(),
        dcfg_edges: dcfg.num_edges(),
        profile_bytes,
        skipped_funcs: mapper.num_skipped_functions(),
        addr_lookups: dcfg.addr_lookups,
        addr_unmapped: dcfg.addr_unmapped,
        ..WpaStats::default()
    };
    let mut provenance = LayoutProvenance::default();
    let mut rich_functions: Vec<RichFunctionRecord> = Vec::new();

    let intra_span = tel.span_under("wpa.intra_layout", wpa_id);
    for fmap in &binary.bb_addr_map.functions {
        let Some(&fi) = mapper_idx.get(fmap.func_symbol.as_str()) else {
            continue;
        };
        let Some(&fid) = name_to_id.get(fmap.func_symbol.as_str()) else {
            continue;
        };
        let dc: &DcfgFunction = &dcfg.functions[fi as usize];
        if dc.total_count() < opts.min_function_samples.max(1) {
            // Wholly cold (or too thinly sampled to trust): untouched,
            // reused from cache.
            continue;
        }
        stats.hot_functions += 1;

        // Collect the complete block list with sizes.
        let mut size_of: HashMap<u32, u32> = HashMap::new();
        let mut all_blocks: Vec<u32> = Vec::new();
        for (_, entries) in &fmap.ranges {
            for e in entries {
                size_of.insert(e.bb_id, e.size);
                all_blocks.push(e.bb_id);
            }
        }
        all_blocks.sort_unstable();

        let count = |b: u32| dc.block_counts.get(&b).copied().unwrap_or(0);
        // Hot/cold classification: hardware samples by default; the
        // stale compile-time PGO frequencies for the §4.6 comparison.
        let pgo_hot: Option<Vec<bool>> = match opts.cold_source {
            crate::options::ColdSource::HardwareSamples => None,
            crate::options::ColdSource::PgoFrequencies => {
                program.function(fid).map(|f| {
                    f.blocks.iter().map(|b| b.freq > 0).collect::<Vec<bool>>()
                })
            }
        };
        let is_hot = |b: u32| -> bool {
            match &pgo_hot {
                Some(flags) => flags.get(b as usize).copied().unwrap_or(false),
                None => count(b) >= opts.hot_threshold,
            }
        };
        let mut hot: Vec<u32> = all_blocks
            .iter()
            .copied()
            .filter(|&b| is_hot(b))
            .collect();
        if !hot.contains(&0) {
            // The entry executed if anything did; force it hot so the
            // primary cluster starts with it.
            hot.insert(0, 0);
        }
        stats.hot_blocks += hot.len();
        let cold: Vec<u32> = all_blocks
            .iter()
            .copied()
            .filter(|b| !hot.contains(b))
            .collect();

        // Intra-function order. The Ext-TSP problem (nodes + edges) is
        // also what the rich provenance record snapshots, so it is
        // built whenever either consumer needs it.
        let mut merge_log = if armed {
            MergeLog::with_detail()
        } else {
            MergeLog::default()
        };
        let needs_graph = armed || matches!(opts.intra, IntraOrder::ExtTsp);
        let (nodes, edges) = if needs_graph {
            let nodes: Vec<Node> = hot
                .iter()
                .map(|&b| Node {
                    id: b,
                    size: size_of[&b],
                    count: count(b),
                })
                .collect();
            let mut edges: Vec<Edge> = dc
                .edges
                .iter()
                .filter(|(&(s, d, _), _)| hot.contains(&s) && hot.contains(&d))
                .map(|(&(s, d, _), &w)| Edge {
                    src: s,
                    dst: d,
                    weight: w,
                })
                .collect();
            edges.sort_unstable_by_key(|e| (e.src, e.dst, e.weight));
            (nodes, edges)
        } else {
            (Vec::new(), Vec::new())
        };
        let hot_order: Vec<u32> = match opts.intra {
            IntraOrder::Original => {
                merge_log.used_input_order = true;
                hot.clone()
            }
            IntraOrder::ExtTsp => {
                order_nodes_logged(&nodes, &edges, 0, &opts.exttsp, tel, Some(&mut merge_log))
            }
        };

        // Optionally cut the hot chain for inter-procedural layout.
        let segments: Vec<Vec<u32>> = if opts.interproc_split > 0 && hot_order.len() > 2 {
            cut_chain(&hot_order, dc, opts.interproc_split)
        } else {
            vec![hot_order.clone()]
        };

        let mut clusters: Vec<Cluster> = Vec::new();
        let mut fn_cold = cold.clone();
        if !opts.split {
            // No splitting: single cluster, hot order then cold blocks.
            let mut blocks = hot_order.clone();
            blocks.extend(&cold);
            fn_cold.clear();
            clusters.push(Cluster {
                name: ClusterName::Primary,
                blocks: blocks.into_iter().map(BlockId).collect(),
            });
        } else {
            for (i, seg) in segments.iter().enumerate() {
                let name = if i == 0 {
                    ClusterName::Primary
                } else {
                    // Lossless: a function has at most one segment per
                    // basic block, and block ids are themselves u32.
                    ClusterName::Numbered(i as u32)
                };
                clusters.push(Cluster {
                    name,
                    blocks: seg.iter().copied().map(BlockId).collect(),
                });
            }
            if !fn_cold.is_empty() {
                clusters.push(Cluster {
                    name: ClusterName::Cold,
                    blocks: fn_cold.iter().copied().map(BlockId).collect(),
                });
            }
        }

        // Plan global ordering entries.
        let mut fn_prov = FunctionProvenance {
            func_symbol: fmap.func_symbol.clone(),
            total_samples: dc.total_count(),
            hot_blocks: hot.len(),
            cold_blocks: cold.len(),
            merge_gains: merge_log.merges.iter().map(|m| m.gain).collect(),
            layout_score: merge_log.final_score,
            input_score: merge_log.input_score,
            used_input_order: merge_log.used_input_order,
            clusters: Vec::with_capacity(clusters.len()),
        };
        for c in &clusters {
            let symbol = c.name.symbol(&fmap.func_symbol);
            let weight: u64 = c.blocks.iter().map(|b| count(b.0)).sum();
            let size: u64 = c
                .blocks
                .iter()
                .map(|b| size_of.get(&b.0).copied().unwrap_or(0) as u64)
                .sum();
            let is_cold = matches!(c.name, ClusterName::Cold);
            fn_prov.clusters.push(ClusterProvenance {
                symbol: symbol.clone(),
                blocks: c.blocks.iter().map(|b| b.0).collect(),
                weight,
                size: size.max(1),
                cold: is_cold,
                symbol_order_pos: None,
            });
            let plan = PlannedCluster {
                symbol,
                weight,
                size: size.max(1),
                cold: is_cold,
            };
            if is_cold {
                cold_clusters.push(plan);
            } else {
                let idx = planned.len();
                for b in &c.blocks {
                    cluster_of_block.insert((fi, b.0), idx);
                }
                planned.push(plan);
            }
        }
        provenance.functions.push(fn_prov);
        if armed {
            let detail = merge_log.detail.take().unwrap_or_default();
            rich_functions.push(RichFunctionRecord {
                func_symbol: fmap.func_symbol.clone(),
                func_index: fi,
                nodes,
                edges,
                steps: detail.steps,
                evaluations: detail.evaluations,
                used_input_order: merge_log.used_input_order,
                final_score: merge_log.final_score,
                input_score: merge_log.input_score,
            });
        }

        cluster_map.insert(fid, FunctionClusters { clusters });
    }
    drop(intra_span);

    // Global order.
    let global_span = tel.span_under("wpa.global_order", wpa_id);
    let hot_symbols: Vec<String> = match opts.global {
        GlobalOrder::InputOrder => planned.iter().map(|p| p.symbol.clone()).collect(),
        GlobalOrder::HotFirst => {
            let mut idx: Vec<usize> = (0..planned.len()).collect();
            idx.sort_by(|&a, &b| {
                let da = planned[a].weight as f64 / planned[a].size as f64;
                let db = planned[b].weight as f64 / planned[b].size as f64;
                db.total_cmp(&da).then(a.cmp(&b))
            });
            idx.into_iter().map(|i| planned[i].symbol.clone()).collect()
        }
        GlobalOrder::ExtTspInterproc => {
            if planned.is_empty() {
                Vec::new()
            } else {
                // Dense cluster indices become u32 Ext-TSP node ids
                // (and u32 edge endpoints below); check the width once
                // so every later narrowing is lossless. Sizes clamp to
                // u32::MAX explicitly — a >4 GiB section saturates
                // instead of silently wrapping its distance math.
                assert!(
                    u32::try_from(planned.len()).is_ok(),
                    "too many sections ({}) for u32 cluster ids",
                    planned.len()
                );
                let nodes: Vec<Node> = planned
                    .iter()
                    .enumerate()
                    .map(|(i, p)| Node {
                        id: i as u32,
                        size: p.size.min(u32::MAX as u64) as u32,
                        count: p.weight,
                    })
                    .collect();
                let mut edge_w: HashMap<(u32, u32), u64> = HashMap::new();
                for (&(cf, cb, df), &w) in &dcfg.calls {
                    let (Some(&src), Some(&dst)) = (
                        cluster_of_block.get(&(cf, cb)),
                        cluster_of_block.get(&(df, 0)),
                    ) else {
                        continue;
                    };
                    if src != dst {
                        *edge_w.entry((src as u32, dst as u32)).or_insert(0) += w;
                    }
                }
                // Intra-function edges crossing clusters also connect
                // sections.
                for (fi, dc) in dcfg.functions.iter().enumerate() {
                    for (&(s, d, _), &w) in &dc.edges {
                        let (Some(&src), Some(&dst)) = (
                            cluster_of_block.get(&(fi as u32, s)),
                            cluster_of_block.get(&(fi as u32, d)),
                        ) else {
                            continue;
                        };
                        if src != dst {
                            *edge_w.entry((src as u32, dst as u32)).or_insert(0) += w;
                        }
                    }
                }
                let mut edges: Vec<Edge> = edge_w
                    .into_iter()
                    .map(|((src, dst), weight)| Edge { src, dst, weight })
                    .collect();
                edges.sort_unstable_by_key(|e| (e.src, e.dst));
                let entry = nodes
                    .iter()
                    .max_by(|a, b| {
                        let da = a.count as f64 / a.size.max(1) as f64;
                        let db = b.count as f64 / b.size.max(1) as f64;
                        da.total_cmp(&db)
                    })
                    .map(|n| n.id)
                    .unwrap_or(0);
                let mut params = opts.exttsp;
                // Section-level locality windows are page-scale.
                params.forward_window = 4096;
                params.backward_window = 4096;
                order_nodes_traced(&nodes, &edges, entry, &params, tel)
                    .into_iter()
                    .map(|i| planned[i as usize].symbol.clone())
                    .collect()
            }
        }
    };
    let mut symbol_order = SymbolOrdering::new(hot_symbols);
    for c in &cold_clusters {
        debug_assert!(c.cold);
        symbol_order.push(c.symbol.clone());
    }
    drop(global_span);

    // Now that the global order is final, resolve each cluster's
    // position in it.
    for f in &mut provenance.functions {
        for c in &mut f.clusters {
            c.symbol_order_pos = symbol_order.rank(&c.symbol);
        }
    }

    // Assemble the rich provenance under its own span so collection
    // cost is visible in the Chrome trace.
    let rich = if armed {
        let _s = tel.span_under("wpa.provenance", wpa_id);
        let funding = funding.take().unwrap_or_default();
        let steps_total: u64 = rich_functions.iter().map(|r| r.steps.len() as u64).sum();
        let evals_total: u64 = rich_functions.iter().map(|r| r.evaluations).sum();
        if tel.is_enabled() {
            tel.counter_add(
                "wpa.provenance.records",
                rich_functions.len() as u64 + steps_total + funding.records.len() as u64,
            );
            tel.counter_add(
                "wpa.provenance.rejected_candidates",
                evals_total.saturating_sub(steps_total),
            );
        }
        Some(RichProvenance {
            functions: rich_functions,
            funding,
        })
    } else {
        None
    };

    let analysis_mem = mapper.modeled_memory_bytes() + dcfg.modeled_memory_bytes();
    stats.modeled_peak_memory = stats.profile_bytes.max(analysis_mem);
    if tel.is_enabled() {
        tel.counter_add("wpa.hot_functions", stats.hot_functions as u64);
        tel.counter_add("wpa.hot_blocks", stats.hot_blocks as u64);
        tel.counter_add("wpa.dcfg_edges", stats.dcfg_edges as u64);
        tel.counter_add("mapper.skipped_funcs", stats.skipped_funcs as u64);
        tel.counter_add("mapper.addr_lookups", stats.addr_lookups);
        tel.counter_add("mapper.unmapped_addrs", stats.addr_unmapped);
        wpa_span.set_peak_bytes(stats.modeled_peak_memory);
    }

    WpaOutput {
        cluster_map,
        symbol_order,
        stats,
        provenance,
        rich,
    }
}

/// Cuts a hot chain at its `k` coldest internal edges, yielding up to
/// `k + 1` segments (never cutting before the entry block).
fn cut_chain(order: &[u32], dc: &DcfgFunction, k: usize) -> Vec<Vec<u32>> {
    let edge_weight = |a: u32, b: u32| -> u64 {
        dc.edges
            .iter()
            .filter(|(&(s, d, _), _)| s == a && d == b)
            .map(|(_, &w)| w)
            .sum()
    };
    // Candidate cut positions 1..len, ranked by the weight of the edge
    // they would break.
    let mut cuts: Vec<(u64, usize)> = (1..order.len())
        .map(|i| (edge_weight(order[i - 1], order[i]), i))
        .collect();
    cuts.sort();
    let mut chosen: Vec<usize> = cuts.iter().take(k).map(|&(_, i)| i).collect();
    chosen.sort_unstable();
    let mut segments = Vec::with_capacity(chosen.len() + 1);
    let mut start = 0;
    for c in chosen {
        if c > start {
            segments.push(order[start..c].to_vec());
            start = c;
        }
    }
    segments.push(order[start..].to_vec());
    segments
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_chain_splits_at_coldest_edges() {
        let mut dc = DcfgFunction::default();
        use crate::dcfg::EdgeKind;
        dc.edges.insert((0, 1, EdgeKind::Branch), 100);
        dc.edges.insert((1, 2, EdgeKind::Branch), 1); // coldest
        dc.edges.insert((2, 3, EdgeKind::Branch), 50);
        let segs = cut_chain(&[0, 1, 2, 3], &dc, 1);
        assert_eq!(segs, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn cut_chain_zero_cuts_degenerates() {
        let dc = DcfgFunction::default();
        let segs = cut_chain(&[0, 1, 2], &dc, 0);
        assert_eq!(segs, vec![vec![0, 1, 2]]);
    }
}
