//! Textual serialization of cluster directives — the `cc_prof.txt`
//! file of Figure 1.
//!
//! The format follows the LLVM Propeller profile convention: a `!`
//! line names a function, each following `!!` line lists one cluster's
//! basic block ids in layout order:
//!
//! ```text
//! !hot_function
//! !!primary 0 3 2
//! !!cold 1 4
//! !!1 5 6
//! ```
//!
//! `primary` keeps the function's symbol, `cold` becomes the `.cold`
//! section, a bare number `n` becomes the `.n` section (§3.4).

use propeller_codegen::{Cluster, ClusterMap, ClusterName, FunctionClusters};
use propeller_ir::{BlockId, Program};
use std::error::Error;
use std::fmt;

/// A parse failure in a `cc_prof` file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CcProfError {
    /// A `!!` cluster line appeared before any `!` function line.
    ClusterBeforeFunction {
        /// 1-based line number.
        line: usize,
    },
    /// A function named in the file does not exist in the program.
    UnknownFunction {
        /// The unknown name.
        name: String,
    },
    /// A cluster label was not `primary`, `cold` or a number.
    BadClusterLabel {
        /// 1-based line number.
        line: usize,
        /// The offending label.
        label: String,
    },
    /// A block id failed to parse.
    BadBlockId {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
}

impl fmt::Display for CcProfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcProfError::ClusterBeforeFunction { line } => {
                write!(f, "line {line}: cluster line before any function line")
            }
            CcProfError::UnknownFunction { name } => {
                write!(f, "unknown function {name:?} in cc_prof")
            }
            CcProfError::BadClusterLabel { line, label } => {
                write!(f, "line {line}: bad cluster label {label:?}")
            }
            CcProfError::BadBlockId { line, token } => {
                write!(f, "line {line}: bad block id {token:?}")
            }
        }
    }
}

impl Error for CcProfError {}

/// Renders a cluster map to `cc_prof.txt` contents. Functions are
/// emitted in name order for reproducible output.
pub fn cluster_map_to_text(map: &ClusterMap, program: &Program) -> String {
    let mut entries: Vec<(&str, &FunctionClusters)> = map
        .iter()
        .filter_map(|(fid, clusters)| {
            program.function(fid).map(|f| (f.name.as_str(), clusters))
        })
        .collect();
    entries.sort_by_key(|(name, _)| *name);
    let mut out = String::new();
    for (name, clusters) in entries {
        out.push('!');
        out.push_str(name);
        out.push('\n');
        for c in &clusters.clusters {
            out.push_str("!!");
            match c.name {
                ClusterName::Primary => out.push_str("primary"),
                ClusterName::Cold => out.push_str("cold"),
                ClusterName::Numbered(n) => out.push_str(&n.to_string()),
            }
            for b in &c.blocks {
                out.push(' ');
                out.push_str(&b.0.to_string());
            }
            out.push('\n');
        }
    }
    out
}

/// Parses `cc_prof.txt` contents back into a cluster map.
///
/// # Errors
///
/// Returns a [`CcProfError`] describing the first malformed line or
/// unknown function.
pub fn cluster_map_from_text(text: &str, program: &Program) -> Result<ClusterMap, CcProfError> {
    let name_to_id: std::collections::HashMap<&str, propeller_ir::FunctionId> =
        program.functions().map(|f| (f.name.as_str(), f.id)).collect();
    let mut map = ClusterMap::new();
    let mut current: Option<(propeller_ir::FunctionId, FunctionClusters)> = None;
    let flush = |cur: &mut Option<(propeller_ir::FunctionId, FunctionClusters)>,
                     map: &mut ClusterMap| {
        if let Some((fid, clusters)) = cur.take() {
            map.insert(fid, clusters);
        }
    };
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("!!") {
            let Some((_, clusters)) = current.as_mut() else {
                return Err(CcProfError::ClusterBeforeFunction { line: line_no });
            };
            let mut tokens = rest.split_whitespace();
            let label = tokens.next().unwrap_or("");
            let name = match label {
                "primary" => ClusterName::Primary,
                "cold" => ClusterName::Cold,
                other => match other.parse::<u32>() {
                    Ok(n) => ClusterName::Numbered(n),
                    Err(_) => {
                        return Err(CcProfError::BadClusterLabel {
                            line: line_no,
                            label: other.to_string(),
                        })
                    }
                },
            };
            let mut blocks = Vec::new();
            for t in tokens {
                let id: u32 = t.parse().map_err(|_| CcProfError::BadBlockId {
                    line: line_no,
                    token: t.to_string(),
                })?;
                blocks.push(BlockId(id));
            }
            clusters.clusters.push(Cluster { name, blocks });
        } else if let Some(name) = line.strip_prefix('!') {
            flush(&mut current, &mut map);
            let fid = name_to_id
                .get(name.trim())
                .copied()
                .ok_or_else(|| CcProfError::UnknownFunction {
                    name: name.trim().to_string(),
                })?;
            current = Some((fid, FunctionClusters { clusters: Vec::new() }));
        }
    }
    flush(&mut current, &mut map);
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_ir::{FunctionBuilder, Inst, ProgramBuilder, Terminator};

    fn program() -> Program {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m.cc");
        for name in ["alpha", "beta"] {
            let mut f = FunctionBuilder::new(name);
            f.add_block(vec![Inst::Alu], Terminator::Jump(BlockId(1)));
            f.add_block(Vec::new(), Terminator::Jump(BlockId(2)));
            f.add_block(Vec::new(), Terminator::Ret);
            pb.add_function(m, f);
        }
        pb.finish().unwrap()
    }

    fn sample_map(p: &Program) -> ClusterMap {
        let mut map = ClusterMap::new();
        let alpha = p.functions().find(|f| f.name == "alpha").unwrap().id;
        map.insert(
            alpha,
            FunctionClusters {
                clusters: vec![
                    Cluster {
                        name: ClusterName::Primary,
                        blocks: vec![BlockId(0), BlockId(2)],
                    },
                    Cluster {
                        name: ClusterName::Numbered(1),
                        blocks: vec![BlockId(1)],
                    },
                ],
            },
        );
        map
    }

    #[test]
    fn round_trip() {
        let p = program();
        let map = sample_map(&p);
        let text = cluster_map_to_text(&map, &p);
        assert!(text.contains("!alpha"));
        assert!(text.contains("!!primary 0 2"));
        assert!(text.contains("!!1 1"));
        let parsed = cluster_map_from_text(&text, &p).unwrap();
        let alpha = p.functions().find(|f| f.name == "alpha").unwrap().id;
        assert_eq!(parsed.get(alpha), map.get(alpha));
        assert_eq!(parsed.len(), map.len());
    }

    #[test]
    fn parse_errors() {
        let p = program();
        assert!(matches!(
            cluster_map_from_text("!!primary 0\n", &p),
            Err(CcProfError::ClusterBeforeFunction { line: 1 })
        ));
        assert!(matches!(
            cluster_map_from_text("!nonexistent\n", &p),
            Err(CcProfError::UnknownFunction { .. })
        ));
        assert!(matches!(
            cluster_map_from_text("!alpha\n!!weird 0\n", &p),
            Err(CcProfError::BadClusterLabel { line: 2, .. })
        ));
        assert!(matches!(
            cluster_map_from_text("!alpha\n!!primary zero\n", &p),
            Err(CcProfError::BadBlockId { line: 2, .. })
        ));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let p = program();
        let text = "# header\n\n!alpha\n!!primary 0 1 2\n";
        let parsed = cluster_map_from_text(text, &p).unwrap();
        assert_eq!(parsed.len(), 1);
    }
}
