//! WPA options.

use crate::exttsp::ExtTspParams;

/// How blocks are ordered within one function.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum IntraOrder {
    /// Keep the original block order (ablation baseline).
    Original,
    /// Ext-TSP reordering (the paper's configuration).
    #[default]
    ExtTsp,
}

/// How text sections are ordered globally (`ld_prof`).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum GlobalOrder {
    /// Leave sections in input order (ablation baseline).
    InputOrder,
    /// Hot primaries by descending execution density, cold clusters
    /// last — the paper's default for the intra-function configuration.
    #[default]
    HotFirst,
    /// Whole-program Ext-TSP over clusters using call-site edges
    /// (§4.7's inter-procedural layout).
    ExtTspInterproc,
}

/// How cold blocks are identified for function splitting (§4.6: "our
/// experiments show that identifying cold blocks using hardware sample
/// profiles collected from an PGO optimized binary is more effective
/// than directly identifying cold blocks in the PGO profile").
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum ColdSource {
    /// Blocks never observed in hardware samples are cold (Propeller).
    #[default]
    HardwareSamples,
    /// Blocks with zero compile-time PGO frequency are cold (the
    /// in-compiler Machine Function Splitter heuristic; stale when the
    /// PGO profile no longer matches runtime behavior).
    PgoFrequencies,
}

/// Configuration for the whole-program analysis.
#[derive(Clone, PartialEq, Debug)]
pub struct WpaOptions {
    /// Intra-function ordering algorithm.
    pub intra: IntraOrder,
    /// Split cold blocks into `.cold` cluster sections (§4.6).
    pub split: bool,
    /// Where cold-block information comes from.
    pub cold_source: ColdSource,
    /// Global section ordering.
    pub global: GlobalOrder,
    /// Minimum sampled count for a block to be considered hot.
    pub hot_threshold: u64,
    /// Minimum total sample count for a *function* to receive layout
    /// directives. Thinly-sampled functions have unreliable block
    /// coverage — splitting them moves merely-unsampled (not cold)
    /// blocks out of line, costing more than the reordering gains.
    pub min_function_samples: u64,
    /// Additional clusters a hot function may be split into for
    /// inter-procedural layout (0 = primary + cold only; `k` allows up
    /// to `k` extra numbered clusters, cut at the coldest chain edges).
    pub interproc_split: usize,
    /// Ext-TSP parameters.
    pub exttsp: ExtTspParams,
    /// Collect full decision provenance: per-merge candidate detail
    /// (accepted and rejected), edge-funding attribution, and the rich
    /// per-function records behind `layout_provenance.json`. Off by
    /// default; arming never changes the layout or any default report.
    pub provenance: bool,
}

impl Default for WpaOptions {
    fn default() -> Self {
        WpaOptions {
            intra: IntraOrder::ExtTsp,
            split: true,
            cold_source: ColdSource::default(),
            global: GlobalOrder::HotFirst,
            hot_threshold: 1,
            min_function_samples: 32,
            interproc_split: 0,
            exttsp: ExtTspParams::default(),
            provenance: false,
        }
    }
}

impl WpaOptions {
    /// The §4.7 inter-procedural configuration.
    pub fn interprocedural() -> Self {
        WpaOptions {
            global: GlobalOrder::ExtTspInterproc,
            interproc_split: 2,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_configuration() {
        let o = WpaOptions::default();
        assert_eq!(o.intra, IntraOrder::ExtTsp);
        assert!(o.split);
        assert_eq!(o.global, GlobalOrder::HotFirst);
        assert_eq!(o.interproc_split, 0);
        assert!(!o.provenance, "provenance collection must be opt-in");
    }

    #[test]
    fn interprocedural_preset() {
        let o = WpaOptions::interprocedural();
        assert_eq!(o.global, GlobalOrder::ExtTspInterproc);
        assert!(o.interproc_split > 0);
    }
}
