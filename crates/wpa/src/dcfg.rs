//! Dynamic control flow graphs, built incrementally from samples
//! (§3.3): "The graph is built incrementally, defining edges as samples
//! are processed. Reconstructing the control flow does not require
//! disassembly."

use crate::mapper::AddressMapper;
use propeller_profile::AggregatedProfile;
use std::collections::HashMap;

/// How a dynamic edge was observed.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EdgeKind {
    /// A taken branch between blocks of one function.
    Branch,
    /// Straight-line execution between adjacent blocks.
    Fallthrough,
}

impl EdgeKind {
    /// Stable short label, used by the provenance document.
    pub fn label(self) -> &'static str {
        match self {
            EdgeKind::Branch => "branch",
            EdgeKind::Fallthrough => "fallthrough",
        }
    }
}

/// One aggregated profile observation that funded an intra-function CFG
/// edge weight: the raw address pair the hardware reported, and the
/// block edge it mapped to.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct FundingRecord {
    /// Mapper function index of the funded edge.
    pub func: u32,
    /// Source block id of the funded edge.
    pub src: u32,
    /// Destination block id of the funded edge.
    pub dst: u32,
    /// Observation kind of the funded edge.
    pub kind: EdgeKind,
    /// Raw profile `from` address (branch source, or fall-through range
    /// start).
    pub from: u64,
    /// Raw profile `to` address (branch target, or fall-through range
    /// end).
    pub to: u64,
    /// Aggregated sample weight this observation contributed.
    pub weight: u64,
}

/// The sample-mass-to-edge-weight ledger [`Dcfg::build_logged`] fills
/// when armed: every intra-function edge weight, attributed back to the
/// aggregated profile address pairs that funded it. Records are sorted
/// by `(func, src, dst, kind, from, to)` so the ledger is byte-stable
/// regardless of profile hash-map iteration order.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct EdgeFunding {
    /// All funding observations, in the fixed sort order.
    pub records: Vec<FundingRecord>,
}

impl EdgeFunding {
    /// The records funding one specific edge.
    pub fn for_edge(&self, func: u32, src: u32, dst: u32) -> Vec<&FundingRecord> {
        self.records
            .iter()
            .filter(|r| r.func == func && r.src == src && r.dst == dst)
            .collect()
    }

    /// The records funding any edge of one function.
    pub fn for_func(&self, func: u32) -> Vec<&FundingRecord> {
        self.records.iter().filter(|r| r.func == func).collect()
    }
}

/// One weighted intra-function edge.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct DcfgEdge {
    /// Source block id.
    pub src: u32,
    /// Destination block id.
    pub dst: u32,
    /// Observed weight.
    pub weight: u64,
    /// Dominant observation kind.
    pub kind: EdgeKind,
}

/// The dynamic CFG of one function: only blocks and edges that actually
/// appeared in samples exist here.
#[derive(Clone, Debug, Default)]
pub struct DcfgFunction {
    /// Sample-derived execution counts per block id.
    pub block_counts: HashMap<u32, u64>,
    /// Edge weights keyed by `(src, dst, kind)`.
    pub edges: HashMap<(u32, u32, EdgeKind), u64>,
}

impl DcfgFunction {
    /// Flattened edge list.
    pub fn edge_list(&self) -> Vec<DcfgEdge> {
        self.edges
            .iter()
            .map(|(&(src, dst, kind), &weight)| DcfgEdge {
                src,
                dst,
                weight,
                kind,
            })
            .collect()
    }

    /// Total dynamic weight of the function.
    pub fn total_count(&self) -> u64 {
        self.block_counts.values().sum()
    }
}

/// The whole-program dynamic CFG.
#[derive(Clone, Debug, Default)]
pub struct Dcfg {
    /// Per-function graphs, indexed like the mapper's function indices.
    pub functions: Vec<DcfgFunction>,
    /// Inter-function call weights `(caller function, call-site block,
    /// callee function)` — transfers whose destination is a function
    /// entry block. The call-site block is kept so inter-procedural
    /// layout can place callees near their call sites (§4.7).
    pub calls: HashMap<(u32, u32, u32), u64>,
    /// Inter-function return weights `(returnee, returner)`.
    pub returns: HashMap<(u32, u32), u64>,
    /// Address resolutions attempted while building, weighted by sample
    /// weight (each aggregated branch endpoint / fall-through landing
    /// counts once per observed sample).
    pub addr_lookups: u64,
    /// Of [`Dcfg::addr_lookups`], how many missed every mapped block
    /// (kernel addresses, stripped functions, dropped cold maps).
    /// Samples behind these are silently absent from the graph — the
    /// doctor's unmapped-address rate is `addr_unmapped/addr_lookups`.
    pub addr_unmapped: u64,
}

impl Dcfg {
    /// Builds the DCFG from an aggregated profile.
    ///
    /// Samples that do not map to any known block (kernel addresses,
    /// stripped functions) are skipped, as in the real tool.
    pub fn build(mapper: &AddressMapper, profile: &AggregatedProfile) -> Self {
        Self::build_logged(mapper, profile, None)
    }

    /// [`Dcfg::build`], additionally filling `funding` (when given)
    /// with the profile-address-to-edge attribution ledger. The built
    /// graph is identical either way; arming only records *why* each
    /// intra-function edge got its weight.
    pub fn build_logged(
        mapper: &AddressMapper,
        profile: &AggregatedProfile,
        mut funding: Option<&mut EdgeFunding>,
    ) -> Self {
        let mut dcfg = Dcfg {
            functions: vec![DcfgFunction::default(); mapper.num_functions()],
            ..Dcfg::default()
        };
        for (&(from, to), &w) in &profile.branches {
            let src = mapper.lookup_idx(from);
            let dst = mapper.lookup_idx(to);
            // Weights are u64 sample counts under the profile's
            // control; saturate rather than wrap on adversarial input
            // (a wrapped counter would silently report a clean profile).
            dcfg.addr_lookups = dcfg.addr_lookups.saturating_add(w.saturating_mul(2));
            dcfg.addr_unmapped = dcfg
                .addr_unmapped
                .saturating_add(w.saturating_mul(src.is_none() as u64 + dst.is_none() as u64));
            let (Some((sf, sb)), Some((df, db))) = (src, dst) else {
                continue;
            };
            if sf == df {
                *dcfg.functions[sf as usize]
                    .edges
                    .entry((sb, db, EdgeKind::Branch))
                    .or_insert(0) += w;
                if let Some(funding) = funding.as_deref_mut() {
                    funding.records.push(FundingRecord {
                        func: sf,
                        src: sb,
                        dst: db,
                        kind: EdgeKind::Branch,
                        from,
                        to,
                        weight: w,
                    });
                }
            } else if db == 0 {
                *dcfg.calls.entry((sf, sb, df)).or_insert(0) += w;
            } else {
                *dcfg.returns.entry((df, sf)).or_insert(0) += w;
            }
        }
        for (&(lo, hi), &w) in &profile.fallthroughs {
            if hi < lo {
                continue;
            }
            // Credit every block whose start lies in the executed
            // range, and the fall-through edges between consecutive
            // same-function blocks.
            let mut prev: Option<(u32, u32)> = None;
            // The block containing `lo` (a return may land mid-block).
            dcfg.addr_lookups = dcfg.addr_lookups.saturating_add(w);
            if let Some((f, b)) = mapper.lookup_idx(lo) {
                *dcfg.functions[f as usize].block_counts.entry(b).or_insert(0) += w;
                prev = Some((f, b));
            } else {
                dcfg.addr_unmapped = dcfg.addr_unmapped.saturating_add(w);
            }
            for (f, b) in mapper.blocks_starting_in(lo, hi) {
                if prev == Some((f, b)) {
                    continue; // `lo` was exactly the block start
                }
                *dcfg.functions[f as usize].block_counts.entry(b).or_insert(0) += w;
                if let Some((pf, pb)) = prev {
                    if pf == f {
                        *dcfg.functions[f as usize]
                            .edges
                            .entry((pb, b, EdgeKind::Fallthrough))
                            .or_insert(0) += w;
                        if let Some(funding) = funding.as_deref_mut() {
                            funding.records.push(FundingRecord {
                                func: f,
                                src: pb,
                                dst: b,
                                kind: EdgeKind::Fallthrough,
                                from: lo,
                                to: hi,
                                weight: w,
                            });
                        }
                    }
                }
                prev = Some((f, b));
            }
        }
        // Branch endpoints also prove execution: make sure branch
        // sources and targets have nonzero counts even if no
        // fall-through range covered them.
        for fi in 0..dcfg.functions.len() {
            let keys: Vec<(u32, u32, EdgeKind)> =
                dcfg.functions[fi].edges.keys().copied().collect();
            for (src, dst, kind) in keys {
                let w = dcfg.functions[fi].edges[&(src, dst, kind)];
                for b in [src, dst] {
                    let c = dcfg.functions[fi].block_counts.entry(b).or_insert(0);
                    *c = (*c).max(w);
                }
            }
        }
        // The profile maps iterate in hash order; fix the ledger order
        // so provenance serialization is byte-stable.
        if let Some(funding) = funding {
            funding
                .records
                .sort_unstable_by_key(|r| (r.func, r.src, r.dst, r.kind, r.from, r.to));
        }
        dcfg
    }

    /// Total number of distinct edges (intra + calls + returns).
    pub fn num_edges(&self) -> usize {
        self.functions.iter().map(|f| f.edges.len()).sum::<usize>()
            + self.calls.len()
            + self.returns.len()
    }

    /// Number of distinct blocks observed hot.
    pub fn num_hot_blocks(&self) -> usize {
        self.functions.iter().map(|f| f.block_counts.len()).sum()
    }

    /// Modeled memory: ~40 bytes per node, ~48 per edge — the
    /// "in-memory DCFG" of §5.1 whose size Phase 3's peak memory is
    /// attributed to. Counts widen to u64 *before* multiplying, so the
    /// product cannot wrap usize on 32-bit hosts.
    pub fn modeled_memory_bytes(&self) -> u64 {
        self.num_hot_blocks() as u64 * 40 + self.num_edges() as u64 * 48
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_codegen::{codegen_module, CodegenOptions};
    use propeller_ir::{BlockId, FunctionBuilder, Inst, ProgramBuilder, Terminator};
    use propeller_linker::{link, LinkInput, LinkOptions, LinkedBinary};
    use propeller_profile::{HardwareProfile, LbrRecord, LbrSample};

    /// alpha: bb0(9B) -> bb1; beta: bb0 -> ret.
    fn binary() -> LinkedBinary {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m.cc");
        let mut f = FunctionBuilder::new("alpha");
        f.add_block(
            vec![Inst::Alu; 3],
            Terminator::CondBr {
                taken: BlockId(1),
                fallthrough: BlockId(2),
                prob_taken: 0.5,
            },
        );
        f.add_block(vec![Inst::Load], Terminator::Ret);
        f.add_block(vec![Inst::Load], Terminator::Ret);
        pb.add_function(m, f);
        let mut g = FunctionBuilder::new("beta");
        g.add_block(vec![Inst::Store; 2], Terminator::Ret);
        pb.add_function(m, g);
        let p = pb.finish().unwrap();
        let r = codegen_module(&p.modules()[0], &p, &CodegenOptions::with_labels()).unwrap();
        link(
            &[LinkInput::new(r.object, r.debug_layout)],
            &LinkOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn branch_samples_become_intra_edges() {
        let bin = binary();
        let mapper = AddressMapper::from_binary(&bin);
        let alpha = bin.symbol("alpha").unwrap();
        let mut prof = HardwareProfile::new("t");
        // bb0 ends at 9+6=15 (alu*3 + long-ish branch); branch "from"
        // anywhere inside bb0, target bb1.
        let alpha_layout = bin
            .layout
            .functions
            .iter()
            .find(|f| f.func_symbol == "alpha")
            .unwrap();
        let bb1 = alpha_layout
            .blocks
            .iter()
            .find(|b| b.block == BlockId(1))
            .unwrap();
        prof.samples.push(LbrSample::new(vec![
            LbrRecord {
                from: alpha + 2,
                to: bb1.addr,
            };
            3
        ]));
        let agg = AggregatedProfile::from_profile(&prof);
        let dcfg = Dcfg::build(&mapper, &agg);
        let af = &dcfg.functions[0];
        assert_eq!(af.edges[&(0, 1, EdgeKind::Branch)], 3);
        assert!(af.block_counts[&0] >= 3);
        assert!(af.block_counts[&1] >= 3);
    }

    #[test]
    fn cross_function_entry_transfer_is_a_call() {
        let bin = binary();
        let mapper = AddressMapper::from_binary(&bin);
        let alpha = bin.symbol("alpha").unwrap();
        let beta = bin.symbol("beta").unwrap();
        let mut prof = HardwareProfile::new("t");
        prof.samples.push(LbrSample::new(vec![LbrRecord {
            from: alpha + 1,
            to: beta,
        }]));
        let agg = AggregatedProfile::from_profile(&prof);
        let dcfg = Dcfg::build(&mapper, &agg);
        assert_eq!(dcfg.calls.len(), 1);
        assert_eq!(dcfg.calls.values().sum::<u64>(), 1);
        assert!(dcfg.returns.is_empty());
    }

    #[test]
    fn fallthrough_ranges_credit_covered_blocks() {
        let bin = binary();
        let mapper = AddressMapper::from_binary(&bin);
        let alpha = bin.symbol("alpha").unwrap();
        let alpha_layout = bin
            .layout
            .functions
            .iter()
            .find(|f| f.func_symbol == "alpha")
            .unwrap();
        let bb1 = alpha_layout
            .blocks
            .iter()
            .find(|b| b.block == BlockId(1))
            .unwrap();
        let mut prof = HardwareProfile::new("t");
        // Two records whose gap covers bb0 and bb1: landed at alpha,
        // next branch fired from inside bb1.
        prof.samples.push(LbrSample::new(vec![
            LbrRecord {
                from: alpha + 100,
                to: alpha,
            },
            LbrRecord {
                from: bb1.addr + 1,
                to: alpha,
            },
        ]));
        let agg = AggregatedProfile::from_profile(&prof);
        let dcfg = Dcfg::build(&mapper, &agg);
        let af = &dcfg.functions[0];
        assert!(af.block_counts[&0] >= 1);
        assert!(af.block_counts[&1] >= 1);
        assert_eq!(af.edges[&(0, 1, EdgeKind::Fallthrough)], 1);
    }

    #[test]
    fn armed_build_attributes_edge_weights_to_profile_addresses() {
        let bin = binary();
        let mapper = AddressMapper::from_binary(&bin);
        let alpha = bin.symbol("alpha").unwrap();
        let alpha_layout = bin
            .layout
            .functions
            .iter()
            .find(|f| f.func_symbol == "alpha")
            .unwrap();
        let bb1 = alpha_layout
            .blocks
            .iter()
            .find(|b| b.block == BlockId(1))
            .unwrap();
        let mut prof = HardwareProfile::new("t");
        prof.samples.push(LbrSample::new(vec![
            LbrRecord {
                from: alpha + 2,
                to: bb1.addr,
            };
            3
        ]));
        let agg = AggregatedProfile::from_profile(&prof);
        let plain = Dcfg::build(&mapper, &agg);
        let mut funding = EdgeFunding::default();
        let armed = Dcfg::build_logged(&mapper, &agg, Some(&mut funding));
        // Arming must not change the graph itself.
        assert_eq!(armed.num_edges(), plain.num_edges());
        assert_eq!(
            armed.functions[0].edges[&(0, 1, EdgeKind::Branch)],
            plain.functions[0].edges[&(0, 1, EdgeKind::Branch)]
        );
        // The edge weight traces back to the exact raw address pair.
        let recs = funding.for_edge(0, 0, 1);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].from, alpha + 2);
        assert_eq!(recs[0].to, bb1.addr);
        assert_eq!(recs[0].weight, 3);
        assert_eq!(recs[0].kind, EdgeKind::Branch);
        // Funded weights sum to the edge weight.
        let total: u64 = recs.iter().map(|r| r.weight).sum();
        assert_eq!(total, armed.functions[0].edges[&(0, 1, EdgeKind::Branch)]);
        assert_eq!(funding.for_func(0).len(), funding.records.len());
    }

    #[test]
    fn unmappable_samples_skipped() {
        let bin = binary();
        let mapper = AddressMapper::from_binary(&bin);
        let mut prof = HardwareProfile::new("t");
        prof.samples.push(LbrSample::new(vec![LbrRecord {
            from: 0xdead,
            to: 0xbeef,
        }]));
        let agg = AggregatedProfile::from_profile(&prof);
        let dcfg = Dcfg::build(&mapper, &agg);
        assert_eq!(dcfg.num_edges(), 0);
        assert_eq!(dcfg.num_hot_blocks(), 0);
        assert_eq!(dcfg.modeled_memory_bytes(), 0);
        // Both endpoints of the bogus branch missed the mapper.
        assert_eq!(dcfg.addr_lookups, 2);
        assert_eq!(dcfg.addr_unmapped, 2);
    }

    #[test]
    fn mapped_samples_count_lookups_without_misses() {
        let bin = binary();
        let mapper = AddressMapper::from_binary(&bin);
        let alpha = bin.symbol("alpha").unwrap();
        let beta = bin.symbol("beta").unwrap();
        let mut prof = HardwareProfile::new("t");
        prof.samples.push(LbrSample::new(vec![LbrRecord {
            from: alpha + 1,
            to: beta,
        }]));
        let agg = AggregatedProfile::from_profile(&prof);
        let dcfg = Dcfg::build(&mapper, &agg);
        assert!(dcfg.addr_lookups >= 2);
        assert_eq!(dcfg.addr_unmapped, 0);
    }
}
