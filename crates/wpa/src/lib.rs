//! Whole-Program Analysis — the standalone Phase 3 tool (§3.3).
//!
//! Consumes a hardware (LBR) profile collected from the Phase 2
//! metadata binary plus that binary's `.llvm_bb_addr_map`, and produces
//! the two layout directive files of Figure 1:
//!
//! * `cc_prof` — per-function basic block **cluster** directives (the
//!   [`propeller_codegen::ClusterMap`]) consumed by the distributed
//!   Phase 4 codegen actions;
//! * `ld_prof` — the global **symbol ordering**
//!   ([`propeller_linker::SymbolOrdering`]) consumed by the final
//!   relink.
//!
//! The pipeline inside is exactly the paper's: map sample addresses to
//! machine basic blocks via the address map ([`AddressMapper`]) — *no
//! disassembly* — build a dynamic control flow graph ([`Dcfg`])
//! incrementally from the samples, run the Ext-TSP block reordering
//! approximation of Newell & Pupyrev ([`exttsp`]) per hot function (and
//! optionally across functions, §4.7), split cold blocks into `.cold`
//! sections (§4.6), and emit the directives.

pub mod exttsp;
mod cc_prof;
mod dcfg;
mod layout;
mod mapper;
mod options;
mod prefetch;

pub use cc_prof::{cluster_map_from_text, cluster_map_to_text, CcProfError};
pub use dcfg::{Dcfg, DcfgEdge, DcfgFunction, EdgeFunding, EdgeKind, FundingRecord};
pub use layout::{
    run_wpa, run_wpa_agg_traced, run_wpa_traced, ClusterProvenance, FunctionProvenance,
    LayoutProvenance, RichFunctionRecord, RichProvenance, WpaOutput,
    WpaStats,
};
pub use mapper::{AddressMapper, MappedLoc};
pub use prefetch::{apply_prefetches, prefetch_directives, PrefetchMap};
pub use options::{ColdSource, GlobalOrder, IntraOrder, WpaOptions};
