//! Profile-guided software prefetch insertion points (§3.5).
//!
//! "Profile guided, post link software prefetch insertion is another
//! optimization that can be implemented in Propeller. The whole-program
//! analysis of cache miss profiles determine prefetch insertion points.
//! A summary-based directive can then drive the distributed code
//! generation actions that modify the objects and insert prefetch
//! instructions."
//!
//! The simulator collects a call-site code-miss profile (misses at
//! callee entry, keyed by call-site block address); this module maps it
//! through the BB address map into per-function directives the Phase 4
//! codegen actions consume.

use crate::mapper::AddressMapper;
use propeller_ir::{BlockId, FunctionId, Program};
use propeller_linker::LinkedBinary;
use std::collections::HashMap;

/// Per-function prefetch directives: `(block to insert into, function
/// whose entry to prefetch)`.
pub type PrefetchMap = HashMap<FunctionId, Vec<(BlockId, FunctionId)>>;

/// Derives prefetch directives from a call-miss profile.
///
/// `call_misses` maps `(call-site block address, callee entry address)`
/// to observed L1i miss counts; sites with at least `min_misses` get a
/// directive. At most `max_per_block` targets are kept per block (the
/// hottest-missing first).
pub fn prefetch_directives(
    program: &Program,
    binary: &LinkedBinary,
    call_misses: &HashMap<(u64, u64), u64>,
    min_misses: u64,
    max_per_block: usize,
) -> PrefetchMap {
    let mapper = AddressMapper::from_binary(binary);
    let name_to_id: HashMap<&str, FunctionId> =
        program.functions().map(|f| (f.name.as_str(), f.id)).collect();

    // Collect candidates: (caller fn, block, target fn) -> misses.
    let mut candidates: HashMap<(FunctionId, u32, FunctionId), u64> = HashMap::new();
    for (&(site_addr, callee_addr), &misses) in call_misses {
        if misses < min_misses.max(1) {
            continue;
        }
        let Some(site) = mapper.lookup(site_addr) else {
            continue;
        };
        let Some(callee) = mapper.lookup(callee_addr) else {
            continue;
        };
        if callee.bb_id != 0 || callee.offset_in_block != 0 {
            continue; // not a function entry
        }
        let (Some(&caller_id), Some(&target_id)) = (
            name_to_id.get(site.func_symbol.as_str()),
            name_to_id.get(callee.func_symbol.as_str()),
        ) else {
            continue;
        };
        *candidates
            .entry((caller_id, site.bb_id, target_id))
            .or_insert(0) += misses;
    }

    // Group per (function, block), keep the hottest targets.
    let mut grouped: HashMap<(FunctionId, u32), Vec<(FunctionId, u64)>> = HashMap::new();
    for ((f, b, t), m) in candidates {
        grouped.entry((f, b)).or_default().push((t, m));
    }
    let mut out: PrefetchMap = HashMap::new();
    for ((f, b), mut targets) in grouped {
        targets.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        targets.truncate(max_per_block);
        let entry = out.entry(f).or_default();
        for (t, _) in targets {
            entry.push((BlockId(b), t));
        }
    }
    for v in out.values_mut() {
        v.sort();
    }
    out
}

/// Applies prefetch directives to a program, producing the augmented
/// program Phase 4 regenerates objects from: each directive inserts an
/// [`propeller_ir::Inst::Prefetch`] at the front of its block, giving
/// the fetch maximal lead time before the call.
pub fn apply_prefetches(program: &Program, directives: &PrefetchMap) -> Program {
    let mut augmented = program.clone();
    for module in augmented.modules_mut() {
        for f in &mut module.functions {
            let Some(list) = directives.get(&f.id) else {
                continue;
            };
            for &(block, target) in list {
                if let Some(b) = f.blocks.get_mut(block.index()) {
                    b.insts.insert(0, propeller_ir::Inst::Prefetch(target));
                }
            }
        }
    }
    augmented
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_codegen::{codegen_module, CodegenOptions};
    use propeller_ir::{FunctionBuilder, Inst, ProgramBuilder, Terminator};
    use propeller_linker::{link, LinkInput, LinkOptions};

    fn fixture() -> (Program, LinkedBinary, FunctionId, FunctionId) {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m.cc");
        let mut callee = FunctionBuilder::new("callee");
        callee.add_block(vec![Inst::Alu; 8], Terminator::Ret);
        let callee = pb.add_function(m, callee);
        let mut caller = FunctionBuilder::new("caller");
        caller.add_block(vec![Inst::Alu, Inst::Call(callee)], Terminator::Ret);
        let caller = pb.add_function(m, caller);
        let p = pb.finish().unwrap();
        let r = codegen_module(&p.modules()[0], &p, &CodegenOptions::with_labels()).unwrap();
        let bin = link(
            &[LinkInput::new(r.object, r.debug_layout)],
            &LinkOptions::default(),
        )
        .unwrap();
        (p, bin, caller, callee)
    }

    #[test]
    fn directives_map_miss_sites_to_blocks() {
        let (p, bin, caller, callee) = fixture();
        let caller_addr = bin.symbol("caller").unwrap();
        let callee_addr = bin.symbol("callee").unwrap();
        let mut misses = HashMap::new();
        misses.insert((caller_addr, callee_addr), 50u64);
        let map = prefetch_directives(&p, &bin, &misses, 10, 2);
        assert_eq!(map.len(), 1);
        assert_eq!(map[&caller], vec![(BlockId(0), callee)]);
    }

    #[test]
    fn threshold_filters_cold_sites() {
        let (p, bin, _, _) = fixture();
        let caller_addr = bin.symbol("caller").unwrap();
        let callee_addr = bin.symbol("callee").unwrap();
        let mut misses = HashMap::new();
        misses.insert((caller_addr, callee_addr), 3u64);
        let map = prefetch_directives(&p, &bin, &misses, 10, 2);
        assert!(map.is_empty());
    }

    #[test]
    fn non_entry_targets_ignored() {
        let (p, bin, _, _) = fixture();
        let caller_addr = bin.symbol("caller").unwrap();
        let callee_addr = bin.symbol("callee").unwrap();
        let mut misses = HashMap::new();
        misses.insert((caller_addr, callee_addr + 3), 500u64); // mid-function
        let map = prefetch_directives(&p, &bin, &misses, 10, 2);
        assert!(map.is_empty());
    }

    #[test]
    fn apply_inserts_at_block_front() {
        let (p, _, caller, callee) = fixture();
        let mut map = PrefetchMap::new();
        map.insert(caller, vec![(BlockId(0), callee)]);
        let augmented = apply_prefetches(&p, &map);
        let f = augmented.function(caller).unwrap();
        assert_eq!(f.blocks[0].insts[0], Inst::Prefetch(callee));
        assert_eq!(
            f.blocks[0].insts.len(),
            p.function(caller).unwrap().blocks[0].insts.len() + 1
        );
        augmented.validate().unwrap();
    }
}
