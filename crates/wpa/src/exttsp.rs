//! The Ext-TSP basic block reordering algorithm (Newell & Pupyrev,
//! "Improved Basic Block Reordering", 2018), as used by Propeller for
//! intra-function layout (§3.3) and — on the whole-program graph — for
//! inter-procedural layout (§4.7).
//!
//! Ext-TSP maximizes `Σ weight(e) · gain(e)` where a fall-through edge
//! gains 1.0 and short forward/backward jumps gain up to 0.1, decaying
//! linearly with distance. The optimizer greedily merges chains of
//! blocks, always applying the highest-gain merge; the priority queue
//! with lazy invalidation implements the paper's "logarithmic time
//! retrieval of the most profitable action" improvement.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// A layout node (a basic block, or a whole section for the
/// inter-procedural variant).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Node {
    /// Caller-meaningful identifier (block id / section index).
    pub id: u32,
    /// Size in bytes.
    pub size: u32,
    /// Execution count (used for tie-breaking and density ordering).
    pub count: u64,
}

/// A weighted directed edge between nodes.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Edge {
    /// Source node id.
    pub src: u32,
    /// Destination node id.
    pub dst: u32,
    /// Dynamic weight.
    pub weight: u64,
}

/// Scoring and search parameters; defaults follow the published
/// constants.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct ExtTspParams {
    /// Maximum forward jump distance that still scores.
    pub forward_window: u64,
    /// Maximum backward jump distance that still scores.
    pub backward_window: u64,
    /// Score of a perfect fall-through.
    pub fallthrough_weight: f64,
    /// Peak score of a short forward jump.
    pub forward_weight: f64,
    /// Peak score of a short backward jump.
    pub backward_weight: f64,
    /// Chains no longer than this are considered for 3-way split
    /// merges; longer chains only concatenate (the scalability knob of
    /// §4.7).
    pub chain_split_threshold: usize,
    /// Worker threads for merge-gain evaluation. Gains for a batch of
    /// candidate pairs are computed in parallel but reduced in the
    /// serial submission order, so the heap sequence — and therefore
    /// the final layout — is bit-identical at every value. `1` (the
    /// default) evaluates inline.
    pub jobs: usize,
}

impl Default for ExtTspParams {
    fn default() -> Self {
        ExtTspParams {
            forward_window: 1024,
            backward_window: 640,
            fallthrough_weight: 1.0,
            forward_weight: 0.1,
            backward_weight: 0.1,
            chain_split_threshold: 128,
            jobs: 1,
        }
    }
}

/// Scores one edge given the source block's end offset and the
/// destination block's start offset.
fn edge_score(params: &ExtTspParams, w: u64, src_end: u64, dst_start: u64) -> f64 {
    let w = w as f64;
    if src_end == dst_start {
        return w * params.fallthrough_weight;
    }
    if dst_start > src_end {
        let d = dst_start - src_end;
        if d < params.forward_window {
            return w * params.forward_weight * (1.0 - d as f64 / params.forward_window as f64);
        }
    } else {
        let d = src_end - dst_start;
        if d < params.backward_window {
            return w * params.backward_weight * (1.0 - d as f64 / params.backward_window as f64);
        }
    }
    0.0
}

/// Computes the Ext-TSP score of a complete layout. Exposed for tests,
/// benches and the ablation harness.
pub fn score_layout(order: &[u32], nodes: &[Node], edges: &[Edge], params: &ExtTspParams) -> f64 {
    let size_of: HashMap<u32, u64> = nodes.iter().map(|n| (n.id, n.size as u64)).collect();
    let mut pos: HashMap<u32, u64> = HashMap::with_capacity(order.len());
    let mut cursor = 0u64;
    for &id in order {
        pos.insert(id, cursor);
        cursor += size_of[&id];
    }
    let mut total = 0.0;
    for e in edges {
        let (Some(&sp), Some(&dp)) = (pos.get(&e.src), pos.get(&e.dst)) else {
            continue;
        };
        total += edge_score(params, e.weight, sp + size_of[&e.src], dp);
    }
    total
}

#[derive(Clone, Debug)]
struct Chain {
    blocks: Vec<usize>, // dense node indices
    version: u64,
}

#[derive(Copy, Clone)]
struct HeapEntry {
    gain: f64,
    x: usize,
    y: usize,
    vx: u64,
    vy: u64,
    /// Merge variant: `usize::MAX` = concat(x,y); otherwise split x at
    /// this position and lay out X1, Y, X2.
    split: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.gain == other.gain
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Primary: gain. Equal-gain candidates are ordered by a stable
        // key — (smaller x, then smaller y, then smaller split) pops
        // first — never by insertion order or hash iteration at call
        // sites. Chain ids are dense node indices of each chain's
        // founding block, so the key is a pure function of the input
        // problem; provenance replay and the `--jobs` byte-identity
        // gates both depend on this total order staying stable.
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| other.x.cmp(&self.x))
            .then_with(|| other.y.cmp(&self.y))
            .then_with(|| other.split.cmp(&self.split))
    }
}

/// The greedy chain-merging optimizer.
struct Optimizer<'a> {
    params: &'a ExtTspParams,
    sizes: Vec<u64>,
    /// Incident edges per dense node index: `(other end, weight,
    /// is_outgoing)`.
    incident: Vec<Vec<(usize, u64, bool)>>,
    chains: Vec<Option<Chain>>,
    chain_of: Vec<usize>,
    neighbors: Vec<HashSet<usize>>,
    entry_idx: usize,
}

impl<'a> Optimizer<'a> {
    /// Scores all edges internal to the block sequence `seq`.
    fn score_seq(&self, seq: &[usize]) -> f64 {
        let mut pos = HashMap::with_capacity(seq.len());
        let mut cursor = 0u64;
        for &b in seq {
            pos.insert(b, cursor);
            cursor += self.sizes[b];
        }
        let mut total = 0.0;
        for &b in seq {
            for &(other, w, outgoing) in &self.incident[b] {
                if !outgoing {
                    continue;
                }
                if let Some(&dp) = pos.get(&other) {
                    total += edge_score(self.params, w, pos[&b] + self.sizes[b], dp);
                }
            }
        }
        total
    }

    fn chain(&self, c: usize) -> &Chain {
        self.chains[c].as_ref().expect("live chain")
    }

    /// Whether a merged sequence would violate the entry-first
    /// constraint.
    fn entry_ok(&self, seq: &[usize]) -> bool {
        matches!(
            seq.iter().position(|&b| b == self.entry_idx),
            Some(0) | None
        )
    }

    /// Enumerates merge variants of chains `x` and `y` and returns the
    /// best `(gain, split)` if any is valid and positive.
    fn best_merge(&self, x: usize, y: usize) -> Option<(f64, usize)> {
        let cx = self.chain(x);
        let cy = self.chain(y);
        let base = self.score_seq(&cx.blocks) + self.score_seq(&cy.blocks);
        let mut best: Option<(f64, usize)> = None;
        let mut consider = |seq: &[usize], split: usize, this: &Self| {
            if !this.entry_ok(seq) {
                return;
            }
            let gain = this.score_seq(seq) - base;
            if gain > best.map_or(0.0, |(g, _)| g) + 1e-9 {
                best = Some((gain, split));
            }
        };
        // concat(x, y)
        let mut seq = cx.blocks.clone();
        seq.extend_from_slice(&cy.blocks);
        consider(&seq, usize::MAX, self);
        // Splits of x with y inserted: X1 Y X2 (split = 1..len). A
        // split at len(x) is concat; at 0 it is concat(y, x) — both
        // covered by the loop bounds when x is small enough.
        if cx.blocks.len() <= self.params.chain_split_threshold {
            for k in 0..cx.blocks.len() {
                let mut seq = Vec::with_capacity(cx.blocks.len() + cy.blocks.len());
                seq.extend_from_slice(&cx.blocks[..k]);
                seq.extend_from_slice(&cy.blocks);
                seq.extend_from_slice(&cx.blocks[k..]);
                consider(&seq, k, self);
            }
        } else {
            // Large chain: still allow concat(y, x).
            let mut seq = cy.blocks.clone();
            seq.extend_from_slice(&cx.blocks);
            consider(&seq, 0, self);
        }
        best
    }

    /// Applies the merge described by `(x, y, split)`.
    fn apply(&mut self, x: usize, y: usize, split: usize) {
        let cy = self.chains[y].take().expect("live chain");
        let cx = self.chains[x].as_mut().expect("live chain");
        if split == usize::MAX {
            cx.blocks.extend_from_slice(&cy.blocks);
        } else {
            let tail = cx.blocks.split_off(split);
            cx.blocks.extend_from_slice(&cy.blocks);
            cx.blocks.extend_from_slice(&tail);
        }
        cx.version += 1;
        for &b in &cy.blocks {
            self.chain_of[b] = x;
        }
        // Merge neighbor sets.
        let ny = std::mem::take(&mut self.neighbors[y]);
        for n in ny {
            if n != x {
                self.neighbors[n].remove(&y);
                self.neighbors[n].insert(x);
                self.neighbors[x].insert(n);
            }
        }
        self.neighbors[x].remove(&y);
        self.neighbors[x].remove(&x);
    }
}

/// The best live, version-fresh, positive-gain candidate currently in
/// `heap`, as the rejected-alternative record. A linear scan over the
/// heap's backing store: selection by the total [`HeapEntry`] order, so
/// the result is independent of the heap's internal arrangement — and
/// the heap itself is never touched, so arming provenance cannot
/// perturb the merge sequence.
fn best_queued_alternative(opt: &Optimizer<'_>, heap: &BinaryHeap<HeapEntry>) -> Option<RejectedAlt> {
    let mut best: Option<&HeapEntry> = None;
    for e in heap.iter() {
        if e.gain <= 1e-9 || opt.chains[e.x].is_none() || opt.chains[e.y].is_none() {
            continue;
        }
        if opt.chain(e.x).version != e.vx || opt.chain(e.y).version != e.vy {
            continue;
        }
        if best.is_none_or(|b| e.cmp(b) == Ordering::Greater) {
            best = Some(e);
        }
    }
    best.map(|e| RejectedAlt {
        x: e.x,
        y: e.y,
        gain: e.gain,
        split: (e.split != usize::MAX).then_some(e.split),
    })
}

/// Evaluates [`Optimizer::best_merge`] for every ordered pair in
/// `pairs`, returning results in `pairs` order. With `jobs > 1` the
/// pair list is cut into contiguous chunks evaluated on scoped worker
/// threads and the per-chunk results are concatenated in chunk order —
/// `best_merge` is read-only, so the output is byte-for-byte the same
/// as the serial evaluation regardless of thread interleaving.
fn eval_pairs(
    opt: &Optimizer<'_>,
    pairs: &[(usize, usize)],
    jobs: usize,
) -> Vec<Option<(f64, usize)>> {
    let jobs = jobs.max(1).min(pairs.len());
    // Tiny batches are not worth a thread spawn; `jobs == 1` must take
    // this branch so the legacy serial path stays byte-identical in
    // behavior *and* in work done.
    if jobs <= 1 || pairs.len() < 8 {
        return pairs.iter().map(|&(x, y)| opt.best_merge(x, y)).collect();
    }
    let chunk = pairs.len().div_ceil(jobs);
    let mut out = Vec::with_capacity(pairs.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .map(|c| {
                s.spawn(move || {
                    c.iter()
                        .map(|&(x, y)| opt.best_merge(x, y))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            // `best_merge` only panics on a dead chain, which callers
            // never pass; a panic here is a bug worth propagating.
            out.extend(h.join().expect("gain evaluation does not panic"));
        }
    });
    out
}

/// One committed chain merge, in commit order — the provenance trail
/// explaining how a final layout was assembled.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct MergeRecord {
    /// Ext-TSP score gained by this merge.
    pub gain: f64,
    /// Whether the merge split the receiving chain (X1 Y X2) rather
    /// than concatenating.
    pub split: bool,
}

/// The best still-valid merge candidate left in the queue at the moment
/// another candidate was committed — the decision the optimizer
/// *rejected* by choosing the winner.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct RejectedAlt {
    /// Receiving chain id (dense node index of its founding block).
    pub x: usize,
    /// Absorbed chain id.
    pub y: usize,
    /// The gain this alternative would have realized.
    pub gain: f64,
    /// Split position into `x`, `None` for plain concatenation.
    pub split: Option<usize>,
}

/// One committed merge with enough context to replay it exactly: which
/// chain absorbed which, at what split point, and what the best
/// rejected alternative was at that moment.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct MergeStep {
    /// Receiving chain id (dense node index of its founding block).
    pub x: usize,
    /// Absorbed chain id.
    pub y: usize,
    /// Ext-TSP score gained.
    pub gain: f64,
    /// Split position into `x` (lay out X1 Y X2), `None` for
    /// concatenation.
    pub split: Option<usize>,
    /// The best live, up-to-date candidate still queued when this merge
    /// committed — `None` when the queue held no other valid
    /// positive-gain candidate.
    pub rejected: Option<RejectedAlt>,
}

/// Full candidate-level provenance of one optimizer run, collected only
/// when armed via [`MergeLog::with_detail`] — every committed step in
/// replayable form plus the count of candidate evaluations performed
/// (so rejected work is `evaluations - steps.len()`).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct MergeDetail {
    /// Committed merges with replay context, in commit order.
    pub steps: Vec<MergeStep>,
    /// Total candidate merge evaluations performed (accepted and
    /// rejected alike).
    pub evaluations: u64,
}

/// What one [`order_nodes_logged`] run did, for provenance reporting.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct MergeLog {
    /// Every committed merge, in order.
    pub merges: Vec<MergeRecord>,
    /// Ext-TSP score of the returned layout.
    pub final_score: f64,
    /// Ext-TSP score of the input (compiler) order.
    pub input_score: f64,
    /// Whether the optimizer's layout scored below the input order and
    /// the input order was returned instead.
    pub used_input_order: bool,
    /// Candidate-level detail; collected only when the log was armed
    /// with [`MergeLog::with_detail`].
    pub detail: Option<MergeDetail>,
}

impl MergeLog {
    /// A log armed for candidate-level provenance collection.
    pub fn with_detail() -> MergeLog {
        MergeLog {
            detail: Some(MergeDetail::default()),
            ..MergeLog::default()
        }
    }
}

/// Replays a recorded merge sequence over fresh singleton chains and
/// reassembles the final node order with the exact rule the optimizer
/// uses (entry chain first, remaining chains by descending density,
/// ties by founding block). Returns the reconstructed order, which must
/// equal what [`order_nodes_logged`] returned when it recorded `steps`
/// (unless that run fell back to the input order).
///
/// # Errors
///
/// Reports the first structurally impossible step (dead chain, split
/// out of range) or a missing entry node.
pub fn replay_merges(nodes: &[Node], entry: u32, steps: &[MergeStep]) -> Result<Vec<u32>, String> {
    let entry_idx = nodes
        .iter()
        .position(|n| n.id == entry)
        .ok_or_else(|| format!("entry node {entry} not in node list"))?;
    let mut chains: Vec<Option<Vec<usize>>> = (0..nodes.len()).map(|i| Some(vec![i])).collect();
    for (si, s) in steps.iter().enumerate() {
        if s.x >= chains.len() || s.y >= chains.len() {
            return Err(format!("step {si}: chain id out of range"));
        }
        let cy = chains[s.y]
            .take()
            .ok_or_else(|| format!("step {si}: absorbed chain {} already dead", s.y))?;
        let cx = chains[s.x]
            .as_mut()
            .ok_or_else(|| format!("step {si}: receiving chain {} already dead", s.x))?;
        match s.split {
            None => cx.extend_from_slice(&cy),
            Some(k) => {
                if k > cx.len() {
                    return Err(format!("step {si}: split {k} beyond chain length {}", cx.len()));
                }
                let tail = cx.split_off(k);
                cx.extend_from_slice(&cy);
                cx.extend_from_slice(&tail);
            }
        }
    }
    let entry_chain = chains
        .iter()
        .position(|c| c.as_ref().is_some_and(|b| b.contains(&entry_idx)))
        .ok_or("entry block lost during replay")?;
    let mut rest: Vec<usize> = Vec::new();
    for (ci, c) in chains.iter().enumerate() {
        if c.is_some() && ci != entry_chain {
            rest.push(ci);
        }
    }
    let density = |ci: usize| -> f64 {
        let blocks = chains[ci].as_ref().expect("live chain");
        let count: u64 = blocks.iter().map(|&b| nodes[b].count).sum();
        let size: u64 = blocks
            .iter()
            .map(|&b| nodes[b].size as u64)
            .sum::<u64>()
            .max(1);
        count as f64 / size as f64
    };
    rest.sort_by(|&a, &b| {
        density(b)
            .total_cmp(&density(a))
            .then_with(|| chains[a].as_ref().unwrap()[0].cmp(&chains[b].as_ref().unwrap()[0]))
    });
    let mut order = Vec::with_capacity(nodes.len());
    for &b in chains[entry_chain].as_ref().expect("entry chain") {
        order.push(nodes[b].id);
    }
    for ci in rest {
        for &b in chains[ci].as_ref().expect("live chain") {
            order.push(nodes[b].id);
        }
    }
    Ok(order)
}

/// Orders `nodes` to maximize the Ext-TSP score, keeping `entry` first.
///
/// Nodes never observed in an edge stay in their own chains and are
/// appended in descending density order after the merged hot chains.
///
/// # Panics
///
/// Panics if `entry` is not among `nodes` or ids are duplicated.
pub fn order_nodes(nodes: &[Node], edges: &[Edge], entry: u32, params: &ExtTspParams) -> Vec<u32> {
    order_nodes_traced(
        nodes,
        edges,
        entry,
        params,
        &propeller_telemetry::Telemetry::disabled(),
    )
}

/// [`order_nodes`], recording an `exttsp.merges` counter and an
/// `exttsp.merge_gain` histogram (the score gain of every chain merge
/// the optimizer commits) into `tel`.
///
/// # Panics
///
/// Same as [`order_nodes`].
pub fn order_nodes_traced(
    nodes: &[Node],
    edges: &[Edge],
    entry: u32,
    params: &ExtTspParams,
    tel: &propeller_telemetry::Telemetry,
) -> Vec<u32> {
    order_nodes_logged(nodes, edges, entry, params, tel, None)
}

/// [`order_nodes_traced`], additionally filling `log` (when given) with
/// the committed merges and the final-vs-input layout scores.
///
/// # Panics
///
/// Same as [`order_nodes`].
pub fn order_nodes_logged(
    nodes: &[Node],
    edges: &[Edge],
    entry: u32,
    params: &ExtTspParams,
    tel: &propeller_telemetry::Telemetry,
    mut log: Option<&mut MergeLog>,
) -> Vec<u32> {
    assert!(!nodes.is_empty(), "need at least one node");
    let mut dense: HashMap<u32, usize> = HashMap::with_capacity(nodes.len());
    for (i, n) in nodes.iter().enumerate() {
        let prev = dense.insert(n.id, i);
        assert!(prev.is_none(), "duplicate node id {}", n.id);
    }
    let entry_idx = *dense.get(&entry).expect("entry must be a node");

    let mut incident = vec![Vec::new(); nodes.len()];
    for e in edges {
        let (Some(&s), Some(&d)) = (dense.get(&e.src), dense.get(&e.dst)) else {
            continue;
        };
        incident[s].push((d, e.weight, true));
        if s != d {
            incident[d].push((s, e.weight, false));
        }
    }

    let mut opt = Optimizer {
        params,
        sizes: nodes.iter().map(|n| n.size as u64).collect(),
        incident,
        chains: (0..nodes.len())
            .map(|i| {
                Some(Chain {
                    blocks: vec![i],
                    version: 0,
                })
            })
            .collect(),
        chain_of: (0..nodes.len()).collect(),
        neighbors: vec![HashSet::new(); nodes.len()],
        entry_idx,
    };
    for e in edges {
        let (Some(&s), Some(&d)) = (dense.get(&e.src), dense.get(&e.dst)) else {
            continue;
        };
        if s != d {
            opt.neighbors[s].insert(d);
            opt.neighbors[d].insert(s);
        }
    }

    let mut heap = BinaryHeap::new();
    let push_pair = |opt: &Optimizer, heap: &mut BinaryHeap<HeapEntry>, x: usize, y: usize| {
        if let Some((gain, split)) = opt.best_merge(x, y) {
            heap.push(HeapEntry {
                gain,
                x,
                y,
                vx: opt.chain(x).version,
                vy: opt.chain(y).version,
                split,
            });
        }
    };
    // Pushes a batch of evaluated pairs in submission order — the heap
    // sees the exact sequence the serial code would have pushed, so the
    // pop order (and every tie-break) is independent of `params.jobs`.
    let push_evaluated = |opt: &Optimizer,
                          heap: &mut BinaryHeap<HeapEntry>,
                          ordered: &[(usize, usize)],
                          evals: Vec<Option<(f64, usize)>>| {
        for (&(x, y), ev) in ordered.iter().zip(evals) {
            if let Some((gain, split)) = ev {
                heap.push(HeapEntry {
                    gain,
                    x,
                    y,
                    vx: opt.chain(x).version,
                    vy: opt.chain(y).version,
                    split,
                });
            }
        }
    };
    let detail_on = log.as_deref().is_some_and(|l| l.detail.is_some());
    let mut evaluations = 0u64;
    let mut pairs: Vec<(usize, usize)> = (0..nodes.len())
        .flat_map(|x| opt.neighbors[x].iter().map(move |&y| (x, y)))
        .filter(|&(x, y)| x < y)
        .collect();
    pairs.sort_unstable();
    let ordered: Vec<(usize, usize)> = pairs
        .into_iter()
        .flat_map(|(x, y)| [(x, y), (y, x)])
        .collect();
    evaluations += ordered.len() as u64;
    let evals = eval_pairs(&opt, &ordered, params.jobs);
    push_evaluated(&opt, &mut heap, &ordered, evals);

    let mut merges = 0u64;
    while let Some(entry) = heap.pop() {
        if entry.gain <= 1e-9 {
            break;
        }
        let (x, y) = (entry.x, entry.y);
        if opt.chains[x].is_none() || opt.chains[y].is_none() {
            continue;
        }
        if opt.chain(x).version != entry.vx || opt.chain(y).version != entry.vy {
            // Stale: recompute and requeue.
            evaluations += 1;
            push_pair(&opt, &mut heap, x, y);
            continue;
        }
        // The rejected alternative must be read before `apply` bumps
        // chain versions (a read-only heap scan, so the merge sequence
        // is identical whether or not detail is armed).
        let rejected = if detail_on {
            best_queued_alternative(&opt, &heap)
        } else {
            None
        };
        opt.apply(x, y, entry.split);
        merges += 1;
        if tel.is_enabled() {
            tel.observe("exttsp.merge_gain", entry.gain);
        }
        if let Some(log) = log.as_deref_mut() {
            log.merges.push(MergeRecord {
                gain: entry.gain,
                split: entry.split != usize::MAX,
            });
            if let Some(detail) = log.detail.as_mut() {
                detail.steps.push(MergeStep {
                    x,
                    y,
                    gain: entry.gain,
                    split: (entry.split != usize::MAX).then_some(entry.split),
                    rejected,
                });
            }
        }
        let mut affected: Vec<usize> = opt.neighbors[x].iter().copied().collect();
        affected.sort_unstable();
        let ordered: Vec<(usize, usize)> = affected
            .into_iter()
            .flat_map(|n| [(x, n), (n, x)])
            .collect();
        evaluations += ordered.len() as u64;
        let evals = eval_pairs(&opt, &ordered, params.jobs);
        push_evaluated(&opt, &mut heap, &ordered, evals);
    }
    if let Some(detail) = log.as_deref_mut().and_then(|l| l.detail.as_mut()) {
        detail.evaluations = evaluations;
    }

    if tel.is_enabled() && merges > 0 {
        tel.counter_add("exttsp.merges", merges);
    }

    // Assemble: entry chain first, then remaining chains by density.
    let mut rest: Vec<usize> = Vec::new();
    let entry_chain = opt.chain_of[entry_idx];
    for (ci, c) in opt.chains.iter().enumerate() {
        if c.is_some() && ci != entry_chain {
            rest.push(ci);
        }
    }
    let density = |ci: usize| -> f64 {
        let c = opt.chain(ci);
        let count: u64 = c.blocks.iter().map(|&b| nodes[b].count).sum();
        let size: u64 = c.blocks.iter().map(|&b| opt.sizes[b]).sum::<u64>().max(1);
        count as f64 / size as f64
    };
    rest.sort_by(|&a, &b| {
        density(b)
            .total_cmp(&density(a))
            .then_with(|| opt.chain(a).blocks[0].cmp(&opt.chain(b).blocks[0]))
    });

    let mut order = Vec::with_capacity(nodes.len());
    for &b in &opt.chain(entry_chain).blocks {
        order.push(nodes[b].id);
    }
    for ci in rest {
        for &b in &opt.chain(ci).blocks {
            order.push(nodes[b].id);
        }
    }

    // Greedy chain merging can lock in early merges and end up scoring
    // below the incoming (original) order on loop-dense graphs. Never
    // return a layout worse than the one the compiler already had.
    let input_order: Vec<u32> = nodes.iter().map(|n| n.id).collect();
    let merged_score = score_layout(&order, nodes, edges, params);
    let input_score = score_layout(&input_order, nodes, edges, params);
    let fall_back = input_order.first() == Some(&entry) && merged_score + 1e-9 < input_score;
    if let Some(log) = log {
        log.input_score = input_score;
        log.final_score = if fall_back { input_score } else { merged_score };
        log.used_input_order = fall_back;
    }
    if fall_back {
        return input_order;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(sizes: &[(u32, u32, u64)]) -> Vec<Node> {
        sizes
            .iter()
            .map(|&(id, size, count)| Node { id, size, count })
            .collect()
    }

    fn edge(src: u32, dst: u32, weight: u64) -> Edge {
        Edge { src, dst, weight }
    }

    #[test]
    fn hot_path_becomes_fallthrough_chain() {
        // 0 -> 2 hot, 0 -> 1 cold, both -> 3. Original order 0,1,2,3.
        let ns = nodes(&[(0, 20, 100), (1, 20, 5), (2, 20, 95), (3, 20, 100)]);
        let es = vec![
            edge(0, 1, 5),
            edge(0, 2, 95),
            edge(1, 3, 5),
            edge(2, 3, 95),
        ];
        let order = order_nodes(&ns, &es, 0, &ExtTspParams::default());
        assert_eq!(order[0], 0);
        // 2 must directly follow 0; 3 follows 2.
        let p2 = order.iter().position(|&b| b == 2).unwrap();
        let p3 = order.iter().position(|&b| b == 3).unwrap();
        assert_eq!(p2, 1, "hot successor adjacent: {order:?}");
        assert_eq!(p3, 2, "chain continues: {order:?}");
        // Score is at least the original order's.
        let base = score_layout(&[0, 1, 2, 3], &ns, &es, &ExtTspParams::default());
        let opt = score_layout(&order, &ns, &es, &ExtTspParams::default());
        assert!(opt >= base);
    }

    #[test]
    fn entry_stays_first_even_with_hot_incoming_edges() {
        // A loop back edge 2 -> 0 would love to put 2 before 0.
        let ns = nodes(&[(0, 10, 100), (1, 10, 100), (2, 10, 100)]);
        let es = vec![edge(0, 1, 100), edge(1, 2, 100), edge(2, 0, 99)];
        let order = order_nodes(&ns, &es, 0, &ExtTspParams::default());
        assert_eq!(order[0], 0, "{order:?}");
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn isolated_nodes_appended_by_density() {
        let ns = nodes(&[(0, 10, 10), (7, 10, 0), (8, 10, 500)]);
        let es = vec![];
        let order = order_nodes(&ns, &es, 0, &ExtTspParams::default());
        assert_eq!(order, vec![0, 8, 7]);
    }

    #[test]
    fn split_merge_beats_concat_for_sandwiched_callout() {
        // Chain 0-1 exists (hot). Node 2 is hottest between 0 and 1:
        // 0->2 (100), 2->1 (100), 0->1 (10). Best layout: 0,2,1 which
        // needs splitting the (0,1) chain if it formed first.
        let ns = nodes(&[(0, 10, 110), (1, 10, 110), (2, 10, 100)]);
        let es = vec![edge(0, 1, 30), edge(0, 2, 100), edge(2, 1, 100)];
        let order = order_nodes(&ns, &es, 0, &ExtTspParams::default());
        assert_eq!(order, vec![0, 2, 1]);
    }

    #[test]
    fn score_layout_prefers_fallthrough() {
        let ns = nodes(&[(0, 10, 1), (1, 10, 1)]);
        let es = vec![edge(0, 1, 10)];
        let p = ExtTspParams::default();
        let adjacent = score_layout(&[0, 1], &ns, &es, &p);
        let reversed = score_layout(&[1, 0], &ns, &es, &p);
        assert!((adjacent - 10.0).abs() < 1e-9);
        // Backward jump of distance 20 scores 0.1 * (1 - 20/640) * 10.
        let expected = 10.0 * 0.1 * (1.0 - 20.0 / 640.0);
        assert!((reversed - expected).abs() < 1e-9);
        assert!(adjacent > reversed);
    }

    #[test]
    fn forward_window_cutoff() {
        let ns = nodes(&[(0, 10, 1), (1, 2000, 1), (2, 10, 1)]);
        let es = vec![edge(0, 2, 10)];
        let p = ExtTspParams::default();
        // 0 .. 1(2000 bytes) .. 2: forward distance 2000 > 1024 -> 0.
        assert_eq!(score_layout(&[0, 1, 2], &ns, &es, &p), 0.0);
    }

    #[test]
    fn deterministic_output() {
        let ns: Vec<Node> = (0..30)
            .map(|i| Node {
                id: i,
                size: 16 + (i % 7),
                count: (i as u64 * 37) % 100,
            })
            .collect();
        let es: Vec<Edge> = (0..29)
            .map(|i| edge(i, i + 1, ((i as u64 * 13) % 50) + 1))
            .chain((0..10).map(|i| edge(i * 2, (i * 3 + 5) % 30, 40)))
            .collect();
        let a = order_nodes(&ns, &es, 0, &ExtTspParams::default());
        let b = order_nodes(&ns, &es, 0, &ExtTspParams::default());
        assert_eq!(a, b);
        assert_eq!(a.len(), 30);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..30).collect::<Vec<_>>(), "permutation");
    }

    #[test]
    fn merge_log_records_commits_and_scores() {
        let ns = nodes(&[(0, 20, 100), (1, 20, 5), (2, 20, 95), (3, 20, 100)]);
        let es = vec![
            edge(0, 1, 5),
            edge(0, 2, 95),
            edge(1, 3, 5),
            edge(2, 3, 95),
        ];
        let p = ExtTspParams::default();
        let mut log = MergeLog::default();
        let order = order_nodes_logged(
            &ns,
            &es,
            0,
            &p,
            &propeller_telemetry::Telemetry::disabled(),
            Some(&mut log),
        );
        assert!(!log.merges.is_empty());
        assert!(log.merges.iter().all(|m| m.gain > 0.0));
        assert!((log.final_score - score_layout(&order, &ns, &es, &p)).abs() < 1e-9);
        assert!(log.final_score >= log.input_score - 1e-9);
        assert!(!log.used_input_order);
    }

    #[test]
    #[should_panic(expected = "entry must be a node")]
    fn unknown_entry_panics() {
        order_nodes(&nodes(&[(0, 1, 0)]), &[], 9, &ExtTspParams::default());
    }

    #[test]
    fn equal_gain_candidates_pop_by_stable_key_not_insertion_order() {
        // The tie-break audit: equal-gain heap entries must order by
        // the stable (x, y, split) key — smaller ids first — no matter
        // what order they were pushed in. Provenance replay and the
        // --jobs byte-identity gates depend on this.
        let entry = |x: usize, y: usize, split: usize| HeapEntry {
            gain: 1.0,
            x,
            y,
            vx: 0,
            vy: 0,
            split,
        };
        let a = entry(0, 1, usize::MAX);
        let b = entry(0, 2, usize::MAX);
        let c = entry(1, 0, usize::MAX);
        let d = entry(0, 1, 1);
        // Pairwise: smaller x wins, then smaller y, then smaller split.
        assert_eq!(a.cmp(&c), Ordering::Greater, "smaller x pops first");
        assert_eq!(a.cmp(&b), Ordering::Greater, "smaller y pops first");
        assert_eq!(d.cmp(&a), Ordering::Greater, "smaller split pops first");
        for perm in [
            vec![&a, &b, &c, &d],
            vec![&d, &c, &b, &a],
            vec![&b, &d, &a, &c],
        ] {
            let mut heap = BinaryHeap::new();
            for e in perm {
                heap.push(*e);
            }
            let popped: Vec<(usize, usize, usize)> = std::iter::from_fn(|| heap.pop())
                .map(|e| (e.x, e.y, e.split))
                .collect();
            assert_eq!(
                popped,
                vec![
                    (0, 1, 1),
                    (0, 1, usize::MAX),
                    (0, 2, usize::MAX),
                    (1, 0, usize::MAX)
                ],
                "pop order must be the stable key order"
            );
        }
    }

    #[test]
    fn equal_gain_merge_commits_smallest_chain_ids() {
        // Two disjoint, perfectly symmetric hot pairs: (1,2) and (3,4)
        // have identical merge gains, so the tie-break alone decides
        // which commits first — it must be the smaller chain ids.
        let ns = nodes(&[(0, 10, 1), (1, 10, 50), (2, 10, 50), (3, 10, 50), (4, 10, 50)]);
        let es = vec![edge(1, 2, 40), edge(3, 4, 40), edge(0, 1, 1), edge(0, 3, 1)];
        let mut log = MergeLog::with_detail();
        order_nodes_logged(
            &ns,
            &es,
            0,
            &ExtTspParams::default(),
            &propeller_telemetry::Telemetry::disabled(),
            Some(&mut log),
        );
        let steps = &log.detail.as_ref().unwrap().steps;
        let first_hot = steps
            .iter()
            .find(|s| (s.gain - 40.0).abs() < 1e-6)
            .expect("a full-weight fallthrough merge committed");
        assert_eq!((first_hot.x, first_hot.y), (1, 2), "{steps:?}");
    }

    #[test]
    fn detail_arming_never_changes_the_layout_or_merge_sequence() {
        let ns: Vec<Node> = (0..40)
            .map(|i| Node {
                id: i,
                size: 14 + (i % 5),
                count: (i as u64 * 29) % 90,
            })
            .collect();
        let es: Vec<Edge> = (0..39)
            .map(|i| edge(i, i + 1, ((i as u64 * 23) % 70) + 1))
            .chain((0..15).map(|i| edge((i * 7) % 40, (i * 3 + 2) % 40, 30)))
            .collect();
        let p = ExtTspParams::default();
        let tel = propeller_telemetry::Telemetry::disabled();
        let mut plain = MergeLog::default();
        let a = order_nodes_logged(&ns, &es, 0, &p, &tel, Some(&mut plain));
        let mut armed = MergeLog::with_detail();
        let b = order_nodes_logged(&ns, &es, 0, &p, &tel, Some(&mut armed));
        assert_eq!(a, b, "arming detail must not perturb the layout");
        assert_eq!(plain.merges, armed.merges);
        let detail = armed.detail.unwrap();
        assert_eq!(detail.steps.len(), armed.merges.len());
        assert!(detail.evaluations >= detail.steps.len() as u64);
        // Each recorded step matches its terse record.
        for (s, m) in detail.steps.iter().zip(&armed.merges) {
            assert_eq!(s.gain, m.gain);
            assert_eq!(s.split.is_some(), m.split);
        }
        // At least one early step had a competing live candidate.
        assert!(detail.steps.iter().any(|s| s.rejected.is_some()));
        // A rejected alternative never beats the winner.
        for s in &detail.steps {
            if let Some(r) = &s.rejected {
                assert!(r.gain <= s.gain + 1e-9, "{s:?}");
            }
        }
    }

    #[test]
    fn replaying_recorded_steps_reconstructs_the_exact_order() {
        // Hot edges stride by two, so the input order scores poorly and
        // the optimizer's merged layout (two fall-through chains)
        // always wins — no input-order fallback.
        let ns: Vec<Node> = (0..20)
            .map(|i| Node {
                id: i,
                size: 16,
                count: 10 + (i as u64 % 4),
            })
            .collect();
        let es: Vec<Edge> = (0..18)
            .map(|i| edge(i, i + 2, 100 + (i as u64 % 3)))
            .chain([edge(0, 1, 1)])
            .collect();
        let mut log = MergeLog::with_detail();
        let order = order_nodes_logged(
            &ns,
            &es,
            0,
            &ExtTspParams::default(),
            &propeller_telemetry::Telemetry::disabled(),
            Some(&mut log),
        );
        assert!(!log.used_input_order);
        let replayed =
            replay_merges(&ns, 0, &log.detail.as_ref().unwrap().steps).expect("replay");
        assert_eq!(replayed, order);
        let mut sorted = replayed.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>(), "permutation");
    }

    #[test]
    fn replay_rejects_malformed_steps() {
        let ns = nodes(&[(0, 10, 1), (1, 10, 1)]);
        let dead = MergeStep {
            x: 0,
            y: 1,
            gain: 1.0,
            split: None,
            rejected: None,
        };
        // Absorbing the same chain twice is impossible.
        assert!(replay_merges(&ns, 0, &[dead, dead]).is_err());
        let oob = MergeStep {
            x: 0,
            y: 5,
            gain: 1.0,
            split: None,
            rejected: None,
        };
        assert!(replay_merges(&ns, 0, &[oob]).is_err());
        let bad_split = MergeStep {
            x: 0,
            y: 1,
            gain: 1.0,
            split: Some(9),
            rejected: None,
        };
        assert!(replay_merges(&ns, 0, &[bad_split]).is_err());
        assert!(replay_merges(&ns, 9, &[]).is_err(), "unknown entry");
    }

    #[test]
    fn parallel_gain_evaluation_is_bit_identical_to_serial() {
        // A dense-enough graph that the initial batch and the
        // post-merge re-evaluations both clear the parallel threshold.
        let ns: Vec<Node> = (0..60)
            .map(|i| Node {
                id: i,
                size: 12 + (i % 9),
                count: (i as u64 * 41) % 120,
            })
            .collect();
        let es: Vec<Edge> = (0..59)
            .map(|i| edge(i, i + 1, ((i as u64 * 17) % 60) + 1))
            .chain((0..25).map(|i| edge((i * 5) % 60, (i * 7 + 3) % 60, 35)))
            .chain((0..12).map(|i| edge((i * 11 + 1) % 60, (i * 2) % 60, 50)))
            .collect();
        let serial = ExtTspParams::default();
        let mut log1 = MergeLog::default();
        let a = order_nodes_logged(
            &ns,
            &es,
            0,
            &serial,
            &propeller_telemetry::Telemetry::disabled(),
            Some(&mut log1),
        );
        for jobs in [2, 3, 8] {
            let parallel = ExtTspParams { jobs, ..serial };
            let mut log2 = MergeLog::default();
            let b = order_nodes_logged(
                &ns,
                &es,
                0,
                &parallel,
                &propeller_telemetry::Telemetry::disabled(),
                Some(&mut log2),
            );
            assert_eq!(a, b, "layout diverged at jobs={jobs}");
            assert_eq!(log1, log2, "merge log diverged at jobs={jobs}");
        }
    }
}
