//! Full Phase 2 -> 3 -> 4 pipeline test: profile a metadata binary,
//! run WPA, apply its directives, and verify the optimized binary wins.

use propeller_codegen::{codegen_module, CodegenOptions};
use propeller_ir::{BlockId, FunctionBuilder, FunctionId, Inst, Program, ProgramBuilder, Terminator};
use propeller_linker::{link, LinkInput, LinkOptions, LinkedBinary};
use propeller_profile::SamplingConfig;
use propeller_sim::{simulate, ProgramImage, SimOptions, UarchConfig, Workload};
use propeller_wpa::{run_wpa, GlobalOrder, IntraOrder, WpaOptions};

/// A program with layout headroom: workers have a rarely-taken cold
/// block sitting between the entry and the hot tail.
fn program(n_workers: usize) -> (Program, FunctionId) {
    let mut pb = ProgramBuilder::new();
    let m = pb.add_module("app.cc");
    let mut workers = Vec::new();
    for i in 0..n_workers {
        let mut f = FunctionBuilder::new(format!("worker{i}"));
        f.add_block(
            vec![Inst::Alu; 5],
            Terminator::CondBr {
                taken: BlockId(1),
                fallthrough: BlockId(2),
                prob_taken: 0.01,
            },
        );
        f.add_block(vec![Inst::Store; 300], Terminator::Jump(BlockId(3)));
        f.add_block(vec![Inst::Alu; 8], Terminator::Jump(BlockId(3)));
        f.add_block(vec![Inst::Alu], Terminator::Ret);
        workers.push(pb.add_function(m, f));
    }
    let mut driver = FunctionBuilder::new("driver");
    driver.add_block(
        workers.iter().map(|w| Inst::Call(*w)).collect(),
        Terminator::CondBr {
            taken: BlockId(0),
            fallthrough: BlockId(1),
            prob_taken: 0.99,
        },
    );
    driver.add_block(Vec::new(), Terminator::Ret);
    let driver = pb.add_function(m, driver);
    (pb.finish().unwrap(), driver)
}

fn link_with(p: &Program, cg: &CodegenOptions, lk: &LinkOptions) -> LinkedBinary {
    let inputs: Vec<LinkInput> = p
        .modules()
        .iter()
        .map(|m| {
            let r = codegen_module(m, p, cg).unwrap();
            LinkInput::new(r.object, r.debug_layout)
        })
        .collect();
    link(&inputs, lk).unwrap()
}

fn profile_binary(
    p: &Program,
    bin: &LinkedBinary,
    driver: FunctionId,
    budget: u64,
) -> propeller_profile::HardwareProfile {
    let image = ProgramImage::build(p, &bin.layout).unwrap();
    let r = simulate(
        &image,
        &Workload::new(vec![(driver, 1.0)], budget),
        &UarchConfig::default(),
        &SimOptions {
            sampling: Some(SamplingConfig { period: 53 }),
            heatmap: None,
            collect_call_misses: false,
            attribution: false,
        },
    );
    r.profile.unwrap()
}

#[test]
fn end_to_end_propeller_pipeline_improves_layout() {
    let (p, driver) = program(64);

    // Phase 2: metadata (labels) build. Also the performance baseline
    // (labels mode does not change code layout).
    let pm = link_with(&p, &CodegenOptions::with_labels(), &LinkOptions::default());

    // Phase 3: profile + WPA.
    let profile = profile_binary(&p, &pm, driver, 150_000);
    let wpa = run_wpa(&p, &pm, &profile, &WpaOptions::default());

    // Every worker plus the driver should be seen as hot.
    assert_eq!(wpa.stats.functions_seen, 65);
    assert!(wpa.stats.hot_functions >= 60, "{:?}", wpa.stats);
    assert!(wpa.cluster_map.len() >= 60);
    assert!(wpa.stats.modeled_peak_memory > 0);

    // Cold blocks (bb1 of each worker) must have landed in .cold
    // clusters listed after all primaries.
    let names = wpa.symbol_order.names();
    let first_cold = names.iter().position(|n| n.ends_with(".cold"));
    let last_hot = names.iter().rposition(|n| !n.ends_with(".cold"));
    let (Some(fc), Some(lh)) = (first_cold, last_hot) else {
        panic!("expected both hot and cold symbols: {names:?}");
    };
    assert!(fc > lh, "cold clusters after hot: {names:?}");

    // Phase 4: regenerate with clusters and relink with the ordering.
    let po = link_with(
        &p,
        &CodegenOptions::with_clusters(wpa.cluster_map.clone()),
        &LinkOptions {
            symbol_order: Some(wpa.symbol_order.clone()),
            relax: true,
            drop_cold_bb_addr_map: true,
            ..LinkOptions::default()
        },
    );

    // Compare performance.
    let w = Workload::new(vec![(driver, 1.0)], 200_000);
    let base_img = ProgramImage::build(&p, &pm.layout).unwrap();
    let opt_img = ProgramImage::build(&p, &po.layout).unwrap();
    let base = simulate(&base_img, &w, &UarchConfig::default(), &SimOptions::default()).counters;
    let opt = simulate(&opt_img, &w, &UarchConfig::default(), &SimOptions::default()).counters;

    assert!(
        opt.taken_branches < base.taken_branches,
        "taken branches should drop: {} -> {}",
        base.taken_branches,
        opt.taken_branches
    );
    let speedup = opt.speedup_pct_over(&base);
    assert!(speedup > 0.5, "expected a real speedup, got {speedup:.2}%");

    // The optimized binary stays close to baseline size (±10%), per
    // §5.3 (~1% in the paper; our ISA is coarser).
    let base_text = pm.stats.text_bytes as f64;
    let opt_text = po.stats.text_bytes as f64;
    assert!(
        (opt_text - base_text).abs() / base_text < 0.10,
        "text {base_text} -> {opt_text}"
    );
    // And relaxation actually fired.
    assert!(po.stats.deleted_jumps + po.stats.shrunk_branches > 0);
}

#[test]
fn exttsp_beats_original_intra_order() {
    let (p, driver) = program(48);
    let pm = link_with(&p, &CodegenOptions::with_labels(), &LinkOptions::default());
    let profile = profile_binary(&p, &pm, driver, 120_000);

    let run = |intra: IntraOrder| {
        let wpa = run_wpa(
            &p,
            &pm,
            &profile,
            &WpaOptions {
                intra,
                ..WpaOptions::default()
            },
        );
        let po = link_with(
            &p,
            &CodegenOptions::with_clusters(wpa.cluster_map),
            &LinkOptions {
                symbol_order: Some(wpa.symbol_order),
                relax: true,
                ..LinkOptions::default()
            },
        );
        let img = ProgramImage::build(&p, &po.layout).unwrap();
        simulate(
            &img,
            &Workload::new(vec![(driver, 1.0)], 150_000),
            &UarchConfig::default(),
            &SimOptions::default(),
        )
        .counters
    };
    let original = run(IntraOrder::Original);
    let exttsp = run(IntraOrder::ExtTsp);
    assert!(
        exttsp.taken_branches <= original.taken_branches,
        "ext-tsp should not increase taken branches: {} vs {}",
        exttsp.taken_branches,
        original.taken_branches
    );
}

#[test]
fn interprocedural_mode_emits_numbered_clusters() {
    let (p, driver) = program(32);
    let pm = link_with(&p, &CodegenOptions::with_labels(), &LinkOptions::default());
    let profile = profile_binary(&p, &pm, driver, 100_000);
    let wpa = run_wpa(&p, &pm, &profile, &WpaOptions::interprocedural());
    // Some functions should have been cut into numbered sections.
    let numbered = wpa
        .symbol_order
        .names()
        .iter()
        .filter(|n| n.chars().rev().take_while(|c| c.is_ascii_digit()).count() > 0
            && n.contains('.')
            && !n.ends_with(".cold"))
        .count();
    assert!(numbered > 0, "expected numbered cluster symbols");
    // And the result still links + runs.
    let po = link_with(
        &p,
        &CodegenOptions::with_clusters(wpa.cluster_map),
        &LinkOptions {
            symbol_order: Some(wpa.symbol_order),
            relax: true,
            ..LinkOptions::default()
        },
    );
    let img = ProgramImage::build(&p, &po.layout).unwrap();
    let r = simulate(
        &img,
        &Workload::new(vec![(driver, 1.0)], 50_000),
        &UarchConfig::default(),
        &SimOptions::default(),
    );
    assert!(r.counters.insts > 0);
}

#[test]
fn global_order_modes_differ() {
    let (p, driver) = program(16);
    let pm = link_with(&p, &CodegenOptions::with_labels(), &LinkOptions::default());
    let profile = profile_binary(&p, &pm, driver, 60_000);
    let hot_first = run_wpa(
        &p,
        &pm,
        &profile,
        &WpaOptions {
            global: GlobalOrder::HotFirst,
            ..WpaOptions::default()
        },
    );
    let input_order = run_wpa(
        &p,
        &pm,
        &profile,
        &WpaOptions {
            global: GlobalOrder::InputOrder,
            ..WpaOptions::default()
        },
    );
    assert_eq!(
        hot_first.symbol_order.len(),
        input_order.symbol_order.len()
    );
    // Same set of symbols regardless of mode.
    let mut a = hot_first.symbol_order.names().to_vec();
    let mut b = input_order.symbol_order.names().to_vec();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}
