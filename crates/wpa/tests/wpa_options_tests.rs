//! Tests for WPA's thresholding and cold-source options.

use propeller_codegen::{codegen_module, CodegenOptions};
use propeller_ir::{BlockId, FunctionBuilder, FunctionId, Inst, Program, ProgramBuilder, Terminator};
use propeller_linker::{link, LinkInput, LinkOptions, LinkedBinary};
use propeller_profile::SamplingConfig;
use propeller_sim::{simulate, ProgramImage, SimOptions, UarchConfig, Workload};
use propeller_wpa::{run_wpa, ColdSource, WpaOptions};

/// `hot_loop` runs constantly; `rare` runs once in a while; both call
/// nothing. PGO frequencies mark `rare`'s tail block hot even though
/// the workload almost never reaches it (a stale-profile stand-in).
fn fixture() -> (Program, FunctionId) {
    let mut pb = ProgramBuilder::new();
    let m = pb.add_module("m.cc");

    let mut rare = FunctionBuilder::new("rare");
    let b0 = rare.add_block(vec![Inst::Alu; 4], Terminator::Ret);
    rare.set_block_freq(b0, 1);
    let rare_id = pb.add_function(m, rare);

    let mut hot = FunctionBuilder::new("hot_loop");
    let head = hot.add_block(
        vec![Inst::Alu; 3],
        Terminator::CondBr {
            taken: BlockId(0),
            fallthrough: BlockId(1),
            prob_taken: 0.98,
        },
    );
    let tail = hot.add_block(vec![Inst::Call(rare_id)], Terminator::Ret);
    hot.set_block_freq(head, 50_000);
    hot.set_block_freq(tail, 1_000);
    let hot_id = pb.add_function(m, hot);

    (pb.finish().unwrap(), hot_id)
}

fn pm_and_profile(
    p: &Program,
    entry: FunctionId,
) -> (LinkedBinary, propeller_profile::HardwareProfile) {
    let inputs: Vec<LinkInput> = p
        .modules()
        .iter()
        .map(|m| {
            let r = codegen_module(m, p, &CodegenOptions::with_labels()).unwrap();
            LinkInput::new(r.object, r.debug_layout)
        })
        .collect();
    let pm = link(&inputs, &LinkOptions::default()).unwrap();
    let img = ProgramImage::build(p, &pm.layout).unwrap();
    let profile = simulate(
        &img,
        &Workload::new(vec![(entry, 1.0)], 60_000),
        &UarchConfig::default(),
        &SimOptions {
            sampling: Some(SamplingConfig { period: 37 }),
            heatmap: None,
            collect_call_misses: false,
            attribution: false,
        },
    )
    .profile
    .unwrap();
    (pm, profile)
}

#[test]
fn min_function_samples_gates_directives() {
    let (p, entry) = fixture();
    let (pm, profile) = pm_and_profile(&p, entry);
    let permissive = run_wpa(
        &p,
        &pm,
        &profile,
        &WpaOptions {
            min_function_samples: 1,
            ..WpaOptions::default()
        },
    );
    let strict = run_wpa(
        &p,
        &pm,
        &profile,
        &WpaOptions {
            min_function_samples: u64::MAX / 2,
            ..WpaOptions::default()
        },
    );
    assert!(permissive.stats.hot_functions >= 1);
    assert_eq!(strict.stats.hot_functions, 0, "threshold excludes all");
    assert!(strict.cluster_map.is_empty());
    assert!(strict.symbol_order.is_empty());
}

#[test]
fn hot_threshold_moves_blocks_to_cold() {
    let (p, entry) = fixture();
    let (pm, profile) = pm_and_profile(&p, entry);
    let lenient = run_wpa(
        &p,
        &pm,
        &profile,
        &WpaOptions {
            hot_threshold: 1,
            ..WpaOptions::default()
        },
    );
    let harsh = run_wpa(
        &p,
        &pm,
        &profile,
        &WpaOptions {
            hot_threshold: 1_000_000,
            ..WpaOptions::default()
        },
    );
    assert!(
        harsh.stats.hot_blocks <= lenient.stats.hot_blocks,
        "higher threshold cannot classify more blocks hot"
    );
    // With an absurd threshold only forced entries stay hot.
    assert_eq!(harsh.stats.hot_blocks, harsh.stats.hot_functions);
}

#[test]
fn pgo_cold_source_uses_ir_frequencies() {
    let (p, entry) = fixture();
    let (pm, profile) = pm_and_profile(&p, entry);
    let pgo = run_wpa(
        &p,
        &pm,
        &profile,
        &WpaOptions {
            cold_source: ColdSource::PgoFrequencies,
            ..WpaOptions::default()
        },
    );
    // Every block of the fixture has nonzero PGO frequency, so nothing
    // is split cold: no `.cold` symbols in the ordering.
    assert!(
        pgo.symbol_order.names().iter().all(|n| !n.ends_with(".cold")),
        "{:?}",
        pgo.symbol_order.names()
    );
}
