//! # The fleet loop: a continuous profile lifecycle across releases
//!
//! The paper's production story (§2, §5) is not one relink. Thousands
//! of machines serve traffic; LBR samples stream in continuously; and
//! every release is relinked against profiles collected on the
//! *previous* binary. This crate makes that loop a deterministic,
//! measurable simulation:
//!
//! 1. **Evolve** — release *k* is a seeded mutation of release *k−1*
//!    ([`propeller_synth::evolve`]): functions added/deleted, blocks
//!    resized, branch behavior drifting at a tunable rate;
//! 2. **Collect** — machines with unequal traffic shares each run the
//!    workload on release *k*'s metadata binary under their own seed;
//! 3. **Merge** — per-machine profiles (current and up to
//!    [`FleetOptions::history_window`] past releases, translated across
//!    binaries) merge weighted by sample volume with age decay
//!    ([`propeller_profile::merge_profiles`]);
//! 4. **Decide** — the stale-profile skew score against the fresh
//!    distribution drives relink-vs-reuse
//!    ([`propeller_doctor::RelinkPolicy`]);
//! 5. **Relink** — the chosen Phase 3/4 runs against a *shared* action
//!    cache, so only drifted-hot objects regenerate release over
//!    release;
//! 6. **Ledger** — each release records achieved speedup vs an oracle
//!    fresh-profile relink, the skew, the decision, and the per-release
//!    cache hit rate: the speedup-vs-staleness curve the paper implies
//!    but never plots.
//!
//! Everything is a pure function of `(spec, scale, options)`:
//! [`FleetReport::to_json_string`] is bit-identical across runs and
//! worker counts.

mod translate;

pub use translate::{translate_profile, TranslationStats};

use propeller::{BuildCaches, DegradationLedger, FaultPlan, Propeller, PropellerOptions};
use propeller_doctor::{diff_docs, layout_skew_agg, ProvenanceDoc, RelinkDecision, RelinkPolicy};
use propeller_linker::LinkedBinary;
use propeller_profile::{
    merge_profiles, merge_profiles_logged, AggregatedProfile, HardwareProfile, MergeOptions,
    MergeProvenance, ProfileSource,
};
use propeller_sim::{collect_profile, ProgramImage, Workload};
use propeller_synth::{evolve, generate, BenchmarkSpec, DriftParams, GenParams};
use propeller_telemetry::{JsonValue, TimeSeries};
use propeller_wpa::AddressMapper;
use std::fmt::Write as _;
use std::sync::Arc;

/// Fleet-loop configuration.
#[derive(Clone, PartialEq, Debug)]
pub struct FleetOptions {
    /// Releases to simulate (release 0 bootstraps on a fresh profile).
    pub releases: u32,
    /// Machines collecting samples each release, with Zipf-distributed
    /// traffic shares (machine `m` serves a `1/(m+1)` share).
    pub machines: usize,
    /// Release-over-release churn intensity in `[0, 1]`; `0.0` is the
    /// control arm (every release is the identical program).
    pub drift: f64,
    /// Master seed: generation, workloads, machine collection and
    /// mutation all derive from it.
    pub seed: u64,
    /// Relink-vs-reuse threshold on the skew score.
    pub policy: RelinkPolicy,
    /// How many past releases' profiles stay in the merge window.
    pub history_window: u32,
    /// Total profiling block budget per release, split across machines
    /// by traffic share.
    pub profile_budget: u64,
    /// Block budget for the speedup evaluation of each release.
    pub eval_budget: u64,
    /// Worker threads for the underlying pipelines (bit-identical
    /// output at every value).
    pub jobs: usize,
    /// Age decay applied when merging historical profiles.
    pub decay: MergeOptions,
    /// Arm layout provenance: each release collects a full decision
    /// record and its ledger row cites the top placement divergences
    /// from the previous release. Off by default; arming never changes
    /// any shipped layout or the default report bytes.
    pub provenance: bool,
    /// Fault plan injected into every *production* release build (the
    /// oracle arm always runs clean — it defines what a fault-free
    /// fleet would ship, so injecting there would move the yardstick).
    /// Each release's ledger row then carries the degradation its
    /// build survived. An empty plan changes nothing, bit-for-bit.
    pub faults: FaultPlan,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            releases: 6,
            machines: 4,
            drift: 0.0,
            seed: 0x5eed,
            policy: RelinkPolicy::default(),
            history_window: 3,
            profile_budget: 120_000,
            eval_budget: 400_000,
            jobs: 1,
            decay: MergeOptions::default(),
            provenance: false,
            faults: FaultPlan::none(),
        }
    }
}

/// One release's row in the ledger.
#[derive(Clone, PartialEq, Debug)]
pub struct ReleaseRecord {
    /// Release index (0 = bootstrap).
    pub release: u32,
    /// Functions in this release's program.
    pub functions: usize,
    /// Skew of the merged stale profile against the fresh distribution
    /// (0 for the bootstrap release, which has no history).
    pub skew: f64,
    /// `"bootstrap"`, `"relink"` or `"reuse"`.
    pub decision: String,
    /// Speedup the shipped binary achieved over baseline, in percent.
    pub achieved_speedup_pct: f64,
    /// Speedup an oracle fresh-profile relink achieves, in percent.
    pub oracle_speedup_pct: f64,
    /// `oracle - achieved`: what staleness cost this release.
    pub gap_pct: f64,
    /// Hot functions in the layout actually shipped.
    pub hot_functions: usize,
    /// Object-cache lookups this release's build performed.
    pub cache_lookups: u64,
    /// Of those, hits against artifacts from earlier releases or
    /// phases.
    pub cache_hits: u64,
    /// `cache_hits / cache_lookups` for this release alone.
    pub cache_hit_rate: f64,
    /// LBR records entering cross-binary translation for the merge.
    pub translated_records: u64,
    /// Records dropped in translation (deleted functions, shrunk
    /// blocks, unmapped addresses).
    pub dropped_records: u64,
    /// Top placement divergences from the previous release (first
    /// diverging merge decision, then the biggest moved symbols).
    /// Collected only under [`FleetOptions::provenance`]; empty rows
    /// serialize without the member, keeping unarmed ledgers
    /// byte-identical to pre-provenance reports.
    pub divergences: Vec<String>,
    /// What this release's production build gave up surviving injected
    /// faults. Clean ledgers serialize without the member, so
    /// zero-fault fleet reports stay byte-identical to pre-fault ones.
    pub degradation: DegradationLedger,
}

impl ReleaseRecord {
    fn to_json(&self) -> JsonValue {
        let mut members = vec![
            ("release".into(), JsonValue::Num(f64::from(self.release))),
            ("functions".into(), JsonValue::Num(self.functions as f64)),
            ("skew".into(), JsonValue::Num(self.skew)),
            ("decision".into(), JsonValue::Str(self.decision.clone())),
            (
                "achieved_speedup_pct".into(),
                JsonValue::Num(self.achieved_speedup_pct),
            ),
            (
                "oracle_speedup_pct".into(),
                JsonValue::Num(self.oracle_speedup_pct),
            ),
            ("gap_pct".into(), JsonValue::Num(self.gap_pct)),
            (
                "hot_functions".into(),
                JsonValue::Num(self.hot_functions as f64),
            ),
            (
                "cache_lookups".into(),
                JsonValue::Num(self.cache_lookups as f64),
            ),
            ("cache_hits".into(), JsonValue::Num(self.cache_hits as f64)),
            (
                "cache_hit_rate".into(),
                JsonValue::Num(self.cache_hit_rate),
            ),
            (
                "translated_records".into(),
                JsonValue::Num(self.translated_records as f64),
            ),
            (
                "dropped_records".into(),
                JsonValue::Num(self.dropped_records as f64),
            ),
        ];
        if !self.divergences.is_empty() {
            members.push((
                "divergences".into(),
                JsonValue::Arr(
                    self.divergences
                        .iter()
                        .map(|d| JsonValue::Str(d.clone()))
                        .collect(),
                ),
            ));
        }
        if !self.degradation.is_clean() {
            members.push((
                "degradation".into(),
                JsonValue::Obj(
                    self.degradation
                        .entries()
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), JsonValue::Num(v)))
                        .collect(),
                ),
            ));
        }
        JsonValue::Obj(members)
    }
}

/// The full ledger: one record per release plus the run's parameters.
#[derive(Clone, PartialEq, Debug)]
pub struct FleetReport {
    /// Benchmark name.
    pub benchmark: String,
    /// Program scale factor.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Churn intensity.
    pub drift: f64,
    /// Machines per release.
    pub machines: usize,
    /// Skew threshold the policy gated at.
    pub skew_threshold: f64,
    /// History window in releases.
    pub history_window: u32,
    /// Per-release records, in release order.
    pub records: Vec<ReleaseRecord>,
}

impl FleetReport {
    /// The report as a JSON value with a fixed member order.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("benchmark".into(), JsonValue::Str(self.benchmark.clone())),
            ("scale".into(), JsonValue::Num(self.scale)),
            ("seed".into(), JsonValue::Num(self.seed as f64)),
            ("drift".into(), JsonValue::Num(self.drift)),
            ("machines".into(), JsonValue::Num(self.machines as f64)),
            (
                "skew_threshold".into(),
                JsonValue::Num(self.skew_threshold),
            ),
            (
                "history_window".into(),
                JsonValue::Num(f64::from(self.history_window)),
            ),
            (
                "records".into(),
                JsonValue::Arr(self.records.iter().map(ReleaseRecord::to_json).collect()),
            ),
        ])
    }

    /// The pretty-printed JSON document (deterministic bytes).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// The speedup-vs-staleness curve as CSV, one row per release.
    pub fn curve_csv(&self) -> String {
        let mut out = String::from(
            "release,skew,decision,achieved_speedup_pct,oracle_speedup_pct,gap_pct,cache_hit_rate\n",
        );
        for r in &self.records {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{}",
                r.release,
                r.skew,
                r.decision,
                r.achieved_speedup_pct,
                r.oracle_speedup_pct,
                r.gap_pct,
                r.cache_hit_rate
            );
        }
        out
    }

    /// Whether the loop reached a steady state: every record from
    /// release `window + 1` on is identical (ignoring the release
    /// index).
    ///
    /// A zero-drift run must satisfy this — the same program, the same
    /// machine seeds and the same (fully warmed) history window can
    /// only produce the same row. Early releases are excluded because
    /// the window is still filling: release 1 merges one past release,
    /// release 2 merges two, and so on until `window` are in view.
    /// Release `window` itself merges with the steady age multiset for
    /// the first time, so its relink still pays cache misses for the
    /// newly-converged layout's artifacts; only the release after it
    /// repeats the whole row, cache accounting included.
    pub fn steady_after_warmup(&self, window: u32) -> bool {
        let from = window as usize + 1;
        let mut rows = self.records.iter().skip(from).map(|r| {
            let mut clone = r.clone();
            clone.release = 0;
            clone
        });
        let Some(first) = rows.next() else {
            return true;
        };
        rows.all(|r| r == first)
    }

    /// The release ledger as a release-indexed [`TimeSeries`]: one
    /// modeled tick per release at `t = release * 1_000_000` (a
    /// "release microsecond" axis, so the same tooling that reads
    /// sim-microsecond serve timelines reads fleet timelines). Gauges
    /// for skew, gap, cache hit rate and achieved speedup; a
    /// cumulative counter for translation drops. Derived purely from
    /// the ledger, so it is exactly as deterministic as the report
    /// itself.
    pub fn timeseries(&self) -> TimeSeries {
        let mut ts = TimeSeries::new();
        for r in &self.records {
            let t = u64::from(r.release) * 1_000_000;
            ts.gauge("fleet.skew", t, r.skew);
            ts.gauge("fleet.gap_pct", t, r.gap_pct);
            ts.gauge("fleet.cache_hit_rate", t, r.cache_hit_rate);
            ts.gauge("fleet.achieved_speedup_pct", t, r.achieved_speedup_pct);
            ts.counter_add("fleet.dropped_records", t, r.dropped_records as f64);
        }
        ts
    }

    /// Mean `gap_pct` over the post-bootstrap releases (0.0 when there
    /// are none) — the scalar the drift-monotonicity experiment plots.
    pub fn mean_gap_pct(&self) -> f64 {
        let gaps: Vec<f64> = self.records.iter().skip(1).map(|r| r.gap_pct).collect();
        if gaps.is_empty() {
            0.0
        } else {
            gaps.iter().sum::<f64>() / gaps.len() as f64
        }
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Splits `total` into Zipf-weighted machine budgets (`1/(m+1)`)
/// summing to exactly `total`, largest-remainder rounded.
fn machine_budgets(total: u64, machines: usize) -> Vec<u64> {
    let machines = machines.max(1);
    let weights: Vec<f64> = (0..machines).map(|m| 1.0 / (m as f64 + 1.0)).collect();
    let wsum: f64 = weights.iter().sum();
    let mut budgets: Vec<u64> = weights
        .iter()
        .map(|w| ((total as f64) * w / wsum).floor() as u64)
        .collect();
    let mut leftover = total - budgets.iter().sum::<u64>();
    for b in budgets.iter_mut() {
        if leftover == 0 {
            break;
        }
        *b += 1;
        leftover -= 1;
    }
    budgets
}

/// One past release retained in the merge window.
struct HistoryEntry {
    pm_binary: Arc<LinkedBinary>,
    machine_profiles: Vec<HardwareProfile>,
    /// Release index the profiles were collected on.
    release: u32,
}

fn agg_sources(profiles: &[(AggregatedProfile, u64, u32)]) -> Vec<ProfileSource> {
    profiles
        .iter()
        .map(|(agg, weight, age)| ProfileSource {
            agg: agg.clone(),
            weight: *weight,
            age: *age,
        })
        .collect()
}

/// Runs the fleet loop.
///
/// # Errors
///
/// Propagates the first pipeline or image-construction failure as a
/// rendered string (the loop has no partial-result mode: a failed
/// release invalidates the curve).
pub fn run_fleet(
    spec: &BenchmarkSpec,
    scale: f64,
    opts: &FleetOptions,
) -> Result<FleetReport, String> {
    let prod_caches = BuildCaches::new();
    let oracle_caches = BuildCaches::new();
    // The oracle arm always runs this clean configuration; production
    // additionally carries the injected fault plan.
    let oracle_popts = PropellerOptions {
        seed: opts.seed,
        jobs: opts.jobs,
        provenance: opts.provenance,
        ..PropellerOptions::default()
    };
    let popts = PropellerOptions {
        faults: opts.faults.clone(),
        ..oracle_popts.clone()
    };
    // Machine collection seeds are fixed for the whole run — a machine
    // keeps its workload identity across releases, so the zero-drift
    // control arm re-collects byte-identical profiles every release.
    let machine_seeds: Vec<u64> = (0..opts.machines.max(1))
        .map(|m| splitmix(opts.seed ^ splitmix(0xF1EE7 + m as u64)))
        .collect();
    let budgets = machine_budgets(opts.profile_budget, opts.machines);

    let mut bench = generate(
        spec,
        &GenParams {
            scale,
            ..GenParams::for_spec(spec)
        },
    );
    let mut history: Vec<HistoryEntry> = Vec::new();
    let mut records = Vec::new();
    // Previous release's provenance document, for cross-release
    // divergence citations (armed runs only).
    let mut prev_doc: Option<ProvenanceDoc> = None;

    for release in 0..opts.releases {
        if release > 0 {
            bench = evolve(
                &bench,
                &DriftParams {
                    drift: opts.drift,
                    seed: opts.seed,
                    release,
                },
            );
        }

        // Production build of this release, sharing caches with every
        // earlier release: phases 1-2 give the metadata binary the
        // fleet samples against.
        let cache_before = prod_caches.object_stats();
        let mut prod = Propeller::with_caches(
            bench.program.clone(),
            bench.entries.clone(),
            popts.clone(),
            prod_caches.clone(),
        );
        prod.phase1_compile().map_err(|e| e.to_string())?;
        prod.phase2_build_metadata().map_err(|e| e.to_string())?;
        let pm = Arc::new(
            prod.pm_binary()
                .ok_or("phase 2 produced no binary")?
                .clone(),
        );

        // Per-machine collection on this release's binary: unequal
        // traffic shares, per-machine seeds, one profile each.
        let image =
            ProgramImage::build(prod.program(), &pm.layout).map_err(|e| e.to_string())?;
        let mut machine_profiles = Vec::with_capacity(opts.machines);
        for (m, &budget) in budgets.iter().enumerate() {
            let mut w = Workload::new(bench.entries.clone(), budget);
            w.seed = machine_seeds[m];
            let (profile, _) =
                collect_profile(&image, &w, &popts.uarch, popts.sampling);
            machine_profiles.push(profile);
        }
        let fresh_bytes: u64 = machine_profiles.iter().map(|p| p.raw_size_bytes()).sum();
        let fresh_sources: Vec<(AggregatedProfile, u64, u32)> = machine_profiles
            .iter()
            .map(|p| {
                (
                    AggregatedProfile::from_profile(p),
                    p.samples.len() as u64,
                    0,
                )
            })
            .collect();
        let fresh_agg = merge_profiles(&agg_sources(&fresh_sources), &opts.decay);

        // The stale merge: every windowed past release's machines,
        // translated into this binary's address space, decayed by age.
        let mut stale_sources: Vec<(AggregatedProfile, u64, u32)> = Vec::new();
        let mut stale_bytes = 0u64;
        let mut translated_records = 0u64;
        let mut dropped_records = 0u64;
        for entry in &history {
            let old_mapper = AddressMapper::from_binary(&entry.pm_binary);
            let age = release - entry.release;
            for p in &entry.machine_profiles {
                let (translated, tstats) = translate_profile(p, &old_mapper, &pm);
                translated_records += tstats.records_in;
                dropped_records += tstats.records_dropped;
                stale_bytes += translated.raw_size_bytes();
                stale_sources.push((
                    AggregatedProfile::from_profile(&translated),
                    translated.samples.len() as u64,
                    age,
                ));
            }
        }

        let (skew, decision_str, decision) = if release == 0 {
            // Bootstrap: no history exists, the first release relinks
            // against its own fresh collection.
            (0.0, "bootstrap".to_string(), RelinkDecision::Relink)
        } else {
            let stale_agg = merge_profiles(&agg_sources(&stale_sources), &opts.decay);
            let skew = layout_skew_agg(&pm, &stale_agg, &pm, &fresh_agg);
            let decision = opts.policy.decide(skew);
            (skew, decision.as_str().to_string(), decision)
        };

        // Ship the release the policy chose. Armed runs log which
        // sources funded the shipped merge at what decayed weight.
        let mut merge_prov: Option<MergeProvenance> = None;
        match decision {
            RelinkDecision::Relink if release == 0 => {
                if opts.provenance {
                    let mut log = MergeProvenance::default();
                    merge_profiles_logged(
                        &agg_sources(&fresh_sources),
                        &opts.decay,
                        Some(&mut log),
                    );
                    merge_prov = Some(log);
                }
                prod.phase3_analyze_merged(&fresh_agg, fresh_bytes)
                    .map_err(|e| e.to_string())?;
            }
            RelinkDecision::Relink => {
                let mut log = MergeProvenance::default();
                let stale_agg = merge_profiles_logged(
                    &agg_sources(&stale_sources),
                    &opts.decay,
                    opts.provenance.then_some(&mut log),
                );
                if opts.provenance {
                    merge_prov = Some(log);
                }
                prod.phase3_analyze_merged(&stale_agg, stale_bytes)
                    .map_err(|e| e.to_string())?;
            }
            RelinkDecision::Reuse => {
                prod.phase3_reuse_layout().map_err(|e| e.to_string())?;
            }
        }
        prod.phase4_relink().map_err(|e| e.to_string())?;
        let hot_functions = prod
            .wpa_output()
            .map(|w| w.stats.hot_functions)
            .unwrap_or(0);

        // Armed: assemble this release's provenance document and cite
        // the top placement divergences from the previous release.
        let mut divergences: Vec<String> = Vec::new();
        if opts.provenance {
            let rich = prod
                .wpa_output()
                .and_then(|w| w.rich.clone())
                .unwrap_or_default();
            let layout = prod
                .wpa_output()
                .map(|w| w.provenance.clone())
                .unwrap_or_default();
            let placements = prod
                .po_binary()
                .map(|b| b.placements.clone())
                .unwrap_or_default();
            let doc = ProvenanceDoc::collect(
                spec.name,
                scale,
                opts.seed,
                &rich,
                &layout,
                &placements,
                merge_prov,
            );
            if let Some(prev) = &prev_doc {
                let d = diff_docs(prev, &doc);
                if let Some(div) = &d.first_divergence {
                    divergences.push(div.clone());
                }
                for m in d.moved.iter().take(3) {
                    divergences.push(format!(
                        "{} moved: order {} -> {}, addr {:#x} -> {:#x}",
                        m.symbol, m.order_a, m.order_b, m.addr_a, m.addr_b
                    ));
                }
            }
            prev_doc = Some(doc);
        }
        let cache_delta = prod_caches.object_stats().since(&cache_before);
        let achieved = prod
            .evaluate(opts.eval_budget)
            .map_err(|e| e.to_string())?
            .speedup_pct();

        // Oracle arm: the same release relinked against its own fresh
        // collection — what a zero-staleness fleet would ship. Runs on
        // its own cache chain so it never pollutes production's
        // hit-rate accounting.
        let mut oracle = Propeller::with_caches(
            bench.program.clone(),
            bench.entries.clone(),
            oracle_popts.clone(),
            oracle_caches.clone(),
        );
        oracle.phase1_compile().map_err(|e| e.to_string())?;
        oracle.phase2_build_metadata().map_err(|e| e.to_string())?;
        oracle
            .phase3_analyze_merged(&fresh_agg, fresh_bytes)
            .map_err(|e| e.to_string())?;
        oracle.phase4_relink().map_err(|e| e.to_string())?;
        let oracle_speedup = oracle
            .evaluate(opts.eval_budget)
            .map_err(|e| e.to_string())?
            .speedup_pct();

        records.push(ReleaseRecord {
            release,
            functions: bench.program.num_functions(),
            skew,
            decision: decision_str,
            achieved_speedup_pct: achieved,
            oracle_speedup_pct: oracle_speedup,
            gap_pct: oracle_speedup - achieved,
            hot_functions,
            cache_lookups: cache_delta.lookups,
            cache_hits: cache_delta.hits,
            cache_hit_rate: cache_delta.hit_rate(),
            translated_records,
            dropped_records,
            divergences,
            degradation: prod.degradation().clone(),
        });

        history.push(HistoryEntry {
            pm_binary: pm,
            machine_profiles,
            release,
        });
        if history.len() > opts.history_window as usize {
            let excess = history.len() - opts.history_window as usize;
            history.drain(..excess);
        }
    }

    Ok(FleetReport {
        benchmark: spec.name.to_string(),
        scale,
        seed: opts.seed,
        drift: opts.drift,
        machines: opts.machines,
        skew_threshold: opts.policy.max_skew,
        history_window: opts.history_window,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_budgets_conserve_and_skew_zipf() {
        let b = machine_budgets(100_000, 4);
        assert_eq!(b.iter().sum::<u64>(), 100_000);
        assert!(b[0] > b[1] && b[1] > b[2] && b[2] > b[3]);
        assert_eq!(machine_budgets(7, 1), vec![7]);
        assert_eq!(machine_budgets(0, 3).iter().sum::<u64>(), 0);
    }

    #[test]
    fn report_json_and_csv_round_the_same_records() {
        let report = FleetReport {
            benchmark: "clang".into(),
            scale: 0.004,
            seed: 77,
            drift: 0.0,
            machines: 2,
            skew_threshold: 0.4,
            history_window: 3,
            records: vec![ReleaseRecord {
                release: 0,
                functions: 100,
                skew: 0.0,
                decision: "bootstrap".into(),
                achieved_speedup_pct: 5.0,
                oracle_speedup_pct: 5.0,
                gap_pct: 0.0,
                hot_functions: 12,
                cache_lookups: 40,
                cache_hits: 10,
                cache_hit_rate: 0.25,
                translated_records: 0,
                dropped_records: 0,
                divergences: Vec::new(),
                degradation: DegradationLedger::default(),
            }],
        };
        let json = report.to_json_string();
        assert!(json.contains("\"decision\": \"bootstrap\""));
        assert!(json.contains("\"skew_threshold\": 0.4"));
        let csv = report.curve_csv();
        assert!(csv.starts_with("release,skew,decision"));
        assert!(csv.contains("0,0,bootstrap,5,5,0,0.25"));
    }

    #[test]
    fn steady_check_ignores_release_index_and_warmup() {
        let row = |release: u32, skew: f64| ReleaseRecord {
            release,
            functions: 10,
            skew,
            decision: "relink".into(),
            achieved_speedup_pct: 1.0,
            oracle_speedup_pct: 1.0,
            gap_pct: 0.0,
            hot_functions: 2,
            cache_lookups: 5,
            cache_hits: 5,
            cache_hit_rate: 1.0,
            translated_records: 9,
            dropped_records: 0,
            divergences: Vec::new(),
            degradation: DegradationLedger::default(),
        };
        let mut report = FleetReport {
            benchmark: "x".into(),
            scale: 1.0,
            seed: 1,
            drift: 0.0,
            machines: 1,
            skew_threshold: 0.4,
            history_window: 2,
            records: vec![row(0, 0.9), row(1, 0.5), row(2, 0.1), row(3, 0.1), row(4, 0.1)],
        };
        assert!(report.steady_after_warmup(2));
        assert!(!report.steady_after_warmup(0));
        report.records[4].skew = 0.2;
        assert!(!report.steady_after_warmup(2));
        // An all-warmup report is vacuously steady.
        assert!(report.steady_after_warmup(10));
    }

    #[test]
    fn timeseries_indexes_by_release_and_accumulates_drops() {
        let row = |release: u32, skew: f64, dropped: u64| ReleaseRecord {
            release,
            functions: 10,
            skew,
            decision: "relink".into(),
            achieved_speedup_pct: 2.0,
            oracle_speedup_pct: 3.0,
            gap_pct: 1.0,
            hot_functions: 2,
            cache_lookups: 5,
            cache_hits: 5,
            cache_hit_rate: 1.0,
            translated_records: 9,
            dropped_records: dropped,
            divergences: Vec::new(),
            degradation: DegradationLedger::default(),
        };
        let report = FleetReport {
            benchmark: "x".into(),
            scale: 1.0,
            seed: 1,
            drift: 0.1,
            machines: 1,
            skew_threshold: 0.4,
            history_window: 2,
            records: vec![row(0, 0.0, 0), row(1, 0.5, 3), row(2, 0.2, 4)],
        };
        let ts = report.timeseries();
        let skew = ts.get("fleet.skew").expect("skew series").ordered();
        assert_eq!(skew.len(), 3);
        assert_eq!(skew[2].t_us, 2_000_000);
        assert_eq!(skew[2].value, 0.2);
        // Drops are a cumulative counter: 0, 3, 7.
        let drops = ts.get("fleet.dropped_records").expect("drops series").ordered();
        assert_eq!(drops.iter().map(|p| p.value as u64).collect::<Vec<_>>(), [0, 3, 7]);
        // Round-trips through the canonical CSV.
        let back = TimeSeries::from_csv(&ts.to_csv()).expect("csv parses");
        assert_eq!(back.to_csv(), ts.to_csv());
    }
}
