//! Cross-binary profile translation.
//!
//! Samples are collected on the binary a machine actually runs —
//! release *j* — but the relink consuming them targets release *k*.
//! Raw LBR addresses are meaningless across binaries, so each record is
//! lifted to the layout-stable coordinate `(function symbol, block id,
//! offset in block)` via the old binary's BB address map, then
//! re-encoded against the new binary's final layout. This is the same
//! invariance trick the skew score uses: block ids survive both
//! relinking and moderate source churn, while addresses survive
//! neither.
//!
//! Anything that no longer exists in the new binary — a deleted
//! function, a block past a shrunken body — is dropped and counted:
//! drop rates are themselves a staleness signal (a release that loses
//! half its translated records is telling you its profile is old).

use propeller_linker::LinkedBinary;
use propeller_profile::{HardwareProfile, LbrRecord, LbrSample};
use propeller_wpa::AddressMapper;
use std::collections::BTreeMap;

/// Accounting for one translation pass.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct TranslationStats {
    /// Records entering translation.
    pub records_in: u64,
    /// Records dropped (either end unmapped in the old binary, or its
    /// `(symbol, block)` absent from the new one).
    pub records_dropped: u64,
    /// Samples whose every record was dropped (the sample vanishes).
    pub samples_dropped: u64,
}

impl TranslationStats {
    /// Fraction of records that survived translation (1.0 on empty
    /// input).
    pub fn survival_rate(&self) -> f64 {
        if self.records_in == 0 {
            1.0
        } else {
            (self.records_in - self.records_dropped) as f64 / self.records_in as f64
        }
    }
}

/// Translates `profile` (collected on the binary behind `old_mapper`)
/// into `new_binary`'s address space.
///
/// When both binaries are identical the translation is the identity:
/// every record maps to its own address, byte for byte — the zero-drift
/// control arm of the fleet loop depends on this.
pub fn translate_profile(
    profile: &HardwareProfile,
    old_mapper: &AddressMapper,
    new_binary: &LinkedBinary,
) -> (HardwareProfile, TranslationStats) {
    // (symbol, block id) -> (start address, size) in the new binary.
    let mut new_blocks: BTreeMap<(&str, u32), (u64, u32)> = BTreeMap::new();
    for f in &new_binary.layout.functions {
        for b in &f.blocks {
            new_blocks.insert((f.func_symbol.as_str(), b.block.0), (b.addr, b.size));
        }
    }
    let mut stats = TranslationStats::default();
    let mut out = HardwareProfile::new(&new_binary.name);
    let translate_addr = |addr: u64| -> Option<u64> {
        let loc = old_mapper.lookup(addr)?;
        let &(start, size) = new_blocks.get(&(loc.func_symbol.as_str(), loc.bb_id))?;
        // A shrunken block clamps the offset to its new extent; the
        // record stays attributed to the right block, which is all the
        // aggregation downstream keys on.
        Some(start + u64::from(loc.offset_in_block.min(size.saturating_sub(1))))
    };
    for sample in &profile.samples {
        let mut records = Vec::with_capacity(sample.records.len());
        for rec in &sample.records {
            stats.records_in += 1;
            match (translate_addr(rec.from), translate_addr(rec.to)) {
                (Some(from), Some(to)) => records.push(LbrRecord { from, to }),
                _ => stats.records_dropped += 1,
            }
        }
        if records.is_empty() {
            stats.samples_dropped += 1;
        } else {
            out.samples.push(LbrSample::new(records));
        }
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_codegen::{codegen_module, CodegenOptions};
    use propeller_ir::{BlockId, FunctionBuilder, Inst, ProgramBuilder, Terminator};
    use propeller_linker::{link, LinkInput, LinkOptions};

    fn binary(extra_fn: bool) -> LinkedBinary {
        let mut pb = ProgramBuilder::new();
        let m = pb.add_module("m.cc");
        let mut f = FunctionBuilder::new("alpha");
        f.add_block(
            vec![Inst::Alu; 3],
            Terminator::CondBr {
                taken: BlockId(1),
                fallthrough: BlockId(2),
                prob_taken: 0.5,
            },
        );
        f.add_block(vec![Inst::Load; 2], Terminator::Ret);
        f.add_block(vec![Inst::Load; 4], Terminator::Ret);
        pb.add_function(m, f);
        if extra_fn {
            let mut g = FunctionBuilder::new("beta");
            g.add_block(vec![Inst::Store; 2], Terminator::Ret);
            pb.add_function(m, g);
        }
        let p = pb.finish().unwrap();
        let r = codegen_module(&p.modules()[0], &p, &CodegenOptions::with_labels()).unwrap();
        link(
            &[LinkInput::new(r.object, r.debug_layout)],
            &LinkOptions::default(),
        )
        .unwrap()
    }

    fn block_addr(bin: &LinkedBinary, func: &str, block: u32) -> u64 {
        bin.layout
            .functions
            .iter()
            .find(|f| f.func_symbol == func)
            .unwrap()
            .blocks
            .iter()
            .find(|b| b.block == BlockId(block))
            .unwrap()
            .addr
    }

    #[test]
    fn identical_binaries_translate_to_identity() {
        let bin = binary(true);
        let mapper = AddressMapper::from_binary(&bin);
        let b0 = block_addr(&bin, "alpha", 0);
        let b1 = block_addr(&bin, "alpha", 1);
        let mut prof = HardwareProfile::new("old");
        prof.samples.push(LbrSample::new(vec![
            LbrRecord { from: b0 + 2, to: b1 },
            LbrRecord { from: b1 + 1, to: b0 },
        ]));
        let (t, stats) = translate_profile(&prof, &mapper, &bin);
        assert_eq!(stats.records_dropped, 0);
        assert_eq!(stats.records_in, 2);
        assert_eq!(t.samples.len(), 1);
        assert_eq!(t.samples[0].records, prof.samples[0].records);
        assert_eq!(stats.survival_rate(), 1.0);
    }

    #[test]
    fn records_in_deleted_functions_drop_and_are_counted() {
        let old = binary(true);
        let new = binary(false); // beta no longer exists
        let mapper = AddressMapper::from_binary(&old);
        let beta0 = block_addr(&old, "beta", 0);
        let alpha0 = block_addr(&old, "alpha", 0);
        let mut prof = HardwareProfile::new("old");
        // One record wholly inside beta (dropped), one inside alpha
        // (survives, possibly at a shifted address).
        prof.samples.push(LbrSample::new(vec![
            LbrRecord { from: beta0, to: beta0 + 1 },
            LbrRecord { from: alpha0, to: alpha0 + 1 },
        ]));
        // A sample made only of beta records vanishes entirely.
        prof.samples
            .push(LbrSample::new(vec![LbrRecord { from: beta0, to: beta0 }]));
        let (t, stats) = translate_profile(&prof, &mapper, &new);
        assert_eq!(stats.records_in, 3);
        assert_eq!(stats.records_dropped, 2);
        assert_eq!(stats.samples_dropped, 1);
        assert_eq!(t.samples.len(), 1);
        assert_eq!(t.samples[0].records.len(), 1);
        let a0_new = block_addr(&new, "alpha", 0);
        assert_eq!(t.samples[0].records[0].from, a0_new);
        assert!(stats.survival_rate() > 0.3 && stats.survival_rate() < 0.4);
    }

    #[test]
    fn unmapped_old_addresses_drop() {
        let bin = binary(false);
        let mapper = AddressMapper::from_binary(&bin);
        let mut prof = HardwareProfile::new("old");
        prof.samples.push(LbrSample::new(vec![LbrRecord {
            from: 0xdead_0000,
            to: 0xbeef_0000,
        }]));
        let (t, stats) = translate_profile(&prof, &mapper, &bin);
        assert_eq!(t.samples.len(), 0);
        assert_eq!(stats.records_dropped, 1);
        assert_eq!(stats.samples_dropped, 1);
    }
}
