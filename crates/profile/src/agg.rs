//! Profile aggregation.

use crate::lbr::HardwareProfile;
use std::collections::HashMap;

/// Branch and fall-through counts aggregated from raw LBR samples.
///
/// Consecutive records in one sample bound a straight-line execution
/// range: after the older branch landed at `to`, execution fell through
/// to the newer branch's `from`. Those `[to, from]` ranges are what
/// gives basic blocks between taken branches their counts.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AggregatedProfile {
    /// Taken-branch counts keyed by `(branch address, target address)`.
    pub branches: HashMap<(u64, u64), u64>,
    /// Fall-through range counts keyed by `(range start, range end)`,
    /// where both ends are instruction addresses and the range executed
    /// without a taken branch.
    pub fallthroughs: HashMap<(u64, u64), u64>,
}

impl AggregatedProfile {
    /// Aggregates a raw profile.
    pub fn from_profile(profile: &HardwareProfile) -> Self {
        let mut agg = AggregatedProfile::default();
        for sample in &profile.samples {
            for rec in &sample.records {
                *agg.branches.entry((rec.from, rec.to)).or_insert(0) += 1;
            }
            for pair in sample.records.windows(2) {
                let range = (pair[0].to, pair[1].from);
                *agg.fallthroughs.entry(range).or_insert(0) += 1;
            }
        }
        agg
    }

    /// Total taken-branch count.
    pub fn total_branch_count(&self) -> u64 {
        self.branches.values().sum()
    }

    /// Number of distinct branch edges observed.
    pub fn num_edges(&self) -> usize {
        self.branches.len()
    }

    /// The modeled in-memory footprint of the aggregation structures
    /// (two hash maps of 24-byte keys + 8-byte counts, with typical
    /// hash-table slack).
    pub fn modeled_memory_bytes(&self) -> u64 {
        ((self.branches.len() + self.fallthroughs.len()) * 48) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lbr::{LbrRecord, LbrSample};

    fn rec(from: u64, to: u64) -> LbrRecord {
        LbrRecord { from, to }
    }

    #[test]
    fn branches_counted_across_samples() {
        let mut p = HardwareProfile::new("b");
        p.samples
            .push(LbrSample::new(vec![rec(100, 200), rec(220, 100)]));
        p.samples.push(LbrSample::new(vec![rec(100, 200)]));
        let agg = AggregatedProfile::from_profile(&p);
        assert_eq!(agg.branches[&(100, 200)], 2);
        assert_eq!(agg.branches[&(220, 100)], 1);
        assert_eq!(agg.total_branch_count(), 3);
        assert_eq!(agg.num_edges(), 2);
    }

    #[test]
    fn fallthrough_ranges_from_consecutive_records() {
        let mut p = HardwareProfile::new("b");
        // After landing at 200, execution ran straight to the branch at
        // 220.
        p.samples
            .push(LbrSample::new(vec![rec(100, 200), rec(220, 300)]));
        let agg = AggregatedProfile::from_profile(&p);
        assert_eq!(agg.fallthroughs[&(200, 220)], 1);
        assert_eq!(agg.fallthroughs.len(), 1);
    }

    #[test]
    fn empty_profile_aggregates_empty() {
        let agg = AggregatedProfile::from_profile(&HardwareProfile::new("x"));
        assert_eq!(agg.total_branch_count(), 0);
        assert_eq!(agg.modeled_memory_bytes(), 0);
    }
}
