//! Profile aggregation.

use crate::lbr::HardwareProfile;
use std::collections::HashMap;

/// Branch and fall-through counts aggregated from raw LBR samples.
///
/// Consecutive records in one sample bound a straight-line execution
/// range: after the older branch landed at `to`, execution fell through
/// to the newer branch's `from`. Those `[to, from]` ranges are what
/// gives basic blocks between taken branches their counts.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AggregatedProfile {
    /// Taken-branch counts keyed by `(branch address, target address)`.
    pub branches: HashMap<(u64, u64), u64>,
    /// Fall-through range counts keyed by `(range start, range end)`,
    /// where both ends are instruction addresses and the range executed
    /// without a taken branch.
    pub fallthroughs: HashMap<(u64, u64), u64>,
}

impl AggregatedProfile {
    /// Aggregates a raw profile.
    ///
    /// Counts saturate at `u64::MAX` instead of wrapping: a fleet-scale
    /// merge feeding months of samples through one edge must degrade to
    /// a pinned counter, not a tiny wrapped one that would silently
    /// reclassify the hottest edge as cold.
    pub fn from_profile(profile: &HardwareProfile) -> Self {
        let mut agg = AggregatedProfile::default();
        for sample in &profile.samples {
            for rec in &sample.records {
                let e = agg.branches.entry((rec.from, rec.to)).or_insert(0);
                *e = e.saturating_add(1);
            }
            for pair in sample.records.windows(2) {
                let range = (pair[0].to, pair[1].from);
                let e = agg.fallthroughs.entry(range).or_insert(0);
                *e = e.saturating_add(1);
            }
        }
        agg
    }

    /// Total taken-branch count, saturating at `u64::MAX` (a
    /// multi-machine merge can legitimately hold several near-full
    /// counters whose exact sum exceeds 64 bits).
    pub fn total_branch_count(&self) -> u64 {
        self.branches
            .values()
            .fold(0u64, |acc, &v| acc.saturating_add(v))
    }

    /// Total fall-through range count, saturating like
    /// [`AggregatedProfile::total_branch_count`].
    pub fn total_fallthrough_count(&self) -> u64 {
        self.fallthroughs
            .values()
            .fold(0u64, |acc, &v| acc.saturating_add(v))
    }

    /// Number of distinct branch edges observed.
    pub fn num_edges(&self) -> usize {
        self.branches.len()
    }

    /// The modeled in-memory footprint of the aggregation structures
    /// (two hash maps of 24-byte keys + 8-byte counts, with typical
    /// hash-table slack).
    pub fn modeled_memory_bytes(&self) -> u64 {
        ((self.branches.len() + self.fallthroughs.len()) * 48) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lbr::{LbrRecord, LbrSample};

    fn rec(from: u64, to: u64) -> LbrRecord {
        LbrRecord { from, to }
    }

    #[test]
    fn branches_counted_across_samples() {
        let mut p = HardwareProfile::new("b");
        p.samples
            .push(LbrSample::new(vec![rec(100, 200), rec(220, 100)]));
        p.samples.push(LbrSample::new(vec![rec(100, 200)]));
        let agg = AggregatedProfile::from_profile(&p);
        assert_eq!(agg.branches[&(100, 200)], 2);
        assert_eq!(agg.branches[&(220, 100)], 1);
        assert_eq!(agg.total_branch_count(), 3);
        assert_eq!(agg.num_edges(), 2);
    }

    #[test]
    fn fallthrough_ranges_from_consecutive_records() {
        let mut p = HardwareProfile::new("b");
        // After landing at 200, execution ran straight to the branch at
        // 220.
        p.samples
            .push(LbrSample::new(vec![rec(100, 200), rec(220, 300)]));
        let agg = AggregatedProfile::from_profile(&p);
        assert_eq!(agg.fallthroughs[&(200, 220)], 1);
        assert_eq!(agg.fallthroughs.len(), 1);
    }

    #[test]
    fn empty_profile_aggregates_empty() {
        let agg = AggregatedProfile::from_profile(&HardwareProfile::new("x"));
        assert_eq!(agg.total_branch_count(), 0);
        assert_eq!(agg.modeled_memory_bytes(), 0);
    }

    #[test]
    fn totals_saturate_at_u64_max_adjacent_weights() {
        // A merged fleet profile can hold counters near u64::MAX; the
        // totals must pin at the ceiling instead of wrapping around to
        // a small number.
        let mut agg = AggregatedProfile::default();
        agg.branches.insert((1, 2), u64::MAX - 1);
        agg.branches.insert((3, 4), 2);
        agg.branches.insert((5, 6), u64::MAX);
        assert_eq!(agg.total_branch_count(), u64::MAX);
        agg.fallthroughs.insert((2, 3), u64::MAX);
        agg.fallthroughs.insert((4, 5), 1);
        assert_eq!(agg.total_fallthrough_count(), u64::MAX);
    }

    #[test]
    fn per_edge_counts_saturate_instead_of_wrapping() {
        let mut agg = AggregatedProfile::default();
        agg.branches.insert((100, 200), u64::MAX);
        agg.fallthroughs.insert((200, 220), u64::MAX);
        // Re-aggregating one more observation of the same edge on top
        // of a pinned counter must stay pinned. (Simulates the merge
        // path folding a fresh machine profile into saturated state.)
        let mut p = HardwareProfile::new("b");
        p.samples
            .push(LbrSample::new(vec![rec(100, 200), rec(220, 300)]));
        let fresh = AggregatedProfile::from_profile(&p);
        for (k, v) in fresh.branches {
            let e = agg.branches.entry(k).or_insert(0);
            *e = e.saturating_add(v);
        }
        for (k, v) in fresh.fallthroughs {
            let e = agg.fallthroughs.entry(k).or_insert(0);
            *e = e.saturating_add(v);
        }
        assert_eq!(agg.branches[&(100, 200)], u64::MAX);
        assert_eq!(agg.fallthroughs[&(200, 220)], u64::MAX);
    }
}
