//! Hardware profiles: Last Branch Record samples and their aggregation.
//!
//! Models what `linux perf` delivers on Intel hardware (§3.3): each
//! sample captures the LBR stack — the source and destination address
//! pairs of the last 32 retired taken branches. Aggregation turns raw
//! samples into branch counts and fall-through range counts, the only
//! inputs the whole-program analyzer needs.
//!
//! Nothing in this crate knows about functions or basic blocks; that
//! mapping is the job of the BB address map (`propeller-wpa`).

mod agg;
mod lbr;
mod merge;
mod salvage;

pub use agg::AggregatedProfile;
pub use lbr::{HardwareProfile, LbrRecord, LbrSample, SamplingConfig, LBR_DEPTH};
pub use merge::{
    effective_weight, merge_profiles, merge_profiles_logged, MergeOptions, MergeProvenance,
    ProfileSource, SourceContribution,
};
pub use salvage::{degrade_profile, salvage_profile, SalvageStats};
