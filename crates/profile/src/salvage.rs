//! Profile degradation and salvage.
//!
//! At warehouse scale the profile that reaches Propeller is routinely
//! damaged: `perf.data` files get truncated mid-upload, records are
//! garbled by collection races, whole shards go missing. Phase 3 must
//! never abort on such input — it *salvages*: corrupt records are
//! dropped, truncated samples keep whatever prefix survived, and the
//! caller decides (via its coverage floor) whether enough profile is
//! left to drive layout at all.
//!
//! This module has two halves:
//!
//! * [`degrade_profile`] — the *injection* side: applies the fault
//!   plan's [`LbrRecordCorruption`](FaultKind::LbrRecordCorruption)
//!   and [`SampleTruncation`](FaultKind::SampleTruncation) faults to a
//!   freshly collected profile, modeling in-flight damage. Corrupted
//!   records get addresses far outside the binary's text range, which
//!   is exactly how real LBR garbage presents;
//! * [`salvage_profile`] — the *recovery* side: a pure function (it
//!   knows nothing about faults) that keeps only records whose
//!   addresses fall inside the valid text range, and prunes samples
//!   that lost every record.

use crate::{HardwareProfile, LbrSample};
use propeller_faults::{DegradationLedger, FaultInjector, FaultKind};
use std::ops::Range;

/// Exact accounting of one degrade + salvage pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SalvageStats {
    /// Records in the profile before any damage.
    pub records_in: u64,
    /// Records corrupted in flight by the injector.
    pub records_corrupted: u64,
    /// Samples whose record-stack tail was lost in flight.
    pub samples_truncated: u64,
    /// Records those truncations destroyed.
    pub records_truncated: u64,
    /// Invalid records the salvage pass dropped (for injected damage
    /// this equals `records_corrupted`; pre-existing garbage would
    /// also land here).
    pub records_dropped: u64,
    /// Records that survived salvage.
    pub records_out: u64,
}

impl SalvageStats {
    /// Fraction of the original records that survived (`1.0` for an
    /// originally-empty profile, which is vacuously undamaged).
    pub fn survival_rate(&self) -> f64 {
        if self.records_in == 0 {
            1.0
        } else {
            self.records_out as f64 / self.records_in as f64
        }
    }

    /// Fold this pass into a degradation ledger.
    pub fn record_into(&self, ledger: &mut DegradationLedger) {
        ledger.lbr_records_corrupted += self.records_corrupted;
        ledger.lbr_records_dropped += self.records_dropped;
        ledger.lbr_samples_truncated += self.samples_truncated;
        ledger.lbr_records_truncated += self.records_truncated;
    }
}

/// Offset added to a corrupted record's addresses; far above any
/// modeled text segment, so corruption is always detectable by the
/// range check in [`salvage_profile`].
const CORRUPT_OFFSET: u64 = 1 << 60;

/// Applies the injector's profile faults to `profile` in place,
/// returning partial stats (`records_in`, corruption and truncation
/// counts — the salvage fields stay zero until
/// [`salvage_profile`] runs).
///
/// Truncation rolls once per sample and halves its record stack
/// (keeping the older, already-committed prefix, like a write cut off
/// mid-sample); corruption rolls once per surviving record. Both walk
/// the profile in collection order, so damage is deterministic for a
/// fixed `(seed, plan)`.
pub fn degrade_profile(profile: &mut HardwareProfile, inj: &FaultInjector) -> SalvageStats {
    let mut stats =
        SalvageStats { records_in: profile.num_records() as u64, ..SalvageStats::default() };
    for (si, sample) in profile.samples.iter_mut().enumerate() {
        let site = format!("s{si}");
        if !sample.records.is_empty() && inj.fires(FaultKind::SampleTruncation, &site) {
            let keep = sample.records.len() / 2;
            stats.records_truncated += (sample.records.len() - keep) as u64;
            stats.samples_truncated += 1;
            sample.records.truncate(keep);
        }
        for (ri, record) in sample.records.iter_mut().enumerate() {
            let rsite = format!("s{si}r{ri}");
            if inj.fires(FaultKind::LbrRecordCorruption, &rsite) {
                record.from |= CORRUPT_OFFSET;
                record.to |= CORRUPT_OFFSET;
                stats.records_corrupted += 1;
            }
        }
    }
    stats
}

/// Drops every record whose addresses fall outside `text`, prunes
/// samples left empty, and completes `stats` with the salvage counts.
///
/// The result is always a well-formed profile: whatever the damage,
/// downstream aggregation and WPA see only in-range records (possibly
/// none at all — the caller's coverage floor handles that).
pub fn salvage_profile(
    profile: &HardwareProfile,
    text: Range<u64>,
    mut stats: SalvageStats,
) -> (HardwareProfile, SalvageStats) {
    let mut out = HardwareProfile::new(profile.binary_name.clone());
    for sample in &profile.samples {
        let kept: Vec<_> = sample
            .records
            .iter()
            .copied()
            .filter(|r| text.contains(&r.from) && text.contains(&r.to))
            .collect();
        stats.records_dropped += (sample.records.len() - kept.len()) as u64;
        if !kept.is_empty() {
            out.samples.push(LbrSample::new(kept));
        }
    }
    stats.records_out = out.num_records() as u64;
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LbrRecord;
    use propeller_faults::{FaultPlan, FaultSpec};

    fn profile_with(records_per_sample: &[usize]) -> HardwareProfile {
        let mut p = HardwareProfile::new("bin");
        let mut addr = 0x1000u64;
        for &n in records_per_sample {
            let mut recs = Vec::new();
            for _ in 0..n {
                recs.push(LbrRecord { from: addr, to: addr + 8 });
                addr += 16;
            }
            p.samples.push(LbrSample::new(recs));
        }
        p
    }

    const TEXT: Range<u64> = 0x1000..0x100000;

    #[test]
    fn clean_profile_survives_untouched() {
        let original = profile_with(&[4, 2, 8]);
        let mut p = original.clone();
        let inj = FaultInjector::new(FaultPlan::none(), 7);
        let stats = degrade_profile(&mut p, &inj);
        assert_eq!(p, original);
        let (salvaged, stats) = salvage_profile(&p, TEXT, stats);
        assert_eq!(salvaged, original);
        assert_eq!(stats.records_in, 14);
        assert_eq!(stats.records_out, 14);
        assert_eq!(stats.survival_rate(), 1.0);
    }

    #[test]
    fn full_corruption_drops_everything() {
        let mut p = profile_with(&[4, 2]);
        let plan =
            FaultPlan { lbr_record_corruption: FaultSpec::always(), ..FaultPlan::none() };
        let inj = FaultInjector::new(plan, 7);
        let stats = degrade_profile(&mut p, &inj);
        assert_eq!(stats.records_corrupted, 6);
        let (salvaged, stats) = salvage_profile(&p, TEXT, stats);
        assert_eq!(salvaged.num_records(), 0);
        assert!(salvaged.samples.is_empty(), "empty samples are pruned");
        assert_eq!(stats.records_dropped, 6);
        assert_eq!(stats.survival_rate(), 0.0);
    }

    #[test]
    fn truncation_halves_samples_and_keeps_prefix() {
        let mut p = profile_with(&[8]);
        let first = p.samples[0].records[0];
        let plan = FaultPlan { sample_truncation: FaultSpec::always(), ..FaultPlan::none() };
        let inj = FaultInjector::new(plan, 7);
        let stats = degrade_profile(&mut p, &inj);
        assert_eq!(stats.samples_truncated, 1);
        assert_eq!(stats.records_truncated, 4);
        assert_eq!(p.samples[0].records.len(), 4);
        assert_eq!(p.samples[0].records[0], first);
        let (salvaged, stats) = salvage_profile(&p, TEXT, stats);
        assert_eq!(salvaged.num_records(), 4);
        assert_eq!(stats.survival_rate(), 0.5);
    }

    #[test]
    fn degradation_is_deterministic() {
        let plan = FaultPlan {
            lbr_record_corruption: FaultSpec::p(0.3),
            sample_truncation: FaultSpec::p(0.2),
            ..FaultPlan::none()
        };
        let run = |seed| {
            let mut p = profile_with(&[8, 8, 8, 8]);
            let inj = FaultInjector::new(plan.clone(), seed);
            let stats = degrade_profile(&mut p, &inj);
            salvage_profile(&p, TEXT, stats)
        };
        assert_eq!(run(11), run(11));
        // Ledger accounting is exact: dropped == corrupted (no other
        // source of invalid records in this model).
        let (_, stats) = run(11);
        assert_eq!(stats.records_dropped, stats.records_corrupted);
        assert_eq!(
            stats.records_out,
            stats.records_in - stats.records_truncated - stats.records_dropped
        );
    }

    #[test]
    fn stats_fold_into_ledger() {
        let mut p = profile_with(&[8]);
        let plan = FaultPlan { sample_truncation: FaultSpec::always(), ..FaultPlan::none() };
        let inj = FaultInjector::new(plan, 7);
        let stats = degrade_profile(&mut p, &inj);
        let (_, stats) = salvage_profile(&p, TEXT, stats);
        let mut ledger = DegradationLedger::default();
        stats.record_into(&mut ledger);
        assert_eq!(ledger.lbr_samples_truncated, 1);
        assert_eq!(ledger.lbr_records_truncated, 4);
        assert!(!ledger.is_clean());
    }
}
