//! Last Branch Records.

/// Depth of the LBR stack on the modeled (Skylake-class) hardware.
pub const LBR_DEPTH: usize = 32;

/// One retired taken branch: source and destination addresses.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct LbrRecord {
    /// Address of the branch instruction.
    pub from: u64,
    /// Address the branch transferred to.
    pub to: u64,
}

/// One LBR sample: the last up-to-32 taken branches at the sampling
/// interrupt, ordered oldest first.
///
/// (Hardware reports newest-first; the simulator normalizes to oldest
/// first, which is the order aggregation walks.)
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LbrSample {
    /// Records, oldest first, at most [`LBR_DEPTH`].
    pub records: Vec<LbrRecord>,
}

impl LbrSample {
    /// Creates a sample, asserting the depth bound.
    pub fn new(records: Vec<LbrRecord>) -> Self {
        assert!(records.len() <= LBR_DEPTH, "LBR stack depth exceeded");
        LbrSample { records }
    }
}

/// How the profiler samples.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct SamplingConfig {
    /// Taken branches between consecutive samples.
    pub period: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        // A period low enough that small simulated runs still gather
        // dense profiles; real deployments use ~100k-1M.
        SamplingConfig { period: 199 }
    }
}

/// A raw profile: the samples collected over one profiling run.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct HardwareProfile {
    /// Name of the profiled binary.
    pub binary_name: String,
    /// All samples in collection order.
    pub samples: Vec<LbrSample>,
}

impl HardwareProfile {
    /// Creates an empty profile for `binary_name`.
    pub fn new(binary_name: impl Into<String>) -> Self {
        HardwareProfile {
            binary_name: binary_name.into(),
            samples: Vec::new(),
        }
    }

    /// Total branch records across samples.
    pub fn num_records(&self) -> usize {
        self.samples.iter().map(|s| s.records.len()).sum()
    }

    /// The on-disk size of the raw profile: 16 bytes per record plus a
    /// 64-byte header per sample (mirrors `perf.data` overheads; used
    /// by the memory/cost models).
    pub fn raw_size_bytes(&self) -> u64 {
        (self.num_records() * 16 + self.samples.len() * 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_depth_enforced() {
        let r = LbrRecord { from: 1, to: 2 };
        LbrSample::new(vec![r; LBR_DEPTH]); // ok
    }

    #[test]
    #[should_panic(expected = "depth exceeded")]
    fn oversized_sample_rejected() {
        let r = LbrRecord { from: 1, to: 2 };
        LbrSample::new(vec![r; LBR_DEPTH + 1]);
    }

    #[test]
    fn raw_size_counts_records_and_headers() {
        let mut p = HardwareProfile::new("bin");
        p.samples.push(LbrSample::new(vec![
            LbrRecord { from: 1, to: 2 },
            LbrRecord { from: 3, to: 4 },
        ]));
        p.samples.push(LbrSample::new(vec![LbrRecord { from: 5, to: 6 }]));
        assert_eq!(p.num_records(), 3);
        assert_eq!(p.raw_size_bytes(), 3 * 16 + 2 * 64);
    }
}
