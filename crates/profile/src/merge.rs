//! Weighted multi-profile merging with age decay.
//!
//! The fleet scenario (§2, §5 of the paper): thousands of machines
//! serve unequal traffic shares, each streaming LBR samples collected
//! on whatever binary version it currently runs. Before a release is
//! relinked, those per-machine profiles are merged into one aggregated
//! profile, weighted by each source's sample volume and discounted by
//! how many releases old it is.
//!
//! The merge is *exactly conservative*: the merged branch (and
//! fall-through) totals equal the sum of the inputs' totals, so
//! downstream hot/cold thresholds ([`WpaOptions::hot_threshold`],
//! `min_function_samples`) keep their natural magnitudes no matter how
//! the weights tilt. Conservation is achieved by normalizing the
//! weighted per-edge mass back to the input total with deterministic
//! largest-remainder rounding (remainder descending, then edge key
//! ascending), so the result is a pure function of the inputs —
//! bit-identical across runs, machines, and `--jobs` counts.
//!
//! All intermediate arithmetic widens to `u128` before multiplying and
//! saturates instead of wrapping (the same discipline as the DCFG's
//! weight math). For pathological inputs whose total mass exceeds
//! `u128`, the merge degrades to saturated-but-deterministic counts;
//! conservation is exact whenever `total mass x target total` fits in
//! 128 bits, which covers every realistic fleet by many orders of
//! magnitude.
//!
//! [`WpaOptions::hot_threshold`]: https://en.wikipedia.org/wiki/Profile-guided_optimization

use crate::agg::AggregatedProfile;
use std::collections::{BTreeMap, HashMap};

/// One profile source entering a merge: an aggregated profile plus its
/// scheduling inputs.
#[derive(Clone, Debug)]
pub struct ProfileSource {
    /// The source's aggregated counts (already translated into the
    /// target binary's address space, if it was collected elsewhere).
    pub agg: AggregatedProfile,
    /// Relative weight, typically the source's sample volume (a
    /// machine that served 3x the traffic counts 3x as much).
    pub weight: u64,
    /// Age in releases: 0 = collected on the binary being relinked,
    /// k = collected k releases ago. Older sources decay by
    /// [`MergeOptions::decay_num`]`/`[`MergeOptions::decay_den`] per
    /// release.
    pub age: u32,
}

/// Merge configuration.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct MergeOptions {
    /// Numerator of the per-release decay factor.
    pub decay_num: u32,
    /// Denominator of the per-release decay factor. A source of age
    /// `a` contributes with weight `weight * (decay_num/decay_den)^a`.
    pub decay_den: u32,
}

impl Default for MergeOptions {
    fn default() -> Self {
        // Halve a profile's influence per release of staleness.
        MergeOptions {
            decay_num: 1,
            decay_den: 2,
        }
    }
}

impl MergeOptions {
    /// No decay: every source counts at its raw weight regardless of
    /// age.
    pub fn no_decay() -> Self {
        MergeOptions {
            decay_num: 1,
            decay_den: 1,
        }
    }
}

fn sat_mul(a: u128, b: u128) -> u128 {
    a.saturating_mul(b)
}

fn sat_pow(base: u128, exp: u32) -> u128 {
    let mut acc = 1u128;
    for _ in 0..exp {
        acc = sat_mul(acc, base);
    }
    acc
}

/// The effective (decayed) weight of a source, on the common
/// denominator `decay_den^max_age`: `weight * num^age * den^(max_age -
/// age)`. Exposed so the age-decay monotonicity property is directly
/// testable: for `decay_num < decay_den`, this is non-increasing in
/// `age` at fixed `weight` and `max_age`.
pub fn effective_weight(weight: u64, age: u32, max_age: u32, opts: &MergeOptions) -> u128 {
    debug_assert!(age <= max_age);
    debug_assert!(opts.decay_den > 0, "decay denominator must be nonzero");
    sat_mul(
        weight as u128,
        sat_mul(
            sat_pow(opts.decay_num as u128, age),
            sat_pow(opts.decay_den as u128, max_age - age),
        ),
    )
}

/// One source's edge map paired with its effective weight.
type ScaledEdges<'a> = (&'a HashMap<(u64, u64), u64>, u128);

/// Merges one edge map: accumulate `count * effective_weight` mass per
/// edge, then redistribute the exact input total `target` over the
/// edges proportionally, with deterministic largest-remainder rounding.
fn merge_edge_maps(maps: &[ScaledEdges<'_>], target: u128) -> HashMap<(u64, u64), u64> {
    let mut mass: BTreeMap<(u64, u64), u128> = BTreeMap::new();
    for (map, scale) in maps {
        if *scale == 0 {
            continue;
        }
        for (&edge, &count) in *map {
            let m = mass.entry(edge).or_insert(0);
            *m = m.saturating_add(sat_mul(count as u128, *scale));
        }
    }
    let mut total_mass: u128 = mass.values().fold(0u128, |a, &m| a.saturating_add(m));
    if total_mass == 0 || target == 0 {
        return HashMap::new();
    }
    // `mass * target` must fit in u128 or the quotas below lose all
    // proportionality. Right-shifting every mass by the same amount
    // preserves the shares (a pure function of the totals, so still
    // deterministic and order-free); only sources whose entire mass
    // vanishes under the shift — below 2^-63 of the total — lose
    // representation.
    let mass_bits = 128 - total_mass.leading_zeros();
    let target_bits = 128 - target.leading_zeros();
    let shift = (mass_bits + target_bits).saturating_sub(127);
    if shift > 0 {
        for m in mass.values_mut() {
            *m >>= shift;
        }
        mass.retain(|_, &mut m| m > 0);
        total_mass = mass.values().sum();
        if total_mass == 0 {
            return HashMap::new();
        }
    }
    // Integer quota per edge plus its remainder; the leftover units
    // (fewer than the number of edges now that the mass product fits
    // in u128) go to the largest remainders, ties broken by edge key.
    let mut out: HashMap<(u64, u64), u64> = HashMap::with_capacity(mass.len());
    let mut assigned: u128 = 0;
    let mut remainders: Vec<(u128, (u64, u64))> = Vec::with_capacity(mass.len());
    for (&edge, &m) in &mass {
        let scaled = sat_mul(m, target);
        let quota = scaled / total_mass;
        let rem = scaled % total_mass;
        assigned = assigned.saturating_add(quota);
        out.insert(edge, u64::try_from(quota).unwrap_or(u64::MAX));
        remainders.push((rem, edge));
    }
    let mut leftover = target.saturating_sub(assigned);
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for (_, edge) in remainders {
        if leftover == 0 {
            break;
        }
        let e = out.get_mut(&edge).expect("edge was just inserted");
        *e = e.saturating_add(1);
        leftover -= 1;
    }
    out.retain(|_, &mut v| v > 0);
    out
}

/// One source's share of a merge, for provenance reporting: its
/// scheduling inputs, the decayed weight the merge actually used, and
/// the raw branch mass it brought in.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SourceContribution {
    /// Index of the source in the merge's input slice.
    pub index: usize,
    /// Raw weight as passed in.
    pub weight: u64,
    /// Age in releases as passed in.
    pub age: u32,
    /// The effective (decayed) weight used, on the common denominator
    /// `decay_den^max_age` — see [`effective_weight`]. Zero means the
    /// source was dropped entirely.
    pub effective: u128,
    /// The source's own total branch count (its un-decayed sample
    /// mass).
    pub branch_total: u64,
}

/// What one [`merge_profiles_logged`] call did: the decay rule in
/// force and every source's decayed contribution, in input order.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MergeProvenance {
    /// Largest source age seen (the common-denominator exponent).
    pub max_age: u32,
    /// Decay numerator in force.
    pub decay_num: u32,
    /// Decay denominator in force.
    pub decay_den: u32,
    /// Per-source contributions, in input order.
    pub sources: Vec<SourceContribution>,
}

/// Merges profile sources into one aggregated profile.
///
/// Properties (see the module docs for the arithmetic caveats):
///
/// * **Conservation** — the merged branch total equals the sum of the
///   inputs' branch totals (likewise fall-throughs), exactly.
/// * **Commutativity** — source order never matters: accumulation is
///   additive and every tie-break is keyed on edge addresses.
/// * **Identity / addition** — a single source, or several sources at
///   equal weight and age, merge to the exact per-edge sum of their
///   counts (which also makes the uniform case associative).
/// * **Age decay** — at `decay_num < decay_den`, an older source's
///   share of the merged counts is non-increasing in its age.
///
/// Sources with zero weight (or fully-decayed weight) contribute
/// nothing; with no effective sources the result is empty.
pub fn merge_profiles(sources: &[ProfileSource], opts: &MergeOptions) -> AggregatedProfile {
    merge_profiles_logged(sources, opts, None)
}

/// [`merge_profiles`], additionally filling `log` (when given) with
/// each source's decayed contribution. The merged profile is identical
/// either way; arming only records *who* funded the merged counts and
/// at what decayed weight.
pub fn merge_profiles_logged(
    sources: &[ProfileSource],
    opts: &MergeOptions,
    log: Option<&mut MergeProvenance>,
) -> AggregatedProfile {
    assert!(opts.decay_den > 0, "decay denominator must be nonzero");
    let max_age = sources.iter().map(|s| s.age).max().unwrap_or(0);
    let scales: Vec<u128> = sources
        .iter()
        .map(|s| effective_weight(s.weight, s.age, max_age, opts))
        .collect();
    if let Some(log) = log {
        log.max_age = max_age;
        log.decay_num = opts.decay_num;
        log.decay_den = opts.decay_den;
        log.sources = sources
            .iter()
            .zip(&scales)
            .enumerate()
            .map(|(index, (s, &effective))| SourceContribution {
                index,
                weight: s.weight,
                age: s.age,
                effective,
                branch_total: s.agg.total_branch_count(),
            })
            .collect();
    }
    let branch_target: u128 = sources
        .iter()
        .zip(&scales)
        .filter(|(_, &sc)| sc > 0)
        .map(|(s, _)| {
            s.agg
                .branches
                .values()
                .fold(0u128, |a, &v| a.saturating_add(v as u128))
        })
        .fold(0u128, |a, t| a.saturating_add(t));
    let ft_target: u128 = sources
        .iter()
        .zip(&scales)
        .filter(|(_, &sc)| sc > 0)
        .map(|(s, _)| {
            s.agg
                .fallthroughs
                .values()
                .fold(0u128, |a, &v| a.saturating_add(v as u128))
        })
        .fold(0u128, |a, t| a.saturating_add(t));
    let branch_maps: Vec<ScaledEdges<'_>> = sources
        .iter()
        .zip(&scales)
        .map(|(s, &sc)| (&s.agg.branches, sc))
        .collect();
    let ft_maps: Vec<ScaledEdges<'_>> = sources
        .iter()
        .zip(&scales)
        .map(|(s, &sc)| (&s.agg.fallthroughs, sc))
        .collect();
    AggregatedProfile {
        branches: merge_edge_maps(&branch_maps, branch_target),
        fallthroughs: merge_edge_maps(&ft_maps, ft_target),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agg(edges: &[((u64, u64), u64)]) -> AggregatedProfile {
        AggregatedProfile {
            branches: edges.iter().copied().collect(),
            fallthroughs: HashMap::new(),
        }
    }

    fn src(edges: &[((u64, u64), u64)], weight: u64, age: u32) -> ProfileSource {
        ProfileSource {
            agg: agg(edges),
            weight,
            age,
        }
    }

    #[test]
    fn single_source_is_identity() {
        let s = src(&[((1, 2), 10), ((3, 4), 7)], 5, 0);
        let m = merge_profiles(std::slice::from_ref(&s), &MergeOptions::default());
        assert_eq!(m, s.agg);
    }

    #[test]
    fn uniform_merge_is_exact_addition() {
        let a = src(&[((1, 2), 10), ((3, 4), 5)], 3, 0);
        let b = src(&[((1, 2), 2), ((5, 6), 8)], 3, 0);
        let m = merge_profiles(&[a, b], &MergeOptions::default());
        assert_eq!(m.branches[&(1, 2)], 12);
        assert_eq!(m.branches[&(3, 4)], 5);
        assert_eq!(m.branches[&(5, 6)], 8);
        assert_eq!(m.total_branch_count(), 25);
    }

    #[test]
    fn conservation_under_skewed_weights_and_ages() {
        let sources = [
            src(&[((1, 2), 941), ((3, 4), 59)], 17, 0),
            src(&[((1, 2), 3), ((9, 9), 777)], 400_000, 2),
            src(&[((5, 6), 123_456)], 1, 5),
        ];
        let m = merge_profiles(&sources, &MergeOptions::default());
        let want: u64 = sources
            .iter()
            .map(|s| s.agg.total_branch_count())
            .sum();
        assert_eq!(m.total_branch_count(), want);
    }

    #[test]
    fn zero_weight_and_empty_inputs() {
        assert_eq!(
            merge_profiles(&[], &MergeOptions::default()),
            AggregatedProfile::default()
        );
        let dead = src(&[((1, 2), 100)], 0, 0);
        let live = src(&[((3, 4), 10)], 1, 0);
        let m = merge_profiles(&[dead, live], &MergeOptions::default());
        assert!(!m.branches.contains_key(&(1, 2)));
        assert_eq!(m.branches[&(3, 4)], 10);
    }

    #[test]
    fn fully_decayed_source_drops_out() {
        // decay 0/1: any age > 0 zeroes the source.
        let opts = MergeOptions {
            decay_num: 0,
            decay_den: 1,
        };
        let old = src(&[((1, 2), 1000)], 50, 1);
        let new = src(&[((3, 4), 4)], 1, 0);
        let m = merge_profiles(&[old, new], &opts);
        assert!(!m.branches.contains_key(&(1, 2)));
        assert_eq!(m.branches[&(3, 4)], 4);
    }

    #[test]
    fn age_decay_shrinks_a_sources_share() {
        let fresh_counts = &[((1, 2), 1000u64)];
        let other = src(&[((3, 4), 1000)], 10, 0);
        let mut last = u64::MAX;
        for age in 0..4 {
            let m = merge_profiles(
                &[src(fresh_counts, 10, age), other.clone()],
                &MergeOptions::default(),
            );
            let share = m.branches.get(&(1, 2)).copied().unwrap_or(0);
            assert!(
                share <= last,
                "share at age {age} ({share}) exceeds age {} ({last})",
                age - 1
            );
            last = share;
        }
    }

    #[test]
    fn logged_merge_is_identical_and_records_decayed_weights() {
        let sources = [
            src(&[((1, 2), 941), ((3, 4), 59)], 17, 0),
            src(&[((1, 2), 3), ((9, 9), 777)], 400, 2),
            src(&[((5, 6), 123)], 1, 1),
        ];
        let opts = MergeOptions::default();
        let plain = merge_profiles(&sources, &opts);
        let mut log = MergeProvenance::default();
        let logged = merge_profiles_logged(&sources, &opts, Some(&mut log));
        assert_eq!(plain, logged, "arming must not change the merge");
        assert_eq!(log.max_age, 2);
        assert_eq!((log.decay_num, log.decay_den), (1, 2));
        assert_eq!(log.sources.len(), 3);
        // Age 0 at decay 1/2 over max_age 2: weight * 2^2.
        assert_eq!(log.sources[0].effective, 17 * 4);
        // Age 2: weight * 1^2 * 2^0.
        assert_eq!(log.sources[1].effective, 400);
        // Age 1: weight * 1 * 2.
        assert_eq!(log.sources[2].effective, 2);
        assert_eq!(log.sources[0].branch_total, 1000);
        assert_eq!(log.sources[1].index, 1);
    }

    #[test]
    fn commutative_under_permutation() {
        let a = src(&[((1, 2), 941), ((3, 4), 59)], 17, 1);
        let b = src(&[((1, 2), 3), ((9, 9), 777)], 400, 0);
        let c = src(&[((5, 6), 13)], 90, 3);
        let opts = MergeOptions::default();
        let abc = merge_profiles(&[a.clone(), b.clone(), c.clone()], &opts);
        let cba = merge_profiles(&[c, b, a], &opts);
        assert_eq!(abc, cba);
    }

    #[test]
    fn u64_max_adjacent_weights_saturate_deterministically() {
        // Widen-before-multiply: weight * count at u64::MAX-adjacent
        // values must not wrap. The result saturates per edge but the
        // merge still completes and is a pure function of its inputs.
        let huge = src(&[((1, 2), u64::MAX - 1)], u64::MAX, 0);
        let tiny = src(&[((3, 4), 1)], 1, 0);
        let m1 = merge_profiles(&[huge.clone(), tiny.clone()], &MergeOptions::default());
        let m2 = merge_profiles(&[tiny, huge], &MergeOptions::default());
        assert_eq!(m1, m2);
        // The dominant edge keeps (almost) all of the pinned total.
        assert!(m1.branches[&(1, 2)] >= u64::MAX - 2);
    }

    #[test]
    fn fallthroughs_conserve_independently() {
        let mut a = src(&[((1, 2), 10)], 2, 0);
        a.agg.fallthroughs.insert((2, 3), 6);
        let mut b = src(&[((1, 2), 1)], 9, 1);
        b.agg.fallthroughs.insert((2, 3), 4);
        b.agg.fallthroughs.insert((7, 8), 5);
        let m = merge_profiles(&[a, b], &MergeOptions::default());
        assert_eq!(m.total_branch_count(), 11);
        assert_eq!(m.total_fallthrough_count(), 15);
    }
}
