//! Codegen options.

use crate::layout::FunctionClusters;
use propeller_ir::FunctionId;
use std::collections::HashMap;

/// How basic block sections are emitted, mirroring
/// `-fbasic-block-sections=` in LLVM.
#[derive(Clone, PartialEq, Debug, Default)]
pub enum BbSectionsMode {
    /// No basic block sections: one `.text.<fn>` section per function,
    /// branches resolved at compile time where possible. The baseline.
    #[default]
    Off,
    /// "Labels" mode: code is laid out exactly as in [`BbSectionsMode::Off`],
    /// but the `.llvm_bb_addr_map` section is emitted so hardware
    /// profiles can later be mapped to blocks (the Phase 2 metadata
    /// build).
    Labels,
    /// "Clusters" mode: functions listed in the map are split into the
    /// given basic block cluster sections (the Phase 4 optimizing
    /// build); unlisted functions are emitted as in
    /// [`BbSectionsMode::Off`].
    Clusters(ClusterMap),
}

/// Per-function cluster directives — the in-memory form of the
/// `cc_prof.txt` file the whole-program analyzer produces (§3.3).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ClusterMap {
    map: HashMap<FunctionId, FunctionClusters>,
}

impl ClusterMap {
    /// An empty map (no functions are split or reordered).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the cluster partition for a function.
    pub fn insert(&mut self, function: FunctionId, clusters: FunctionClusters) {
        self.map.insert(function, clusters);
    }

    /// The partition for `function`, if directives exist.
    pub fn get(&self, function: FunctionId) -> Option<&FunctionClusters> {
        self.map.get(&function)
    }

    /// Number of functions with directives.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no function has directives.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(function, clusters)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (FunctionId, &FunctionClusters)> {
        self.map.iter().map(|(k, v)| (*k, v))
    }
}

/// Options controlling a codegen action.
#[derive(Clone, PartialEq, Debug)]
pub struct CodegenOptions {
    /// Basic block section emission mode.
    pub bb_sections: BbSectionsMode,
    /// Emit `.llvm_bb_addr_map` metadata. Implied by
    /// [`BbSectionsMode::Labels`] and [`BbSectionsMode::Clusters`]; can
    /// be forced on independently for testing.
    pub emit_bb_addr_map: bool,
    /// Size of the module's read-only data, as a fraction of its text
    /// size (models string tables, vtables, jump tables...).
    pub rodata_fraction: f64,
    /// Emit DWARF `.debug_ranges`-style records, one range per text
    /// fragment with two relocations each (§4.3).
    pub debug_ranges: bool,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        CodegenOptions {
            bb_sections: BbSectionsMode::Off,
            emit_bb_addr_map: false,
            rodata_fraction: 0.30,
            debug_ranges: false,
        }
    }
}

impl CodegenOptions {
    /// Baseline build: no sections, no metadata.
    pub fn baseline() -> Self {
        Self::default()
    }

    /// Phase 2 metadata build (`PM` in Figure 6): labels mode.
    pub fn with_labels() -> Self {
        CodegenOptions {
            bb_sections: BbSectionsMode::Labels,
            emit_bb_addr_map: true,
            ..Self::default()
        }
    }

    /// Phase 4 optimizing build (`PO` in Figure 6): cluster sections for
    /// the given functions.
    pub fn with_clusters(map: ClusterMap) -> Self {
        CodegenOptions {
            bb_sections: BbSectionsMode::Clusters(map),
            emit_bb_addr_map: true,
            ..Self::default()
        }
    }

    /// Whether the address map section should be emitted.
    pub fn wants_bb_addr_map(&self) -> bool {
        self.emit_bb_addr_map || !matches!(self.bb_sections, BbSectionsMode::Off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use propeller_ir::BlockId;

    #[test]
    fn presets() {
        assert!(!CodegenOptions::baseline().wants_bb_addr_map());
        assert!(CodegenOptions::with_labels().wants_bb_addr_map());
        let opts = CodegenOptions::with_clusters(ClusterMap::new());
        assert!(opts.wants_bb_addr_map());
    }

    #[test]
    fn cluster_map_access() {
        let mut m = ClusterMap::new();
        assert!(m.is_empty());
        m.insert(
            FunctionId(1),
            FunctionClusters::single(vec![BlockId(0)]),
        );
        assert_eq!(m.len(), 1);
        assert!(m.get(FunctionId(1)).is_some());
        assert!(m.get(FunctionId(2)).is_none());
        assert_eq!(m.iter().count(), 1);
    }
}
